// Deterministic discrete-event simulator.
//
// Models the paper's timing assumption: there is a known duration Δ long
// enough for one party to publish (or trigger) a contract and for another
// party to confirm the change. The simulator advances an integer tick
// clock; blockchains seal blocks and parties poll on scheduled events.
// Event ordering is fully deterministic: (time, insertion sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xswap::sim {

/// Simulated time in ticks.
using Time = std::uint64_t;
/// Durations share the tick unit.
using Duration = std::uint64_t;

/// A deterministic event-queue simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void at(Time t, Callback fn);

  /// Schedule `fn` `delay` ticks from now.
  void after(Duration delay, Callback fn);

  /// Schedule `fn` every `period` ticks starting at `first`, until it
  /// returns false or the simulation stops.
  void every(Time first, Duration period, std::function<bool()> fn);

  /// Run a single event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `max_events` executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Run events with time <= `t_end`; time stops at the last executed
  /// event (or jumps to t_end if the queue empties earlier).
  void run_until(Time t_end);

  /// Number of pending events.
  std::size_t pending() const { return queue_.size(); }

  static constexpr std::size_t kDefaultMaxEvents = 10'000'000;

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace xswap::sim
