// Deterministic discrete-event simulator.
//
// Models the paper's timing assumption: there is a known duration Δ long
// enough for one party to publish (or trigger) a contract and for another
// party to confirm the change. The simulator advances an integer tick
// clock; blockchains seal blocks and parties poll on scheduled events.
// Event ordering is fully deterministic: (time, insertion sequence).
//
// Scheduling is a two-level calendar queue built for the protocol's
// event mix (dense near-future polling, sparse far-future deadlines):
//
//   * events within kCalendarSpan ticks of now() live in per-tick FIFO
//     buckets (a bucket holds one tick's events in insertion order, so
//     (time, seq) order falls out of appending);
//   * events further out wait in a small binary heap of (time, seq,
//     node) references and migrate into the calendar as the window
//     reaches them — always before any same-tick direct insert can land,
//     so migration preserves the global (time, seq) order;
//   * event records themselves live in a slab with an intrusive free
//     list, and every() keeps its callback in a reusable periodic-task
//     slot, so steady-state at()/after()/step() perform no per-event
//     heap allocation (std::function's small-buffer optimisation covers
//     the protocol's closures; large closures only allocate where the
//     caller constructs them).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace xswap::sim {

/// Simulated time in ticks.
using Time = std::uint64_t;
/// Durations share the tick unit.
using Duration = std::uint64_t;

/// A deterministic event-queue simulator.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  Time now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void at(Time t, Callback fn);

  /// Schedule `fn` `delay` ticks from now.
  void after(Duration delay, Callback fn);

  /// Schedule `fn` every `period` ticks starting at `first`, until it
  /// returns false or the simulation stops. The callback is stored once
  /// and its event record is reused across firings — the simulator's
  /// steady state (chains sealing, parties polling) allocates nothing.
  void every(Time first, Duration period, std::function<bool()> fn);

  /// Run a single event; returns false when the queue is empty.
  bool step();

  /// Run events until the queue is empty or `max_events` executed.
  /// Returns the number of events executed.
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Run events with time <= `t_end`; time stops at the last executed
  /// event (or jumps to t_end if the queue empties earlier).
  void run_until(Time t_end);

  /// Number of pending events.
  std::size_t pending() const { return pending_; }

  /// Return to the initial state (t=0, empty queue, seq 0) while keeping
  /// the slab and bucket capacity, so one core can be reused across
  /// simulations — recurrent rounds, or engines run back-to-back on a
  /// persistent pool's worker lanes — without reallocating.
  void reset();

  /// Pre-size the event slab for an expected concurrent event
  /// population (capacity only; pending events and behaviour are
  /// untouched). Engines call this with their party/chain census so the
  /// slab never grows mid-run.
  void reserve(std::size_t nodes);

  static constexpr std::size_t kDefaultMaxEvents = 10'000'000;

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  /// Calendar width in ticks (power of two; bucket = time % span). The
  /// protocol schedules almost everything within a few Δ of now, so a
  /// small window keeps the scan cheap and the heap nearly empty.
  static constexpr Time kCalendarSpan = 256;

  struct Node {
    Time time = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;      // intrusive per-bucket FIFO link
    std::uint32_t periodic = kNil;  // tasks_ slot; kNil = one-shot
    Callback fn;                    // one-shot payload (empty for periodic)
  };

  struct PeriodicTask {
    Duration period = 0;
    std::function<bool()> fn;
    std::uint32_t next_free = kNil;
  };

  /// Far-future reference; heap-ordered by (time, seq) ascending.
  struct FarRef {
    Time time;
    std::uint64_t seq;
    std::uint32_t node;
  };
  struct FarLater {
    bool operator()(const FarRef& a, const FarRef& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::uint32_t allocate_node();
  void release_node(std::uint32_t idx);
  void insert_node(std::uint32_t idx);
  void bucket_append(std::uint32_t idx);
  /// Move every far-future event with time < horizon + span into its
  /// bucket (callers guarantee those times fit the calendar window).
  void migrate_until(Time horizon);
  /// Pop the next event with time <= limit (advancing now_), or kNil.
  std::uint32_t take_next(Time limit);
  void execute(std::uint32_t idx);

  std::vector<Node> nodes_;                  // slab; indexes are stable
  std::uint32_t free_head_ = kNil;           // node free list
  std::vector<std::uint32_t> bucket_head_;   // per-tick FIFO heads
  std::vector<std::uint32_t> bucket_tail_;
  std::size_t calendar_size_ = 0;            // events currently in buckets
  std::priority_queue<FarRef, std::vector<FarRef>, FarLater> far_;
  std::vector<PeriodicTask> tasks_;          // periodic callbacks, slotted
  std::uint32_t task_free_head_ = kNil;
  std::size_t pending_ = 0;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace xswap::sim
