#include "sim/simulator.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace xswap::sim {

Simulator::Simulator()
    : bucket_head_(kCalendarSpan, kNil), bucket_tail_(kCalendarSpan, kNil) {}

std::uint32_t Simulator::allocate_node() {
  if (free_head_ != kNil) {
    const std::uint32_t idx = free_head_;
    free_head_ = nodes_[idx].next;
    nodes_[idx].next = kNil;
    return idx;
  }
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Simulator::release_node(std::uint32_t idx) {
  Node& node = nodes_[idx];
  node.fn = nullptr;  // drop captured state now, not at slab reuse
  node.periodic = kNil;
  node.next = free_head_;
  free_head_ = idx;
}

void Simulator::bucket_append(std::uint32_t idx) {
  // One bucket holds exactly one tick's events (all pending bucketed
  // times lie in [now, now + span), so time % span is injective), and
  // appending keeps them in seq order: direct inserts carry ever-growing
  // seqs, and migrated events are appended before any direct insert for
  // the same tick can land (see insert_node / migrate_until).
  const std::size_t b = static_cast<std::size_t>(nodes_[idx].time % kCalendarSpan);
  nodes_[idx].next = kNil;
  if (bucket_tail_[b] == kNil) {
    bucket_head_[b] = idx;
  } else {
    nodes_[bucket_tail_[b]].next = idx;
  }
  bucket_tail_[b] = idx;
  ++calendar_size_;
}

void Simulator::migrate_until(Time horizon) {
  while (!far_.empty() && far_.top().time < horizon + kCalendarSpan) {
    const std::uint32_t idx = far_.top().node;
    far_.pop();
    bucket_append(idx);
  }
}

void Simulator::insert_node(std::uint32_t idx) {
  const Time t = nodes_[idx].time;
  if (t - now_ < kCalendarSpan) {
    // Drain any far-future events that have entered the window first:
    // they were scheduled earlier (smaller seq), so they must precede
    // this event in its bucket if the times collide.
    migrate_until(now_);
    bucket_append(idx);
  } else {
    far_.push(FarRef{t, nodes_[idx].seq, idx});
  }
  ++pending_;
}

void Simulator::at(Time t, Callback fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  const std::uint32_t idx = allocate_node();
  Node& node = nodes_[idx];
  node.time = t;
  node.seq = next_seq_++;
  node.periodic = kNil;
  node.fn = std::move(fn);
  insert_node(idx);
}

void Simulator::after(Duration delay, Callback fn) {
  at(now_ + delay, std::move(fn));
}

void Simulator::every(Time first, Duration period, std::function<bool()> fn) {
  if (period == 0) throw std::invalid_argument("Simulator::every: zero period");
  if (first < now_) {
    throw std::invalid_argument("Simulator::every: time in the past");
  }
  std::uint32_t task;
  if (task_free_head_ != kNil) {
    task = task_free_head_;
    task_free_head_ = tasks_[task].next_free;
  } else {
    tasks_.emplace_back();
    task = static_cast<std::uint32_t>(tasks_.size() - 1);
  }
  tasks_[task].period = period;
  tasks_[task].fn = std::move(fn);
  tasks_[task].next_free = kNil;

  const std::uint32_t idx = allocate_node();
  Node& node = nodes_[idx];
  node.time = first;
  node.seq = next_seq_++;
  node.periodic = task;
  insert_node(idx);
}

std::uint32_t Simulator::take_next(Time limit) {
  if (pending_ == 0) return kNil;
  Time scan = now_;
  if (calendar_size_ == 0) {
    // Everything lives in the far heap; jump straight to its front.
    const Time t = far_.top().time;
    if (t > limit) return kNil;
    scan = t;
    migrate_until(t);
  } else {
    migrate_until(now_);
  }
  // After migration the next event is bucketed within [scan, scan+span).
  for (;; ++scan) {
    const std::size_t b = static_cast<std::size_t>(scan % kCalendarSpan);
    const std::uint32_t idx = bucket_head_[b];
    if (idx == kNil || nodes_[idx].time != scan) continue;
    if (scan > limit) return kNil;
    bucket_head_[b] = nodes_[idx].next;
    if (bucket_head_[b] == kNil) bucket_tail_[b] = kNil;
    --calendar_size_;
    --pending_;
    now_ = scan;
    return idx;
  }
}

void Simulator::execute(std::uint32_t idx) {
  const std::uint32_t task = nodes_[idx].periodic;
  if (task == kNil) {
    // Move the callback out first: it may schedule events (growing the
    // slab) and must survive its own node's reuse.
    Callback fn = std::move(nodes_[idx].fn);
    release_node(idx);
    fn();
    return;
  }
  // Periodic firing: run the stored callback, then reuse the same node
  // and task slot for the next occurrence — no allocation per firing.
  // The callback is moved out around the call because it may itself call
  // every()/at() and grow the slabs under us.
  std::function<bool()> fn = std::move(tasks_[task].fn);
  bool again = false;
  try {
    again = fn();
  } catch (...) {
    // A throwing periodic callback stops its own schedule; free the
    // task slot and node before propagating so nothing leaks.
    tasks_[task].fn = nullptr;
    tasks_[task].next_free = task_free_head_;
    task_free_head_ = task;
    release_node(idx);
    throw;
  }
  tasks_[task].fn = std::move(fn);
  if (again) {
    nodes_[idx].time = now_ + tasks_[task].period;
    nodes_[idx].seq = next_seq_++;  // reschedules order after fn's inserts
    insert_node(idx);
  } else {
    tasks_[task].fn = nullptr;
    tasks_[task].next_free = task_free_head_;
    task_free_head_ = task;
    release_node(idx);
  }
}

bool Simulator::step() {
  const std::uint32_t idx = take_next(std::numeric_limits<Time>::max());
  if (idx == kNil) return false;
  execute(idx);
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

void Simulator::run_until(Time t_end) {
  for (;;) {
    const std::uint32_t idx = take_next(t_end);
    if (idx == kNil) break;
    execute(idx);
  }
  if (now_ < t_end) now_ = t_end;
}

void Simulator::reserve(std::size_t nodes) {
  nodes_.reserve(nodes);
  tasks_.reserve(nodes);
}

void Simulator::reset() {
  // Rebuild the free lists instead of clearing the vectors so the slab
  // capacity (and therefore the zero-allocation steady state) carries
  // over to the next simulation.
  for (std::size_t b = 0; b < kCalendarSpan; ++b) {
    bucket_head_[b] = kNil;
    bucket_tail_[b] = kNil;
  }
  while (!far_.empty()) far_.pop();
  free_head_ = kNil;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    release_node(static_cast<std::uint32_t>(i));
  }
  task_free_head_ = kNil;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    tasks_[i].fn = nullptr;
    tasks_[i].next_free = task_free_head_;
    task_free_head_ = static_cast<std::uint32_t>(i);
  }
  calendar_size_ = 0;
  pending_ = 0;
  now_ = 0;
  next_seq_ = 0;
}

}  // namespace xswap::sim
