#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace xswap::sim {

void Simulator::at(Time t, Callback fn) {
  if (t < now_) throw std::invalid_argument("Simulator::at: time in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::after(Duration delay, Callback fn) {
  at(now_ + delay, std::move(fn));
}

void Simulator::every(Time first, Duration period, std::function<bool()> fn) {
  if (period == 0) throw std::invalid_argument("Simulator::every: zero period");
  // Each firing reschedules the next one while fn keeps returning true.
  at(first, [this, period, fn = std::move(fn)]() {
    if (fn()) every(now_ + period, period, fn);
  });
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; moving the callback requires a copy
  // here — acceptable for a simulator driven by small closures.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.time;
  ev.fn();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && step()) ++executed;
  return executed;
}

void Simulator::run_until(Time t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) step();
  if (now_ < t_end) now_ = t_end;
}

}  // namespace xswap::sim
