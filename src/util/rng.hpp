// Deterministic random number generation.
//
// Everything in the repository that needs randomness — key generation,
// secret generation, random digraph construction, adversary schedules —
// draws from a seeded Rng so that every simulation, test, and benchmark is
// exactly reproducible.
#pragma once

#include <cstdint>

#include "util/bytes.hpp"

namespace xswap::util {

/// SplitMix64-seeded xoshiro256** generator. Not cryptographically secure;
/// the simulator only needs determinism, not entropy (see DESIGN.md §2).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform value in [0, bound). Requires bound > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Bernoulli draw with probability `num/den`.
  bool next_chance(std::uint64_t num, std::uint64_t den);

  /// `n` pseudo-random bytes (secrets, key seeds).
  Bytes next_bytes(std::size_t n);

  /// Fisher–Yates shuffle of an index container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(c[i - 1], c[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace xswap::util
