// Portable Clang Thread Safety Analysis annotations.
//
// The concurrency surface (swap/executor.hpp, chain/ledger.hpp,
// swap/scenario.cpp) states its lock discipline with these macros so a
// Clang build with -Wthread-safety (CMake: -DXSWAP_THREAD_SAFETY=ON)
// proves at compile time that every access to a guarded member holds
// the right mutex — the static counterpart of the TSan CI job, which
// only checks the interleavings that actually execute. On compilers
// without the attributes (GCC, MSVC) every macro expands to nothing.
//
// The annotations attach to util::Mutex (util/mutex.hpp), not to
// std::mutex directly: the analysis only follows types that carry a
// capability attribute, which standard-library mutexes do not.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define XSWAP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef XSWAP_THREAD_ANNOTATION
#define XSWAP_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" names it in
/// diagnostics).
#define XSWAP_CAPABILITY(x) XSWAP_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor
/// releases a capability.
#define XSWAP_SCOPED_CAPABILITY XSWAP_THREAD_ANNOTATION(scoped_lockable)

/// Member may only be read or written while holding `x`.
#define XSWAP_GUARDED_BY(x) XSWAP_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* may only be accessed while holding
/// `x` (the pointer itself is unguarded).
#define XSWAP_PT_GUARDED_BY(x) XSWAP_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held by the caller.
#define XSWAP_REQUIRES(...) \
  XSWAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function requires the listed capabilities to NOT be held by the
/// caller (self-deadlock guard).
#define XSWAP_EXCLUDES(...) \
  XSWAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define XSWAP_ACQUIRE(...) \
  XSWAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities.
#define XSWAP_RELEASE(...) \
  XSWAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; `b` is the success return
/// value. (__VA_OPT__ so an empty capability list — meaning `this` —
/// leaves no trailing comma behind.)
#define XSWAP_TRY_ACQUIRE(b, ...) \
  XSWAP_THREAD_ANNOTATION(try_acquire_capability(b __VA_OPT__(, ) __VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define XSWAP_RETURN_CAPABILITY(x) XSWAP_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function's locking is correct for a reason the
/// analysis cannot see. Every use must carry a comment saying why.
#define XSWAP_NO_THREAD_SAFETY_ANALYSIS \
  XSWAP_THREAD_ANNOTATION(no_thread_safety_analysis)
