// Annotated mutex primitives for the Clang Thread Safety Analysis.
//
// util::Mutex wraps std::mutex with the capability attribute the
// analysis needs (standard-library mutexes carry no annotations, so
// locks taken through them are invisible to -Wthread-safety). All
// first-party code under src/ locks through these types; raw
// std::mutex / std::lock_guard in the concurrency surface is flagged by
// tools/xswap_lint.py so the discipline cannot silently erode.
//
// Condition variables: util::Mutex satisfies BasicLockable, so park/
// unpark paths use std::condition_variable_any waiting on the Mutex
// itself (see WorkStealingPool). The analysis treats the capability as
// held across the wait — the standard convention for annotated
// condvar loops (the predicate re-checks under the reacquired lock).
#pragma once

#include <mutex>

#include "util/thread_annotations.hpp"

namespace xswap::util {

/// An annotated standard mutex. Same cost and semantics as std::mutex;
/// the attribute is what lets -Wthread-safety track acquisition.
class XSWAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() XSWAP_ACQUIRE() { m_.lock(); }
  void unlock() XSWAP_RELEASE() { m_.unlock(); }
  bool try_lock() XSWAP_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over a util::Mutex — the annotated analogue of
/// std::lock_guard (the analysis releases the capability at scope
/// exit).
class XSWAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) XSWAP_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() XSWAP_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace xswap::util
