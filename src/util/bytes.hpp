// Byte-buffer helpers shared by every module.
//
// The whole library passes binary data around as `Bytes` (a vector of
// uint8_t). These helpers cover the common needs: hex round-trips for
// display and test vectors, concatenation for building signing payloads,
// and big-endian integer packing for deterministic encodings.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xswap::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode `data` as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Decode a hex string (case-insensitive, no "0x" prefix, even length).
/// Throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Bytes of a UTF-8/ASCII string, for hashing human-readable labels.
Bytes str_bytes(std::string_view s);

/// Concatenate any number of byte buffers into one.
Bytes concat(std::initializer_list<BytesView> parts);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Big-endian encoding of a 64-bit value (8 bytes), used wherever the
/// library needs a canonical integer encoding (Merkle leaves, tx ids...).
Bytes be64(std::uint64_t v);

/// Parse 8 big-endian bytes back into a 64-bit value.
std::uint64_t read_be64(BytesView data);

/// Constant-time equality, used when comparing secrets against hashlocks.
bool ct_equal(BytesView a, BytesView b);

}  // namespace xswap::util
