#include "util/rng.hpp"

#include <stdexcept>

namespace xswap::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : state_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~0ULL) / bound);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % bound;
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_range: lo > hi");
  return lo + next_below(hi - lo + 1);
}

bool Rng::next_chance(std::uint64_t num, std::uint64_t den) {
  if (den == 0) throw std::invalid_argument("Rng::next_chance: zero denominator");
  return next_below(den) < num;
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  return out;
}

}  // namespace xswap::util
