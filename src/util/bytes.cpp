#include "util/bytes.hpp"

#include <stdexcept>

namespace xswap::util {

namespace {

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes str_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

Bytes concat(std::initializer_list<BytesView> parts) {
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) out.insert(out.end(), p.begin(), p.end());
  return out;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

Bytes be64(std::uint64_t v) {
  Bytes out(8);
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
  return out;
}

std::uint64_t read_be64(BytesView data) {
  if (data.size() < 8) throw std::invalid_argument("read_be64: short input");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[static_cast<std::size_t>(i)];
  return v;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace xswap::util
