// Two-party swaps: the classic HTLC pair.
//
// "In a simple two-party swap, each party publishes a contract that
// assumes temporary control of that party's asset" (§4.1) — the case all
// pre-paper folklore implementations handled (BIP-199, Decred atomic
// swaps). In digraph terms it is the 2-cycle with one leader, so the
// §4.6 single-leader timeout protocol applies: two contracts, two
// timeouts (the leader's arc gets the longer one), zero signatures.
// This header is convenience sugar over SwapEngine for that case.
#pragma once

#include <string>

#include "swap/engine.hpp"

namespace xswap::swap {

/// One side of a two-party swap.
struct TwoPartySide {
  std::string party;
  std::string chain;
  chain::Asset asset;
};

/// Build an engine for `a` paying `b.party`… more precisely: a.party
/// transfers a.asset on a.chain to b.party, and b.party transfers
/// b.asset on b.chain to a.party. `a.party` is the leader (generates the
/// secret); per Fig. 1's schedule its own contract carries the longer
/// timeout. Runs the §4.6 single-leader protocol by default.
SwapEngine make_two_party_swap(const TwoPartySide& a, const TwoPartySide& b,
                               EngineOptions options = [] {
                                 EngineOptions o;
                                 o.mode = ProtocolMode::kSingleLeader;
                                 return o;
                               }());

}  // namespace xswap::swap
