#include "swap/netmodel.hpp"

#include <algorithm>
#include <memory>

#include "util/rng.hpp"

namespace xswap::swap {

namespace {

/// FNV-1a 64 over a byte string — a stable cross-platform name hash
/// (std::hash<std::string> differs between standard libraries, and the
/// pinned fuzz corpus must replay identically everywhere).
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// SplitMix64 finalizer: decorrelates the combined seed words.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool NetworkModel::active() const {
  const bool has_jitter = jitter != JitterKind::kNone && max_jitter > 0;
  const bool has_drops = drop_num > 0 && max_retries > 0;
  return has_jitter || has_drops || !partitions.empty();
}

sim::Duration NetworkModel::max_extra_delay() const {
  sim::Duration worst = 0;
  if (jitter != JitterKind::kNone) worst += max_jitter;
  if (drop_num > 0) {
    worst += static_cast<sim::Duration>(max_retries) * retry_delay;
  }
  // A submission can be pushed from one partition window into the next,
  // so the worst case sums every window it could straddle.
  for (const Partition& p : partitions) {
    worst += p.until > p.from ? p.until - p.from : 0;
  }
  return worst;
}

sim::Duration NetworkModel::min_safe_delta(sim::Duration chain_hop) const {
  return 2 * (chain_hop + max_extra_delay());
}

std::vector<std::string> NetworkModel::validate() const {
  std::vector<std::string> problems;
  if (jitter == JitterKind::kGeometric) {
    if (geo_den == 0) {
      problems.push_back("geometric jitter: geo_den must be positive");
    } else if (geo_num >= geo_den) {
      problems.push_back(
          "geometric jitter: continue-probability geo_num/geo_den must be "
          "< 1 or the capped walk degenerates to max_jitter every draw");
    }
  }
  if (drop_num > 0) {
    if (drop_den == 0) {
      problems.push_back("drops: drop_den must be positive");
    } else if (drop_num > drop_den) {
      problems.push_back("drops: drop_num must be <= drop_den");
    }
    if (max_retries > 0 && retry_delay == 0) {
      problems.push_back("drops: retry_delay must be positive");
    }
  }
  for (const Partition& p : partitions) {
    if (p.until <= p.from) {
      problems.push_back("partition on '" + p.chain +
                         "': window [from, until) is empty or inverted");
    }
  }
  return problems;
}

std::function<sim::Duration(sim::Time)> NetworkModel::make_fault(
    const std::string& chain_name, std::uint64_t engine_seed) const {
  if (!active()) return nullptr;

  struct ChainFaults {
    util::Rng rng;
    NetworkModel model;  // by value: the engine's options may be a copy
    explicit ChainFaults(std::uint64_t s, const NetworkModel& m)
        : rng(s), model(m) {}
  };
  auto state = std::make_shared<ChainFaults>(
      mix64(engine_seed ^ mix64(seed) ^ fnv1a64(chain_name)), *this);

  // All three fault sources reduce to one extra-delay draw: a dropped
  // message is its client's retransmission landing later, a partitioned
  // chain is a client queueing until the window heals. The draw order
  // (drops, jitter, partitions) is fixed so the stream replays exactly.
  return [state](sim::Time now) -> sim::Duration {
    const NetworkModel& m = state->model;
    util::Rng& rng = state->rng;
    sim::Duration extra = 0;

    if (m.drop_num > 0 && m.max_retries > 0) {
      for (std::uint32_t attempt = 0; attempt < m.max_retries; ++attempt) {
        if (!rng.next_chance(m.drop_num, m.drop_den)) break;
        extra += m.retry_delay;
      }
    }

    if (m.max_jitter > 0) {
      if (m.jitter == JitterKind::kUniform) {
        extra += rng.next_below(m.max_jitter + 1);
      } else if (m.jitter == JitterKind::kGeometric) {
        sim::Duration walk = 0;
        while (walk < m.max_jitter && rng.next_chance(m.geo_num, m.geo_den)) {
          ++walk;
        }
        extra += walk;
      }
    }

    // Partitions act on the already-perturbed landing time; loop until
    // no window contains it (a heal can land inside the next window).
    bool moved = true;
    while (moved) {
      moved = false;
      for (const Partition& p : m.partitions) {
        const sim::Time t = now + extra;
        if (t >= p.from && t < p.until) {
          extra += p.until - t;
          moved = true;
        }
      }
    }
    return extra;
  };
}

}  // namespace xswap::swap
