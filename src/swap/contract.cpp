#include "swap/contract.hpp"

#include <stdexcept>

#include "chain/ledger.hpp"
#include "graph/paths.hpp"

namespace xswap::swap {

const char* to_string(Disposition d) {
  switch (d) {
    case Disposition::kActive: return "active";
    case Disposition::kClaimed: return "claimed";
    case Disposition::kRefunded: return "refunded";
  }
  return "unknown";
}

SwapContract::SwapContract(const SwapSpec& spec, graph::ArcId arc)
    : arc_(arc),
      asset_(spec.arcs.at(arc).asset),
      digraph_(spec.digraph),
      leaders_(spec.leaders),
      hashlocks_(spec.hashlocks),
      directory_(spec.directory),
      party_vertex_(spec.digraph.arc(arc).head),
      counterparty_vertex_(spec.digraph.arc(arc).tail),
      party_(spec.party_names.at(spec.digraph.arc(arc).head)),
      counterparty_(spec.party_names.at(spec.digraph.arc(arc).tail)),
      start_(spec.start_time),
      delta_(spec.delta),
      diam_(spec.diam),
      broadcast_(spec.broadcast),
      unlocked_(spec.leaders.size(), false),
      unlock_keys_(spec.leaders.size()) {
  // Longest admissible hashkey path per hashlock: D(counterparty, leader_i)
  // per the paper's path semantics. Exact when the digraph is small, the
  // always-safe diam bound otherwise.
  max_path_len_.reserve(leaders_.size());
  for (const PartyId leader : leaders_) {
    std::size_t bound = diam_;
    if (digraph_.vertex_count() <= 12) {
      const auto exact = graph::longest_path(digraph_, counterparty_vertex_, leader);
      bound = exact.value_or(0);
    }
    max_path_len_.push_back(std::min(bound, diam_));
  }
}

std::size_t SwapContract::storage_bytes() const {
  std::size_t size = 0;
  size += asset_.encode().size();
  size += digraph_.arc_count() * 8 + 8;     // the contract's copy of D
  size += leaders_.size() * 4;
  for (const auto& h : hashlocks_) size += h.size();
  size += directory_.size() * 32;
  size += party_.size() + counterparty_.size() + 8;
  size += 8 + 8 + 8;                        // start, delta, diam
  size += unlocked_.size();                 // unlocked flags
  for (const auto& key : unlock_keys_) {
    if (key.has_value()) size += key->encoded_size();
  }
  return size;
}

void SwapContract::on_publish(const chain::CallContext& ctx) {
  // Only the arc's party may publish (their asset goes into escrow).
  if (ctx.sender != party_) {
    throw std::runtime_error("swap publish: sender " + ctx.sender +
                             " is not the party " + party_);
  }
  ctx.ledger->transfer(party_, chain::contract_address(ctx.self), asset_);
}

void SwapContract::unlock(const chain::CallContext& ctx, std::size_t i,
                          const Hashkey& key) {
  if (ctx.sender != counterparty_) {  // Fig. 5 line 27
    throw std::runtime_error("unlock: only the counterparty may call");
  }
  if (i >= hashlocks_.size()) {
    throw std::runtime_error("unlock: hashlock index out of range");
  }
  if (disposition_ != Disposition::kActive) {
    throw std::runtime_error("unlock: contract already settled");
  }
  // Fig. 5 line 28: hashkey still valid?
  if (ctx.time >= hashkey_deadline(key.path_length())) {
    throw std::runtime_error("unlock: hashkey timed out");
  }
  // Fig. 5 lines 29–31: secret, path, signatures.
  if (!verify_hashkey(key, hashlocks_[i], digraph_, counterparty_vertex_,
                      leaders_[i], directory_, broadcast_)) {
    throw std::runtime_error("unlock: hashkey verification failed");
  }
  if (!unlocked_[i]) {
    unlocked_[i] = true;
    unlock_keys_[i] = key;
    if (all_unlocked()) triggered_at_ = ctx.time;
  }
}

void SwapContract::refund(const chain::CallContext& ctx) {
  if (ctx.sender != party_) {  // Fig. 5 line 36
    throw std::runtime_error("refund: only the party may call");
  }
  if (disposition_ != Disposition::kActive) {
    throw std::runtime_error("refund: contract already settled");
  }
  if (!refundable(ctx.time)) {
    throw std::runtime_error("refund: no hashlock has expired");
  }
  ctx.ledger->transfer(chain::contract_address(ctx.self), party_, asset_);
  disposition_ = Disposition::kRefunded;
}

void SwapContract::claim(const chain::CallContext& ctx) {
  if (ctx.sender != counterparty_) {  // Fig. 5 line 43
    throw std::runtime_error("claim: only the counterparty may call");
  }
  if (disposition_ != Disposition::kActive) {
    throw std::runtime_error("claim: contract already settled");
  }
  if (!all_unlocked()) {  // Fig. 5 line 44
    throw std::runtime_error("claim: not all hashlocks unlocked");
  }
  ctx.ledger->transfer(chain::contract_address(ctx.self), counterparty_, asset_);
  disposition_ = Disposition::kClaimed;
}

bool SwapContract::all_unlocked() const {
  for (const bool u : unlocked_) {
    if (!u) return false;
  }
  return true;
}

bool SwapContract::refundable(sim::Time now) const {
  if (disposition_ != Disposition::kActive) return false;
  for (std::size_t i = 0; i < hashlocks_.size(); ++i) {
    if (hashlock_expired(i, now)) return true;
  }
  return false;
}

bool SwapContract::matches_spec(const SwapSpec& spec, graph::ArcId arc) const {
  return arc_ == arc && spec.digraph == digraph_ && spec.leaders == leaders_ &&
         spec.hashlocks == hashlocks_ && spec.directory == directory_ &&
         arc < spec.arcs.size() && spec.arcs[arc].asset == asset_ &&
         spec.digraph.arc(arc).head == party_vertex_ &&
         spec.digraph.arc(arc).tail == counterparty_vertex_ &&
         spec.party_names.at(party_vertex_) == party_ &&
         spec.party_names.at(counterparty_vertex_) == counterparty_ &&
         spec.start_time == start_ && spec.delta == delta_ &&
         spec.diam == diam_ && spec.broadcast == broadcast_;
}

}  // namespace xswap::swap
