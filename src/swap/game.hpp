// The swap game of §3, made machine-checkable.
//
// A swap is a cooperative game: an outcome is a subdigraph of triggered
// arcs, coalitions may deviate, payoffs are the Fig. 3 classes. Two
// results pin down when atomic protocols exist (Theorem 3.5):
//
//  * Lemma 3.3 (combinatorial core): if D is strongly connected, then in
//    ANY outcome where a coalition does better than Deal, some conforming
//    (non-coalition) party is Underwater. So a uniform protocol leaves no
//    profitable deviation: atomicity follows.
//  * Lemma 3.4: if D is NOT strongly connected, the unreachable side X
//    can trigger everything except its arcs into Y, ending FreeRide (and
//    no individual member of X worse than Deal) — so no uniform protocol
//    can be a strong Nash equilibrium.
//
// This module verifies Lemma 3.3 exhaustively on protocol-sized digraphs
// (every coalition × every trigger set) and implements Lemma 3.4's
// explicit construction.
#pragma once

#include <optional>
#include <vector>

#include "graph/digraph.hpp"
#include "swap/outcome.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

/// A concrete deviation: who colludes, which arcs end up triggered, and
/// what the coalition gets.
struct DeviationWitness {
  std::vector<PartyId> coalition;
  std::vector<bool> triggered;  // per ArcId
  Outcome coalition_outcome = Outcome::kNoDeal;
};

/// Exhaustive Lemma 3.3 check: search every nonempty proper coalition and
/// every trigger set for an outcome where the coalition beats Deal
/// (FreeRide or Discount) while NO conforming party ends Underwater.
/// Returns such a counterexample if one exists — for strongly connected
/// digraphs it must return nullopt. Exponential (2^|V| · 2^|A|); throws
/// std::invalid_argument beyond the size guards.
std::optional<DeviationWitness> find_lemma33_counterexample(
    const graph::Digraph& d, std::size_t max_vertices = 6,
    std::size_t max_arcs = 12);

/// Lemma 3.4's construction: for a non-strongly-connected D, return the
/// coalition X (vertexes that cannot be reached from some vertex y) and
/// the outcome that triggers every arc except those leaving X into the
/// rest — X free-rides, and each member of X does at least as well as
/// Deal. Returns nullopt when D is strongly connected.
std::optional<DeviationWitness> free_ride_construction(const graph::Digraph& d);

/// True iff every member of `coalition` individually prefers (or is
/// indifferent to) its outcome under `triggered` compared with the
/// all-arcs-triggered baseline — Lemma 3.4's "the payoff for each
/// individual vertex in X is either the same or better than Deal",
/// measured in Fig. 3 preference ranks.
bool members_prefer_to_full_trigger(const graph::Digraph& d,
                                    const std::vector<PartyId>& coalition,
                                    const std::vector<bool>& triggered);

}  // namespace xswap::swap
