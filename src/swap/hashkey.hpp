// Hashkeys (§4.1): the generalized unlocking tokens of the protocol.
//
// A hashkey for hashlock h on arc (u, v) is a triple (s, p, σ): the secret
// with h = H(s), a path p = (u_0, …, u_k) in D from the arc's counterparty
// u_0 = v back to the leader u_k who generated s, and the nested signature
// chain σ = sig(… sig(s, u_k) …, u_0). The hashkey is valid until
// start + (diam(D) + |p|)·Δ — longer paths buy later deadlines, which is
// what lets a party that learns a secret always re-lock its own entering
// arcs in time (Lemma 4.8).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/ed25519.hpp"
#include "graph/digraph.hpp"
#include "swap/spec.hpp"
#include "util/bytes.hpp"

namespace xswap::swap {

/// A hashkey (s, p, σ). `sigs[i]` is the signature by `path[i]`; the
/// innermost signature `sigs.back()` is the leader's over the secret, and
/// each `sigs[i]` signs the bytes of `sigs[i+1]`.
struct Hashkey {
  Secret secret;
  std::vector<PartyId> path;            // path[0] = counterparty … path.back() = leader
  std::vector<crypto::Signature> sigs;  // parallel to path

  /// |p|: the number of arcs in the path (vertex count minus one).
  std::size_t path_length() const { return path.empty() ? 0 : path.size() - 1; }

  /// Wire size in bytes of the canonical encoding (swap/codec.hpp):
  /// secret + vertex ids + signature chain. This is the per-call payload
  /// the communication bound O(|A|·|L|) measures.
  std::size_t encoded_size() const;

  bool operator==(const Hashkey&) const = default;
};

/// The leader's initial hashkey: degenerate path (v_i), σ = sig(s, v_i).
/// `keys` must be the leader's key pair.
Hashkey make_leader_hashkey(const Secret& secret, PartyId leader,
                            const crypto::KeyPair& keys);

/// Extend a hashkey one hop: path v + p, signature sig(σ, v). The caller
/// must not already appear in `base.path` (use truncate_hashkey then).
Hashkey extend_hashkey(const Hashkey& base, PartyId v,
                       const crypto::KeyPair& keys);

/// If `v` appears in `base.path`, return the valid sub-hashkey whose path
/// starts at v (the inner signatures are already in place). Returns false
/// when v is not on the path.
bool truncate_hashkey(const Hashkey& base, PartyId v, Hashkey* out);

/// Full verification as performed by the swap contract's unlock() (Fig. 5
/// lines 28–31, minus the time check which needs chain time):
///  * H(s) equals `hashlock`;
///  * `path` is a path in `digraph` (paper §2.1 definition) from
///    `counterparty` to `leader`;
///  * the nested signature chain verifies against the party directory.
///
/// With `allow_virtual_leader_arc` (the §4.5 broadcast optimization), the
/// two-vertex path (counterparty, leader) is accepted even when D lacks
/// that arc — "logically, we create an arc from each follower directly to
/// that leader". The signature chain is still fully verified.
bool verify_hashkey(const Hashkey& key, const Hashlock& hashlock,
                    const graph::Digraph& digraph, PartyId counterparty,
                    PartyId leader, const PartyDirectory& directory,
                    bool allow_virtual_leader_arc = false);

}  // namespace xswap::swap
