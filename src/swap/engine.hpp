// The swap test-bench: sets up blockchains, parties, and the agreed spec,
// runs the protocol to completion in simulated time, and reports outcomes
// and resource usage.
//
// One engine runs ONE cleared swap. The top of the public API is the
// Scenario layer (swap/scenario.hpp): a fluent builder that clears a
// whole offer batch and runs every component swap. Use SwapEngine
// directly only when you already hold a ClearedSwap (or need the
// low-level knobs below). All randomness (keys, secrets) derives from
// the configured seed, so every run is exactly reproducible.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chain/ledger.hpp"
#include "persist/durable_ledger.hpp"
#include "sim/simulator.hpp"
#include "swap/clearing.hpp"
#include "swap/netmodel.hpp"
#include "swap/outcome.hpp"
#include "swap/party.hpp"
#include "swap/spec.hpp"
#include "swap/strategy.hpp"

namespace xswap::swap {

/// Engine configuration knobs.
struct EngineOptions {
  sim::Duration delta = 4;        // Δ in ticks; must be ≥ 2 · hop latency
  sim::Duration seal_period = 1;  // block interval of every chain
  ProtocolMode mode = ProtocolMode::kGeneral;
  bool broadcast = false;         // §4.5 shared broadcast chain
  std::uint64_t seed = 20180101;  // keys + secrets derivation

  /// Extra submission latency on every chain (congestion). One protocol
  /// hop then costs seal_period + chain_submit_delay, and Δ must cover
  /// two hops.
  sim::Duration chain_submit_delay = 0;

  /// Allow Δ below the safe bound — deliberately violating the paper's
  /// timing assumption so the ablation benches can show what breaks
  /// (liveness first, then safety). Never set this in real use.
  bool allow_unsafe_timing = false;

  /// Collect a human-readable event trace on every chain (see
  /// chain/trace.hpp; read back via ledger(name).trace()). Off by
  /// default: the sealing hot path then does zero trace formatting.
  bool trace = false;

  /// Striped per-chain-name locks shared across concurrently running
  /// components (see chain::ChainLockRegistry). nullptr — the default —
  /// means chains are private to this engine and seals take no lock.
  /// Fleet runs set this (typically to ChainLockRegistry::global()) so
  /// components modeling the same chain keep per-ledger serialization
  /// while disjoint chains proceed in parallel.
  chain::ChainLockRegistry* chain_locks = nullptr;

  /// Seeded network faults (latency jitter, client-retried drops, timed
  /// partitions — see swap/netmodel.hpp) injected into every chain's
  /// submission path. Inactive by default. When active, Δ must cover
  /// the model's worst case on top of the seal/submit hop:
  ///   delta ≥ 2·(seal_period + chain_submit_delay + max_extra_delay())
  /// (rejected otherwise, unless allow_unsafe_timing) — so perturbed
  /// runs stay inside the paper's §2.2 timing assumption and Theorems
  /// 4.7/4.9 remain in force.
  NetworkModel net;

  /// Journal every chain into `<durable_dir>/<chain>/` through the
  /// persist layer (segment store + group commit riding seal_batch).
  /// Empty — the default — keeps ledgers in-memory only. Journaling is
  /// purely observational (headers + transactions already produced by
  /// the run), so traces and reports are bit-identical with it on or
  /// off; the golden determinism gate holds either way.
  std::string durable_dir;

  /// Fsync policy / segment size / group-commit cadence for
  /// durable_dir (ignored when durable_dir is empty).
  persist::DurabilityOptions durability;
};

/// Result of one protocol run.
///
/// Invariants the test suite asserts against every report. The starred
/// ones have machine-checkable audits in swap/invariants.hpp
/// (check_guarantees / check_all); the rest are asserted directly by
/// individual tests:
///  * (*) whatever the adversary does, `no_conforming_underwater` stays
///    true (Theorem 4.9) — a violation is a protocol bug, not a test
///    artifact;
///  * (*) every trigger lands by spec().final_deadline() — that is,
///    `last_trigger_time` ≤ start + 2·diam·Δ (Theorem 4.7) — and with
///    everyone conforming, `all_triggered` is true and every entry of
///    `outcomes` is Outcome::kDeal (atomicity);
///  * (*) no chain mints or destroys value, and every ledger's hash
///    links and Merkle roots check out;
///  * an arc can be `triggered` or `refunded` but never both, and either
///    implies `contract_published` for that arc;
///  * every nonzero `settled_at` is ≤ `finished_at`;
///  * resource counters only grow with digraph size; total storage obeys
///    Theorem 4.10's O(|A|^2) bound (bench/bench_space_vs_arcs.cpp
///    measures the curve).
struct SwapReport {
  // Per-arc results (indexed by ArcId).
  std::vector<bool> contract_published;  // a spec-matching contract appeared
  std::vector<bool> triggered;           // asset delivered to counterparty
  std::vector<bool> refunded;            // asset returned to party
  std::vector<sim::Time> settled_at;     // claim/refund execution time (0 = never)

  // Per-party outcomes (§3 classes).
  std::vector<Outcome> outcomes;

  bool all_triggered = false;            // uniformity: everyone got Deal
  sim::Time last_trigger_time = 0;       // when the final claim landed
  sim::Time finished_at = 0;             // simulation end time

  // Resource accounting (Theorem 4.10 and the communication bound).
  std::size_t total_storage_bytes = 0;   // across every chain
  std::size_t total_call_payload_bytes = 0;
  std::size_t hashkey_bytes_submitted = 0;
  std::size_t sign_operations = 0;
  std::size_t total_transactions = 0;
  std::size_t failed_transactions = 0;

  /// True iff every party with Strategy::conforming() ended acceptably
  /// (Theorem 4.9's invariant; filled against the engine's strategies).
  bool no_conforming_underwater = true;
};

/// Builds and runs one atomic swap.
class SwapEngine {
 public:
  /// Primary constructor: run the swap the clearing layer produced
  /// (clear_offers / decompose_offers / ScenarioBuilder). Throws
  /// std::invalid_argument when the resulting spec fails
  /// validate_spec() or options are inconsistent (e.g. delta too small
  /// for the seal period, single-leader mode with several leaders).
  explicit SwapEngine(ClearedSwap cleared, EngineOptions options = {});

  /// DEPRECATED thin wrapper over the ClearedSwap constructor — kept so
  /// pre-Scenario callers keep compiling. `arcs` must parallel
  /// `digraph.arcs()`. New code should clear offers (or assemble a
  /// ClearedSwap) instead of passing loose spec pieces.
  SwapEngine(graph::Digraph digraph, std::vector<std::string> party_names,
             std::vector<PartyId> leaders, std::vector<ArcTerms> arcs,
             EngineOptions options);

  /// DEPRECATED thin wrapper: parties "P0"…, one chain and one
  /// 100-token asset per arc, leaders as given (equivalent to
  /// cleared_for_digraph in swap/clearing.hpp). Prefer
  /// ScenarioBuilder().offers(offers_for_digraph(d)).
  SwapEngine(const graph::Digraph& digraph, std::vector<PartyId> leaders,
             EngineOptions options = {});

  /// Override a party's behaviour (default: honest). Call before run().
  void set_strategy(PartyId v, Strategy strategy);

  /// Replace the seed-derived leader secrets (and recompute hashlocks)
  /// before running. Used by recurrent swaps (§5), where round k's
  /// secrets come from per-leader hash chains so that revealing round
  /// k's secret distributes round k+1's hashlock. One 32-byte secret per
  /// leader; call before run().
  void override_leader_secrets(const std::vector<Secret>& secrets);

  /// Run the protocol to quiescence and report.
  SwapReport run();

  const SwapSpec& spec() const { return spec_; }
  sim::Simulator& simulator() { return sim_; }

  /// Per-chain view, for tests that inspect chain internals.
  const chain::Ledger& ledger(const std::string& chain_name) const;

  /// Mutable per-chain access for fault injection (e.g. slowing one
  /// chain's submissions below the Δ contract). Test/ablation use only —
  /// the engine does not re-validate timing after manual changes.
  chain::Ledger& ledger_mut(const std::string& chain_name) {
    return *ledgers_.at(chain_name);
  }

  /// Names of every chain the engine created (arc chains + broadcast).
  std::vector<std::string> chain_names() const;

  /// The strategy configured for party `v`.
  const Strategy& strategy(PartyId v) const { return strategies_.at(v); }

 private:
  void build(std::vector<ArcTerms> arcs);
  void attach_journal(chain::Ledger& ledger);
  sim::Time end_time() const;
  SwapReport harvest();

  EngineOptions options_;
  SwapSpec spec_;
  sim::Simulator sim_;
  // Journals are declared before the ledgers they back: members destroy
  // in reverse order, so every ledger (holding a raw BlockStore
  // pointer) goes away before its journal.
  std::vector<std::unique_ptr<persist::LedgerJournal>> journals_;
  std::map<std::string, std::unique_ptr<chain::Ledger>> ledgers_;
  std::vector<Strategy> strategies_;
  std::vector<Secret> leader_secrets_;      // parallel to spec_.leaders
  std::vector<crypto::KeyPair> keypairs_;   // per party, seed-derived
  std::vector<std::unique_ptr<Party>> parties_;
  std::map<int, std::unique_ptr<CoalitionPool>> coalition_pools_;
  ProtocolCounters counters_;
  bool ran_ = false;
};

}  // namespace xswap::swap
