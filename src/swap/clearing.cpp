#include "swap/clearing.hpp"

#include <map>
#include <set>
#include <stdexcept>

#include "graph/fvs.hpp"
#include "graph/scc.hpp"

namespace xswap::swap {

std::string offer_key(const Offer& offer) {
  const chain::Asset& a = offer.asset;
  std::string key;
  key.reserve(offer.from.size() + offer.to.size() + offer.chain.size() +
              a.symbol.size() + a.unique_id.size() + 32);
  key += offer.from;
  key += '\x1f';
  key += offer.to;
  key += '\x1f';
  key += offer.chain;
  key += '\x1f';
  key += a.symbol;
  key += '\x1f';
  key += std::to_string(a.amount);
  key += '\x1f';
  key += a.fungible ? '1' : '0';
  key += '\x1f';
  key += a.unique_id;
  return key;
}

namespace {

// Reject exact duplicates deterministically (see clearing.hpp).
void check_no_duplicates(const std::vector<Offer>& offers, const char* fn) {
  std::set<std::string> seen;
  for (const Offer& offer : offers) {
    if (!seen.insert(offer_key(offer)).second) {
      throw std::invalid_argument(
          std::string(fn) + ": duplicate offer " + offer.from + " -> " +
          offer.to + " on " + offer.chain + " (" + offer.asset.to_string() +
          "); resubmit on a distinct chain or with distinct terms to make "
          "parallel arcs");
    }
  }
}

}  // namespace

std::optional<ClearedSwap> clear_offers(const std::vector<Offer>& offers) {
  return clear_offers(offers, graph::FvsOptions{});
}

std::optional<ClearedSwap> clear_offers(const std::vector<Offer>& offers,
                                        const graph::FvsOptions& fvs) {
  check_no_duplicates(offers, "clear_offers");
  if (offers.empty()) return std::nullopt;

  ClearedSwap out;
  std::map<std::string, PartyId> ids;
  const auto intern = [&](const std::string& name) -> PartyId {
    if (name.empty()) throw std::invalid_argument("clear_offers: empty party name");
    const auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const PartyId id = out.digraph.add_vertex();
    ids.emplace(name, id);
    out.party_names.push_back(name);
    return id;
  };

  for (const Offer& offer : offers) {
    if (offer.from == offer.to) {
      throw std::invalid_argument("clear_offers: self-transfer offer");
    }
    if (offer.chain.empty()) {
      throw std::invalid_argument("clear_offers: offer without a chain");
    }
    const PartyId head = intern(offer.from);
    const PartyId tail = intern(offer.to);
    out.digraph.add_arc(head, tail);
    out.arcs.push_back(ArcTerms{offer.chain, offer.asset});
  }

  if (!graph::is_strongly_connected(out.digraph)) return std::nullopt;

  // Theorem 4.12: any FVS is a valid leader set. The layered engine is
  // exact (and lexicographically minimal, matching the historical subset
  // enumeration) whenever the kernel fits under fvs.max_exact_vertices.
  out.leaders = graph::find_feedback_vertex_set(out.digraph, fvs).vertices;
  return out;
}

Decomposition decompose_offers(const std::vector<Offer>& offers) {
  return decompose_offers(offers, graph::FvsOptions{});
}

Decomposition decompose_offers(const std::vector<Offer>& offers,
                               const graph::FvsOptions& fvs) {
  check_no_duplicates(offers, "decompose_offers");
  Decomposition result;
  if (offers.empty()) return result;

  // Build the full offer digraph once to compute components.
  std::map<std::string, PartyId> ids;
  std::vector<std::string> names;
  graph::Digraph full;
  const auto intern = [&](const std::string& name) -> PartyId {
    if (name.empty()) {
      throw std::invalid_argument("decompose_offers: empty party name");
    }
    const auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const PartyId id = full.add_vertex();
    ids.emplace(name, id);
    names.push_back(name);
    return id;
  };
  std::vector<std::pair<PartyId, PartyId>> endpoints;
  for (const Offer& offer : offers) {
    if (offer.from == offer.to) {
      throw std::invalid_argument("decompose_offers: self-transfer offer");
    }
    if (offer.chain.empty()) {
      throw std::invalid_argument("decompose_offers: offer without a chain");
    }
    const PartyId head = intern(offer.from);
    const PartyId tail = intern(offer.to);
    full.add_arc(head, tail);
    endpoints.emplace_back(head, tail);
  }

  const graph::SccResult scc = graph::strongly_connected_components(full);

  // Group intra-component offers per component; cross-component offers
  // are unmatched.
  std::map<std::size_t, std::vector<std::size_t>> by_component;  // -> offer idx
  for (std::size_t i = 0; i < offers.size(); ++i) {
    const auto [head, tail] = endpoints[i];
    if (scc.component[head] == scc.component[tail]) {
      by_component[scc.component[head]].push_back(i);
    } else {
      result.unmatched.push_back(offers[i]);
    }
  }

  for (const auto& [component, offer_indices] : by_component) {
    std::vector<Offer> subset;
    subset.reserve(offer_indices.size());
    for (const std::size_t i : offer_indices) subset.push_back(offers[i]);
    // Within one SCC the induced sub-digraph of *these* offers may still
    // fall apart (the component's connectivity could rely on arcs we set
    // aside — impossible here, since SCC membership is computed on the
    // full offer digraph and cross-component arcs never join an SCC).
    auto cleared = clear_offers(subset, fvs);
    if (cleared.has_value()) {
      result.swaps.push_back(std::move(*cleared));
    } else {
      for (const std::size_t i : offer_indices) {
        result.unmatched.push_back(offers[i]);
      }
    }
  }
  return result;
}

namespace {

// Append-style concatenation: GCC <= 12's -Wrestrict has known false
// positives on the optimized `const char* + std::string&&` path (GCC
// PR 105329), and src/ builds with full -Werror.
std::string numbered(const char* prefix, std::uint64_t n) {
  std::string s = prefix;
  s += std::to_string(n);
  return s;
}

}  // namespace

std::vector<Offer> offers_for_digraph(const graph::Digraph& digraph) {
  std::vector<Offer> offers;
  offers.reserve(digraph.arc_count());
  for (graph::ArcId a = 0; a < digraph.arc_count(); ++a) {
    const auto& arc = digraph.arc(a);
    offers.push_back(Offer{numbered("P", arc.head), numbered("P", arc.tail),
                           numbered("chain-", a),
                           chain::Asset::coins(numbered("TOK", a), 100)});
  }
  return offers;
}

ClearedSwap cleared_for_digraph(graph::Digraph digraph,
                                std::vector<PartyId> leaders) {
  ClearedSwap out;
  out.party_names.reserve(digraph.vertex_count());
  for (PartyId v = 0; v < digraph.vertex_count(); ++v) {
    out.party_names.push_back(numbered("P", v));
  }
  out.arcs.reserve(digraph.arc_count());
  for (graph::ArcId a = 0; a < digraph.arc_count(); ++a) {
    out.arcs.push_back(ArcTerms{numbered("chain-", a),
                                chain::Asset::coins(numbered("TOK", a), 100)});
  }
  out.digraph = std::move(digraph);
  out.leaders = std::move(leaders);
  return out;
}

}  // namespace xswap::swap
