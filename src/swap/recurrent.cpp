#include "swap/recurrent.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace xswap::swap {

SecretChain::SecretChain(Secret tail_seed, std::size_t rounds) {
  if (tail_seed.size() != 32) {
    throw std::invalid_argument("SecretChain: seed must be 32 bytes");
  }
  if (rounds == 0) {
    throw std::invalid_argument("SecretChain: need at least one round");
  }
  // secrets_[rounds] = seed; walk the hash chain down to the commitment.
  secrets_.assign(rounds + 1, util::Bytes{});
  secrets_[rounds] = std::move(tail_seed);
  for (std::size_t k = rounds; k-- > 0;) {
    secrets_[k] = crypto::sha256_bytes(secrets_[k + 1]);
  }
}

bool SecretChain::verify_link(const Hashlock& commitment, const Secret& revealed,
                              std::size_t k) {
  if (k == 0) return false;
  util::Bytes acc = revealed;
  for (std::size_t i = 0; i < k; ++i) acc = crypto::sha256_bytes(acc);
  return acc == commitment;
}

RecurrentSwapRunner::RecurrentSwapRunner(ClearedSwap cleared,
                                         std::size_t rounds,
                                         EngineOptions options)
    : cleared_(std::move(cleared)), rounds_(rounds), options_(options) {
  if (rounds_ == 0) {
    throw std::invalid_argument("RecurrentSwapRunner: need at least one round");
  }
  util::Rng rng(options_.seed ^ 0x5eedc4a1f00dULL);
  for (std::size_t i = 0; i < cleared_.leaders.size(); ++i) {
    chains_.emplace_back(rng.next_bytes(32), rounds_);
  }
}

RecurrentSwapRunner::RecurrentSwapRunner(graph::Digraph digraph,
                                         std::vector<PartyId> leaders,
                                         std::size_t rounds,
                                         EngineOptions options)
    : RecurrentSwapRunner(
          cleared_for_digraph(std::move(digraph), std::move(leaders)), rounds,
          options) {}

std::vector<Hashlock> RecurrentSwapRunner::commitments() const {
  std::vector<Hashlock> out;
  out.reserve(chains_.size());
  for (const SecretChain& chain : chains_) out.push_back(chain.commitment());
  return out;
}

std::vector<RecurrentRoundResult> RecurrentSwapRunner::run_all() {
  std::vector<RecurrentRoundResult> results;
  for (std::size_t k = 1; k <= rounds_; ++k) {
    EngineOptions options = options_;
    options.seed = options_.seed + k;  // fresh keys per round
    SwapEngine engine(cleared_, options);

    std::vector<Secret> secrets;
    secrets.reserve(chains_.size());
    for (const SecretChain& chain : chains_) {
      secrets.push_back(chain.secret(k));
    }
    engine.override_leader_secrets(secrets);

    RecurrentRoundResult round;
    round.report = engine.run();
    // Audit: each leader's round-k hashlock must be the value revealed in
    // round k-1 (equivalently: hashing the round-k secret k times yields
    // the chain commitment).
    round.chain_links_verified = true;
    for (std::size_t i = 0; i < chains_.size(); ++i) {
      if (!SecretChain::verify_link(chains_[i].commitment(), secrets[i], k) ||
          engine.spec().hashlocks[i] != chains_[i].hashlock(k)) {
        round.chain_links_verified = false;
      }
    }
    results.push_back(std::move(round));
  }
  return results;
}

}  // namespace xswap::swap
