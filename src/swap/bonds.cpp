#include "swap/bonds.hpp"

#include <stdexcept>

#include "swap/engine.hpp"

namespace xswap::swap {

BondPool::BondPool(const SwapSpec& spec, chain::Asset bond,
                   chain::Address arbiter)
    : party_names_(spec.party_names),
      bond_(std::move(bond)),
      arbiter_(std::move(arbiter)),
      deposited_(spec.party_names.size(), false) {
  if (!bond_.fungible) {
    throw std::invalid_argument("BondPool: bonds must be fungible");
  }
}

std::size_t BondPool::storage_bytes() const {
  std::size_t size = bond_.encode().size() + arbiter_.size() + 1;
  for (const auto& name : party_names_) size += name.size();
  size += deposited_.size();
  return size;
}

std::size_t BondPool::deposit_count() const {
  std::size_t n = 0;
  for (const bool d : deposited_) {
    if (d) ++n;
  }
  return n;
}

void BondPool::deposit(const chain::CallContext& ctx) {
  if (settled_) throw std::runtime_error("bond deposit: pool already settled");
  for (PartyId v = 0; v < party_names_.size(); ++v) {
    if (party_names_[v] == ctx.sender) {
      if (deposited_[v]) {
        throw std::runtime_error("bond deposit: already deposited");
      }
      ctx.ledger->transfer(ctx.sender, chain::contract_address(ctx.self), bond_);
      deposited_[v] = true;
      return;
    }
  }
  throw std::runtime_error("bond deposit: " + ctx.sender +
                           " is not a swap party");
}

void BondPool::settle(const chain::CallContext& ctx,
                      const std::vector<bool>& at_fault) {
  if (ctx.sender != arbiter_) {
    throw std::runtime_error("bond settle: only the arbiter may settle");
  }
  if (settled_) throw std::runtime_error("bond settle: already settled");
  if (at_fault.size() != party_names_.size()) {
    throw std::runtime_error("bond settle: fault vector size mismatch");
  }

  std::vector<PartyId> honest, faulty;
  for (PartyId v = 0; v < party_names_.size(); ++v) {
    if (!deposited_[v]) continue;
    (at_fault[v] ? faulty : honest).push_back(v);
  }

  // Refund honest deposits.
  for (const PartyId v : honest) {
    ctx.ledger->transfer(chain::contract_address(ctx.self), party_names_[v],
                         bond_);
  }
  // Split slashed bonds among honest depositors; any indivisible
  // remainder (or the whole slash when everyone misbehaved) is burned —
  // it stays at the contract address forever.
  if (!faulty.empty() && !honest.empty()) {
    const std::uint64_t total_slash = bond_.amount * faulty.size();
    const std::uint64_t share = total_slash / honest.size();
    if (share > 0) {
      for (const PartyId v : honest) {
        ctx.ledger->transfer(chain::contract_address(ctx.self), party_names_[v],
                             chain::Asset::coins(bond_.symbol, share));
      }
    }
  }
  settled_ = true;
}

FaultReport settle_bonds(const SwapEngine& engine, chain::Ledger& bond_ledger,
                         chain::ContractId pool_id,
                         const chain::Address& arbiter) {
  FaultReport report = analyze_faults(engine);
  const std::vector<bool> at_fault = report.at_fault;
  bond_ledger.submit_call(
      arbiter, pool_id, "settle", at_fault.size(),
      [at_fault](chain::Contract& c, const chain::CallContext& ctx) {
        dynamic_cast<BondPool&>(c).settle(ctx, at_fault);
      });
  return report;
}

}  // namespace xswap::swap
