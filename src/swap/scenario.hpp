// The Scenario layer: the top of the public API (§4.2's full market
// flow — offers → digraph → leader FVS → spec → run — as one surface).
//
// A ScenarioBuilder collects an offer book plus engine knobs and
// per-party strategy overrides, clears the offers internally
// (decompose_offers splits the book into independently runnable swaps,
// one per non-trivial SCC), and yields a Scenario. Scenario::run()
// executes every component swap and returns a BatchReport: the per-swap
// SwapReports plus aggregated outcome/resource/latency totals and the
// unmatched-offer list.
//
//   const swap::BatchReport r =
//       swap::ScenarioBuilder()
//           .offer("Alice", "Bob", "altchain", chain::Asset::coins("ALT", 1000))
//           .offer("Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 3))
//           .offer("Carol", "Alice", "dmv", chain::Asset::unique("TITLE", "vin"))
//           .strategy("Carol", crash_strategy)
//           .delta(6)
//           .seed(42)
//           .build()
//           .run();
//
// Reproducibility: component i runs with seed `options.seed + i`
// (components are ordered deterministically by decompose_offers), so a
// single-component scenario reproduces a direct
// SwapEngine(cleared, options) run bit-for-bit.
//
// Execution policy is pluggable (swap/executor.hpp): components are
// share-nothing, so `.jobs(n)` / run(Executor&) / run(RunOptions) can
// fan them out over a thread pool — or a persistent WorkStealingPool
// shared across scenarios (RunOptions::pool / ScenarioBuilder::pool).
// The aggregated report stays field-identical to the serial run modulo
// the wall-clock fields.
//
// Fleets: run_fleet() takes a QUEUE of scenarios and schedules every
// (scenario, component) pair on one executor. Under FleetSchedule::
// kStealing the index spaces are flattened, so a straggling book's tail
// overlaps the next book's components (idle lanes backfill); kFifo runs
// the books strictly one after another on the same executor. Either
// way each book's BatchReport keeps its deterministic fields exactly as
// a standalone run would produce them.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "swap/clearing.hpp"
#include "swap/engine.hpp"
#include "swap/executor.hpp"
#include "swap/strategy.hpp"

namespace xswap::swap {

/// Result of running a whole offer batch. Invariants the test suite
/// asserts (tests/swap_scenario_test.cpp): `no_conforming_underwater`
/// must hold across EVERY swap in the batch (Theorem 4.9 is per swap,
/// so the conjunction is the batch-level safety statement); every total
/// is the exact sum of its per-swap counterparts; `last_trigger_time`
/// and `finished_at` are maxima over the component runs (components are
/// independent, so batch latency is the slowest component's).
struct BatchReport {
  std::vector<SwapReport> swaps;  // parallel to Scenario components
  std::vector<Offer> unmatched;   // offers no atomic swap could honour

  // Outcome aggregation (§3 classes, across all parties of all swaps).
  std::size_t swaps_fully_triggered = 0;       // components with all_triggered
  bool all_triggered = true;                   // AND over components
  bool no_conforming_underwater = true;        // AND over components
  std::map<Outcome, std::size_t> outcome_counts;

  // Latency (simulated ticks; maxima — components run independently).
  sim::Time last_trigger_time = 0;
  sim::Time finished_at = 0;

  // Resource totals (sums over components).
  std::size_t total_storage_bytes = 0;
  std::size_t total_call_payload_bytes = 0;
  std::size_t hashkey_bytes_submitted = 0;
  std::size_t sign_operations = 0;
  std::size_t total_transactions = 0;
  std::size_t failed_transactions = 0;

  // Components not run because of RunOptions::max_components (0 unless
  // the cap truncated the batch). Deterministic, unlike the wall-clock
  // fields below.
  std::size_t components_skipped = 0;

  // Wall-clock timing of the run (real time, not simulated ticks) —
  // the ONLY fields that legitimately differ between executors; every
  // other field is executor-independent because component i always runs
  // with seed `options.seed + i` and aggregation is in component order.
  double wall_ms = 0.0;
  double components_per_sec = 0.0;
};

/// How run_fleet schedules the component swaps of several books on one
/// executor.
enum class FleetSchedule {
  /// Books run strictly one after another (each book's components may
  /// still fan out); a straggler in book k delays book k+1 entirely.
  kFifo,
  /// All (scenario, component) pairs are flattened into one index space
  /// so idle lanes backfill with the next book's components while a
  /// straggler ring finishes. Requires a concurrent executor to pay
  /// off; deterministic fields are unaffected either way.
  kStealing,
};

/// Knobs for run_fleet.
struct FleetOptions {
  /// Borrowed execution policy; nullptr means SerialExecutor.
  Executor* executor = nullptr;
  /// Owning alternative (typically ExecutorRegistry::shared_pool);
  /// takes precedence over `executor` when set.
  std::shared_ptr<Executor> pool;
  FleetSchedule schedule = FleetSchedule::kStealing;
};

/// Result of running a scenario queue: one BatchReport per scenario (in
/// queue order, deterministic fields identical to standalone runs) plus
/// fleet-level wall clock. Under kStealing the per-batch wall-clock
/// fields are fleet-level too (tails overlap, so "this book's wall
/// time" has no standalone meaning).
struct FleetReport {
  std::vector<BatchReport> batches;
  std::size_t total_components = 0;
  double wall_ms = 0.0;
  double components_per_sec = 0.0;
};

class Scenario;

/// Fold per-swap reports (in component order) into a BatchReport: the
/// one aggregation rule shared by Scenario::run, run_fleet, and the
/// streaming serve::ClearingService (which aggregates one component at a
/// time). `skipped` lands in components_skipped; the wall-clock fields
/// derive from `wall_ms`.
BatchReport aggregate_batch(std::vector<SwapReport> reports,
                            std::vector<Offer> unmatched, std::size_t skipped,
                            double wall_ms);

/// Run every scenario in `fleet` (consuming their run tokens) and
/// aggregate each into its BatchReport. See FleetSchedule for the two
/// schedules. Throws std::logic_error if any scenario already ran
/// (before running anything); a component exception releases every
/// fleet scenario's engines and rethrows the first error.
FleetReport run_fleet(std::vector<Scenario>& fleet,
                      const FleetOptions& options);
FleetReport run_fleet(std::vector<Scenario>& fleet);

/// A cleared, ready-to-run offer batch: one SwapEngine per component
/// swap (constructed eagerly, so spec problems surface at build()), the
/// unmatched offers, and accessors for pre-run tweaks (set_strategy on
/// an engine) and post-run inspection (ledgers, timelines).
class Scenario {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t swap_count() const { return engines_.size(); }
  const ClearedSwap& cleared(std::size_t i) const { return cleared_.at(i); }
  SwapEngine& engine(std::size_t i) { return *engines_.at(i); }
  const SwapEngine& engine(std::size_t i) const { return *engines_.at(i); }
  const std::vector<Offer>& unmatched() const { return unmatched_; }

  /// Index of the component swap the named party takes part in, or
  /// `npos` when the party only appears in unmatched offers (or not at
  /// all). Party names are unique across components — a party cannot be
  /// in two SCCs at once.
  std::size_t component_of(const std::string& party) const;

  /// Post-build strategy override by name, for deviations pinned to
  /// spec-dependent times (deadlines are only known once the spec
  /// exists). Call before run(); throws std::invalid_argument when the
  /// party is in no component swap.
  void set_strategy(const std::string& party, Strategy strategy);

  /// Run every component swap to quiescence (each in its own simulated
  /// timeline) and aggregate. Callable once across ALL overloads; throws
  /// std::logic_error on a second call. This overload uses the
  /// scenario's default execution policy: ScenarioBuilder::pool if set,
  /// else ScenarioBuilder::jobs(n) > 1 selects a per-run
  /// ThreadPoolExecutor(n), otherwise components run serially.
  BatchReport run();

  /// Run with an explicit execution policy (see swap/executor.hpp).
  /// Component engines are share-nothing, and aggregation happens in
  /// component order after every engine finishes, so the report is
  /// field-identical across executors modulo the wall-clock fields.
  BatchReport run(Executor& executor);

  /// Full-control overload: executor choice, per-component progress
  /// callback, max_components cap. Throws std::invalid_argument on
  /// invalid options (e.g. max_components == 0).
  ///
  /// Exception safety: option validation happens before the run is
  /// consumed (an invalid-options throw leaves the scenario runnable).
  /// Once execution starts, a throwing component or progress callback
  /// propagates the FIRST exception after every started engine
  /// finished; the scenario is then spent (a second run() still throws
  /// std::logic_error) and every per-component engine — including
  /// partially accumulated ledgers and simulators of components that
  /// did finish — is released immediately instead of lingering until
  /// the Scenario dies (engine() then throws std::out_of_range).
  BatchReport run(const RunOptions& options);

 private:
  friend class ScenarioBuilder;
  friend FleetReport run_fleet(std::vector<Scenario>& fleet,
                               const FleetOptions& options);
  Scenario() = default;

  /// Consume the run token (throws std::logic_error when spent) and
  /// resolve the effective component count against `max_components`.
  std::size_t begin_run(const std::optional<std::size_t>& max_components,
                        std::size_t* skipped);
  /// Fold per-component reports (in component order) into batch totals.
  BatchReport aggregate(std::vector<SwapReport> reports, std::size_t skipped,
                        double wall_ms) const;
  /// Drop every engine (failed-run cleanup: release partial results).
  void release_engines() { engines_.clear(); }

  std::vector<ClearedSwap> cleared_;
  std::vector<std::unique_ptr<SwapEngine>> engines_;  // parallel to cleared_
  std::vector<Offer> unmatched_;
  std::size_t default_jobs_ = 1;           // ScenarioBuilder::jobs
  std::shared_ptr<Executor> default_pool_;  // ScenarioBuilder::pool
  bool ran_ = false;
};

/// Fluent builder: the intended entry point for examples, benches, the
/// CLI, and library users. Collects offers and knobs, then build()
/// clears the batch and constructs every engine (throwing
/// std::invalid_argument on empty books, malformed or duplicate offers,
/// strategy overrides naming parties absent from the book, and specs or
/// options SwapEngine rejects).
class ScenarioBuilder {
 public:
  /// Add one offer: `from` transfers `asset` to `to` on `chain`.
  ScenarioBuilder& offer(std::string from, std::string to, std::string chain,
                         chain::Asset asset);
  ScenarioBuilder& offer(Offer o);
  ScenarioBuilder& offers(std::vector<Offer> many);

  /// Replace all engine knobs at once (delta/seed/... below tweak the
  /// same stored options afterwards).
  ScenarioBuilder& options(EngineOptions o);
  ScenarioBuilder& delta(sim::Duration d);
  ScenarioBuilder& seed(std::uint64_t s);
  ScenarioBuilder& broadcast(bool on = true);
  ScenarioBuilder& mode(ProtocolMode m);

  /// Seeded network faults injected into every component's chains
  /// (EngineOptions::net; see swap/netmodel.hpp). build() rejects a
  /// model the engine's Δ validation cannot accept.
  ScenarioBuilder& net(NetworkModel model);

  /// Collect per-chain event traces on every component's ledgers
  /// (EngineOptions::trace; read back via engine(i).ledger(name).trace()).
  /// Off by default — the sealing hot path then formats nothing.
  ScenarioBuilder& trace(bool on = true);

  /// Leader-election tuning for clearing (graph::FvsOptions — the
  /// exact/approximate kernel threshold and branch-and-bound budget).
  /// The default options keep books with small kernels bit-for-bit on
  /// the historical exact leader sets.
  ScenarioBuilder& fvs(const graph::FvsOptions& options);

  /// Default execution policy for Scenario::run(): n > 1 runs component
  /// swaps on a ThreadPoolExecutor(n), n == 1 (the default) keeps the
  /// serial loop. The report is identical either way modulo wall-clock
  /// fields. build() throws std::invalid_argument on n == 0.
  ScenarioBuilder& jobs(std::size_t n);

  /// Default OWNED execution policy for Scenario::run() — typically a
  /// persistent pool from ExecutorRegistry::shared_pool(n), reused
  /// across scenarios so batch-of-batches workloads stop paying thread
  /// start/join per book. Takes precedence over jobs(); nullptr (the
  /// default) falls back to the jobs() policy.
  ScenarioBuilder& pool(std::shared_ptr<Executor> pool);

  /// Striped cross-component chain locks (see chain::ChainLockRegistry
  /// and EngineOptions::chain_locks); nullptr (the default) keeps every
  /// component's chains lock-free and private.
  ScenarioBuilder& chain_locks(chain::ChainLockRegistry* registry);

  /// Journal every component's chains under `<dir>/swap-<i>/<chain>/`
  /// through the persist layer (EngineOptions::durable_dir per
  /// component; empty — the default — keeps everything in-memory).
  /// Durability knobs ride EngineOptions::durability via options().
  ScenarioBuilder& durable(std::string dir);

  /// Override the named party's behaviour (default: honest). Applied to
  /// whichever component swap the party clears into; the latest
  /// override for a name wins. build() throws if the name appears in no
  /// offer; an override for a party whose offers all end up unmatched
  /// is silently unused (that party runs in no swap).
  ScenarioBuilder& strategy(std::string party, Strategy s);

  /// Clear the book and construct the scenario.
  Scenario build() const;

 private:
  std::vector<Offer> offers_;
  EngineOptions options_;
  graph::FvsOptions fvs_;
  std::vector<std::pair<std::string, Strategy>> strategies_;
  std::size_t jobs_ = 1;
  std::shared_ptr<Executor> pool_;
  std::string durable_;
};

}  // namespace xswap::swap
