// Seeded network-fault models for protocol runs (ROADMAP item 5b).
//
// The paper's timing model (§2.2) assumes a known Δ that covers one
// publish + confirm round trip; it does NOT assume the network is
// well-behaved below that bound. A NetworkModel makes that slack
// concrete: it perturbs every chain submission with seeded latency
// jitter (uniform or geometric), client-retried message drops, and
// timed chain partitions — all folded into one extra-delay draw per
// submission, so the simulation stays fully deterministic in (seed,
// event order).
//
// Staying inside the paper's model: every fault source is bounded, and
// max_extra_delay() reports the worst case. As long as
//   Δ ≥ 2 · (seal_period + submit_delay + max_extra_delay())
// holds (SwapEngine enforces it), a perturbed run still satisfies the
// §2.2 assumption, so Theorems 4.7 and 4.9 must hold on every run —
// which is exactly what the fuzz sweep (swap/fuzz.hpp) asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace xswap::swap {

/// Latency-jitter distribution applied to each chain submission.
enum class JitterKind : std::uint8_t {
  kNone,       // no jitter
  kUniform,    // uniform on [0, max_jitter]
  kGeometric,  // geometric (continue-probability geo_num/geo_den), capped
               // at max_jitter
};

/// One timed chain partition: submissions to `chain` during [from,
/// until) are queued by the client and land when the partition heals
/// (plus any retry jitter the other knobs add). An empty chain name
/// partitions every chain.
struct Partition {
  std::string chain;
  sim::Time from = 0;
  sim::Time until = 0;
};

/// Seeded fault configuration for every chain of one engine run.
/// Value-semantic and cheap to copy; inactive by default (a
/// default-constructed model injects nothing and costs nothing).
struct NetworkModel {
  /// Mixed with the engine seed and the chain name so every chain draws
  /// from an independent, reproducible stream.
  std::uint64_t seed = 0;

  // ---- Latency jitter ----
  JitterKind jitter = JitterKind::kNone;
  sim::Duration max_jitter = 0;  // hard cap, both distributions
  std::uint32_t geo_num = 1;     // geometric continue-probability
  std::uint32_t geo_den = 2;     //   geo_num / geo_den per extra tick

  // ---- Message drops with client retry ----
  /// Per-submission drop probability drop_num/drop_den. A dropped
  /// message is retried by the client after retry_delay ticks, at most
  /// max_retries times; the final retry always goes through (the §2.2
  /// ledger never loses an accepted transaction — drops model the last
  /// mile, and a bounded retry loop keeps them within Δ).
  std::uint32_t drop_num = 0;
  std::uint32_t drop_den = 100;
  sim::Duration retry_delay = 1;
  std::uint32_t max_retries = 0;

  // ---- Timed partitions ----
  std::vector<Partition> partitions;

  /// True iff this model perturbs anything.
  bool active() const;

  /// Worst-case extra delay any single submission can suffer (jitter +
  /// full retry ladder + every partition window it could straddle).
  /// SwapEngine demands Δ ≥ 2·(seal_period + submit_delay + this) so
  /// perturbed runs stay inside the paper's timing assumption.
  sim::Duration max_extra_delay() const;

  /// THE Δ lower bound: 2 · (chain_hop + max_extra_delay()), where
  /// `chain_hop` is seal_period + submit_delay. Every Δ computation in
  /// the tree must route through this one function instead of
  /// re-deriving the worst case from the individual fault knobs —
  /// tools/xswap_lint.py enforces it (a re-derivation that drifted from
  /// max_extra_delay would silently void the Thm 4.7/4.9 guarantee on
  /// perturbed runs).
  sim::Duration min_safe_delta(sim::Duration chain_hop) const;

  /// The per-submission extra-delay hook for one chain, seeded by
  /// (engine_seed, this->seed, chain name) — deterministic across
  /// platforms and executors. Returns the closure chain::Ledger
  /// consumes via set_submit_fault(); null when !active().
  std::function<sim::Duration(sim::Time)> make_fault(
      const std::string& chain_name, std::uint64_t engine_seed) const;

  /// Validation problems (zero denominators, inverted windows, num >
  /// den, retry/jitter inconsistencies); empty means usable. SwapEngine
  /// rejects options whose model does not validate.
  std::vector<std::string> validate() const;
};

}  // namespace xswap::swap
