// The per-party protocol state machine (§4.5).
//
// Each party polls the blockchains of its incident arcs once per tick and
// follows the two-phase protocol:
//
//   Phase One (contract propagation — the lazy pebble game):
//     * a leader publishes contracts on all its leaving arcs at start,
//       then waits for contracts on all its entering arcs;
//     * a follower waits for verified contracts on all entering arcs,
//       then publishes on all leaving arcs.
//
//   Phase Two (hashkey dissemination — the eager game on D^T):
//     * leader v_i, once Phase One locally completes, unlocks h_i on each
//       entering arc with the degenerate hashkey (s_i, (v_i), sig(s_i));
//     * any party that observes hashlock h_i unlocked on a leaving arc
//       derives a hashkey rooted at itself (extend, or truncate when it
//       already appears on the observed path — Lemma 4.8) and unlocks its
//       entering arcs;
//     * a party claims an entering arc once all hashlocks unlock, and
//       refunds a leaving arc once a hashlock expires locked.
//
// Observed contracts are verified against the agreed spec before they
// count as the arc's Phase-One pebble; non-matching contracts are ignored.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "chain/ledger.hpp"
#include "crypto/ed25519.hpp"
#include "swap/contract.hpp"
#include "swap/hashkey.hpp"
#include "swap/single_leader_contract.hpp"
#include "swap/spec.hpp"
#include "swap/strategy.hpp"

namespace xswap::swap {

/// Which contract flavour the swap runs on.
enum class ProtocolMode : std::uint8_t {
  kGeneral,       // hashkey contracts (Fig. 4–5), any feedback vertex set
  kSingleLeader,  // scalar-timeout contracts (§4.6), exactly one leader
};

/// Shared out-of-band state of a deviating coalition: hashkeys its
/// members have learned, visible to all members instantly.
struct CoalitionPool {
  std::vector<Hashkey> keys;
};

/// Counters shared across parties for the cost accounting benches.
struct ProtocolCounters {
  std::size_t sign_operations = 0;
  std::size_t unlock_submissions = 0;
  std::size_t hashkey_bytes_submitted = 0;
};

/// A swap participant. Driven by tick(); owns no ledger state.
class Party {
 public:
  /// `ledgers` maps chain name → ledger; it must outlive the party and
  /// cover every chain named in the spec (plus "broadcast" when the
  /// spec's broadcast option is on).
  Party(const SwapSpec& spec, PartyId self, crypto::KeyPair keys,
        ProtocolMode mode, Strategy strategy,
        const std::map<std::string, chain::Ledger*>& ledgers,
        ProtocolCounters* counters, CoalitionPool* coalition_pool);

  /// Hand a leader its generated secret (engine/clearing does this before
  /// the run; followers have none). The hashlock H(secret) must be the
  /// spec's hashlock for this leader.
  void set_leader_secret(Secret secret);

  /// One poll-act round; call once per simulator tick.
  void tick(sim::Time now);

  PartyId id() const { return self_; }
  const std::string& name() const { return spec_.party_names[self_]; }

  /// In the crash outage at `now`? With Strategy::recover_at set the
  /// outage is the window [crash_at, recover_at); without it the crash
  /// is permanent.
  bool crashed(sim::Time now) const;

  /// Did the crash-recovery path run (the volatile-state wipe + chain
  /// rescan of Strategy::recover_at)?
  bool recovered() const { return recovered_; }

  /// Verified contract id observed for `arc` (nullopt until seen).
  std::optional<chain::ContractId> contract_on(graph::ArcId arc) const {
    return arc_contract_[arc];
  }

  /// Secrets (by leader index) this party currently knows.
  std::vector<bool> known_secrets() const;

 private:
  chain::Ledger& ledger_for_arc(graph::ArcId arc) const;
  void recover_from_chains(sim::Time now);
  void scan_for_contracts(sim::Time now);
  void phase_one_publish(sim::Time now);
  void publish_contract_on(graph::ArcId arc);
  bool all_entering_have_contracts() const;
  void learn_from_leaving_arcs(sim::Time now);
  void learn_from_broadcast(sim::Time now);
  void share_with_coalition();
  void adopt_hashkey(std::size_t i, const Hashkey& observed);
  void act_unlocks(sim::Time now);
  void act_claims(sim::Time now);
  void act_refunds(sim::Time now);

  const SwapSpec& spec_;
  PartyId self_;
  crypto::KeyPair keys_;
  ProtocolMode mode_;
  Strategy strategy_;
  std::map<std::string, chain::Ledger*> ledgers_;
  std::vector<chain::Ledger*> arc_ledgers_;  // per ArcId; polling hot path
  ProtocolCounters* counters_;
  CoalitionPool* coalition_pool_;

  // Phase One.
  std::vector<std::optional<chain::ContractId>> arc_contract_;  // per arc
  std::vector<bool> published_;                                 // per leaving arc (by ArcId)
  std::optional<Secret> leader_secret_;
  bool leader_revealed_ = false;
  bool board_posted_ = false;

  // Phase Two. known_key_[i]: a hashkey for secret i rooted at self.
  std::vector<std::optional<Hashkey>> known_key_;
  std::vector<std::vector<bool>> unlock_submitted_;  // [arc][i]
  std::vector<bool> claim_submitted_;                // per arc
  std::vector<bool> refund_submitted_;               // per arc
  std::size_t coalition_pool_cursor_ = 0;
  bool recovered_ = false;  // crash-recovery wipe already ran
};

}  // namespace xswap::swap
