// Protocol outcome classification (§3, Fig. 3).
//
// After a run, each party's payoff class is determined by which of its
// entering and leaving arcs were triggered (asset actually delivered to
// the counterparty). The partial order of Fig. 3:
//
//     FreeRide > Discount > Deal > NoDeal > Underwater
//                            (acceptable) | (unacceptable)
//
// Theorem 4.9: no conforming party ever ends Underwater — the invariant
// every adversarial test in this repository checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.hpp"

namespace xswap::swap {

enum class Outcome : std::uint8_t {
  kDeal,        // all entering and leaving arcs triggered
  kNoDeal,      // no arc in either direction triggered
  kFreeRide,    // acquired something, paid nothing
  kDiscount,    // acquired everything, paid less than expected
  kUnderwater,  // paid something, missing an acquisition
};

const char* to_string(Outcome o);

/// True for every class a conforming party may acceptably end with
/// (everything except Underwater).
bool acceptable(Outcome o);

/// Fig. 3's preference order as an integer rank:
/// Underwater(0) < NoDeal(1) < Deal(2) < Discount(3) < FreeRide(4).
/// Every party prefers higher ranks (§3's assumptions: Deal > NoDeal,
/// FreeRide > NoDeal, Discount > Deal).
int preference_rank(Outcome o);

/// Classify one party given per-arc trigger flags (indexed by ArcId).
Outcome classify_party(const graph::Digraph& d, graph::VertexId v,
                       const std::vector<bool>& triggered);

/// Classify every party.
std::vector<Outcome> classify_all(const graph::Digraph& d,
                                  const std::vector<bool>& triggered);

/// Classify a coalition C ⊆ V (§3: replace v by C — only arcs crossing
/// the coalition boundary count).
Outcome classify_coalition(const graph::Digraph& d,
                           const std::vector<graph::VertexId>& coalition,
                           const std::vector<bool>& triggered);

}  // namespace xswap::swap
