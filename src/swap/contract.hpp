// The hashed-timelock swap contract of Figures 4–5.
//
// One contract instance lives on the blockchain of each arc (u, v). It
// escrows the arc's asset at publication and exposes the paper's three
// entry points:
//   * unlock(i, s, p, σ)  — counterparty presents a hashkey for h_i;
//   * refund()            — party reclaims the asset once some hashlock
//                           can no longer be unlocked;
//   * claim()             — counterparty takes the asset once every
//                           hashlock is unlocked.
//
// Each contract stores its own copy of the swap digraph (Fig. 4 line 3),
// which is why total space across all chains is O(|A|^2) (Theorem 4.10).
//
// Note on refund: Fig. 5 line 37 reads "if any hashlock unlocked and
// timed out". Taken literally that leaves assets stranded (a contract
// with one never-unlocked hashlock could never refund) and lets a party
// yank an asset whose remaining hashlocks are still live. We read it as
// the evident intent: refund when some hashlock is still locked *and*
// every hashkey that could unlock it has expired. DESIGN.md records this
// reading.
#pragma once

#include <optional>
#include <vector>

#include "chain/contract.hpp"
#include "swap/hashkey.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

/// Lifecycle of the escrowed asset.
enum class Disposition : std::uint8_t { kActive, kClaimed, kRefunded };

const char* to_string(Disposition d);

/// Swap contract for one arc of the swap digraph (Fig. 4–5).
class SwapContract : public chain::Contract {
 public:
  /// Build the contract for `arc` from the agreed spec. The spec's
  /// digraph, leaders, hashlocks, directory and timing are copied into
  /// contract state, exactly as the Fig. 4 constructor copies its
  /// arguments.
  SwapContract(const SwapSpec& spec, graph::ArcId arc);

  // ---- chain::Contract ----
  std::string type_name() const override { return "swap"; }
  std::size_t storage_bytes() const override;
  /// Takes escrow of the asset from the party (head of the arc).
  void on_publish(const chain::CallContext& ctx) override;

  // ---- entry points (invoked via Ledger::submit_call) ----

  /// Fig. 5 lines 26–34. Throws (failing the transaction) when the caller
  /// is not the counterparty, the hashkey is expired, malformed, for the
  /// wrong hashlock, or its path/signatures do not verify.
  void unlock(const chain::CallContext& ctx, std::size_t i, const Hashkey& key);

  /// Fig. 5 lines 35–41 (with the corrected refund condition above).
  void refund(const chain::CallContext& ctx);

  /// Fig. 5 lines 42–48.
  void claim(const chain::CallContext& ctx);

  // ---- read-only views (what any observer of the chain can see) ----

  graph::ArcId arc() const { return arc_; }
  const chain::Asset& asset() const { return asset_; }
  PartyId party_vertex() const { return party_vertex_; }
  PartyId counterparty_vertex() const { return counterparty_vertex_; }
  const chain::Address& party() const { return party_; }
  const chain::Address& counterparty() const { return counterparty_; }
  Disposition disposition() const { return disposition_; }

  std::size_t hashlock_count() const { return hashlocks_.size(); }
  bool unlocked(std::size_t i) const { return unlocked_.at(i); }
  bool all_unlocked() const;

  /// The paper's trigger notion: an arc is *triggered* when all of its
  /// hashlocks are unlocked (§4.1) — the claim that moves the asset can
  /// follow at the counterparty's leisure. Chain time of the final
  /// unlock, or 0 while untriggered.
  sim::Time triggered_at() const { return triggered_at_; }

  /// The hashkey that first unlocked hashlock i (observers extend these
  /// during Phase Two), or nullopt while locked.
  const std::optional<Hashkey>& unlocking_key(std::size_t i) const {
    return unlock_keys_.at(i);
  }

  /// Absolute deadline for a hashkey with |p| = path_len on this arc.
  sim::Time hashkey_deadline(std::size_t path_len) const {
    return start_ + (diam_ + path_len) * delta_;
  }

  /// True when hashlock i can no longer be unlocked at `now`: every
  /// admissible path (longest has max_path_len_[i] arcs) has expired.
  bool hashlock_expired(std::size_t i, sim::Time now) const {
    return !unlocked_.at(i) && now >= hashkey_deadline(max_path_len_.at(i));
  }

  /// True when refund() would succeed at `now`.
  bool refundable(sim::Time now) const;

  /// Does this published contract implement arc `arc` of `spec` exactly?
  /// Parties verify observed contracts with this before counting them as
  /// the Phase-One pebble on the arc ("verifies that contract is a
  /// correct swap contract, and abandons the protocol otherwise", §4.5).
  bool matches_spec(const SwapSpec& spec, graph::ArcId arc) const;

 private:
  // Fig. 4 long-lived state.
  graph::ArcId arc_;
  chain::Asset asset_;
  graph::Digraph digraph_;
  std::vector<PartyId> leaders_;
  std::vector<Hashlock> hashlocks_;
  PartyDirectory directory_;
  PartyId party_vertex_;
  PartyId counterparty_vertex_;
  chain::Address party_;
  chain::Address counterparty_;
  sim::Time start_;
  sim::Duration delta_;
  std::size_t diam_;
  bool broadcast_;  // accept virtual (v, leader) hashkey paths (§4.5)

  std::vector<bool> unlocked_;
  std::vector<std::optional<Hashkey>> unlock_keys_;
  std::vector<std::size_t> max_path_len_;  // longest admissible |p| per hashlock
  sim::Time triggered_at_ = 0;
  Disposition disposition_ = Disposition::kActive;
};

}  // namespace xswap::swap
