#include "swap/hashkey.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "graph/paths.hpp"
#include "swap/codec.hpp"

namespace xswap::swap {

std::size_t Hashkey::encoded_size() const {
  return encode_hashkey(*this).size();
}

Hashkey make_leader_hashkey(const Secret& secret, PartyId leader,
                            const crypto::KeyPair& keys) {
  Hashkey key;
  key.secret = secret;
  key.path = {leader};
  key.sigs = {keys.sign(secret)};
  return key;
}

Hashkey extend_hashkey(const Hashkey& base, PartyId v,
                       const crypto::KeyPair& keys) {
  if (std::find(base.path.begin(), base.path.end(), v) != base.path.end()) {
    throw std::invalid_argument(
        "extend_hashkey: party already on path (use truncate_hashkey)");
  }
  if (base.sigs.empty()) {
    throw std::invalid_argument("extend_hashkey: malformed base hashkey");
  }
  Hashkey key;
  key.secret = base.secret;
  key.path.reserve(base.path.size() + 1);
  key.path.push_back(v);
  key.path.insert(key.path.end(), base.path.begin(), base.path.end());
  key.sigs.reserve(base.sigs.size() + 1);
  key.sigs.push_back(keys.sign(base.sigs.front().as_bytes()));
  key.sigs.insert(key.sigs.end(), base.sigs.begin(), base.sigs.end());
  return key;
}

bool truncate_hashkey(const Hashkey& base, PartyId v, Hashkey* out) {
  const auto it = std::find(base.path.begin(), base.path.end(), v);
  if (it == base.path.end()) return false;
  const std::size_t offset = static_cast<std::size_t>(it - base.path.begin());
  Hashkey key;
  key.secret = base.secret;
  key.path.assign(base.path.begin() + offset, base.path.end());
  key.sigs.assign(base.sigs.begin() + offset, base.sigs.end());
  *out = key;
  return true;
}

bool verify_hashkey(const Hashkey& key, const Hashlock& hashlock,
                    const graph::Digraph& digraph, PartyId counterparty,
                    PartyId leader, const PartyDirectory& directory,
                    bool allow_virtual_leader_arc) {
  // Shape checks.
  if (key.path.empty() || key.sigs.size() != key.path.size()) return false;
  if (key.path.front() != counterparty || key.path.back() != leader) return false;
  for (const PartyId v : key.path) {
    if (v >= directory.size()) return false;
  }

  // Secret matches the hashlock (Fig. 5 line 29).
  if (crypto::sha256_bytes(key.secret) != hashlock) return false;

  // Path is a real path in D from the counterparty to the leader
  // (Fig. 5 line 30) — or the broadcast shortcut's virtual arc.
  const bool virtual_ok = allow_virtual_leader_arc && key.path.size() == 2 &&
                          key.path[0] != key.path[1] &&
                          key.path[0] < digraph.vertex_count() &&
                          key.path[1] < digraph.vertex_count();
  if (!virtual_ok && !graph::is_path(digraph, key.path)) return false;

  // Nested signature chain (Fig. 5 line 31): the leader signed the
  // secret; each earlier party signed the next signature.
  const std::size_t k = key.path.size() - 1;
  if (!crypto::verify(directory[key.path[k]], key.secret, key.sigs[k])) {
    return false;
  }
  for (std::size_t i = k; i-- > 0;) {
    if (!crypto::verify(directory[key.path[i]], key.sigs[i + 1].as_bytes(),
                        key.sigs[i])) {
      return false;
    }
  }
  return true;
}

}  // namespace xswap::swap
