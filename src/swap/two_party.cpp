#include "swap/two_party.hpp"

#include <stdexcept>

namespace xswap::swap {

SwapEngine make_two_party_swap(const TwoPartySide& a, const TwoPartySide& b,
                               EngineOptions options) {
  if (a.party == b.party) {
    throw std::invalid_argument("two-party swap: distinct parties required");
  }
  if (a.party.empty() || b.party.empty()) {
    throw std::invalid_argument("two-party swap: empty party name");
  }
  graph::Digraph d(2);
  d.add_arc(0, 1);  // a.party -> b.party on a.chain
  d.add_arc(1, 0);  // b.party -> a.party on b.chain
  std::vector<ArcTerms> arcs = {ArcTerms{a.chain, a.asset},
                                ArcTerms{b.chain, b.asset}};
  return SwapEngine(std::move(d), {a.party, b.party}, /*leaders=*/{0},
                    std::move(arcs), options);
}

}  // namespace xswap::swap
