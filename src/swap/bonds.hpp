// Bonds against denial-of-service (§5): "whether one could require
// parties to post bonds, and following a failed swap, examine the
// blockchains to determine who was at fault".
//
// Each party deposits a bond into an on-chain pool before the swap. If
// the swap completes cleanly, bonds are returned. If it fails, the
// forensic analysis (swap/forensics.hpp) determines the at-fault set
// from public chain data, the faulty parties' bonds are slashed, and the
// slash is split among the non-faulty depositors as compensation for
// their capital being locked up.
//
// Substitution note (DESIGN.md §2): on a real deployment the pool
// contract would verify the fault proof itself via light clients of the
// arc chains. The simulator models that step as a designated *arbiter*
// caller; the analysis it submits is a pure function of public data that
// any participant can recompute and dispute.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "chain/contract.hpp"
#include "chain/ledger.hpp"
#include "swap/forensics.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

/// On-chain bond pool for one swap.
class BondPool : public chain::Contract {
 public:
  /// `bond`: the per-party deposit (same for everyone). `arbiter`: the
  /// address allowed to settle with a fault set.
  BondPool(const SwapSpec& spec, chain::Asset bond, chain::Address arbiter);

  std::string type_name() const override { return "bondpool"; }
  std::size_t storage_bytes() const override;
  void on_publish(const chain::CallContext&) override {}  // holds no asset yet

  /// A party deposits its bond (must be one of the swap's parties; one
  /// deposit each).
  void deposit(const chain::CallContext& ctx);

  /// Settle after the swap: refund non-faulty depositors, slash faulty
  /// ones and split the slash among non-faulty depositors. Only the
  /// arbiter may call, exactly once; `at_fault` is indexed by PartyId.
  void settle(const chain::CallContext& ctx, const std::vector<bool>& at_fault);

  bool deposited(PartyId v) const { return deposited_.at(v); }
  bool settled() const { return settled_; }
  std::size_t deposit_count() const;

 private:
  std::vector<std::string> party_names_;  // indexed by PartyId
  chain::Asset bond_;
  chain::Address arbiter_;
  std::vector<bool> deposited_;
  bool settled_ = false;
};

/// End-to-end helper used by tests and benches: run forensics on a
/// finished engine, settle `pool` on `ledger` through the arbiter, and
/// return the fault report.
class SwapEngine;
FaultReport settle_bonds(const SwapEngine& engine, chain::Ledger& bond_ledger,
                         chain::ContractId pool_id,
                         const chain::Address& arbiter);

}  // namespace xswap::swap
