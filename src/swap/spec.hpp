// SwapSpec: the common knowledge shared by all swap participants (§4.2).
//
// The market-clearing service publishes: the swap digraph D, the leader
// vector L (a feedback vertex set), the leaders' hashlocks, a starting
// time, and per-arc terms (which chain, which asset). The service is NOT
// trusted — every party re-validates the spec with validate_spec() before
// taking part, and every contract carries a copy of the digraph so that
// on-chain verification needs no off-chain trust.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chain/asset.hpp"
#include "crypto/ed25519.hpp"
#include "graph/digraph.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace xswap::swap {

using PartyId = graph::VertexId;
using Hashlock = util::Bytes;  // 32-byte SHA-256 image
using Secret = util::Bytes;    // 32-byte preimage

/// Public keys of all parties, indexed by PartyId. Contracts use these to
/// verify hashkey signature chains (the paper's sig(x, v) primitive).
using PartyDirectory = std::vector<crypto::PublicKey>;

/// Terms of one proposed transfer: which blockchain the arc's contract
/// lives on and which asset moves from the arc's head to its tail.
struct ArcTerms {
  std::string chain;
  chain::Asset asset;

  bool operator==(const ArcTerms&) const = default;
};

/// Everything a participant must know to run the protocol.
struct SwapSpec {
  graph::Digraph digraph;
  std::vector<std::string> party_names;  // indexed by PartyId, unique
  std::vector<PartyId> leaders;          // feedback vertex set of digraph
  std::vector<Hashlock> hashlocks;       // h_i = H(s_i), parallel to leaders
  std::vector<ArcTerms> arcs;            // parallel to digraph.arcs()
  PartyDirectory directory;              // public keys, indexed by PartyId

  /// Protocol starting time T. All hashkey deadlines are measured from
  /// here; contracts published before T simply wait, and a party that
  /// first observes the spec after T should decline to participate.
  sim::Time start_time = 0;

  /// Δ, in simulator ticks: the agreed duration long enough for one
  /// party to publish (or trigger) a contract change AND for every other
  /// party to observe it — i.e. at least two protocol hops (§2.2). With
  /// a seal period of `p` and submission delay `d`, safety requires
  /// Δ ≥ 2·(p + d); SwapEngine enforces this unless
  /// EngineOptions::allow_unsafe_timing is set.
  sim::Duration delta = 4;

  /// The agreed diameter bound: any value ≥ the true diam(D) (longest
  /// shortest-path between ordered vertex pairs). Deadlines scale with
  /// it, so a larger value is always safe but delays refunds; 0 is
  /// invalid (validate_spec rejects it for any digraph with ≥ 2
  /// vertexes). All parties must use the same value — it is part of the
  /// common knowledge, not a local tuning knob.
  std::size_t diam = 0;

  /// §4.5 optimization: when true, a shared broadcast chain carries the
  /// leaders' secrets and contracts accept the "virtual arc" hashkey path
  /// (v, leader) even when D lacks that arc — Phase Two then completes in
  /// O(1) time for conforming runs. The broadcast chain can shorten Phase
  /// Two but never replaces it (a deviating leader might skip it).
  bool broadcast = false;

  /// Index of `v` in `leaders`, or `npos` when v is a follower.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t leader_index(PartyId v) const;
  bool is_leader(PartyId v) const { return leader_index(v) != npos; }

  /// Deadline after which a hashkey whose path has `path_len` arcs is no
  /// longer accepted: start + (diam + |p|)·Δ (§4.1).
  sim::Time hashkey_deadline(std::size_t path_len) const {
    return start_time + (diam + path_len) * delta;
  }

  /// The latest instant any hashkey can be accepted on any arc:
  /// start + 2·diam·Δ (Theorem 4.7's bound).
  sim::Time final_deadline() const { return hashkey_deadline(diam); }

  /// On-chain size in bytes of the canonical encoding (swap/codec.hpp)
  /// of the swap's shared data (digraph + hashlocks + keys + terms);
  /// each published contract stores a copy of this, which is what drives
  /// Theorem 4.10's O(|A|^2) space bound.
  std::size_t encoded_size() const;
};

/// Validate a spec. Returns a list of human-readable problems; an empty
/// list means the spec is admissible:
///  * digraph strongly connected, ≥ 2 vertexes, every vertex on some arc
///    (Theorem 3.5);
///  * leaders form a feedback vertex set, no duplicates (Theorem 4.12);
///  * one 32-byte hashlock per leader;
///  * arcs/terms/names/keys arrays sized consistently; names unique and
///    non-empty; chains named; fungible amounts positive;
///  * delta > 0; diam ≥ a safe diameter bound for the digraph.
std::vector<std::string> validate_spec(const SwapSpec& spec);

}  // namespace xswap::swap
