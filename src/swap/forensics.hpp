// Post-mortem fault analysis (§5): "examine the blockchains to determine
// who was at fault (by failing to execute an enabled transition)".
//
// Everything the protocol does is public: contract publications, unlock
// calls (with their hashkeys), claims, refunds, all timestamped in sealed
// blocks. After a failed swap, any observer can reconstruct which party
// had an *enabled* transition — a contract it should have published, a
// secret it provably knew in time — and did not execute it within Δ.
//
// Blame rules (conservative: only provable inaction is blamed):
//  * Phase One: party v is at fault if all of v's entering arcs carried
//    verified contracts (or v is a leader, enabled at start) and some
//    leaving arc of v got no contract within Δ of enablement.
//  * Phase Two, leader i: at fault if every entering arc carried a
//    contract and hashlock i was never unlocked anywhere.
//  * Phase Two, relay v: at fault if some leaving arc of v had hashlock i
//    unlocked by a key with path length |p| at time t (so v knew the
//    secret by t), some entering arc of v had a contract with hashlock i
//    still locked, and t + Δ was within the extension deadline
//    start + (diam + |p| + 1)·Δ.
// Failing to claim or refund is never blamed: it harms only the party
// itself.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "chain/ledger.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

class SwapEngine;

/// Reconstructed on-chain history of one arc.
struct ArcEvents {
  std::optional<sim::Time> published;  // spec-matching contract exec time
  /// Per leader index: when the hashlock was unlocked, and by a key of
  /// which path length.
  std::vector<std::optional<sim::Time>> unlocked_at;
  std::vector<std::size_t> unlock_path_len;
  bool claimed = false;
  bool refunded = false;
  std::optional<sim::Time> refunded_at;  // refund execution time
};

enum class FaultKind : std::uint8_t {
  kWithheldContract,   // Phase One: enabled publish not executed
  kLeaderNeverRevealed,  // Phase Two: leader sat on its secret
  kWithheldUnlock,     // Phase Two: knew the secret, did not relay
};

const char* to_string(FaultKind kind);

/// One provable failure by one party.
struct FaultFinding {
  PartyId party = 0;
  FaultKind kind = FaultKind::kWithheldContract;
  std::string detail;        // human-readable evidence
  sim::Time evident_at = 0;  // when the failure became provable
};

/// Full forensic report.
struct FaultReport {
  std::vector<ArcEvents> arcs;         // indexed by ArcId
  std::vector<FaultFinding> findings;  // all provable failures
  std::vector<bool> at_fault;          // per party (any finding)

  bool anyone_at_fault() const {
    for (const bool f : at_fault) {
      if (f) return true;
    }
    return false;
  }
};

/// Reconstruct per-arc events from the public chains.
std::vector<ArcEvents> collect_arc_events(
    const SwapSpec& spec,
    const std::map<std::string, const chain::Ledger*>& ledgers);

/// Run the blame rules over the public record.
FaultReport analyze_faults(
    const SwapSpec& spec,
    const std::map<std::string, const chain::Ledger*>& ledgers);

/// Convenience overload for a finished engine run.
FaultReport analyze_faults(const SwapEngine& engine);

}  // namespace xswap::swap
