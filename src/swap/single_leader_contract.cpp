#include "swap/single_leader_contract.hpp"

#include <stdexcept>

#include "chain/ledger.hpp"
#include "crypto/sha256.hpp"
#include "graph/paths.hpp"

namespace xswap::swap {

sim::Time single_leader_timeout(const SwapSpec& spec, graph::ArcId arc) {
  if (spec.leaders.size() != 1) {
    throw std::invalid_argument(
        "single_leader_timeout: spec must have exactly one leader");
  }
  const PartyId leader = spec.leaders[0];
  const PartyId v = spec.digraph.arc(arc).tail;  // counterparty
  // D(v, v̂): longest path from the counterparty to the leader; 0 for the
  // leader itself (Fig. 1: the arc entering the leader has the earliest
  // timeout, (diam + 1)·Δ).
  std::size_t dist = 0;
  if (v != leader) {
    const auto exact = graph::longest_path(spec.digraph, v, leader);
    if (!exact.has_value()) {
      throw std::invalid_argument("single_leader_timeout: leader unreachable");
    }
    dist = *exact;
  }
  return spec.start_time + (spec.diam + dist + 1) * spec.delta;
}

SingleLeaderContract::SingleLeaderContract(const SwapSpec& spec, graph::ArcId arc)
    : arc_(arc),
      asset_(spec.arcs.at(arc).asset),
      hashlock_(spec.hashlocks.at(0)),
      party_vertex_(spec.digraph.arc(arc).head),
      counterparty_vertex_(spec.digraph.arc(arc).tail),
      party_(spec.party_names.at(spec.digraph.arc(arc).head)),
      counterparty_(spec.party_names.at(spec.digraph.arc(arc).tail)),
      timeout_(single_leader_timeout(spec, arc)),
      disposition_(Disposition::kActive) {
  if (spec.leaders.size() != 1 || spec.hashlocks.size() != 1) {
    throw std::invalid_argument(
        "SingleLeaderContract: spec must have exactly one leader/hashlock");
  }
}

std::size_t SingleLeaderContract::storage_bytes() const {
  // No digraph copy, no directory, no signature chains: constant state.
  std::size_t size = asset_.encode().size() + hashlock_.size() +
                     party_.size() + counterparty_.size() + 8 /*timeout*/ +
                     1 /*unlocked*/ + 8 /*arc*/;
  if (secret_.has_value()) size += secret_->size();
  return size;
}

void SingleLeaderContract::on_publish(const chain::CallContext& ctx) {
  if (ctx.sender != party_) {
    throw std::runtime_error("swap1l publish: sender is not the party");
  }
  ctx.ledger->transfer(party_, chain::contract_address(ctx.self), asset_);
}

void SingleLeaderContract::unlock(const chain::CallContext& ctx,
                                  const Secret& secret) {
  if (ctx.sender != counterparty_) {
    throw std::runtime_error("unlock: only the counterparty may call");
  }
  if (disposition_ != Disposition::kActive) {
    throw std::runtime_error("unlock: contract already settled");
  }
  if (ctx.time >= timeout_) {
    throw std::runtime_error("unlock: hashlock timed out");
  }
  if (crypto::sha256_bytes(secret) != hashlock_) {
    throw std::runtime_error("unlock: wrong secret");
  }
  if (!unlocked_) {
    unlocked_ = true;
    secret_ = secret;
    triggered_at_ = ctx.time;
  }
}

void SingleLeaderContract::refund(const chain::CallContext& ctx) {
  if (ctx.sender != party_) {
    throw std::runtime_error("refund: only the party may call");
  }
  if (disposition_ != Disposition::kActive) {
    throw std::runtime_error("refund: contract already settled");
  }
  if (!refundable(ctx.time)) {
    throw std::runtime_error("refund: hashlock not expired");
  }
  ctx.ledger->transfer(chain::contract_address(ctx.self), party_, asset_);
  disposition_ = Disposition::kRefunded;
}

void SingleLeaderContract::claim(const chain::CallContext& ctx) {
  if (ctx.sender != counterparty_) {
    throw std::runtime_error("claim: only the counterparty may call");
  }
  if (disposition_ != Disposition::kActive) {
    throw std::runtime_error("claim: contract already settled");
  }
  if (!unlocked_) {
    throw std::runtime_error("claim: hashlock still locked");
  }
  ctx.ledger->transfer(chain::contract_address(ctx.self), counterparty_, asset_);
  disposition_ = Disposition::kClaimed;
}

bool SingleLeaderContract::refundable(sim::Time now) const {
  return disposition_ == Disposition::kActive && !unlocked_ && now >= timeout_;
}

bool SingleLeaderContract::matches_spec(const SwapSpec& spec,
                                        graph::ArcId arc) const {
  if (spec.leaders.size() != 1 || spec.hashlocks.size() != 1) return false;
  return arc_ == arc && spec.hashlocks[0] == hashlock_ &&
         arc < spec.arcs.size() && spec.arcs[arc].asset == asset_ &&
         spec.digraph.arc(arc).head == party_vertex_ &&
         spec.digraph.arc(arc).tail == counterparty_vertex_ &&
         spec.party_names.at(party_vertex_) == party_ &&
         spec.party_names.at(counterparty_vertex_) == counterparty_ &&
         single_leader_timeout(spec, arc) == timeout_;
}

}  // namespace xswap::swap
