#include "swap/strategy.hpp"

#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"

namespace xswap::swap {

namespace {

/// Tick window the `flip` kind draws timed deviations from (documented
/// in the header; bounded so flipped crash/late schedules stay near the
/// protocol window for any reasonable Δ).
constexpr sim::Time kFlipTickWindow = 64;

sim::Time parse_ticks(const std::string& kind, const std::string& arg) {
  if (arg.empty() || arg.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' needs a non-negative tick count, got '" +
                                arg + "'");
  }
  try {
    return static_cast<sim::Time>(std::stoull(arg));
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' tick count out of range: '" + arg + "'");
  }
}

void reject_arg(const std::string& kind, const std::string& arg) {
  if (!arg.empty()) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' takes no argument, got '" + arg + "'");
  }
}

/// Percentage argument for the probabilistic kinds: 0..100 inclusive.
std::uint64_t parse_percent(const std::string& kind, const std::string& arg) {
  const std::uint64_t p = parse_ticks(kind, arg);
  if (p > 100) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' probability must be 0..100, got '" + arg +
                                "'");
  }
  return p;
}

util::Rng& require_rng(const std::string& kind, util::Rng* rng) {
  if (rng == nullptr) {
    throw std::invalid_argument("strategy_from_spec: stochastic kind '" + kind +
                                "' needs a seeded rng");
  }
  return *rng;
}

/// The concrete deviation a `flip` draw resolves to.
Strategy flip_deviation(sim::Time start_time, util::Rng& rng) {
  Strategy s;
  switch (rng.next_below(6)) {
    case 0:
      s.withhold_unlocks = true;
      s.withhold_claims = true;
      break;
    case 1:
      s.withhold_contracts = true;
      break;
    case 2:
      s.publish_corrupt_contracts = true;
      break;
    case 3:
      s.premature_reveal = true;
      break;
    case 4:
      s.crash_at = start_time + rng.next_range(1, kFlipTickWindow);
      break;
    default:
      s.delay_unlocks_until = start_time + rng.next_range(1, kFlipTickWindow);
      break;
  }
  return s;
}

}  // namespace

Strategy strategy_from_spec(const std::string& spec, sim::Time start_time,
                            util::Rng* rng) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  Strategy s;
  if (kind == "flip") {
    const std::uint64_t p = parse_percent(kind, arg);
    util::Rng& r = require_rng(kind, rng);
    // Draw the coin first, the deviation second, so the stream is the
    // same whether or not the coin lands on deviate.
    if (r.next_chance(p, 100)) s = flip_deviation(start_time, r);
  } else if (kind == "crashrand") {
    const sim::Time window = parse_ticks(kind, arg);
    util::Rng& r = require_rng(kind, rng);
    s.crash_at = start_time + r.next_range(0, window);
  } else if (kind == "equivocate") {
    const std::uint64_t p = parse_percent(kind, arg);
    util::Rng& r = require_rng(kind, rng);
    s.publish_corrupt_contracts = r.next_chance(p, 100);
  } else if (kind == "crash") {
    s.crash_at = start_time + parse_ticks(kind, arg);
  } else if (kind == "crash_recover") {
    // T:R — crash at start + T, recover (memory wiped) at start + T + R.
    const auto split = arg.find(':');
    if (split == std::string::npos) {
      throw std::invalid_argument(
          "strategy_from_spec: 'crash_recover' needs T:R (crash tick and "
          "outage length), got '" + arg + "'");
    }
    const sim::Time t = parse_ticks(kind, arg.substr(0, split));
    const sim::Time outage = parse_ticks(kind, arg.substr(split + 1));
    s.crash_at = start_time + t;
    s.recover_at = start_time + t + outage;
  } else if (kind == "withhold") {
    reject_arg(kind, arg);
    s.withhold_unlocks = true;
    s.withhold_claims = true;
  } else if (kind == "silent") {
    reject_arg(kind, arg);
    s.withhold_contracts = true;
  } else if (kind == "corrupt") {
    reject_arg(kind, arg);
    s.publish_corrupt_contracts = true;
  } else if (kind == "late") {
    s.delay_unlocks_until = start_time + parse_ticks(kind, arg);
  } else if (kind == "reveal") {
    reject_arg(kind, arg);
    s.premature_reveal = true;
  } else {
    throw std::invalid_argument("strategy_from_spec: unknown kind '" + kind +
                                "'");
  }
  return s;
}

std::pair<std::string, Strategy> parse_adversary(const std::string& spec,
                                                 sim::Time start_time,
                                                 util::Rng* rng) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("parse_adversary: expected WHO:KIND[:ARG], "
                                "got '" + spec + "'");
  }
  return {spec.substr(0, colon),
          strategy_from_spec(spec.substr(colon + 1), start_time, rng)};
}

const std::vector<std::string>& strategy_spec_kinds() {
  static const std::vector<std::string> kKinds = {
      "crash:T", "withhold",    "silent",      "corrupt",
      "late:T",  "reveal",      "flip:P",      "crashrand:T",
      "equivocate:P", "crash_recover:T:R"};
  return kKinds;
}

}  // namespace xswap::swap
