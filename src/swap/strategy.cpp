#include "swap/strategy.hpp"

#include <cstdint>
#include <stdexcept>

namespace xswap::swap {

namespace {

sim::Time parse_ticks(const std::string& kind, const std::string& arg) {
  if (arg.empty() || arg.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' needs a non-negative tick count, got '" +
                                arg + "'");
  }
  try {
    return static_cast<sim::Time>(std::stoull(arg));
  } catch (const std::out_of_range&) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' tick count out of range: '" + arg + "'");
  }
}

void reject_arg(const std::string& kind, const std::string& arg) {
  if (!arg.empty()) {
    throw std::invalid_argument("strategy_from_spec: '" + kind +
                                "' takes no argument, got '" + arg + "'");
  }
}

}  // namespace

Strategy strategy_from_spec(const std::string& spec, sim::Time start_time) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);

  Strategy s;
  if (kind == "crash") {
    s.crash_at = start_time + parse_ticks(kind, arg);
  } else if (kind == "withhold") {
    reject_arg(kind, arg);
    s.withhold_unlocks = true;
    s.withhold_claims = true;
  } else if (kind == "silent") {
    reject_arg(kind, arg);
    s.withhold_contracts = true;
  } else if (kind == "corrupt") {
    reject_arg(kind, arg);
    s.publish_corrupt_contracts = true;
  } else if (kind == "late") {
    s.delay_unlocks_until = start_time + parse_ticks(kind, arg);
  } else if (kind == "reveal") {
    reject_arg(kind, arg);
    s.premature_reveal = true;
  } else {
    throw std::invalid_argument("strategy_from_spec: unknown kind '" + kind +
                                "'");
  }
  return s;
}

std::pair<std::string, Strategy> parse_adversary(const std::string& spec,
                                                 sim::Time start_time) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0) {
    throw std::invalid_argument("parse_adversary: expected WHO:KIND[:ARG], "
                                "got '" + spec + "'");
  }
  return {spec.substr(0, colon),
          strategy_from_spec(spec.substr(colon + 1), start_time)};
}

const std::vector<std::string>& strategy_spec_kinds() {
  static const std::vector<std::string> kKinds = {
      "crash:T", "withhold", "silent", "corrupt", "late:T", "reveal"};
  return kKinds;
}

}  // namespace xswap::swap
