#include "swap/outcome.hpp"

#include <stdexcept>

namespace xswap::swap {

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kDeal: return "Deal";
    case Outcome::kNoDeal: return "NoDeal";
    case Outcome::kFreeRide: return "FreeRide";
    case Outcome::kDiscount: return "Discount";
    case Outcome::kUnderwater: return "Underwater";
  }
  return "unknown";
}

bool acceptable(Outcome o) { return o != Outcome::kUnderwater; }

int preference_rank(Outcome o) {
  switch (o) {
    case Outcome::kUnderwater: return 0;
    case Outcome::kNoDeal: return 1;
    case Outcome::kDeal: return 2;
    case Outcome::kDiscount: return 3;
    case Outcome::kFreeRide: return 4;
  }
  return -1;
}

namespace {

// Classify from the four counts; total counts are the arcs crossing the
// boundary of the vertex/coalition.
Outcome classify_counts(std::size_t in_triggered, std::size_t in_total,
                        std::size_t out_triggered, std::size_t out_total) {
  if (out_triggered == 0) {
    // Paid nothing.
    return in_triggered == 0 ? Outcome::kNoDeal : Outcome::kFreeRide;
  }
  // Paid something.
  if (in_triggered < in_total) return Outcome::kUnderwater;
  // Acquired everything.
  return out_triggered == out_total ? Outcome::kDeal : Outcome::kDiscount;
}

}  // namespace

Outcome classify_party(const graph::Digraph& d, graph::VertexId v,
                       const std::vector<bool>& triggered) {
  if (triggered.size() != d.arc_count()) {
    throw std::invalid_argument("classify_party: trigger vector size mismatch");
  }
  std::size_t in_triggered = 0, out_triggered = 0;
  for (const graph::ArcId a : d.in_arcs(v)) {
    if (triggered[a]) ++in_triggered;
  }
  for (const graph::ArcId a : d.out_arcs(v)) {
    if (triggered[a]) ++out_triggered;
  }
  return classify_counts(in_triggered, d.in_degree(v), out_triggered,
                         d.out_degree(v));
}

std::vector<Outcome> classify_all(const graph::Digraph& d,
                                  const std::vector<bool>& triggered) {
  std::vector<Outcome> out;
  out.reserve(d.vertex_count());
  for (graph::VertexId v = 0; v < d.vertex_count(); ++v) {
    out.push_back(classify_party(d, v, triggered));
  }
  return out;
}

Outcome classify_coalition(const graph::Digraph& d,
                           const std::vector<graph::VertexId>& coalition,
                           const std::vector<bool>& triggered) {
  if (triggered.size() != d.arc_count()) {
    throw std::invalid_argument("classify_coalition: trigger vector size mismatch");
  }
  std::vector<bool> inside(d.vertex_count(), false);
  for (const graph::VertexId v : coalition) inside.at(v) = true;

  std::size_t in_triggered = 0, in_total = 0;
  std::size_t out_triggered = 0, out_total = 0;
  for (graph::ArcId a = 0; a < d.arc_count(); ++a) {
    const auto& arc = d.arc(a);
    const bool head_in = inside[arc.head];
    const bool tail_in = inside[arc.tail];
    if (head_in == tail_in) continue;  // internal or external arc
    if (tail_in) {  // enters the coalition
      ++in_total;
      if (triggered[a]) ++in_triggered;
    } else {  // leaves the coalition
      ++out_total;
      if (triggered[a]) ++out_triggered;
    }
  }
  return classify_counts(in_triggered, in_total, out_triggered, out_total);
}

}  // namespace xswap::swap
