#include "swap/forensics.hpp"

#include <algorithm>

#include "swap/contract.hpp"
#include "swap/engine.hpp"
#include "swap/single_leader_contract.hpp"

namespace xswap::swap {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWithheldContract: return "withheld-contract";
    case FaultKind::kLeaderNeverRevealed: return "leader-never-revealed";
    case FaultKind::kWithheldUnlock: return "withheld-unlock";
  }
  return "unknown";
}

namespace {

// Execution time of the publish transaction that created `id`.
std::optional<sim::Time> publish_time(const chain::Ledger& ledger,
                                      chain::ContractId id) {
  const std::string needle = "as " + chain::contract_address(id);
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.txs) {
      if (tx.succeeded && tx.kind == chain::TxKind::kPublishContract &&
          tx.summary.size() >= needle.size() &&
          tx.summary.compare(tx.summary.size() - needle.size(), needle.size(),
                             needle) == 0) {
        return tx.executed_at;
      }
    }
  }
  return std::nullopt;
}

// Execution time of the first successful call on `id` with the given
// method label ("unlock[0]", "unlock", "refund", ...).
std::optional<sim::Time> call_time(const chain::Ledger& ledger,
                                   chain::ContractId id,
                                   const std::string& method) {
  const std::string summary = method + " on " + chain::contract_address(id);
  for (const chain::Block& block : ledger.blocks()) {
    for (const chain::Transaction& tx : block.txs) {
      if (tx.succeeded && tx.kind == chain::TxKind::kContractCall &&
          tx.summary == summary) {
        return tx.executed_at;
      }
    }
  }
  return std::nullopt;
}

std::optional<sim::Time> unlock_time(const chain::Ledger& ledger,
                                     chain::ContractId id, std::size_t i) {
  const auto general = call_time(ledger, id, "unlock[" + std::to_string(i) + "]");
  return general ? general : call_time(ledger, id, "unlock");
}

}  // namespace

std::vector<ArcEvents> collect_arc_events(
    const SwapSpec& spec,
    const std::map<std::string, const chain::Ledger*>& ledgers) {
  std::vector<ArcEvents> events(spec.digraph.arc_count());
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    ArcEvents& ev = events[a];
    ev.unlocked_at.assign(spec.leaders.size(), std::nullopt);
    ev.unlock_path_len.assign(spec.leaders.size(), 0);

    const chain::Ledger& ledger = *ledgers.at(spec.arcs[a].chain);
    for (const chain::ContractId id : ledger.published_contracts()) {
      const chain::Contract* c = ledger.get_contract(id);
      if (const auto* sc = dynamic_cast<const SwapContract*>(c);
          sc != nullptr && sc->matches_spec(spec, a)) {
        ev.published = publish_time(ledger, id);
        for (std::size_t i = 0; i < spec.leaders.size(); ++i) {
          if (sc->unlocked(i)) {
            ev.unlocked_at[i] = unlock_time(ledger, id, i);
            if (sc->unlocking_key(i).has_value()) {
              ev.unlock_path_len[i] = sc->unlocking_key(i)->path_length();
            }
          }
        }
        ev.claimed = sc->disposition() == Disposition::kClaimed;
        ev.refunded = sc->disposition() == Disposition::kRefunded;
        if (ev.refunded) ev.refunded_at = call_time(ledger, id, "refund");
        break;
      }
      if (const auto* sc = dynamic_cast<const SingleLeaderContract*>(c);
          sc != nullptr && sc->matches_spec(spec, a)) {
        ev.published = publish_time(ledger, id);
        if (sc->unlocked()) {
          ev.unlocked_at[0] = unlock_time(ledger, id, 0);
          ev.unlock_path_len[0] = 0;
        }
        ev.claimed = sc->disposition() == Disposition::kClaimed;
        ev.refunded = sc->disposition() == Disposition::kRefunded;
        if (ev.refunded) ev.refunded_at = call_time(ledger, id, "refund");
        break;
      }
    }
  }
  return events;
}

FaultReport analyze_faults(
    const SwapSpec& spec,
    const std::map<std::string, const chain::Ledger*>& ledgers) {
  FaultReport report;
  report.arcs = collect_arc_events(spec, ledgers);
  report.at_fault.assign(spec.digraph.vertex_count(), false);

  const auto blame = [&](PartyId v, FaultKind kind, std::string detail,
                         sim::Time at) {
    report.findings.push_back(FaultFinding{v, kind, std::move(detail), at});
    report.at_fault[v] = true;
  };

  // ---- Phase One: publication duties ----
  for (PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    // When was v enabled to publish its leaving arcs?
    std::optional<sim::Time> enabled;
    if (spec.is_leader(v)) {
      enabled = spec.start_time;
    } else {
      sim::Time latest = spec.start_time;
      bool all_in = true;
      for (const graph::ArcId a : spec.digraph.in_arcs(v)) {
        if (!report.arcs[a].published.has_value()) {
          all_in = false;
          break;
        }
        latest = std::max(latest, *report.arcs[a].published);
      }
      if (all_in) enabled = latest;
    }
    if (!enabled.has_value()) continue;
    for (const graph::ArcId a : spec.digraph.out_arcs(v)) {
      const auto& pub = report.arcs[a].published;
      if (!pub.has_value() || *pub > *enabled + spec.delta) {
        blame(v, FaultKind::kWithheldContract,
              "arc " + std::to_string(a) + " enabled at t=" +
                  std::to_string(*enabled) + ", contract " +
                  (pub ? "late at t=" + std::to_string(*pub) : "never published"),
              *enabled + spec.delta);
      }
    }
  }

  // ---- Phase Two: reveal and relay duties ----
  for (std::size_t i = 0; i < spec.leaders.size(); ++i) {
    const PartyId leader = spec.leaders[i];
    // Leader enablement: all entering arcs carry contracts.
    std::optional<sim::Time> enabled;
    {
      sim::Time latest = spec.start_time;
      bool all_in = true;
      for (const graph::ArcId a : spec.digraph.in_arcs(leader)) {
        if (!report.arcs[a].published.has_value()) {
          all_in = false;
          break;
        }
        latest = std::max(latest, *report.arcs[a].published);
      }
      if (all_in) enabled = latest;
    }
    bool revealed_anywhere = false;
    for (const auto& ev : report.arcs) {
      if (ev.unlocked_at[i].has_value()) revealed_anywhere = true;
    }
    if (enabled.has_value() && !revealed_anywhere) {
      blame(leader, FaultKind::kLeaderNeverRevealed,
            "secret " + std::to_string(i) + " enabled at t=" +
                std::to_string(*enabled) + ", never revealed on any arc",
            *enabled + spec.delta);
    }

    // Relay duty: v provably knew secret i at time t (a leaving arc of v
    // was unlocked with a key of length |p|); each entering arc of v with
    // a contract should have been unlocked while the extension key
    // (length |p|+1) was still valid.
    for (PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
      std::optional<sim::Time> knew;
      std::size_t knew_plen = 0;
      for (const graph::ArcId a : spec.digraph.out_arcs(v)) {
        const auto& ev = report.arcs[a];
        if (ev.unlocked_at[i].has_value() &&
            (!knew.has_value() || *ev.unlocked_at[i] < *knew)) {
          knew = ev.unlocked_at[i];
          knew_plen = ev.unlock_path_len[i];
        }
      }
      if (!knew.has_value()) continue;
      const sim::Time extension_deadline =
          spec.hashkey_deadline(knew_plen + 1);
      if (*knew + spec.delta >= extension_deadline) continue;  // too tight
      for (const graph::ArcId a : spec.digraph.in_arcs(v)) {
        const auto& ev = report.arcs[a];
        // v's provable window closes at the extension deadline or when
        // the contract settled by refund (possibly for another hashlock),
        // whichever came first.
        if (ev.refunded_at.has_value() && *knew + spec.delta >= *ev.refunded_at) {
          continue;
        }
        if (ev.published.has_value() && !ev.unlocked_at[i].has_value()) {
          blame(v, FaultKind::kWithheldUnlock,
                "knew secret " + std::to_string(i) + " by t=" +
                    std::to_string(*knew) + " but never unlocked arc " +
                    std::to_string(a),
                *knew + spec.delta);
        }
      }
    }
  }

  return report;
}

FaultReport analyze_faults(const SwapEngine& engine) {
  std::map<std::string, const chain::Ledger*> ledgers;
  for (const ArcTerms& terms : engine.spec().arcs) {
    ledgers[terms.chain] = &engine.ledger(terms.chain);
  }
  return analyze_faults(engine.spec(), ledgers);
}

}  // namespace xswap::swap
