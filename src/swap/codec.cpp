#include "swap/codec.hpp"

namespace xswap::swap {

void put_varuint(util::Bytes& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void put_bytes(util::Bytes& out, util::BytesView data) {
  put_varuint(out, data.size());
  util::append(out, data);
}

std::optional<std::uint64_t> Reader::varuint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < data_.size()) {
    const std::uint8_t b = data_[pos_++];
    if (shift >= 63 && (b & 0x7f) > 1) return std::nullopt;  // overflow
    value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return value;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<util::Bytes> Reader::bytes(std::size_t max_len) {
  const auto len = varuint();
  if (!len || *len > max_len || pos_ + *len > data_.size()) return std::nullopt;
  util::Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

std::optional<std::uint8_t> Reader::byte() {
  if (pos_ >= data_.size()) return std::nullopt;
  return data_[pos_++];
}

// ---- Hashkey ----

util::Bytes encode_hashkey(const Hashkey& key) {
  util::Bytes out;
  out.push_back(kCodecVersion);
  put_bytes(out, key.secret);
  put_varuint(out, key.path.size());
  for (const PartyId v : key.path) put_varuint(out, v);
  put_varuint(out, key.sigs.size());
  for (const auto& sig : key.sigs) {
    util::append(out, util::BytesView(sig.bytes.data(), sig.bytes.size()));
  }
  return out;
}

std::optional<Hashkey> decode_hashkey(util::BytesView data) {
  Reader r(data);
  const auto version = r.byte();
  if (!version || *version != kCodecVersion) return std::nullopt;

  Hashkey key;
  const auto secret = r.bytes(64);
  if (!secret) return std::nullopt;
  key.secret = *secret;

  const auto path_len = r.varuint();
  if (!path_len || *path_len == 0 || *path_len > 4096) return std::nullopt;
  key.path.reserve(*path_len);
  for (std::uint64_t i = 0; i < *path_len; ++i) {
    const auto v = r.varuint();
    if (!v || *v > 0xffffffffULL) return std::nullopt;
    key.path.push_back(static_cast<PartyId>(*v));
  }

  const auto sig_count = r.varuint();
  if (!sig_count || *sig_count != *path_len) return std::nullopt;
  key.sigs.reserve(*sig_count);
  for (std::uint64_t i = 0; i < *sig_count; ++i) {
    crypto::Signature sig;
    for (auto& b : sig.bytes) {
      const auto byte = r.byte();
      if (!byte) return std::nullopt;
      b = *byte;
    }
    key.sigs.push_back(sig);
  }
  if (!r.at_end()) return std::nullopt;  // trailing garbage
  return key;
}

// ---- SwapSpec ----

util::Bytes encode_spec(const SwapSpec& spec) {
  util::Bytes out;
  out.push_back(kCodecVersion);

  put_varuint(out, spec.digraph.vertex_count());
  put_varuint(out, spec.digraph.arc_count());
  for (const graph::Arc& arc : spec.digraph.arcs()) {
    put_varuint(out, arc.head);
    put_varuint(out, arc.tail);
  }

  put_varuint(out, spec.party_names.size());
  for (const auto& name : spec.party_names) {
    put_bytes(out, util::str_bytes(name));
  }

  put_varuint(out, spec.leaders.size());
  for (const PartyId v : spec.leaders) put_varuint(out, v);
  for (const auto& h : spec.hashlocks) put_bytes(out, h);

  put_varuint(out, spec.arcs.size());
  for (const ArcTerms& terms : spec.arcs) {
    put_bytes(out, util::str_bytes(terms.chain));
    put_bytes(out, util::str_bytes(terms.asset.symbol));
    put_varuint(out, terms.asset.amount);
    out.push_back(terms.asset.fungible ? 1 : 0);
    put_bytes(out, util::str_bytes(terms.asset.unique_id));
  }

  put_varuint(out, spec.directory.size());
  for (const auto& pk : spec.directory) {
    util::append(out, util::BytesView(pk.bytes.data(), pk.bytes.size()));
  }

  put_varuint(out, spec.start_time);
  put_varuint(out, spec.delta);
  put_varuint(out, spec.diam);
  out.push_back(spec.broadcast ? 1 : 0);
  return out;
}

std::optional<SwapSpec> decode_spec(util::BytesView data) {
  Reader r(data);
  const auto version = r.byte();
  if (!version || *version != kCodecVersion) return std::nullopt;

  SwapSpec spec;
  const auto n = r.varuint();
  const auto m = r.varuint();
  if (!n || !m || *n > 100000 || *m > 1000000) return std::nullopt;
  spec.digraph = graph::Digraph(*n);
  for (std::uint64_t i = 0; i < *m; ++i) {
    const auto head = r.varuint();
    const auto tail = r.varuint();
    if (!head || !tail || *head >= *n || *tail >= *n || *head == *tail) {
      return std::nullopt;
    }
    spec.digraph.add_arc(static_cast<PartyId>(*head),
                         static_cast<PartyId>(*tail));
  }

  const auto name_count = r.varuint();
  if (!name_count || *name_count != *n) return std::nullopt;
  for (std::uint64_t i = 0; i < *name_count; ++i) {
    const auto name = r.bytes();
    if (!name) return std::nullopt;
    spec.party_names.emplace_back(name->begin(), name->end());
  }

  const auto leader_count = r.varuint();
  if (!leader_count || *leader_count > *n) return std::nullopt;
  for (std::uint64_t i = 0; i < *leader_count; ++i) {
    const auto v = r.varuint();
    if (!v || *v >= *n) return std::nullopt;
    spec.leaders.push_back(static_cast<PartyId>(*v));
  }
  for (std::uint64_t i = 0; i < *leader_count; ++i) {
    const auto h = r.bytes(64);
    if (!h) return std::nullopt;
    spec.hashlocks.push_back(*h);
  }

  const auto arc_terms_count = r.varuint();
  if (!arc_terms_count || *arc_terms_count != *m) return std::nullopt;
  for (std::uint64_t i = 0; i < *arc_terms_count; ++i) {
    const auto chain = r.bytes();
    const auto symbol = r.bytes();
    const auto amount = r.varuint();
    const auto fungible = r.byte();
    const auto unique_id = r.bytes();
    if (!chain || !symbol || !amount || !fungible || !unique_id ||
        *fungible > 1) {
      return std::nullopt;
    }
    ArcTerms terms;
    terms.chain.assign(chain->begin(), chain->end());
    terms.asset.symbol.assign(symbol->begin(), symbol->end());
    terms.asset.amount = *amount;
    terms.asset.fungible = *fungible == 1;
    terms.asset.unique_id.assign(unique_id->begin(), unique_id->end());
    spec.arcs.push_back(std::move(terms));
  }

  const auto key_count = r.varuint();
  if (!key_count || *key_count != *n) return std::nullopt;
  for (std::uint64_t i = 0; i < *key_count; ++i) {
    crypto::PublicKey pk;
    for (auto& b : pk.bytes) {
      const auto byte = r.byte();
      if (!byte) return std::nullopt;
      b = *byte;
    }
    spec.directory.push_back(pk);
  }

  const auto start = r.varuint();
  const auto delta = r.varuint();
  const auto diam = r.varuint();
  const auto broadcast = r.byte();
  if (!start || !delta || !diam || !broadcast || *broadcast > 1) {
    return std::nullopt;
  }
  spec.start_time = *start;
  spec.delta = *delta;
  spec.diam = *diam;
  spec.broadcast = *broadcast == 1;
  if (!r.at_end()) return std::nullopt;
  return spec;
}

}  // namespace xswap::swap
