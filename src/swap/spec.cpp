#include "swap/spec.hpp"

#include <set>

#include "graph/fvs.hpp"
#include "graph/paths.hpp"
#include "graph/scc.hpp"
#include "swap/codec.hpp"

namespace xswap::swap {

std::size_t SwapSpec::leader_index(PartyId v) const {
  for (std::size_t i = 0; i < leaders.size(); ++i) {
    if (leaders[i] == v) return i;
  }
  return npos;
}

std::size_t SwapSpec::encoded_size() const {
  return encode_spec(*this).size();
}

std::vector<std::string> validate_spec(const SwapSpec& spec) {
  std::vector<std::string> problems;
  const auto fail = [&](std::string msg) { problems.push_back(std::move(msg)); };

  const std::size_t n = spec.digraph.vertex_count();
  if (n < 2) fail("digraph must have at least 2 parties");
  if (spec.digraph.arc_count() == 0) fail("digraph has no proposed transfers");

  if (!graph::is_strongly_connected(spec.digraph)) {
    fail("digraph is not strongly connected (Theorem 3.5: no atomic protocol exists)");
  }

  // Leaders: distinct, in range, feedback vertex set.
  std::set<PartyId> leader_set(spec.leaders.begin(), spec.leaders.end());
  if (leader_set.size() != spec.leaders.size()) fail("duplicate leaders");
  if (spec.leaders.empty()) fail("leader set is empty");
  bool leaders_in_range = true;
  for (const PartyId v : spec.leaders) {
    if (v >= n) {
      fail("leader id out of range");
      leaders_in_range = false;
    }
  }
  if (leaders_in_range && !spec.leaders.empty() &&
      !graph::is_feedback_vertex_set(spec.digraph, spec.leaders)) {
    fail("leaders are not a feedback vertex set (Theorem 4.12)");
  }

  if (spec.hashlocks.size() != spec.leaders.size()) {
    fail("need exactly one hashlock per leader");
  }
  for (const auto& h : spec.hashlocks) {
    if (h.size() != 32) fail("hashlock is not a 32-byte SHA-256 digest");
  }

  if (spec.party_names.size() != n) fail("party_names size mismatch");
  std::set<std::string> names(spec.party_names.begin(), spec.party_names.end());
  if (names.size() != spec.party_names.size()) fail("duplicate party names");
  for (const auto& name : spec.party_names) {
    if (name.empty()) fail("empty party name");
  }

  if (spec.directory.size() != n) fail("public-key directory size mismatch");

  if (spec.arcs.size() != spec.digraph.arc_count()) {
    fail("arc terms size mismatch");
  }
  for (const ArcTerms& terms : spec.arcs) {
    if (terms.chain.empty()) fail("arc without a chain");
    if (terms.asset.fungible && terms.asset.amount == 0) {
      fail("arc with zero-amount asset");
    }
  }

  if (spec.delta == 0) fail("delta must be positive");

  // The agreed diameter must dominate the true diameter, otherwise
  // honest hashkeys could expire while still propagating. Use the exact
  // value when the digraph is small, the safe |V| bound otherwise.
  std::size_t required = graph::diameter_upper_bound(spec.digraph);
  if (n <= 12) {
    required = graph::diameter(spec.digraph);
  }
  if (spec.diam < required) {
    fail("agreed diameter " + std::to_string(spec.diam) +
         " is below the safe bound " + std::to_string(required));
  }

  return problems;
}

}  // namespace xswap::swap
