#include "swap/party.hpp"

#include <algorithm>
#include <stdexcept>

#include "swap/broadcast.hpp"

namespace xswap::swap {

Party::Party(const SwapSpec& spec, PartyId self, crypto::KeyPair keys,
             ProtocolMode mode, Strategy strategy,
             const std::map<std::string, chain::Ledger*>& ledgers,
             ProtocolCounters* counters, CoalitionPool* coalition_pool)
    : spec_(spec),
      self_(self),
      keys_(std::move(keys)),
      mode_(mode),
      strategy_(strategy),
      ledgers_(ledgers),
      counters_(counters),
      coalition_pool_(coalition_pool),
      arc_contract_(spec.digraph.arc_count()),
      published_(spec.digraph.arc_count(), false),
      known_key_(spec.leaders.size()),
      unlock_submitted_(spec.digraph.arc_count(),
                        std::vector<bool>(spec.leaders.size(), false)),
      claim_submitted_(spec.digraph.arc_count(), false),
      refund_submitted_(spec.digraph.arc_count(), false) {
  if (self_ >= spec.digraph.vertex_count()) {
    throw std::out_of_range("Party: id out of range");
  }
  // Resolve each arc's chain once: tick() polls ledgers every simulated
  // tick, and a by-name map lookup per poll is measurable at batch scale.
  arc_ledgers_.reserve(spec.arcs.size());
  for (const ArcTerms& terms : spec.arcs) {
    const auto it = ledgers_.find(terms.chain);
    if (it == ledgers_.end()) {
      throw std::invalid_argument("Party: missing ledger for chain " + terms.chain);
    }
    arc_ledgers_.push_back(it->second);
  }
  if (spec.broadcast && !ledgers_.count(kBroadcastChain)) {
    throw std::invalid_argument("Party: broadcast spec without broadcast chain");
  }
}

void Party::set_leader_secret(Secret secret) {
  if (!spec_.is_leader(self_)) {
    throw std::logic_error("set_leader_secret: party is not a leader");
  }
  leader_secret_ = std::move(secret);
}

bool Party::crashed(sim::Time now) const {
  if (!strategy_.crash_at.has_value() || now < *strategy_.crash_at) {
    return false;
  }
  // crash_recover: the outage ends once recover_at arrives.
  return !(strategy_.recover_at.has_value() && now >= *strategy_.recover_at);
}

void Party::recover_from_chains(sim::Time now) {
  recovered_ = true;
  // The recoverable-protocol model: volatile memory is gone; only the
  // durable identity — the signing keys and (for a leader) the secret —
  // survives the outage. Everything else is re-derived from the chains,
  // which kept sealing while this party was down. Every action taken on
  // re-derived state is guarded by on-chain contract state (claims need
  // Active + all unlocks, refunds need refundable(now), past-deadline
  // unlocks are skipped), so at worst a resubmission fails as a
  // recorded failed transaction — never a safety violation.
  std::fill(arc_contract_.begin(), arc_contract_.end(), std::nullopt);
  std::fill(published_.begin(), published_.end(), false);
  std::fill(known_key_.begin(), known_key_.end(), std::nullopt);
  for (auto& per_arc : unlock_submitted_) {
    std::fill(per_arc.begin(), per_arc.end(), false);
  }
  std::fill(claim_submitted_.begin(), claim_submitted_.end(), false);
  std::fill(refund_submitted_.begin(), refund_submitted_.end(), false);
  leader_revealed_ = false;
  board_posted_ = false;
  coalition_pool_cursor_ = 0;

  // Rescan before acting: observed contracts restore the Phase-One
  // pebbles, and a leaving arc already carrying a matching contract was
  // published by the pre-crash self — mark it so recovery does not
  // double-publish against an already-spent escrow.
  scan_for_contracts(now);
  for (const graph::ArcId a : spec_.digraph.out_arcs(self_)) {
    if (arc_contract_[a].has_value()) published_[a] = true;
  }
}

chain::Ledger& Party::ledger_for_arc(graph::ArcId arc) const {
  return *arc_ledgers_[arc];
}

void Party::tick(sim::Time now) {
  if (crashed(now)) return;
  if (!recovered_ && strategy_.crash_at.has_value() &&
      strategy_.recover_at.has_value() && now >= *strategy_.recover_at) {
    recover_from_chains(now);
  }

  scan_for_contracts(now);
  phase_one_publish(now);

  // Phase Two: learn secrets, then act on them.
  if (mode_ == ProtocolMode::kGeneral || mode_ == ProtocolMode::kSingleLeader) {
    // Leader reveal: after Phase One locally completes (all entering arcs
    // carry verified contracts), or at start under premature_reveal.
    const std::size_t li = spec_.leader_index(self_);
    if (li != SwapSpec::npos && !known_key_[li].has_value()) {
      const bool ready = strategy_.premature_reveal
                             ? now >= spec_.start_time
                             : all_entering_have_contracts();
      if (ready && leader_secret_.has_value()) {
        if (mode_ == ProtocolMode::kGeneral) {
          known_key_[li] = make_leader_hashkey(*leader_secret_, self_, keys_);
          if (counters_) ++counters_->sign_operations;
        } else {
          // §4.6 needs no signatures: the bare secret is the key.
          Hashkey key;
          key.secret = *leader_secret_;
          key.path = {self_};
          known_key_[li] = std::move(key);
        }
        leader_revealed_ = true;
      }
    }
    learn_from_leaving_arcs(now);
    if (spec_.broadcast) learn_from_broadcast(now);
    share_with_coalition();
  }

  act_unlocks(now);
  act_claims(now);
  act_refunds(now);
}

void Party::scan_for_contracts(sim::Time) {
  // For every incident arc without a recorded contract, scan that arc's
  // chain for a published contract that exactly matches the agreed spec.
  // Non-matching contracts are ignored (a correct one may still appear).
  for (graph::ArcId a = 0; a < spec_.digraph.arc_count(); ++a) {
    if (arc_contract_[a].has_value()) continue;
    const auto& arc = spec_.digraph.arc(a);
    if (arc.head != self_ && arc.tail != self_) continue;  // not my arc
    const chain::Ledger& ledger = ledger_for_arc(a);
    for (const chain::ContractId id : ledger.published_contracts()) {
      const chain::Contract* c = ledger.get_contract(id);
      if (c == nullptr) continue;
      if (mode_ == ProtocolMode::kGeneral) {
        const auto* sc = dynamic_cast<const SwapContract*>(c);
        if (sc != nullptr && sc->matches_spec(spec_, a)) {
          arc_contract_[a] = id;
          break;
        }
      } else {
        const auto* sc = dynamic_cast<const SingleLeaderContract*>(c);
        if (sc != nullptr && sc->matches_spec(spec_, a)) {
          arc_contract_[a] = id;
          break;
        }
      }
    }
  }
}

bool Party::all_entering_have_contracts() const {
  for (const graph::ArcId a : spec_.digraph.in_arcs(self_)) {
    if (!arc_contract_[a].has_value()) return false;
  }
  return true;
}

void Party::phase_one_publish(sim::Time now) {
  if (strategy_.withhold_contracts) return;
  if (now < spec_.start_time) return;

  const bool is_leader = spec_.is_leader(self_);
  // Leaders publish at start; followers once all entering arcs carry
  // verified contracts (§4.5 Phase One).
  if (!is_leader && !all_entering_have_contracts()) return;

  for (const graph::ArcId a : spec_.digraph.out_arcs(self_)) {
    if (!published_[a]) {
      publish_contract_on(a);
      published_[a] = true;
    }
  }
}

void Party::publish_contract_on(graph::ArcId arc) {
  chain::Ledger& ledger = ledger_for_arc(arc);
  // A corrupting deviator publishes a contract over a *different* spec
  // (flipped first hashlock byte); conforming counterparties detect and
  // ignore it, so the arc never gets its pebble.
  std::unique_ptr<chain::Contract> contract;
  std::size_t payload = 0;
  if (strategy_.publish_corrupt_contracts) {
    SwapSpec corrupt = spec_;
    if (!corrupt.hashlocks.empty() && !corrupt.hashlocks[0].empty()) {
      corrupt.hashlocks[0][0] ^= 0x01;
    }
    contract = mode_ == ProtocolMode::kGeneral
                   ? std::unique_ptr<chain::Contract>(
                         std::make_unique<SwapContract>(corrupt, arc))
                   : std::unique_ptr<chain::Contract>(
                         std::make_unique<SingleLeaderContract>(corrupt, arc));
    payload = corrupt.encoded_size();
  } else if (mode_ == ProtocolMode::kGeneral) {
    contract = std::make_unique<SwapContract>(spec_, arc);
    payload = spec_.encoded_size();
  } else {
    contract = std::make_unique<SingleLeaderContract>(spec_, arc);
    // §4.6: no digraph copy on chain, just terms + hashlock + timeout.
    payload = 64;
  }
  ledger.submit_contract(name(), std::move(contract), payload);
}

void Party::adopt_hashkey(std::size_t i, const Hashkey& observed) {
  if (known_key_[i].has_value()) return;
  // Derive a key rooted at self: truncate when self already appears on
  // the observed path (Lemma 4.8's second case), otherwise extend.
  Hashkey mine;
  if (truncate_hashkey(observed, self_, &mine)) {
    known_key_[i] = std::move(mine);
    return;
  }
  if (spec_.broadcast) {
    // Virtual-arc shortcut: rebuild from the leader's inner signature and
    // attach self directly (path (self, leader)).
    Hashkey leader_rooted;
    if (truncate_hashkey(observed, spec_.leaders[i], &leader_rooted)) {
      known_key_[i] = extend_hashkey(leader_rooted, self_, keys_);
      if (counters_) ++counters_->sign_operations;
      return;
    }
  }
  known_key_[i] = extend_hashkey(observed, self_, keys_);
  if (counters_) ++counters_->sign_operations;
}

void Party::learn_from_leaving_arcs(sim::Time) {
  for (const graph::ArcId a : spec_.digraph.out_arcs(self_)) {
    if (!arc_contract_[a].has_value()) continue;
    const chain::Ledger& ledger = ledger_for_arc(a);
    const chain::Contract* c = ledger.get_contract(*arc_contract_[a]);
    if (c == nullptr) continue;
    if (mode_ == ProtocolMode::kGeneral) {
      const auto* sc = dynamic_cast<const SwapContract*>(c);
      for (std::size_t i = 0; i < spec_.leaders.size(); ++i) {
        if (sc->unlocked(i) && !known_key_[i].has_value() &&
            sc->unlocking_key(i).has_value()) {
          adopt_hashkey(i, *sc->unlocking_key(i));
        }
      }
    } else {
      const auto* sc = dynamic_cast<const SingleLeaderContract*>(c);
      if (sc->unlocked() && !known_key_[0].has_value() &&
          sc->revealed_secret().has_value()) {
        // Single-leader mode carries bare secrets; wrap one in a Hashkey
        // shell (path/sigs unused by SingleLeaderContract::unlock).
        Hashkey key;
        key.secret = *sc->revealed_secret();
        key.path = {self_};
        known_key_[0] = std::move(key);
      }
    }
  }
}

void Party::learn_from_broadcast(sim::Time) {
  const chain::Ledger& board_chain = *ledgers_.at(kBroadcastChain);
  for (const chain::ContractId id : board_chain.published_contracts()) {
    const auto* board = dynamic_cast<const BroadcastBoard*>(board_chain.get_contract(id));
    if (board == nullptr) continue;
    for (std::size_t i = 0; i < board->slot_count(); ++i) {
      if (!known_key_[i].has_value() && board->posted(i).has_value()) {
        adopt_hashkey(i, *board->posted(i));
      }
    }
  }
}

void Party::share_with_coalition() {
  if (coalition_pool_ == nullptr) return;
  // Publish newly learned keys to the pool.
  for (const auto& key : known_key_) {
    if (!key.has_value()) continue;
    if (std::find(coalition_pool_->keys.begin(), coalition_pool_->keys.end(),
                  *key) == coalition_pool_->keys.end()) {
      coalition_pool_->keys.push_back(*key);
    }
  }
  // Pull keys learned by partners. Signatures still bind paths: we can
  // only use a pooled key by truncation (we appear on its path) or by
  // extension along a real leaving arc of ours.
  for (; coalition_pool_cursor_ < coalition_pool_->keys.size();
       ++coalition_pool_cursor_) {
    const Hashkey& pooled = coalition_pool_->keys[coalition_pool_cursor_];
    // Which secret slot is this? Match by hashlock.
    for (std::size_t i = 0; i < spec_.hashlocks.size(); ++i) {
      if (known_key_[i].has_value()) continue;
      if (crypto::sha256_bytes(pooled.secret) != spec_.hashlocks[i]) continue;
      Hashkey mine;
      if (truncate_hashkey(pooled, self_, &mine)) {
        known_key_[i] = std::move(mine);
      } else if (!pooled.path.empty() &&
                 spec_.digraph.find_arc(self_, pooled.path.front()).has_value()) {
        known_key_[i] = extend_hashkey(pooled, self_, keys_);
        if (counters_) ++counters_->sign_operations;
      }
    }
  }
}

void Party::act_unlocks(sim::Time now) {
  if (strategy_.withhold_unlocks) return;
  if (strategy_.delay_unlocks_until.has_value() &&
      now < *strategy_.delay_unlocks_until) {
    return;
  }
  for (const graph::ArcId a : spec_.digraph.in_arcs(self_)) {
    if (!arc_contract_[a].has_value()) continue;
    chain::Ledger& ledger = ledger_for_arc(a);
    const chain::ContractId cid = *arc_contract_[a];
    for (std::size_t i = 0; i < spec_.leaders.size(); ++i) {
      if (unlock_submitted_[a][i] || !known_key_[i].has_value()) continue;
      const Hashkey key = *known_key_[i];
      if (mode_ == ProtocolMode::kGeneral) {
        // Skip submissions that would arrive dead (deadline passed).
        if (now >= spec_.hashkey_deadline(key.path_length())) {
          unlock_submitted_[a][i] = true;
          continue;
        }
        ledger.submit_call(
            name(), cid, "unlock[" + std::to_string(i) + "]",
            key.encoded_size(),
            [i, key](chain::Contract& c, const chain::CallContext& ctx) {
              dynamic_cast<SwapContract&>(c).unlock(ctx, i, key);
            });
      } else {
        const Secret secret = key.secret;
        ledger.submit_call(
            name(), cid, "unlock", secret.size(),
            [secret](chain::Contract& c, const chain::CallContext& ctx) {
              dynamic_cast<SingleLeaderContract&>(c).unlock(ctx, secret);
            });
      }
      unlock_submitted_[a][i] = true;
      if (counters_) {
        ++counters_->unlock_submissions;
        counters_->hashkey_bytes_submitted +=
            mode_ == ProtocolMode::kGeneral ? key.encoded_size() : key.secret.size();
      }
    }
  }

  // Broadcast posting: leaders put their leader-rooted key on the board.
  const std::size_t li = spec_.leader_index(self_);
  if (spec_.broadcast && li != SwapSpec::npos && leader_revealed_ &&
      !board_posted_ && known_key_[li].has_value()) {
    chain::Ledger& board_chain = *ledgers_.at(kBroadcastChain);
    for (const chain::ContractId id : board_chain.published_contracts()) {
      if (board_chain.get_contract(id)->type_name() != "board") continue;
      // The leader-rooted key is the degenerate key we created at reveal
      // time (path (self)). known_key_[li] is exactly that.
      const Hashkey key = *known_key_[li];
      board_chain.submit_call(
          name(), id, "post[" + std::to_string(li) + "]", key.encoded_size(),
          [li, key](chain::Contract& c, const chain::CallContext& ctx) {
            dynamic_cast<BroadcastBoard&>(c).post(ctx, li, key);
          });
      board_posted_ = true;
      break;
    }
  }
}

void Party::act_claims(sim::Time) {
  if (strategy_.withhold_claims) return;
  for (const graph::ArcId a : spec_.digraph.in_arcs(self_)) {
    if (claim_submitted_[a] || !arc_contract_[a].has_value()) continue;
    chain::Ledger& ledger = ledger_for_arc(a);
    const chain::ContractId cid = *arc_contract_[a];
    const chain::Contract* c = ledger.get_contract(cid);
    if (c == nullptr) continue;
    bool ready = false;
    if (mode_ == ProtocolMode::kGeneral) {
      const auto* sc = dynamic_cast<const SwapContract*>(c);
      ready = sc->disposition() == Disposition::kActive && sc->all_unlocked();
    } else {
      const auto* sc = dynamic_cast<const SingleLeaderContract*>(c);
      ready = sc->disposition() == Disposition::kActive && sc->unlocked();
    }
    if (!ready) continue;
    if (mode_ == ProtocolMode::kGeneral) {
      ledger.submit_call(name(), cid, "claim", 8,
                         [](chain::Contract& c2, const chain::CallContext& ctx) {
                           dynamic_cast<SwapContract&>(c2).claim(ctx);
                         });
    } else {
      ledger.submit_call(name(), cid, "claim", 8,
                         [](chain::Contract& c2, const chain::CallContext& ctx) {
                           dynamic_cast<SingleLeaderContract&>(c2).claim(ctx);
                         });
    }
    claim_submitted_[a] = true;
  }
}

void Party::act_refunds(sim::Time now) {
  // Refunding is always rational; even deviating strategies do it.
  for (const graph::ArcId a : spec_.digraph.out_arcs(self_)) {
    if (refund_submitted_[a] || !arc_contract_[a].has_value()) continue;
    chain::Ledger& ledger = ledger_for_arc(a);
    const chain::ContractId cid = *arc_contract_[a];
    const chain::Contract* c = ledger.get_contract(cid);
    if (c == nullptr) continue;
    bool ready = false;
    if (mode_ == ProtocolMode::kGeneral) {
      ready = dynamic_cast<const SwapContract*>(c)->refundable(now);
    } else {
      ready = dynamic_cast<const SingleLeaderContract*>(c)->refundable(now);
    }
    if (!ready) continue;
    if (mode_ == ProtocolMode::kGeneral) {
      ledger.submit_call(name(), cid, "refund", 8,
                         [](chain::Contract& c2, const chain::CallContext& ctx) {
                           dynamic_cast<SwapContract&>(c2).refund(ctx);
                         });
    } else {
      ledger.submit_call(name(), cid, "refund", 8,
                         [](chain::Contract& c2, const chain::CallContext& ctx) {
                           dynamic_cast<SingleLeaderContract&>(c2).refund(ctx);
                         });
    }
    refund_submitted_[a] = true;
  }
}

std::vector<bool> Party::known_secrets() const {
  std::vector<bool> out(known_key_.size(), false);
  for (std::size_t i = 0; i < known_key_.size(); ++i) {
    out[i] = known_key_[i].has_value();
  }
  return out;
}

}  // namespace xswap::swap
