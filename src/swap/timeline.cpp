#include "swap/timeline.hpp"

#include <algorithm>
#include <cstdio>

#include "swap/contract.hpp"
#include "swap/engine.hpp"
#include "swap/single_leader_contract.hpp"

namespace xswap::swap {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kPublish: return "publish";
    case EventKind::kUnlock: return "unlock";
    case EventKind::kClaim: return "claim";
    case EventKind::kRefund: return "refund";
  }
  return "unknown";
}

namespace {

// Map every spec-matching contract id on `ledger` to its arc.
std::map<chain::ContractId, graph::ArcId> arc_contracts(
    const SwapSpec& spec, const std::string& chain_name,
    const chain::Ledger& ledger) {
  std::map<chain::ContractId, graph::ArcId> out;
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    if (spec.arcs[a].chain != chain_name) continue;
    for (const chain::ContractId id : ledger.published_contracts()) {
      const chain::Contract* c = ledger.get_contract(id);
      if (const auto* sc = dynamic_cast<const SwapContract*>(c);
          sc != nullptr && sc->matches_spec(spec, a)) {
        out[id] = a;
      } else if (const auto* sl = dynamic_cast<const SingleLeaderContract*>(c);
                 sl != nullptr && sl->matches_spec(spec, a)) {
        out[id] = a;
      }
    }
  }
  return out;
}

// Extract "contract:<id>" from a tx summary, if present.
std::optional<chain::ContractId> target_of(const std::string& summary) {
  const auto pos = summary.rfind("contract:");
  if (pos == std::string::npos) return std::nullopt;
  chain::ContractId id = 0;
  bool any = false;
  for (std::size_t i = pos + 9; i < summary.size(); ++i) {
    if (summary[i] < '0' || summary[i] > '9') break;
    id = id * 10 + static_cast<chain::ContractId>(summary[i] - '0');
    any = true;
  }
  if (!any) return std::nullopt;
  return id;
}

}  // namespace

std::vector<TimelineEvent> collect_timeline(
    const SwapSpec& spec,
    const std::map<std::string, const chain::Ledger*>& ledgers) {
  std::vector<TimelineEvent> events;
  for (const auto& [chain_name, ledger] : ledgers) {
    const auto contracts = arc_contracts(spec, chain_name, *ledger);
    for (const chain::Block& block : ledger->blocks()) {
      for (const chain::Transaction& tx : block.txs) {
        const auto target = target_of(tx.summary);
        if (!target) continue;
        const auto it = contracts.find(*target);
        if (it == contracts.end()) continue;

        TimelineEvent ev;
        ev.at = tx.executed_at;
        ev.arc = it->second;
        ev.chain = chain_name;
        ev.actor = tx.sender;
        ev.succeeded = tx.succeeded;
        ev.detail = tx.summary.substr(0, tx.summary.find(" on "));
        if (tx.kind == chain::TxKind::kPublishContract) {
          ev.kind = EventKind::kPublish;
          ev.detail = "contract";
        } else if (ev.detail.rfind("unlock", 0) == 0) {
          ev.kind = EventKind::kUnlock;
        } else if (ev.detail.rfind("claim", 0) == 0) {
          ev.kind = EventKind::kClaim;
        } else if (ev.detail.rfind("refund", 0) == 0) {
          ev.kind = EventKind::kRefund;
        } else {
          continue;  // unrelated call on a swap contract
        }
        events.push_back(std::move(ev));
      }
    }
  }
  std::sort(events.begin(), events.end());
  return events;
}

std::vector<TimelineEvent> collect_timeline(const SwapEngine& engine) {
  std::map<std::string, const chain::Ledger*> ledgers;
  for (const ArcTerms& terms : engine.spec().arcs) {
    ledgers[terms.chain] = &engine.ledger(terms.chain);
  }
  return collect_timeline(engine.spec(), ledgers);
}

std::string render_timeline(const SwapSpec& spec,
                            const std::vector<TimelineEvent>& events) {
  std::string out =
      "  t/d      event    arc          actor        chain        note\n"
      "  ------------------------------------------------------------\n";
  char line[256];
  for (const TimelineEvent& ev : events) {
    const double t_delta =
        (static_cast<double>(ev.at) - static_cast<double>(spec.start_time)) /
        static_cast<double>(spec.delta);
    const auto& arc = spec.digraph.arc(ev.arc);
    const std::string arc_label = "(" + spec.party_names[arc.head] + "," +
                                  spec.party_names[arc.tail] + ")";
    std::snprintf(line, sizeof line, "  %+-8.2f %-8s %-12s %-12s %-12s %s%s\n",
                  t_delta, to_string(ev.kind), arc_label.c_str(),
                  ev.actor.c_str(), ev.chain.c_str(), ev.detail.c_str(),
                  ev.succeeded ? "" : "  [FAILED]");
    out += line;
  }
  return out;
}

}  // namespace xswap::swap
