// Cross-chain event timelines.
//
// A swap touches one blockchain per arc; understanding a run means
// merging their histories into one chronological view — the tool behind
// the Fig. 1–2 reproduction and the examples' narrations. Events carry
// the arc, chain, kind, actor and execution time; render() prints the
// table in Δ units relative to the protocol start.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "chain/ledger.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

class SwapEngine;

enum class EventKind : std::uint8_t {
  kPublish,  // contract published (escrow taken)
  kUnlock,   // hashlock unlocked
  kClaim,    // asset to counterparty
  kRefund,   // asset back to party
};

const char* to_string(EventKind kind);

/// One protocol-relevant chain event.
struct TimelineEvent {
  sim::Time at = 0;
  EventKind kind = EventKind::kPublish;
  graph::ArcId arc = 0;
  std::string chain;
  std::string actor;    // transaction sender
  std::string detail;   // method label ("unlock[0]", ...)
  bool succeeded = true;

  bool operator<(const TimelineEvent& rhs) const {
    return at != rhs.at ? at < rhs.at : arc < rhs.arc;
  }
};

/// Merge the histories of every arc chain into one sorted timeline.
/// Includes failed transactions (marked) — they are part of the public
/// record and often the interesting part of adversarial runs.
std::vector<TimelineEvent> collect_timeline(
    const SwapSpec& spec,
    const std::map<std::string, const chain::Ledger*>& ledgers);

/// Convenience overload for a finished engine run.
std::vector<TimelineEvent> collect_timeline(const SwapEngine& engine);

/// Render as a fixed-width table; times are shown in Δ units after the
/// protocol start (negative = setup before start).
std::string render_timeline(const SwapSpec& spec,
                            const std::vector<TimelineEvent>& events);

}  // namespace xswap::swap
