// Recurrent swaps (§5): "The swap protocol can be made recurrent by
// having the leaders distribute the next round's hashlocks in Phase Two
// of the previous round."
//
// Realized with per-leader hash chains (S/KEY style). A leader planning R
// rounds draws x_R at random and sets x_{k-1} = H(x_k). Round k uses
// secret x_k, whose hashlock is H(x_k) = x_{k-1} — a value every
// participant learned *when x_{k-1} was revealed in round k-1* (round 1's
// hashlock x_0 is the leader's initial commitment). So Phase Two of round
// k-1 automatically distributes round k's hashlock: no extra messages,
// and nobody can forge a future hashlock without inverting H.
#pragma once

#include <vector>

#include "swap/engine.hpp"
#include "swap/spec.hpp"
#include "util/bytes.hpp"

namespace xswap::swap {

/// A leader's hash chain for R recurrent rounds.
class SecretChain {
 public:
  /// Build a chain for `rounds` rounds from a 32-byte tail seed
  /// (x_rounds = seed; x_{k-1} = H(x_k)).
  SecretChain(Secret tail_seed, std::size_t rounds);

  std::size_t rounds() const { return secrets_.size() - 1; }

  /// The public commitment x_0 = hashlock of round 1.
  const Hashlock& commitment() const { return secrets_.front(); }

  /// Secret for round k (1-based): x_k.
  const Secret& secret(std::size_t k) const { return secrets_.at(k); }

  /// Hashlock for round k (1-based): x_{k-1}, i.e. the value revealed in
  /// round k-1 (or the commitment for k = 1).
  const Hashlock& hashlock(std::size_t k) const { return secrets_.at(k - 1); }

  /// Verify that `revealed` is the round-k secret for a chain with this
  /// commitment: hashing it k times must yield x_0. This is how a
  /// participant audits a whole chain from the single commitment.
  static bool verify_link(const Hashlock& commitment, const Secret& revealed,
                          std::size_t k);

 private:
  std::vector<util::Bytes> secrets_;  // secrets_[k] = x_k, k = 0..rounds
};

/// Per-round result of a recurrent swap.
struct RecurrentRoundResult {
  SwapReport report;
  /// True iff every leader's revealed secret hash-links to its chain
  /// commitment (i.e. the next round's hashlocks were validly
  /// pre-distributed).
  bool chain_links_verified = false;
};

/// Runs R rounds of the same swap digraph, one engine per round, with
/// leader secrets drawn from hash chains. Each round's engine is freshly
/// funded (the simulator substitutes for real recurring liquidity).
class RecurrentSwapRunner {
 public:
  /// Primary constructor: recur a swap the clearing layer produced
  /// (clear_offers) for `rounds` rounds.
  RecurrentSwapRunner(ClearedSwap cleared, std::size_t rounds,
                      EngineOptions options = {});

  /// DEPRECATED thin wrapper: default party names/arc terms for a bare
  /// digraph (see cleared_for_digraph in swap/clearing.hpp).
  RecurrentSwapRunner(graph::Digraph digraph, std::vector<PartyId> leaders,
                      std::size_t rounds, EngineOptions options = {});

  /// Run all rounds; stops early (returning fewer results) only if a
  /// round's spec would be invalid — failed rounds (NoDeal) do not stop
  /// later rounds, since the hashlock schedule is already committed.
  std::vector<RecurrentRoundResult> run_all();

  /// Chain commitments (one per leader), published before round 1.
  std::vector<Hashlock> commitments() const;

 private:
  ClearedSwap cleared_;
  std::size_t rounds_;
  EngineOptions options_;
  std::vector<SecretChain> chains_;  // one per leader
};

}  // namespace xswap::swap
