// The shared broadcast chain of §4.5.
//
// "Each leader v_i publishes its secret s_i on the shared blockchain, and
// each follower monitors that blockchain, triggering its entering arcs
// when it learns the secret." The board stores leader-rooted hashkeys
// (path (v_i), leader signature included) so that a follower can extend
// one into the virtual-arc hashkey (v, v_i) its contracts accept when the
// spec's broadcast option is on.
//
// The broadcast chain can only shorten Phase Two, never replace it: a
// deviating leader may skip the board while unlocking elsewhere, so
// followers keep watching their leaving arcs as usual.
#pragma once

#include <optional>
#include <vector>

#include "chain/contract.hpp"
#include "swap/hashkey.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

/// Name of the shared broadcast chain used by the engine.
inline constexpr const char* kBroadcastChain = "broadcast";

/// On-chain bulletin board for leader secrets.
class BroadcastBoard : public chain::Contract {
 public:
  explicit BroadcastBoard(const SwapSpec& spec);

  std::string type_name() const override { return "board"; }
  std::size_t storage_bytes() const override;
  void on_publish(const chain::CallContext&) override {}  // holds no asset

  /// Leader i posts its leader-rooted hashkey. Only the leader named in
  /// the spec may post to slot i, and the key must verify (degenerate
  /// path (v_i), correct secret, leader signature).
  void post(const chain::CallContext& ctx, std::size_t i, const Hashkey& key);

  /// The posted key for slot i (nullopt until posted).
  const std::optional<Hashkey>& posted(std::size_t i) const {
    return posts_.at(i);
  }
  std::size_t slot_count() const { return posts_.size(); }

 private:
  std::vector<PartyId> leaders_;
  std::vector<Hashlock> hashlocks_;
  std::vector<std::string> leader_names_;
  PartyDirectory directory_;
  std::vector<std::optional<Hashkey>> posts_;
};

}  // namespace xswap::swap
