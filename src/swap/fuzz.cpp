#include "swap/fuzz.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"
#include "swap/invariants.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

// SplitMix64 finalizer: decorrelates the per-index streams so that
// consecutive case indexes share no draw prefix.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kCaseStreamSalt = 0x636173652d67656eull;   // "case-gen"
constexpr std::uint64_t kStrategyStreamSalt = 0x73747261742d7367ull;

/// Digraph for a case; throws std::invalid_argument on unknown topology
/// or sizes the generators reject.
graph::Digraph digraph_for_case(const FuzzCase& c) {
  if (c.topology == "cycle") return graph::cycle(c.parties);
  if (c.topology == "complete") return graph::complete(c.parties);
  if (c.topology == "hub") return graph::hub_and_spokes(c.parties);
  if (c.topology == "twocycles") {
    return graph::two_cycles_sharing_vertex(c.parties, c.cycle_b);
  }
  if (c.topology == "random") {
    // Seeded by the case so the arc set replays with the case.
    util::Rng rng(mix64(c.seed ^ 0x746f706f2d726e64ull));
    return graph::random_strongly_connected(c.parties, c.extra_arcs, rng);
  }
  throw std::invalid_argument("fuzz: unknown topology '" + c.topology + "'");
}

/// KIND token of a `WHO:KIND[:ARG]` adversary spec ("?" if malformed —
/// counting must not throw on a spec the builder will reject anyway).
std::string kind_of(const std::string& spec) {
  const std::size_t who_end = spec.find(':');
  if (who_end == std::string::npos) return "?";
  const std::size_t kind_end = spec.find(':', who_end + 1);
  return spec.substr(who_end + 1, kind_end == std::string::npos
                                      ? std::string::npos
                                      : kind_end - who_end - 1);
}

/// Party index of a `P<k>:...` spec, or npos when not of that shape.
std::size_t party_index_of(const std::string& spec) {
  if (spec.size() < 2 || spec[0] != 'P') return static_cast<std::size_t>(-1);
  std::size_t i = 1, value = 0;
  bool any = false;
  for (; i < spec.size() && spec[i] != ':'; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(spec[i]))) {
      return static_cast<std::size_t>(-1);
    }
    value = value * 10 + static_cast<std::size_t>(spec[i] - '0');
    any = true;
  }
  return any ? value : static_cast<std::size_t>(-1);
}

/// Build the ready-to-run scenario for one case. Strategies are applied
/// post-build (stochastic kinds draw from a case-seeded rng, and timed
/// deviations anchor at the protocol start time, which equals Δ).
Scenario build_scenario(const FuzzCase& c, bool cross_run_locks) {
  const graph::Digraph digraph = digraph_for_case(c);
  EngineOptions options;
  options.delta = c.effective_delta();
  options.seed = c.seed;
  options.net = c.net;
  if (cross_run_locks) {
    options.chain_locks = &chain::ChainLockRegistry::global();
  }

  Scenario scenario = ScenarioBuilder()
                          .offers(offers_for_digraph(digraph))
                          .options(options)
                          .build();

  // Every generator topology is strongly connected, so the book clears
  // into exactly one component and the component seed equals c.seed.
  util::Rng strategy_rng(mix64(c.seed ^ kStrategyStreamSalt));
  const sim::Time start_time = options.delta;  // engine start convention
  for (const std::string& spec : c.adversaries) {
    auto [who, strategy] = parse_adversary(spec, start_time, &strategy_rng);
    scenario.set_strategy(who, strategy);
  }
  return scenario;
}

/// Audit one finished run: invariants per component swap, the planted
/// hook, trigger Δ units, perturbed-submission count.
FuzzCaseResult evaluate_run(const FuzzCase& c, const Scenario& scenario,
                            const BatchReport& report,
                            const FuzzOptions& options) {
  FuzzCaseResult result;
  result.fuzz_case = c;
  result.all_triggered = report.all_triggered;
  const sim::Duration delta = c.effective_delta();
  for (std::size_t i = 0; i < report.swaps.size(); ++i) {
    const SwapEngine& engine = scenario.engine(i);
    const InvariantReport audit = check_all(engine, report.swaps[i]);
    for (const std::string& v : audit.violations) {
      result.violations.push_back("swap " + std::to_string(i) + ": " + v);
    }
    if (report.swaps[i].all_triggered) {
      const sim::Time start = engine.spec().start_time;
      const sim::Time t = report.swaps[i].last_trigger_time;
      result.trigger_delta_units.push_back(
          t <= start ? 0 : (t - start + delta - 1) / delta);
    }
    for (const std::string& name : engine.chain_names()) {
      result.perturbed_submissions +=
          engine.ledger(name).perturbed_submissions();
    }
  }
  if (options.planted_violation) {
    if (auto v = options.planted_violation(c, report)) {
      result.violations.push_back("planted: " + *v);
    }
  }
  return result;
}

/// Arc count of each topology (for partition chain-name draws).
std::uint64_t arc_count_of(const FuzzCase& c) {
  const std::uint64_t n = c.vertex_count();
  if (c.topology == "complete") return n * (n - 1);
  if (c.topology == "hub") return 2 * (n - 1);
  if (c.topology == "twocycles") return c.parties + c.cycle_b;
  if (c.topology == "random") return c.parties + c.extra_arcs;
  return n;  // cycle
}

/// Drop adversaries that name parties a shrunk topology no longer has,
/// and clamp random-topology extras to what the generator can place.
void normalize_case(FuzzCase& c) {
  const std::size_t vertexes = c.vertex_count();
  c.adversaries.erase(
      std::remove_if(c.adversaries.begin(), c.adversaries.end(),
                     [&](const std::string& spec) {
                       return party_index_of(spec) >= vertexes;
                     }),
      c.adversaries.end());
  if (c.topology == "random") {
    const std::uint64_t max_extra =
        static_cast<std::uint64_t>(c.parties) * (c.parties - 1) - c.parties;
    c.extra_arcs = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(c.extra_arcs, max_extra));
  }
}

/// One round of shrink candidates, ordered biggest-win first. Each is a
/// strictly "smaller" case: fewer parties, fewer arcs, fewer
/// adversaries, weaker network faults, tighter Δ.
std::vector<FuzzCase> shrink_candidates(const FuzzCase& c) {
  std::vector<FuzzCase> out;
  const auto push = [&](FuzzCase cand) {
    normalize_case(cand);
    out.push_back(std::move(cand));
  };

  if (c.parties > 2) {
    FuzzCase cand = c;
    cand.parties -= 1;
    push(std::move(cand));
  }
  if (c.topology == "twocycles" && c.cycle_b > 2) {
    FuzzCase cand = c;
    cand.cycle_b -= 1;
    push(std::move(cand));
  }
  if (c.extra_arcs > 0) {
    FuzzCase cand = c;
    cand.extra_arcs = 0;
    push(std::move(cand));
    if (c.extra_arcs > 1) {
      cand = c;
      cand.extra_arcs /= 2;
      push(std::move(cand));
    }
  }
  for (std::size_t i = 0; i < c.adversaries.size(); ++i) {
    FuzzCase cand = c;
    cand.adversaries.erase(cand.adversaries.begin() +
                           static_cast<std::ptrdiff_t>(i));
    push(std::move(cand));
  }
  if (!c.net.partitions.empty()) {
    FuzzCase cand = c;
    cand.net.partitions.clear();
    cand.delta = 0;  // stored Δ was sized for the stronger faults
    push(std::move(cand));
  }
  if (c.net.drop_num > 0 && c.net.max_retries > 0) {
    FuzzCase cand = c;
    cand.net.drop_num = 0;
    cand.net.max_retries = 0;
    cand.delta = 0;
    push(std::move(cand));
  }
  if (c.net.jitter != JitterKind::kNone && c.net.max_jitter > 0) {
    FuzzCase cand = c;
    cand.net.jitter = JitterKind::kNone;
    cand.net.max_jitter = 0;
    cand.delta = 0;
    push(std::move(cand));
    if (c.net.max_jitter > 1) {
      cand = c;
      cand.net.max_jitter /= 2;
      cand.delta = 0;
      push(std::move(cand));
    }
  }
  if (c.delta > 0) {
    FuzzCase cand = c;
    cand.delta = 0;  // fall back to the computed minimal safe Δ
    if (cand.effective_delta() < c.delta) push(std::move(cand));
  }
  return out;
}

// ---- Minimal JSON reader (seed files only; no external deps) ----
//
// Supports exactly what case_to_json emits: objects, arrays, strings
// with \" \\ escapes, and non-negative integers. Anything else is a
// parse error. ~100 lines beats an external dependency the container
// cannot install.

struct JsonValue {
  enum class Kind { kNull, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  std::uint64_t number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("fuzz seed file: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (std::isdigit(static_cast<unsigned char>(c))) return number();
    fail("unexpected character");
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace_back(std::move(key.string), value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        if (e == '"' || e == '\\') {
          v.string.push_back(e);
        } else {
          fail("unsupported string escape");
        }
      } else {
        v.string.push_back(c);
      }
    }
  }

  JsonValue number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    bool any = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const auto digit = static_cast<std::uint64_t>(text_[pos_] - '0');
      // Seed files are hand- or tool-written; a value past 2^64-1 must
      // be a diagnosable mistake, not a silent wrap to a different case.
      if (v.number > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
        fail("number does not fit in 64 bits");
      }
      v.number = v.number * 10 + digit;
      ++pos_;
      any = true;
    }
    if (!any) fail("expected a number");
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

std::uint64_t require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument("fuzz seed file: missing numeric field '" +
                                key + "'");
  }
  return v->number;
}

std::string require_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::kString) {
    throw std::invalid_argument("fuzz seed file: missing string field '" +
                                key + "'");
  }
  return v->string;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

std::string jitter_name(JitterKind kind) {
  switch (kind) {
    case JitterKind::kUniform: return "uniform";
    case JitterKind::kGeometric: return "geometric";
    case JitterKind::kNone: break;
  }
  return "none";
}

JitterKind jitter_from_name(const std::string& name) {
  if (name == "none") return JitterKind::kNone;
  if (name == "uniform") return JitterKind::kUniform;
  if (name == "geometric") return JitterKind::kGeometric;
  throw std::invalid_argument("fuzz seed file: unknown jitter kind '" + name +
                              "'");
}

}  // namespace

sim::Duration FuzzCase::effective_delta() const {
  if (delta > 0) return delta;
  // Default engine timing: seal_period 1, chain_submit_delay 0; Δ comes
  // from the same min_safe_delta bound the engine enforces and never
  // drops below the engine floor of 4.
  return std::max<sim::Duration>(4, net.min_safe_delta(1));
}

FuzzCase case_from_seed(const FuzzOptions& options, std::uint64_t index) {
  FuzzCase c;
  c.master_seed = options.seed;
  c.index = index;
  util::Rng rng(mix64(options.seed ^ kCaseStreamSalt) ^
                mix64(index * 0x9e3779b97f4a7c15ull + 1));
  c.seed = rng.next_u64() | 1;

  const std::uint32_t lo = std::max<std::uint32_t>(2, options.min_parties);
  const std::uint32_t hi = std::max(lo, options.max_parties);

  // Topology mix: cycles (the paper's canonical case) get the biggest
  // share; complete digraphs are clamped small (arc count is n·(n−1)).
  const std::uint64_t topo = rng.next_below(100);
  if (topo < 30) {
    c.topology = "cycle";
    c.parties = static_cast<std::uint32_t>(rng.next_range(lo, hi));
  } else if (topo < 55) {
    c.topology = "random";
    c.parties = static_cast<std::uint32_t>(rng.next_range(lo, hi));
    c.extra_arcs = static_cast<std::uint32_t>(rng.next_below(c.parties + 1));
  } else if (topo < 70) {
    c.topology = "hub";
    c.parties = static_cast<std::uint32_t>(rng.next_range(lo, hi));
  } else if (topo < 85) {
    c.topology = "twocycles";
    const std::uint32_t loop_hi = std::max<std::uint32_t>(2, hi - 1);
    c.parties = static_cast<std::uint32_t>(rng.next_range(2, loop_hi));
    c.cycle_b = static_cast<std::uint32_t>(rng.next_range(2, loop_hi));
  } else {
    c.topology = "complete";
    c.parties = static_cast<std::uint32_t>(
        rng.next_range(2, std::min<std::uint32_t>(hi, 5)));
  }

  // Adversaries: 0–2 parties deviate; stochastic kinds get the same
  // weight as the deterministic ones. Duplicate WHO draws are fine
  // (latest override wins, deterministically).
  const std::uint32_t vertexes = c.vertex_count();
  const std::uint64_t adversary_count = rng.next_below(3);
  static const char* const kKinds[] = {"withhold", "silent",   "corrupt",
                                       "reveal",   "crash",    "late",
                                       "flip",     "crashrand", "equivocate"};
  for (std::uint64_t a = 0; a < adversary_count; ++a) {
    const std::uint64_t who = rng.next_below(vertexes);
    const std::string kind = kKinds[rng.next_below(std::size(kKinds))];
    std::string spec = "P" + std::to_string(who) + ":" + kind;
    if (kind == "crash" || kind == "late" || kind == "crashrand") {
      // Tick offsets relative to start; Δ ≥ 4, so this spans a few Δ.
      spec += ":" + std::to_string(rng.next_below(6ull * vertexes + 1));
    } else if (kind == "flip" || kind == "equivocate") {
      spec += ":" + std::to_string(rng.next_range(25, 75));
    }
    c.adversaries.push_back(std::move(spec));
  }

  // Network profile. Partition windows need Δ, and Δ needs the model's
  // worst case, so partition DURATIONS are drawn before Δ and the
  // window PLACEMENTS after.
  c.net.seed = rng.next_u64();
  std::vector<sim::Duration> partition_durations;
  bool partition_all_chains = false;
  const std::uint64_t profile = rng.next_below(6);
  switch (profile) {
    case 0:  // pristine network
      break;
    case 1:
      c.net.jitter = JitterKind::kUniform;
      c.net.max_jitter = rng.next_range(1, 3);
      break;
    case 2:
      c.net.jitter = JitterKind::kGeometric;
      c.net.max_jitter = rng.next_range(1, 4);
      break;
    case 3:
      c.net.drop_num = static_cast<std::uint32_t>(rng.next_range(5, 25));
      c.net.retry_delay = 1;
      c.net.max_retries = static_cast<std::uint32_t>(rng.next_range(1, 3));
      break;
    case 4: {
      const std::uint64_t windows = rng.next_range(1, 2);
      for (std::uint64_t w = 0; w < windows; ++w) {
        partition_durations.push_back(rng.next_range(1, 3));
      }
      partition_all_chains = rng.next_chance(1, 2);
      break;
    }
    default:  // mixed: mild jitter + mild drops
      c.net.jitter = JitterKind::kUniform;
      c.net.max_jitter = rng.next_range(1, 2);
      c.net.drop_num = static_cast<std::uint32_t>(rng.next_range(5, 15));
      c.net.retry_delay = 1;
      c.net.max_retries = static_cast<std::uint32_t>(rng.next_range(1, 2));
      break;
  }

  // Δ via the shared min_safe_delta bound (never re-derived from the
  // individual fault knobs — xswap_lint's Δ-discipline rule): probe the
  // drawn profile with the partition durations parked at placeholder
  // windows, since placement itself needs Δ. The rng draw order below
  // is unchanged, so pinned corpus seeds replay bit-for-bit.
  NetworkModel probe = c.net;
  for (const sim::Duration d : partition_durations) {
    probe.partitions.push_back(Partition{"", 0, d});
  }
  c.delta = std::max<sim::Duration>(4, probe.min_safe_delta(1));

  // Place the partition windows inside the protocol's active span
  // [Δ, (2·n + 1)·Δ] — n upper-bounds diam, so deadlines land in there.
  for (const sim::Duration duration : partition_durations) {
    Partition p;
    if (!partition_all_chains) {
      p.chain = "chain-" + std::to_string(rng.next_below(arc_count_of(c)));
    }
    p.from = rng.next_range(c.delta, c.delta * (2ull * vertexes + 1));
    p.until = p.from + duration;
    c.net.partitions.push_back(std::move(p));
  }

  // Crash-recovery adversary. Drawn LAST, after every pre-existing
  // field, so the draw streams above — and therefore every pinned
  // corpus seed — replay bit-for-bit: 1 case in 5 adds a party that
  // crashes at a seeded tick and comes back after a bounded outage with
  // volatile memory wiped (Strategy::recover_at).
  if (rng.next_below(5) == 0) {
    const std::uint64_t who = rng.next_below(vertexes);
    const std::uint64_t at = rng.next_below(6ull * vertexes + 1);
    const std::uint64_t outage = rng.next_range(1, 2 * c.delta);
    c.adversaries.push_back("P" + std::to_string(who) + ":crash_recover:" +
                            std::to_string(at) + ":" + std::to_string(outage));
  }
  return c;
}

FuzzCaseResult run_case(const FuzzCase& fuzz_case, const FuzzOptions& options) {
  Scenario scenario = build_scenario(fuzz_case, /*cross_run_locks=*/false);
  const BatchReport report = scenario.run();
  return evaluate_run(fuzz_case, scenario, report, options);
}

FuzzFailure shrink_case(const FuzzCaseResult& failing,
                        const FuzzOptions& options) {
  FuzzFailure out;
  out.original = failing;
  out.minimal = failing.fuzz_case;
  out.minimal_violations = failing.violations;

  // Greedy fixpoint: take the first smaller candidate that still
  // violates, restart from it, stop when a full round yields nothing
  // (or the attempt budget runs out).
  bool progress = true;
  while (progress && out.shrink_attempts < options.max_shrink_attempts) {
    progress = false;
    for (FuzzCase& cand : shrink_candidates(out.minimal)) {
      if (out.shrink_attempts >= options.max_shrink_attempts) break;
      ++out.shrink_attempts;
      std::vector<std::string> violations;
      try {
        violations = run_case(cand, options).violations;
      } catch (const std::exception&) {
        continue;  // unbuildable candidate — not a valid reproducer
      }
      if (violations.empty()) continue;
      out.minimal = std::move(cand);
      out.minimal_violations = std::move(violations);
      progress = true;
      break;
    }
  }
  return out;
}

FuzzSummary fuzz_sweep(const FuzzOptions& options) {
  const auto started = std::chrono::steady_clock::now();
  FuzzSummary summary;

  std::vector<FuzzCase> cases;
  cases.reserve(options.runs);
  for (std::uint64_t i = 0; i < options.runs; ++i) {
    cases.push_back(case_from_seed(options, i));
    for (const std::string& spec : cases.back().adversaries) {
      summary.strategy_counts[kind_of(spec)] += 1;
    }
  }

  std::shared_ptr<Executor> pool;
  if (options.jobs > 1) {
    pool = ExecutorRegistry::instance().shared_pool(options.jobs);
  }

  const std::size_t chunk = std::max<std::size_t>(1, options.chunk);
  for (std::size_t begin = 0; begin < cases.size(); begin += chunk) {
    const std::size_t end = std::min(cases.size(), begin + chunk);

    // Build the chunk's scenarios up front, run them as one fleet (work
    // stealing overlaps straggler tails), then audit in case order so
    // the violation list and histogram are executor-independent.
    std::vector<Scenario> fleet;
    fleet.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      fleet.push_back(build_scenario(cases[i], /*cross_run_locks=*/
                                     options.jobs > 1));
    }
    std::vector<BatchReport> batches;
    if (pool) {
      FleetOptions fleet_options;
      fleet_options.pool = pool;
      fleet_options.schedule = FleetSchedule::kStealing;
      FleetReport fleet_report = run_fleet(fleet, fleet_options);
      batches = std::move(fleet_report.batches);
    } else {
      batches.reserve(fleet.size());
      for (Scenario& scenario : fleet) batches.push_back(scenario.run());
    }

    for (std::size_t i = begin; i < end; ++i) {
      const FuzzCaseResult result =
          evaluate_run(cases[i], fleet[i - begin], batches[i - begin], options);
      summary.runs += 1;
      summary.swaps += batches[i - begin].swaps.size();
      summary.swaps_fully_triggered += batches[i - begin].swaps_fully_triggered;
      summary.perturbed_submissions += result.perturbed_submissions;
      for (const std::uint64_t units : result.trigger_delta_units) {
        summary.trigger_histogram[units] += 1;
      }
      if (!result.violations.empty()) {
        if (options.shrink) {
          summary.failures.push_back(shrink_case(result, options));
        } else {
          FuzzFailure failure;
          failure.original = result;
          failure.minimal = result.fuzz_case;
          failure.minimal_violations = result.violations;
          summary.failures.push_back(std::move(failure));
        }
      }
    }
  }

  summary.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - started)
                        .count();
  return summary;
}

std::string case_to_json(const FuzzCase& c) {
  std::string out = "{\n";
  out += "  \"schema\": " + std::to_string(kFuzzSeedSchemaVersion) + ",\n";
  out += "  \"master_seed\": " + std::to_string(c.master_seed) + ",\n";
  out += "  \"index\": " + std::to_string(c.index) + ",\n";
  out += "  \"seed\": " + std::to_string(c.seed) + ",\n";
  out += "  \"topology\": ";
  append_json_string(out, c.topology);
  out += ",\n";
  out += "  \"parties\": " + std::to_string(c.parties) + ",\n";
  out += "  \"cycle_b\": " + std::to_string(c.cycle_b) + ",\n";
  out += "  \"extra_arcs\": " + std::to_string(c.extra_arcs) + ",\n";
  out += "  \"delta\": " + std::to_string(c.delta) + ",\n";
  out += "  \"adversaries\": [";
  for (std::size_t i = 0; i < c.adversaries.size(); ++i) {
    if (i > 0) out += ", ";
    append_json_string(out, c.adversaries[i]);
  }
  out += "],\n";
  out += "  \"net\": {\n";
  out += "    \"seed\": " + std::to_string(c.net.seed) + ",\n";
  out += "    \"jitter\": ";
  append_json_string(out, jitter_name(c.net.jitter));
  out += ",\n";
  out += "    \"max_jitter\": " + std::to_string(c.net.max_jitter) + ",\n";
  out += "    \"geo_num\": " + std::to_string(c.net.geo_num) + ",\n";
  out += "    \"geo_den\": " + std::to_string(c.net.geo_den) + ",\n";
  out += "    \"drop_num\": " + std::to_string(c.net.drop_num) + ",\n";
  out += "    \"drop_den\": " + std::to_string(c.net.drop_den) + ",\n";
  out += "    \"retry_delay\": " + std::to_string(c.net.retry_delay) + ",\n";
  out += "    \"max_retries\": " + std::to_string(c.net.max_retries) + ",\n";
  out += "    \"partitions\": [";
  for (std::size_t i = 0; i < c.net.partitions.size(); ++i) {
    const Partition& p = c.net.partitions[i];
    if (i > 0) out += ", ";
    out += "{\"chain\": ";
    append_json_string(out, p.chain);
    out += ", \"from\": " + std::to_string(p.from);
    out += ", \"until\": " + std::to_string(p.until) + "}";
  }
  out += "]\n  }\n}\n";
  return out;
}

FuzzCase case_from_json(const std::string& json) {
  const JsonValue root = JsonParser(json).parse();
  if (root.kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("fuzz seed file: top level must be an object");
  }

  // Schema gate FIRST: never interpret a foreign file's fields.
  const JsonValue* schema = root.find("schema");
  if (!schema || schema->kind != JsonValue::Kind::kNumber) {
    throw std::invalid_argument(
        "fuzz seed file: missing \"schema\" version field (expected " +
        std::to_string(kFuzzSeedSchemaVersion) + ")");
  }
  if (schema->number != kFuzzSeedSchemaVersion) {
    throw std::invalid_argument(
        "fuzz seed file: schema version " + std::to_string(schema->number) +
        " does not match supported version " +
        std::to_string(kFuzzSeedSchemaVersion));
  }

  FuzzCase c;
  c.master_seed = require_number(root, "master_seed");
  c.index = require_number(root, "index");
  c.seed = require_number(root, "seed");
  c.topology = require_string(root, "topology");
  c.parties = static_cast<std::uint32_t>(require_number(root, "parties"));
  c.cycle_b = static_cast<std::uint32_t>(require_number(root, "cycle_b"));
  c.extra_arcs = static_cast<std::uint32_t>(require_number(root, "extra_arcs"));
  c.delta = require_number(root, "delta");

  const JsonValue* adversaries = root.find("adversaries");
  if (!adversaries || adversaries->kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument("fuzz seed file: missing \"adversaries\" list");
  }
  for (const JsonValue& v : adversaries->array) {
    if (v.kind != JsonValue::Kind::kString) {
      throw std::invalid_argument(
          "fuzz seed file: adversaries must be strings");
    }
    c.adversaries.push_back(v.string);
  }

  const JsonValue* net = root.find("net");
  if (!net || net->kind != JsonValue::Kind::kObject) {
    throw std::invalid_argument("fuzz seed file: missing \"net\" object");
  }
  c.net.seed = require_number(*net, "seed");
  c.net.jitter = jitter_from_name(require_string(*net, "jitter"));
  c.net.max_jitter = require_number(*net, "max_jitter");
  c.net.geo_num = static_cast<std::uint32_t>(require_number(*net, "geo_num"));
  c.net.geo_den = static_cast<std::uint32_t>(require_number(*net, "geo_den"));
  c.net.drop_num = static_cast<std::uint32_t>(require_number(*net, "drop_num"));
  c.net.drop_den = static_cast<std::uint32_t>(require_number(*net, "drop_den"));
  c.net.retry_delay = require_number(*net, "retry_delay");
  c.net.max_retries =
      static_cast<std::uint32_t>(require_number(*net, "max_retries"));
  const JsonValue* partitions = net->find("partitions");
  if (!partitions || partitions->kind != JsonValue::Kind::kArray) {
    throw std::invalid_argument(
        "fuzz seed file: missing \"partitions\" list in \"net\"");
  }
  for (const JsonValue& v : partitions->array) {
    if (v.kind != JsonValue::Kind::kObject) {
      throw std::invalid_argument(
          "fuzz seed file: partitions must be objects");
    }
    Partition p;
    p.chain = require_string(v, "chain");
    p.from = require_number(v, "from");
    p.until = require_number(v, "until");
    c.net.partitions.push_back(std::move(p));
  }
  return c;
}

void write_case_file(const FuzzCase& fuzz_case, const std::string& path) {
  // Reproducer files are debugging artifacts, not durable ledger state —
  // no replay/crc guarantee needed, so plain streams are fine here.
  std::ofstream out(path, std::ios::binary | std::ios::trunc);  // xswap-lint: allow(raw-io)
  if (!out) {
    throw std::runtime_error("fuzz: cannot open '" + path + "' for writing");
  }
  out << case_to_json(fuzz_case);
  if (!out.flush()) {
    throw std::runtime_error("fuzz: write to '" + path + "' failed");
  }
}

FuzzCase read_case_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);  // xswap-lint: allow(raw-io)
  if (!in) {
    throw std::runtime_error("fuzz: cannot open '" + path + "' for reading");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return case_from_json(buffer.str());
}

}  // namespace xswap::swap
