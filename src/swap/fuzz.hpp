// Seeded invariant fuzzer (ROADMAP item 5b): stochastic adversaries ×
// topology × network timing, with every run audited by check_all.
//
// The paper proves Theorems 4.7 (liveness: every trigger lands by
// start + 2·diam·Δ) and 4.9 (safety: no conforming party ends
// Underwater) for EVERY digraph, EVERY deviation, and EVERY Δ-bounded
// message schedule. Hand-picked books and deterministic adversaries
// only sample that space; the fuzzer sweeps it: a master seed expands
// into N fully-determined cases (FuzzCase), each case builds a random
// offer book (graph::generators), assigns seeded stochastic strategies
// (swap/strategy.hpp `flip`/`crashrand`/`equivocate` plus the classic
// kinds), perturbs every chain with a seeded NetworkModel
// (swap/netmodel.hpp), runs through the fleet executor for throughput,
// and audits the paper's guarantees with swap/invariants.hpp.
//
// Everything derives from (master seed, index): the same seed replays
// the same cases bit-for-bit on any executor, the violation list and
// the trigger-time histogram included. On a violation the sweep shrinks
// the failing case — fewer parties, fewer arcs, fewer adversaries,
// weaker faults — to a minimal reproducer and emits it as a replayable
// JSON seed file (schema-versioned; see case_to_json).
//
// Expected-trigger-time reporting follows the Herman-protocol analysis
// style (PAPERS.md): the histogram buckets each swap's last trigger in
// Δ units after protocol start, so distributions are comparable across
// cases with different absolute Δ.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "swap/netmodel.hpp"
#include "swap/scenario.hpp"

namespace xswap::swap {

/// Version of the JSON seed-file schema. Bump on any incompatible
/// change; case_from_json rejects files whose "schema" field does not
/// match (a clear error instead of misinterpreting foreign fields).
inline constexpr std::uint64_t kFuzzSeedSchemaVersion = 1;

/// One fully-determined fuzz case. Every field is plain data, so a case
/// round-trips through JSON and replays bit-for-bit; run_case() derives
/// everything else (digraph, offers, strategies, fault streams) from
/// these fields alone.
struct FuzzCase {
  // Provenance (informational; replay does not depend on them).
  std::uint64_t master_seed = 0;
  std::uint64_t index = 0;

  /// Engine seed: keys, secrets, strategy draws, fault streams.
  std::uint64_t seed = 1;

  /// Topology family: "cycle" | "complete" | "hub" | "twocycles" |
  /// "random" (graph::generators). For "twocycles", `parties` is the
  /// first loop's length and `cycle_b` the second's (they share one
  /// vertex); for everything else `cycle_b` is 0 and `parties` is the
  /// vertex count. `extra_arcs` applies to "random" only.
  std::string topology = "cycle";
  std::uint32_t parties = 3;
  std::uint32_t cycle_b = 0;
  std::uint32_t extra_arcs = 0;

  /// Δ in ticks; 0 means the safe bound 2·(seal + worst-case fault
  /// delay) is computed at run time (generated cases store it
  /// explicitly so seed files are self-describing).
  sim::Duration delta = 0;

  /// Adversary assignments as `WHO:KIND[:ARG]` specs (the
  /// strategy_from_spec registry, stochastic kinds included). Parsed in
  /// order against one case-seeded rng, so draws replay exactly.
  std::vector<std::string> adversaries;

  /// Network faults for every chain of the run.
  NetworkModel net;

  /// Total vertex count (accounts for the twocycles shared vertex).
  std::uint32_t vertex_count() const {
    return topology == "twocycles" ? parties + cycle_b - 1 : parties;
  }

  /// Δ actually used: the stored value, or the computed safe bound.
  sim::Duration effective_delta() const;
};

/// Sweep configuration.
struct FuzzOptions {
  std::uint64_t seed = 20180842;  // master seed
  std::size_t runs = 100;
  std::size_t jobs = 1;      // >1 runs chunks through the fleet executor
  std::size_t chunk = 32;    // scenarios per fleet batch (memory bound)
  std::uint32_t min_parties = 3;
  std::uint32_t max_parties = 8;
  bool shrink = true;        // shrink failing cases in the sweep result
  std::size_t max_shrink_attempts = 200;

  /// Test-only synthetic violation hook: evaluated after every run; a
  /// returned string joins that case's violation list exactly like a
  /// real invariant failure, so the shrinking and seed-file paths can
  /// be exercised without a protocol bug. Production sweeps leave it
  /// unset.
  std::function<std::optional<std::string>(const FuzzCase&,
                                           const BatchReport&)>
      planted_violation;
};

/// Outcome of one case.
struct FuzzCaseResult {
  FuzzCase fuzz_case;
  std::vector<std::string> violations;  // empty = all invariants hold
  bool all_triggered = false;
  /// Last trigger of each fully-triggered component swap, in Δ units
  /// after protocol start (rounded up) — the histogram contribution.
  std::vector<std::uint64_t> trigger_delta_units;
  std::size_t perturbed_submissions = 0;
};

/// A failing case together with its shrunk minimal reproducer.
struct FuzzFailure {
  FuzzCaseResult original;
  FuzzCase minimal;                           // == original case if !shrink
  std::vector<std::string> minimal_violations;
  std::size_t shrink_attempts = 0;
};

/// Aggregated sweep result. All fields except wall_ms are functions of
/// (options.seed, options.runs, generation knobs) only — identical
/// across jobs counts and executors.
struct FuzzSummary {
  std::size_t runs = 0;
  std::size_t swaps = 0;
  std::size_t swaps_fully_triggered = 0;
  std::size_t perturbed_submissions = 0;
  std::vector<FuzzFailure> failures;
  /// last-trigger time (Δ units after start, rounded up) → swap count.
  std::map<std::uint64_t, std::size_t> trigger_histogram;
  /// adversary KIND → number of assignments across all cases.
  std::map<std::string, std::size_t> strategy_counts;
  double wall_ms = 0.0;

  bool ok() const { return failures.empty(); }
};

/// Expand (master seed, index) into a fully-determined case. Pure:
/// depends only on its arguments and the generation knobs in `options`
/// (min/max parties).
FuzzCase case_from_seed(const FuzzOptions& options, std::uint64_t index);

/// Build and run one case serially; audit with check_all (plus the
/// planted hook, if any). Throws std::invalid_argument on a case that
/// cannot build (unknown topology, bad adversary spec, too-small Δ).
FuzzCaseResult run_case(const FuzzCase& fuzz_case,
                        const FuzzOptions& options = {});

/// The full sweep: generate options.runs cases, run them (through the
/// fleet executor when options.jobs > 1), audit every run, shrink any
/// failures. Deterministic modulo wall_ms.
FuzzSummary fuzz_sweep(const FuzzOptions& options);

/// Greedy shrink: repeatedly try smaller variants (fewer parties,
/// fewer arcs, fewer adversaries, weaker network faults) and keep any
/// that still violates, until a fixpoint or the attempt cap. Returns
/// the minimal case, its violations, and the attempts spent.
FuzzFailure shrink_case(const FuzzCaseResult& failing,
                        const FuzzOptions& options);

// ---- Replayable JSON seed files ----

/// Serialize a case (schema-versioned, one JSON object).
std::string case_to_json(const FuzzCase& fuzz_case);

/// Parse a seed file's JSON. Throws std::invalid_argument on malformed
/// JSON, a missing "schema" field, or a schema version mismatch (the
/// error names both versions — never silently misread a foreign file).
FuzzCase case_from_json(const std::string& json);

/// Write/read a seed file; both throw std::runtime_error on I/O errors
/// (read_case_file rethrows case_from_json's validation errors).
void write_case_file(const FuzzCase& fuzz_case, const std::string& path);
FuzzCase read_case_file(const std::string& path);

}  // namespace xswap::swap
