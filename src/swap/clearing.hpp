// The market-clearing service of §4.2.
//
// Parties send the (untrusted) service offers — "I will transfer this
// asset on this chain to that party". The service combines offers into a
// swap digraph, checks it admits an atomic protocol (strongly connected,
// Theorem 3.5), and picks a leader set (a feedback vertex set, Theorem
// 4.12) via the layered graph::find_feedback_vertex_set engine — exact
// while the kernel fits under graph::FvsOptions::max_exact_vertices,
// approximate above it (any FVS is a valid leader set; minimality only
// affects leader count and timelock depth, never safety). The service is
// not trusted: the SwapEngine re-validates everything it produces with
// validate_spec() before any asset moves.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chain/asset.hpp"
#include "graph/digraph.hpp"
#include "graph/fvs.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

/// One party's proposed transfer.
struct Offer {
  std::string from;    // transferring party
  std::string to;      // receiving counterparty
  std::string chain;   // blockchain carrying the contract
  chain::Asset asset;  // what moves

  bool operator==(const Offer&) const = default;
};

/// Canonical identity key of an offer: every field joined with '\x1f'
/// separators so no concatenation of distinct offers collides. Two
/// offers are the same offer (for duplicate rejection and streamed
/// expiry matching, serve/incremental.hpp) iff their keys are equal.
std::string offer_key(const Offer& offer);

/// The cleared swap: everything SwapEngine needs to run one protocol
/// instance (its primary constructor takes exactly this).
struct ClearedSwap {
  graph::Digraph digraph;
  std::vector<std::string> party_names;  // index = PartyId
  std::vector<PartyId> leaders;
  std::vector<ArcTerms> arcs;            // parallel to digraph.arcs()

  bool operator==(const ClearedSwap&) const = default;
};

/// Combine `offers` into a swap. Returns nullopt when the offers do not
/// form a strongly-connected digraph (such a swap would never be agreed
/// to: the free-riding side has no incentive — Lemma 3.4). Throws
/// std::invalid_argument on malformed offers (self-transfers, empty
/// names/chains) and on duplicate offers: the same (from, to, chain,
/// asset) tuple twice is rejected deterministically, because a
/// double-submitted offer is indistinguishable from a typo and two
/// spec-identical contracts on one chain would make report harvesting
/// ambiguous. Genuine parallel arcs stay expressible — repeat the pair
/// on a different chain or with a different asset (§5 multigraphs).
std::optional<ClearedSwap> clear_offers(const std::vector<Offer>& offers);

/// As above with explicit leader-election tuning (the `--fvs-exact-max`
/// CLI knob lands here). The default overload uses a default-constructed
/// graph::FvsOptions.
std::optional<ClearedSwap> clear_offers(const std::vector<Offer>& offers,
                                        const graph::FvsOptions& fvs);

/// A batch of offers split into independently runnable swaps.
struct Decomposition {
  std::vector<ClearedSwap> swaps;  // one per non-trivial SCC
  std::vector<Offer> unmatched;    // offers no atomic swap can honour

  bool operator==(const Decomposition&) const = default;
};

/// Real clearing: a batch of offers rarely forms one strongly-connected
/// digraph. Following §3 ("a disconnected digraph can be treated as
/// multiple swaps"), split the offer digraph into strongly connected
/// components; each component with at least one internal arc becomes its
/// own ClearedSwap, and offers crossing components are returned as
/// unmatched (executing them could only create free-riders, Lemma 3.4).
Decomposition decompose_offers(const std::vector<Offer>& offers);

/// As above with explicit leader-election tuning for every component.
Decomposition decompose_offers(const std::vector<Offer>& offers,
                               const graph::FvsOptions& fvs);

/// Synthetic offers for a bare digraph: parties "P0"…, one chain
/// ("chain-<a>") and one 100-token asset ("TOK<a>") per arc — the same
/// defaults SwapEngine's legacy convenience constructor applies. Lets
/// digraph-first callers (generator presets in the CLI, benches) ride
/// the clearing → Scenario path.
std::vector<Offer> offers_for_digraph(const graph::Digraph& digraph);

/// The same defaults packaged as a ClearedSwap with caller-chosen
/// leaders (no FVS recomputation). Backs the legacy convenience
/// constructors of SwapEngine and RecurrentSwapRunner.
ClearedSwap cleared_for_digraph(graph::Digraph digraph,
                                std::vector<PartyId> leaders);

}  // namespace xswap::swap
