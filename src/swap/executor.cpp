#include "swap/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace xswap::swap {

void SerialExecutor::run(std::size_t count,
                         const std::function<void(std::size_t)>& task) {
  for (std::size_t i = 0; i < count; ++i) task(i);
}

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t n_threads)
    : n_threads_(n_threads) {
  if (n_threads == 0) {
    throw std::invalid_argument("ThreadPoolExecutor: need at least 1 thread");
  }
}

void ThreadPoolExecutor::run(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  const std::size_t workers = std::min(n_threads_, count);
  if (workers == 1) {  // no point paying thread start-up for one lane
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();  // the calling thread is the last lane
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace xswap::swap
