#include "swap/executor.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xswap::swap {

void SerialExecutor::run(std::size_t count,
                         const std::function<void(std::size_t)>& task) {
  for (std::size_t i = 0; i < count; ++i) task(i);
}

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t n_threads)
    : n_threads_(n_threads) {
  if (n_threads == 0) {
    throw std::invalid_argument("ThreadPoolExecutor: need at least 1 thread");
  }
}

void ThreadPoolExecutor::run(std::size_t count,
                             const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  const std::size_t workers = std::min(n_threads_, count);
  if (workers == 1) {  // no point paying thread start-up for one lane
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  util::Mutex error_mutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        task(i);
      } catch (...) {
        const util::MutexLock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (std::size_t t = 0; t + 1 < workers; ++t) threads.emplace_back(worker);
  worker();  // the calling thread is the last lane
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

// ---------------------------------------------------------------------------
// WorkStealingPool

WorkStealingPool::WorkStealingPool(std::size_t n_threads) : lanes_(n_threads) {
  if (n_threads == 0) {
    throw std::invalid_argument("WorkStealingPool: need at least 1 lane");
  }
  deques_.reserve(lanes_);
  for (std::size_t i = 0; i < lanes_; ++i) {
    deques_.push_back(std::make_unique<Deque>());
  }
  workers_.reserve(lanes_ > 0 ? lanes_ - 1 : 0);
  for (std::size_t lane = 1; lane < lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_main(lane); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  batch_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::run_task(std::size_t index) {
  try {
    (*task_)(index);
  } catch (...) {
    const util::MutexLock lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

bool WorkStealingPool::pop_bottom(Deque& d, std::size_t* out) {
  // Owner-side Chase–Lev pop: reserve the bottom slot, then re-check the
  // top; on the last element race with thieves via CAS on top.
  const std::int64_t b = d.bottom.load(std::memory_order_seq_cst) - 1;
  d.bottom.store(b, std::memory_order_seq_cst);
  std::int64_t t = d.top.load(std::memory_order_seq_cst);
  if (t <= b) {
    *out = d.slots[static_cast<std::size_t>(b)];
    if (t == b) {
      const bool won = d.top.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_seq_cst);
      d.bottom.store(b + 1, std::memory_order_seq_cst);
      return won;
    }
    return true;
  }
  d.bottom.store(b + 1, std::memory_order_seq_cst);
  return false;
}

bool WorkStealingPool::steal_top(Deque& d, std::size_t* out) {
  // Thief-side Chase–Lev steal: claim the oldest slot by CAS on top. The
  // slot array is immutable during a batch, so reading it before the CAS
  // is safe — a lost CAS just discards the read.
  std::int64_t t = d.top.load(std::memory_order_seq_cst);
  const std::int64_t b = d.bottom.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  const std::size_t task = d.slots[static_cast<std::size_t>(t)];
  if (!d.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                     std::memory_order_seq_cst)) {
    return false;
  }
  *out = task;
  return true;
}

void WorkStealingPool::work_batch(std::size_t lane) {
  Deque& mine = *deques_[lane];
  for (;;) {
    std::size_t index = 0;
    if (pop_bottom(mine, &index)) {
      run_task(index);
      continue;
    }
    // Own deque drained: sweep the other lanes for stealable work. Tasks
    // never spawn tasks (Executor contract), so one clean sweep finding
    // nothing means this lane is done — in-flight tasks on other lanes
    // need no help.
    bool stole = false;
    for (std::size_t k = 1; k < lanes_; ++k) {
      Deque& victim = *deques_[(lane + k) % lanes_];
      if (steal_top(victim, &index)) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        run_task(index);
        stole = true;
        break;
      }
    }
    if (!stole) return;
  }
}

void WorkStealingPool::worker_main(std::size_t lane) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      // condition_variable_any waits on the annotated Mutex itself; the
      // analysis treats mutex_ as held across the wait, matching the
      // predicate re-check under the reacquired lock.
      while (!stop_ && epoch_ == seen_epoch) batch_cv_.wait(mutex_);
      if (stop_) return;
      seen_epoch = epoch_;
      ++joined_;
      ++active_;
    }
    work_batch(lane);
    {
      const util::MutexLock lock(mutex_);
      --active_;
    }
    done_cv_.notify_one();
  }
}

void WorkStealingPool::run(std::size_t count,
                           const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  // One batch at a time; concurrent callers queue here, which is what
  // makes the pool safely shareable across scenarios and fleet runners.
  const util::MutexLock run_lock(run_mutex_);

  if (lanes_ == 1) {  // persistent but serial: no handoff, no wakeups
    for (std::size_t i = 0; i < count; ++i) task(i);
    batches_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Pre-fill each lane's deque with a contiguous slice (front lanes take
  // the remainder). Safe without the deque atomics' protection: every
  // worker is parked (run() never returns mid-batch, and workers park
  // before joined_ reaches lanes_ - 1 ... see the completion wait).
  const std::size_t base = count / lanes_;
  const std::size_t extra = count % lanes_;
  std::size_t next = 0;
  for (std::size_t lane = 0; lane < lanes_; ++lane) {
    Deque& d = *deques_[lane];
    const std::size_t share = base + (lane < extra ? 1 : 0);
    d.slots.resize(share);
    for (std::size_t j = 0; j < share; ++j) d.slots[j] = next++;
    d.top.store(0, std::memory_order_relaxed);
    d.bottom.store(static_cast<std::int64_t>(share), std::memory_order_relaxed);
  }

  task_ = &task;
  {
    const util::MutexLock lock(error_mutex_);
    first_error_ = nullptr;
  }
  remaining_.store(count, std::memory_order_relaxed);
  {
    const util::MutexLock lock(mutex_);
    ++epoch_;
    joined_ = 0;
  }
  batch_cv_.notify_all();

  work_batch(0);  // the caller is lane 0

  // Wait until every worker acknowledged this batch AND left it AND all
  // tasks finished. Requiring the full join means no worker can arrive
  // late (after run() returned) and race a subsequent batch's refill.
  {
    util::MutexLock lock(mutex_);
    while (!(joined_ == lanes_ - 1 && active_ == 0 &&
             remaining_.load(std::memory_order_acquire) == 0)) {
      done_cv_.wait(mutex_);
    }
  }
  task_ = nullptr;
  batches_.fetch_add(1, std::memory_order_relaxed);

  std::exception_ptr error;
  {
    const util::MutexLock lock(error_mutex_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

// ---------------------------------------------------------------------------
// ExecutorRegistry

ExecutorRegistry& ExecutorRegistry::instance() {
  static ExecutorRegistry registry;
  return registry;
}

std::shared_ptr<WorkStealingPool> ExecutorRegistry::shared_pool(
    std::size_t n_threads) {
  if (n_threads == 0) {
    throw std::invalid_argument("ExecutorRegistry: need at least 1 lane");
  }
  const util::MutexLock lock(mutex_);
  std::shared_ptr<WorkStealingPool>& slot = pools_[n_threads];
  if (!slot) slot = std::make_shared<WorkStealingPool>(n_threads);
  return slot;
}

std::shared_ptr<WorkStealingPool> ExecutorRegistry::shared_pool_at_least(
    std::size_t n_threads) {
  if (n_threads == 0) {
    throw std::invalid_argument("ExecutorRegistry: need at least 1 lane");
  }
  const util::MutexLock lock(mutex_);
  // pools_ is keyed by lane count, so lower_bound finds the smallest
  // size that can serve the request.
  const auto fit = pools_.lower_bound(n_threads);
  if (fit != pools_.end()) return fit->second;

  auto pool = std::make_shared<WorkStealingPool>(n_threads);
  // Outgrown sizes nobody else holds are retired now; use_count() == 1
  // is stable here because every registry handout happens under mutex_
  // (an external holder can only DROP its copy concurrently, which
  // merely postpones the prune to the next growth).
  for (auto it = pools_.begin(); it != pools_.end();) {
    if (it->first < n_threads && it->second.use_count() == 1) {
      it = pools_.erase(it);  // joins the pool's parked workers
    } else {
      ++it;
    }
  }
  pools_[n_threads] = pool;
  return pool;
}

std::size_t ExecutorRegistry::pool_count() const {
  const util::MutexLock lock(mutex_);
  return pools_.size();
}

}  // namespace xswap::swap
