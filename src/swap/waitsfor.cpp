#include "swap/waitsfor.hpp"

#include <stdexcept>

namespace xswap::swap {

graph::Digraph waits_for_digraph(const graph::Digraph& d,
                                 const std::vector<bool>& published) {
  if (published.size() != d.arc_count()) {
    throw std::invalid_argument("waits_for_digraph: published size mismatch");
  }
  graph::Digraph w(d.vertex_count());
  for (graph::ArcId a = 0; a < d.arc_count(); ++a) {
    if (!published[a]) {
      const auto& arc = d.arc(a);
      // v waits for u to publish on (u, v).
      w.add_arc(arc.tail, arc.head);
    }
  }
  return w;
}

graph::Digraph waits_for_digraph(const SwapSpec& spec,
                                 const std::vector<ArcEvents>& events) {
  std::vector<bool> published(spec.digraph.arc_count(), false);
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    published[a] = events.at(a).published.has_value();
  }
  return waits_for_digraph(spec.digraph, published);
}

std::optional<Deadlock> find_deadlock(const graph::Digraph& waits_for,
                                      const std::vector<PartyId>& leaders) {
  // Remove leaders; any remaining cycle is a follower deadlock. Find one
  // with an iterative DFS that tracks the current path.
  const graph::Digraph followers = waits_for.without_vertices(leaders);
  const std::size_t n = followers.vertex_count();

  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(n, Color::kWhite);
  std::vector<PartyId> path;

  struct Frame {
    graph::VertexId v;
    std::size_t next_arc;
  };

  for (graph::VertexId root = 0; root < n; ++root) {
    if (color[root] != Color::kWhite) continue;
    std::vector<Frame> stack = {{root, 0}};
    color[root] = Color::kGray;
    path = {root};
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto& out = followers.out_arcs(f.v);
      if (f.next_arc < out.size()) {
        const graph::VertexId w = followers.arc(out[f.next_arc]).tail;
        ++f.next_arc;
        if (color[w] == Color::kGray) {
          // Found a cycle: slice the current path from w onward.
          Deadlock d;
          bool in_cycle = false;
          for (const PartyId v : path) {
            if (v == w) in_cycle = true;
            if (in_cycle) d.cycle.push_back(v);
          }
          return d;
        }
        if (color[w] == Color::kWhite) {
          color[w] = Color::kGray;
          path.push_back(w);
          stack.push_back({w, 0});
        }
      } else {
        color[f.v] = Color::kBlack;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace xswap::swap
