// The single-leader swap contract (§4.6).
//
// When the swap digraph has a single leader v̂, the follower subdigraph is
// acyclic, and plain timed hashlocks suffice: arc (u, v) carries the one
// hashlock h = H(s) and scalar timeout (diam(D) + D(v, v̂) + 1)·Δ. No
// hashkey paths, no signature chains — this is the variant the three-way
// swap of Figures 1–2 runs, and the baseline bench_single_vs_multi
// compares against the general protocol.
#pragma once

#include <optional>

#include "chain/contract.hpp"
#include "swap/contract.hpp"  // Disposition
#include "swap/spec.hpp"

namespace xswap::swap {

/// Swap contract with a scalar timeout, for single-leader digraphs.
class SingleLeaderContract : public chain::Contract {
 public:
  /// `spec.leaders` must have exactly one element. The arc's timeout is
  /// computed as (diam + D(v, v̂) + 1)·Δ per Lemma 4.13.
  SingleLeaderContract(const SwapSpec& spec, graph::ArcId arc);

  // ---- chain::Contract ----
  std::string type_name() const override { return "swap1l"; }
  std::size_t storage_bytes() const override;
  void on_publish(const chain::CallContext& ctx) override;

  // ---- entry points ----

  /// Unlock with the bare secret; valid while chain time < timeout().
  void unlock(const chain::CallContext& ctx, const Secret& secret);

  /// Refund to the party once the timeout has passed with the hashlock
  /// still locked.
  void refund(const chain::CallContext& ctx);

  /// Transfer to the counterparty once unlocked.
  void claim(const chain::CallContext& ctx);

  // ---- views ----
  graph::ArcId arc() const { return arc_; }
  const chain::Asset& asset() const { return asset_; }
  const chain::Address& party() const { return party_; }
  const chain::Address& counterparty() const { return counterparty_; }
  PartyId party_vertex() const { return party_vertex_; }
  PartyId counterparty_vertex() const { return counterparty_vertex_; }
  sim::Time timeout() const { return timeout_; }
  bool unlocked() const { return unlocked_; }
  /// Chain time of the unlock that triggered the arc (0 while locked).
  sim::Time triggered_at() const { return triggered_at_; }
  /// The revealed secret once unlocked (how followers learn s).
  const std::optional<Secret>& revealed_secret() const { return secret_; }
  Disposition disposition() const { return disposition_; }
  bool refundable(sim::Time now) const;
  bool matches_spec(const SwapSpec& spec, graph::ArcId arc) const;

 private:
  graph::ArcId arc_;
  chain::Asset asset_;
  Hashlock hashlock_;
  PartyId party_vertex_;
  PartyId counterparty_vertex_;
  chain::Address party_;
  chain::Address counterparty_;
  sim::Time timeout_;

  bool unlocked_ = false;
  std::optional<Secret> secret_;
  sim::Time triggered_at_ = 0;
  Disposition disposition_;
};

/// The §4.6 timeout for arc (u, v): start + (diam + D(v, v̂) + 1)·Δ, where
/// D(v, v̂) is the longest path from the counterparty to the leader that
/// visits v̂ only at its end (0 when v = v̂). Exposed for tests and the
/// Fig. 6 bench.
sim::Time single_leader_timeout(const SwapSpec& spec, graph::ArcId arc);

}  // namespace xswap::swap
