#include "swap/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <set>
#include <stdexcept>

namespace xswap::swap {

std::size_t Scenario::component_of(const std::string& party) const {
  for (std::size_t i = 0; i < cleared_.size(); ++i) {
    const auto& names = cleared_[i].party_names;
    if (std::find(names.begin(), names.end(), party) != names.end()) return i;
  }
  return npos;
}

void Scenario::set_strategy(const std::string& party, Strategy strategy) {
  const std::size_t i = component_of(party);
  if (i == npos) {
    throw std::invalid_argument("Scenario::set_strategy: '" + party +
                                "' is in no component swap");
  }
  const auto& names = cleared_[i].party_names;
  const PartyId v = static_cast<PartyId>(
      std::find(names.begin(), names.end(), party) - names.begin());
  engines_[i]->set_strategy(v, strategy);
}

BatchReport Scenario::run() {
  if (default_jobs_ > 1) {
    ThreadPoolExecutor pool(default_jobs_);
    return run(pool);
  }
  return run(RunOptions{});
}

BatchReport Scenario::run(Executor& executor) {
  RunOptions options;
  options.executor = &executor;
  return run(options);
}

BatchReport Scenario::run(const RunOptions& options) {
  if (ran_) throw std::logic_error("Scenario::run: already ran");
  if (options.max_components && *options.max_components == 0) {
    throw std::invalid_argument("Scenario::run: max_components must be >= 1");
  }
  ran_ = true;

  std::size_t count = engines_.size();
  std::size_t skipped = 0;
  if (options.max_components && *options.max_components < count) {
    skipped = count - *options.max_components;
    count = *options.max_components;
    std::fprintf(stderr,
                 "Scenario::run: max_components=%zu truncates the batch, "
                 "skipping %zu of %zu component swap(s)\n",
                 count, skipped, engines_.size());
  }

  SerialExecutor serial;
  Executor& executor = options.executor ? *options.executor : serial;

  // Engines are share-nothing (each owns its Simulator, ledgers, and
  // seed-derived randomness), so the executor may run them in any order
  // or concurrently; results land in a by-index slot and everything
  // order-sensitive (aggregation, outcome counting) happens serially
  // below, in component order. Progress callbacks are serialized here so
  // user code needs no locking of its own.
  std::vector<SwapReport> reports(count);
  std::mutex progress_mutex;
  const auto started = std::chrono::steady_clock::now();
  executor.run(count, [&](std::size_t i) {
    SwapReport report = engines_[i]->run();
    if (options.progress) {
      const std::lock_guard<std::mutex> lock(progress_mutex);
      options.progress(i, report);
    }
    reports[i] = std::move(report);
  });
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count();

  BatchReport batch;
  batch.unmatched = unmatched_;
  batch.components_skipped = skipped;
  batch.wall_ms = wall_ms;
  batch.components_per_sec =
      wall_ms > 0.0 ? static_cast<double>(count) / (wall_ms / 1000.0) : 0.0;
  for (SwapReport& report : reports) {
    if (report.all_triggered) batch.swaps_fully_triggered += 1;
    batch.all_triggered = batch.all_triggered && report.all_triggered;
    batch.no_conforming_underwater =
        batch.no_conforming_underwater && report.no_conforming_underwater;
    for (const Outcome o : report.outcomes) batch.outcome_counts[o] += 1;
    batch.last_trigger_time =
        std::max(batch.last_trigger_time, report.last_trigger_time);
    batch.finished_at = std::max(batch.finished_at, report.finished_at);
    batch.total_storage_bytes += report.total_storage_bytes;
    batch.total_call_payload_bytes += report.total_call_payload_bytes;
    batch.hashkey_bytes_submitted += report.hashkey_bytes_submitted;
    batch.sign_operations += report.sign_operations;
    batch.total_transactions += report.total_transactions;
    batch.failed_transactions += report.failed_transactions;
    batch.swaps.push_back(std::move(report));
  }
  return batch;
}

ScenarioBuilder& ScenarioBuilder::offer(std::string from, std::string to,
                                        std::string chain, chain::Asset asset) {
  offers_.push_back(Offer{std::move(from), std::move(to), std::move(chain),
                          std::move(asset)});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offer(Offer o) {
  offers_.push_back(std::move(o));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offers(std::vector<Offer> many) {
  for (Offer& o : many) offers_.push_back(std::move(o));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::options(EngineOptions o) {
  options_ = o;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delta(sim::Duration d) {
  options_.delta = d;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  options_.seed = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::broadcast(bool on) {
  options_.broadcast = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mode(ProtocolMode m) {
  options_.mode = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trace(bool on) {
  options_.trace = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::strategy(std::string party, Strategy s) {
  strategies_.emplace_back(std::move(party), s);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::jobs(std::size_t n) {
  jobs_ = n;
  return *this;
}

Scenario ScenarioBuilder::build() const {
  if (offers_.empty()) {
    throw std::invalid_argument("ScenarioBuilder: no offers in the book");
  }
  if (jobs_ == 0) {
    throw std::invalid_argument("ScenarioBuilder: jobs must be >= 1");
  }
  std::set<std::string> offered;
  for (const Offer& o : offers_) {
    offered.insert(o.from);
    offered.insert(o.to);
  }
  for (const auto& [party, s] : strategies_) {
    if (!offered.count(party)) {
      throw std::invalid_argument(
          "ScenarioBuilder: strategy override for '" + party +
          "', which appears in no offer");
    }
  }

  Decomposition decomposition = decompose_offers(offers_);

  Scenario scenario;
  scenario.default_jobs_ = jobs_;
  scenario.unmatched_ = std::move(decomposition.unmatched);
  for (std::size_t i = 0; i < decomposition.swaps.size(); ++i) {
    EngineOptions per_swap = options_;
    per_swap.seed = options_.seed + i;  // distinct keys per component
    scenario.engines_.push_back(
        std::make_unique<SwapEngine>(decomposition.swaps[i], per_swap));
    scenario.cleared_.push_back(std::move(decomposition.swaps[i]));
  }

  // Latest override for a name wins: later set_strategy calls replace
  // earlier ones on the same engine.
  for (const auto& [party, s] : strategies_) {
    if (scenario.component_of(party) == Scenario::npos) {
      continue;  // all of the party's offers unmatched
    }
    scenario.set_strategy(party, s);
  }
  return scenario;
}

}  // namespace xswap::swap
