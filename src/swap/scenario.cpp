#include "swap/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <set>
#include <stdexcept>

#include "util/mutex.hpp"

namespace xswap::swap {

std::size_t Scenario::component_of(const std::string& party) const {
  for (std::size_t i = 0; i < cleared_.size(); ++i) {
    const auto& names = cleared_[i].party_names;
    if (std::find(names.begin(), names.end(), party) != names.end()) return i;
  }
  return npos;
}

void Scenario::set_strategy(const std::string& party, Strategy strategy) {
  const std::size_t i = component_of(party);
  if (i == npos) {
    throw std::invalid_argument("Scenario::set_strategy: '" + party +
                                "' is in no component swap");
  }
  const auto& names = cleared_[i].party_names;
  const PartyId v = static_cast<PartyId>(
      std::find(names.begin(), names.end(), party) - names.begin());
  engines_[i]->set_strategy(v, strategy);
}

BatchReport Scenario::run() {
  RunOptions options;
  if (default_pool_) {
    options.pool = default_pool_;
    return run(options);
  }
  if (default_jobs_ > 1) {
    ThreadPoolExecutor pool(default_jobs_);
    return run(pool);
  }
  return run(options);
}

BatchReport Scenario::run(Executor& executor) {
  RunOptions options;
  options.executor = &executor;
  return run(options);
}

std::size_t Scenario::begin_run(
    const std::optional<std::size_t>& max_components, std::size_t* skipped) {
  if (ran_) throw std::logic_error("Scenario::run: already ran");
  ran_ = true;
  std::size_t count = engines_.size();
  *skipped = 0;
  if (max_components && *max_components < count) {
    *skipped = count - *max_components;
    count = *max_components;
    std::fprintf(stderr,
                 "Scenario::run: max_components=%zu truncates the batch, "
                 "skipping %zu of %zu component swap(s)\n",
                 count, *skipped, engines_.size());
  }
  return count;
}

BatchReport aggregate_batch(std::vector<SwapReport> reports,
                            std::vector<Offer> unmatched, std::size_t skipped,
                            double wall_ms) {
  BatchReport batch;
  batch.unmatched = std::move(unmatched);
  batch.components_skipped = skipped;
  batch.wall_ms = wall_ms;
  batch.components_per_sec =
      wall_ms > 0.0
          ? static_cast<double>(reports.size()) / (wall_ms / 1000.0)
          : 0.0;
  for (SwapReport& report : reports) {
    if (report.all_triggered) batch.swaps_fully_triggered += 1;
    batch.all_triggered = batch.all_triggered && report.all_triggered;
    batch.no_conforming_underwater =
        batch.no_conforming_underwater && report.no_conforming_underwater;
    for (const Outcome o : report.outcomes) batch.outcome_counts[o] += 1;
    batch.last_trigger_time =
        std::max(batch.last_trigger_time, report.last_trigger_time);
    batch.finished_at = std::max(batch.finished_at, report.finished_at);
    batch.total_storage_bytes += report.total_storage_bytes;
    batch.total_call_payload_bytes += report.total_call_payload_bytes;
    batch.hashkey_bytes_submitted += report.hashkey_bytes_submitted;
    batch.sign_operations += report.sign_operations;
    batch.total_transactions += report.total_transactions;
    batch.failed_transactions += report.failed_transactions;
    batch.swaps.push_back(std::move(report));
  }
  return batch;
}

BatchReport Scenario::aggregate(std::vector<SwapReport> reports,
                                std::size_t skipped, double wall_ms) const {
  return aggregate_batch(std::move(reports), unmatched_, skipped, wall_ms);
}

BatchReport Scenario::run(const RunOptions& options) {
  // Validation first: an invalid-options throw must leave the run token
  // unconsumed (the scenario stays runnable).
  if (options.max_components && *options.max_components == 0) {
    throw std::invalid_argument("Scenario::run: max_components must be >= 1");
  }
  std::size_t skipped = 0;
  const std::size_t count = begin_run(options.max_components, &skipped);

  SerialExecutor serial;
  Executor& executor = options.pool
                           ? *options.pool
                           : (options.executor ? *options.executor : serial);

  // Engines are share-nothing (each owns its Simulator, ledgers, and
  // seed-derived randomness), so the executor may run them in any order
  // or concurrently; results land in a by-index slot and everything
  // order-sensitive (aggregation, outcome counting) happens serially
  // below, in component order. Progress callbacks are serialized here so
  // user code needs no locking of its own.
  std::vector<SwapReport> reports(count);
  util::Mutex progress_mutex;
  const auto started = std::chrono::steady_clock::now();
  try {
    executor.run(count, [&](std::size_t i) {
      SwapReport report = engines_[i]->run();
      if (options.progress) {
        const util::MutexLock lock(progress_mutex);
        options.progress(i, report);
      }
      reports[i] = std::move(report);
    });
  } catch (...) {
    // The run is spent either way; don't let the engines that DID
    // finish (ledgers, blocks, simulator slabs) linger until the
    // Scenario dies. See the header's exception-safety contract.
    release_engines();
    throw;
  }
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - started)
                             .count();
  return aggregate(std::move(reports), skipped, wall_ms);
}

FleetReport run_fleet(std::vector<Scenario>& fleet,
                      const FleetOptions& options) {
  // Consume every run token up front so a spent scenario is caught
  // before any work starts (and so kStealing may interleave freely).
  for (const Scenario& scenario : fleet) {
    if (scenario.ran_) {
      throw std::logic_error("run_fleet: a scenario already ran");
    }
  }

  SerialExecutor serial;
  Executor& executor = options.pool
                           ? *options.pool
                           : (options.executor ? *options.executor : serial);

  FleetReport report;
  report.batches.reserve(fleet.size());

  const auto started = std::chrono::steady_clock::now();
  if (options.schedule == FleetSchedule::kFifo) {
    // Strict book order; each book still fans its components out on the
    // shared executor, but book k+1 waits for book k's straggler.
    try {
      for (Scenario& scenario : fleet) {
        RunOptions per_book;
        per_book.executor = &executor;
        report.batches.push_back(scenario.run(per_book));
        report.total_components += report.batches.back().swaps.size();
      }
    } catch (...) {
      // Abort the whole fleet: spend and release the not-yet-run books
      // too, matching the kStealing failure contract.
      for (Scenario& scenario : fleet) {
        scenario.ran_ = true;
        scenario.release_engines();
      }
      throw;
    }
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
  } else {
    // kStealing: flatten every (scenario, component) pair into one index
    // space. Idle lanes drain whatever remains anywhere in the fleet, so
    // small components backfill while a straggler ring finishes.
    struct Slot {
      std::size_t scenario;
      std::size_t component;
    };
    std::vector<Slot> slots;
    std::vector<std::vector<SwapReport>> results(fleet.size());
    for (std::size_t s = 0; s < fleet.size(); ++s) {
      std::size_t skipped = 0;
      const std::size_t count = fleet[s].begin_run(std::nullopt, &skipped);
      results[s].resize(count);
      for (std::size_t c = 0; c < count; ++c) slots.push_back(Slot{s, c});
      report.total_components += count;
    }
    try {
      executor.run(slots.size(), [&](std::size_t i) {
        const Slot slot = slots[i];
        results[slot.scenario][slot.component] =
            fleet[slot.scenario].engines_[slot.component]->run();
      });
    } catch (...) {
      for (Scenario& scenario : fleet) scenario.release_engines();
      throw;
    }
    report.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    // Aggregation is per scenario, in queue and component order, so the
    // deterministic fields match standalone runs bit-for-bit. Wall-clock
    // fields carry the fleet-level value (tails overlap).
    for (std::size_t s = 0; s < fleet.size(); ++s) {
      report.batches.push_back(
          fleet[s].aggregate(std::move(results[s]), 0, report.wall_ms));
    }
  }
  report.components_per_sec =
      report.wall_ms > 0.0
          ? static_cast<double>(report.total_components) /
                (report.wall_ms / 1000.0)
          : 0.0;
  return report;
}

FleetReport run_fleet(std::vector<Scenario>& fleet) {
  return run_fleet(fleet, FleetOptions{});
}

ScenarioBuilder& ScenarioBuilder::offer(std::string from, std::string to,
                                        std::string chain, chain::Asset asset) {
  offers_.push_back(Offer{std::move(from), std::move(to), std::move(chain),
                          std::move(asset)});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offer(Offer o) {
  offers_.push_back(std::move(o));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offers(std::vector<Offer> many) {
  for (Offer& o : many) offers_.push_back(std::move(o));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::options(EngineOptions o) {
  options_ = o;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delta(sim::Duration d) {
  options_.delta = d;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  options_.seed = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::broadcast(bool on) {
  options_.broadcast = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mode(ProtocolMode m) {
  options_.mode = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::trace(bool on) {
  options_.trace = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::net(NetworkModel model) {
  options_.net = std::move(model);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::strategy(std::string party, Strategy s) {
  strategies_.emplace_back(std::move(party), s);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fvs(const graph::FvsOptions& options) {
  fvs_ = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::jobs(std::size_t n) {
  jobs_ = n;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pool(std::shared_ptr<Executor> pool) {
  pool_ = std::move(pool);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::chain_locks(
    chain::ChainLockRegistry* registry) {
  options_.chain_locks = registry;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::durable(std::string dir) {
  durable_ = std::move(dir);
  return *this;
}

Scenario ScenarioBuilder::build() const {
  if (offers_.empty()) {
    throw std::invalid_argument("ScenarioBuilder: no offers in the book");
  }
  if (jobs_ == 0) {
    throw std::invalid_argument("ScenarioBuilder: jobs must be >= 1");
  }
  std::set<std::string> offered;
  for (const Offer& o : offers_) {
    offered.insert(o.from);
    offered.insert(o.to);
  }
  for (const auto& [party, s] : strategies_) {
    if (!offered.count(party)) {
      throw std::invalid_argument(
          "ScenarioBuilder: strategy override for '" + party +
          "', which appears in no offer");
    }
  }

  Decomposition decomposition = decompose_offers(offers_, fvs_);

  Scenario scenario;
  scenario.default_jobs_ = jobs_;
  scenario.default_pool_ = pool_;
  scenario.unmatched_ = std::move(decomposition.unmatched);
  for (std::size_t i = 0; i < decomposition.swaps.size(); ++i) {
    EngineOptions per_swap = options_;
    per_swap.seed = options_.seed + i;  // distinct keys per component
    if (!durable_.empty()) {
      per_swap.durable_dir = durable_ + "/swap-" + std::to_string(i);
    }
    scenario.engines_.push_back(
        std::make_unique<SwapEngine>(decomposition.swaps[i], per_swap));
    scenario.cleared_.push_back(std::move(decomposition.swaps[i]));
  }

  // Latest override for a name wins: later set_strategy calls replace
  // earlier ones on the same engine.
  for (const auto& [party, s] : strategies_) {
    if (scenario.component_of(party) == Scenario::npos) {
      continue;  // all of the party's offers unmatched
    }
    scenario.set_strategy(party, s);
  }
  return scenario;
}

}  // namespace xswap::swap
