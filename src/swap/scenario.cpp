#include "swap/scenario.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace xswap::swap {

std::size_t Scenario::component_of(const std::string& party) const {
  for (std::size_t i = 0; i < cleared_.size(); ++i) {
    const auto& names = cleared_[i].party_names;
    if (std::find(names.begin(), names.end(), party) != names.end()) return i;
  }
  return npos;
}

void Scenario::set_strategy(const std::string& party, Strategy strategy) {
  const std::size_t i = component_of(party);
  if (i == npos) {
    throw std::invalid_argument("Scenario::set_strategy: '" + party +
                                "' is in no component swap");
  }
  const auto& names = cleared_[i].party_names;
  const PartyId v = static_cast<PartyId>(
      std::find(names.begin(), names.end(), party) - names.begin());
  engines_[i]->set_strategy(v, strategy);
}

BatchReport Scenario::run() {
  if (ran_) throw std::logic_error("Scenario::run: already ran");
  ran_ = true;

  BatchReport batch;
  batch.unmatched = unmatched_;
  for (auto& engine : engines_) {
    SwapReport report = engine->run();
    if (report.all_triggered) batch.swaps_fully_triggered += 1;
    batch.all_triggered = batch.all_triggered && report.all_triggered;
    batch.no_conforming_underwater =
        batch.no_conforming_underwater && report.no_conforming_underwater;
    for (const Outcome o : report.outcomes) batch.outcome_counts[o] += 1;
    batch.last_trigger_time =
        std::max(batch.last_trigger_time, report.last_trigger_time);
    batch.finished_at = std::max(batch.finished_at, report.finished_at);
    batch.total_storage_bytes += report.total_storage_bytes;
    batch.total_call_payload_bytes += report.total_call_payload_bytes;
    batch.hashkey_bytes_submitted += report.hashkey_bytes_submitted;
    batch.sign_operations += report.sign_operations;
    batch.total_transactions += report.total_transactions;
    batch.failed_transactions += report.failed_transactions;
    batch.swaps.push_back(std::move(report));
  }
  return batch;
}

ScenarioBuilder& ScenarioBuilder::offer(std::string from, std::string to,
                                        std::string chain, chain::Asset asset) {
  offers_.push_back(Offer{std::move(from), std::move(to), std::move(chain),
                          std::move(asset)});
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offer(Offer o) {
  offers_.push_back(std::move(o));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::offers(std::vector<Offer> many) {
  for (Offer& o : many) offers_.push_back(std::move(o));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::options(EngineOptions o) {
  options_ = o;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delta(sim::Duration d) {
  options_.delta = d;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t s) {
  options_.seed = s;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::broadcast(bool on) {
  options_.broadcast = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::mode(ProtocolMode m) {
  options_.mode = m;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::strategy(std::string party, Strategy s) {
  strategies_.emplace_back(std::move(party), s);
  return *this;
}

Scenario ScenarioBuilder::build() const {
  if (offers_.empty()) {
    throw std::invalid_argument("ScenarioBuilder: no offers in the book");
  }
  std::set<std::string> offered;
  for (const Offer& o : offers_) {
    offered.insert(o.from);
    offered.insert(o.to);
  }
  for (const auto& [party, s] : strategies_) {
    if (!offered.count(party)) {
      throw std::invalid_argument(
          "ScenarioBuilder: strategy override for '" + party +
          "', which appears in no offer");
    }
  }

  Decomposition decomposition = decompose_offers(offers_);

  Scenario scenario;
  scenario.unmatched_ = std::move(decomposition.unmatched);
  for (std::size_t i = 0; i < decomposition.swaps.size(); ++i) {
    EngineOptions per_swap = options_;
    per_swap.seed = options_.seed + i;  // distinct keys per component
    scenario.engines_.push_back(
        std::make_unique<SwapEngine>(decomposition.swaps[i], per_swap));
    scenario.cleared_.push_back(std::move(decomposition.swaps[i]));
  }

  // Latest override for a name wins: later set_strategy calls replace
  // earlier ones on the same engine.
  for (const auto& [party, s] : strategies_) {
    if (scenario.component_of(party) == Scenario::npos) {
      continue;  // all of the party's offers unmatched
    }
    scenario.set_strategy(party, s);
  }
  return scenario;
}

}  // namespace xswap::swap
