#include "swap/broadcast.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace xswap::swap {

BroadcastBoard::BroadcastBoard(const SwapSpec& spec)
    : leaders_(spec.leaders),
      hashlocks_(spec.hashlocks),
      directory_(spec.directory),
      posts_(spec.leaders.size()) {
  leader_names_.reserve(leaders_.size());
  for (const PartyId v : leaders_) {
    leader_names_.push_back(spec.party_names.at(v));
  }
}

std::size_t BroadcastBoard::storage_bytes() const {
  std::size_t size = leaders_.size() * 4 + directory_.size() * 32;
  for (const auto& h : hashlocks_) size += h.size();
  for (const auto& post : posts_) {
    if (post.has_value()) size += post->encoded_size();
  }
  return size;
}

void BroadcastBoard::post(const chain::CallContext& ctx, std::size_t i,
                          const Hashkey& key) {
  if (i >= posts_.size()) {
    throw std::runtime_error("board post: slot out of range");
  }
  if (ctx.sender != leader_names_[i]) {
    throw std::runtime_error("board post: only leader " + leader_names_[i] +
                             " may post slot " + std::to_string(i));
  }
  // Degenerate leader-rooted key: path (v_i), sig(s_i, v_i).
  if (key.path != std::vector<PartyId>{leaders_[i]} || key.sigs.size() != 1) {
    throw std::runtime_error("board post: key must be leader-rooted");
  }
  if (crypto::sha256_bytes(key.secret) != hashlocks_[i]) {
    throw std::runtime_error("board post: secret does not match hashlock");
  }
  if (!crypto::verify(directory_[leaders_[i]], key.secret, key.sigs[0])) {
    throw std::runtime_error("board post: bad leader signature");
  }
  if (!posts_[i].has_value()) posts_[i] = key;
}

}  // namespace xswap::swap
