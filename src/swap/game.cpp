#include "swap/game.hpp"

#include <stdexcept>

#include "graph/scc.hpp"

namespace xswap::swap {

std::optional<DeviationWitness> find_lemma33_counterexample(
    const graph::Digraph& d, std::size_t max_vertices, std::size_t max_arcs) {
  const std::size_t n = d.vertex_count();
  const std::size_t m = d.arc_count();
  if (n > max_vertices || m > max_arcs) {
    throw std::invalid_argument(
        "find_lemma33_counterexample: digraph too large for exhaustive search");
  }
  if (n < 2) return std::nullopt;

  // Every nonempty proper coalition (by bitmask) × every trigger set.
  for (std::uint64_t cmask = 1; cmask + 1 < (1ULL << n); ++cmask) {
    std::vector<PartyId> coalition;
    for (PartyId v = 0; v < n; ++v) {
      if ((cmask >> v) & 1) coalition.push_back(v);
    }
    for (std::uint64_t tmask = 0; tmask < (1ULL << m); ++tmask) {
      std::vector<bool> triggered(m);
      for (std::size_t a = 0; a < m; ++a) triggered[a] = (tmask >> a) & 1;

      const Outcome coalition_outcome =
          classify_coalition(d, coalition, triggered);
      if (coalition_outcome != Outcome::kFreeRide &&
          coalition_outcome != Outcome::kDiscount) {
        continue;  // not better than Deal
      }
      // Is any conforming (outside) party Underwater?
      bool conforming_underwater = false;
      for (PartyId v = 0; v < n; ++v) {
        if ((cmask >> v) & 1) continue;
        if (classify_party(d, v, triggered) == Outcome::kUnderwater) {
          conforming_underwater = true;
          break;
        }
      }
      if (!conforming_underwater) {
        return DeviationWitness{coalition, triggered, coalition_outcome};
      }
    }
  }
  return std::nullopt;
}

std::optional<DeviationWitness> free_ride_construction(const graph::Digraph& d) {
  const std::size_t n = d.vertex_count();
  if (n == 0 || graph::is_strongly_connected(d)) return std::nullopt;

  // Find y whose reachable set Y is proper; X = V \ Y has no entering
  // arcs from Y (Y is closed under reachability).
  for (PartyId y = 0; y < n; ++y) {
    const auto reach = graph::reachable_set(d, y);
    if (reach.size() == n) continue;
    std::vector<bool> in_y(n, false);
    for (const graph::VertexId v : reach) in_y[v] = true;

    DeviationWitness witness;
    for (PartyId v = 0; v < n; ++v) {
      if (!in_y[v]) witness.coalition.push_back(v);
    }
    // Trigger everything except arcs leaving X into Y.
    witness.triggered.assign(d.arc_count(), true);
    for (graph::ArcId a = 0; a < d.arc_count(); ++a) {
      const auto& arc = d.arc(a);
      if (!in_y[arc.head] && in_y[arc.tail]) witness.triggered[a] = false;
    }
    witness.coalition_outcome =
        classify_coalition(d, witness.coalition, witness.triggered);
    return witness;
  }
  return std::nullopt;
}

bool members_prefer_to_full_trigger(const graph::Digraph& d,
                                    const std::vector<PartyId>& coalition,
                                    const std::vector<bool>& triggered) {
  const std::vector<bool> all(d.arc_count(), true);
  for (const PartyId v : coalition) {
    const int deviated = preference_rank(classify_party(d, v, triggered));
    const int baseline = preference_rank(classify_party(d, v, all));
    if (deviated < baseline) return false;
  }
  return true;
}

}  // namespace xswap::swap
