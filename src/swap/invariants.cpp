#include "swap/invariants.hpp"

#include <map>

#include "swap/contract.hpp"
#include "swap/single_leader_contract.hpp"

namespace xswap::swap {

std::string InvariantReport::to_string() const {
  if (ok()) return "all invariants hold";
  std::string out = "invariant violations:";
  for (const auto& v : violations) out += "\n  - " + v;
  return out;
}

InvariantReport check_conservation(const SwapEngine& engine) {
  InvariantReport report;
  const SwapSpec& spec = engine.spec();

  // Expected supplies per chain, derived from the spec's arc terms (the
  // engine mints exactly these at genesis).
  std::map<std::string, std::map<std::string, std::uint64_t>> expected_fungible;
  std::map<std::string, std::vector<chain::Asset>> expected_unique;
  for (const ArcTerms& terms : spec.arcs) {
    if (terms.asset.fungible) {
      expected_fungible[terms.chain][terms.asset.symbol] += terms.asset.amount;
    } else {
      expected_unique[terms.chain].push_back(terms.asset);
    }
  }

  for (const auto& [chain_name, symbols] : expected_fungible) {
    const chain::Ledger& ledger = engine.ledger(chain_name);
    for (const auto& [symbol, amount] : symbols) {
      const std::uint64_t actual = ledger.total_supply(symbol);
      if (actual != amount) {
        report.violations.push_back(
            "chain " + chain_name + ": supply of " + symbol + " is " +
            std::to_string(actual) + ", expected " + std::to_string(amount));
      }
    }
  }
  for (const auto& [chain_name, uniques] : expected_unique) {
    const chain::Ledger& ledger = engine.ledger(chain_name);
    for (const chain::Asset& asset : uniques) {
      if (!ledger.owner_of(asset.symbol, asset.unique_id).has_value()) {
        report.violations.push_back("chain " + chain_name + ": unique asset " +
                                    asset.to_string() + " vanished");
      }
    }
  }

  // Settled contracts must hold nothing.
  for (const std::string& chain_name : engine.chain_names()) {
    const chain::Ledger& ledger = engine.ledger(chain_name);
    for (const chain::ContractId id : ledger.published_contracts()) {
      const chain::Contract* c = ledger.get_contract(id);
      const chain::Asset* asset = nullptr;
      Disposition disposition = Disposition::kActive;
      if (const auto* sc = dynamic_cast<const SwapContract*>(c)) {
        asset = &sc->asset();
        disposition = sc->disposition();
      } else if (const auto* sc = dynamic_cast<const SingleLeaderContract*>(c)) {
        asset = &sc->asset();
        disposition = sc->disposition();
      }
      if (asset == nullptr || disposition == Disposition::kActive) continue;
      if (ledger.owns(chain::contract_address(id), *asset)) {
        report.violations.push_back("chain " + chain_name + ": settled " +
                                    chain::contract_address(id) +
                                    " still holds " + asset->to_string());
      }
    }
  }
  return report;
}

InvariantReport check_guarantees(const SwapEngine& engine,
                                 const SwapReport& report) {
  InvariantReport out;
  const SwapSpec& spec = engine.spec();

  // Theorem 4.9.
  if (!report.no_conforming_underwater) {
    out.violations.push_back("a conforming party ended Underwater (Thm 4.9)");
  }
  for (PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    if (engine.strategy(v).conforming() && !acceptable(report.outcomes[v])) {
      out.violations.push_back("conforming party " + spec.party_names[v] +
                               " has unacceptable outcome " +
                               std::string(to_string(report.outcomes[v])));
    }
  }

  // Theorem 4.7 bound on every trigger.
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    if (report.triggered[a] && report.settled_at[a] > spec.final_deadline()) {
      out.violations.push_back("arc " + std::to_string(a) + " triggered at t=" +
                               std::to_string(report.settled_at[a]) +
                               " past the 2*diam*delta deadline (Thm 4.7)");
    }
  }

  // Uniformity: everyone conforming => everything triggered.
  bool all_conforming = true;
  for (PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    if (!engine.strategy(v).conforming()) all_conforming = false;
  }
  if (all_conforming && !report.all_triggered) {
    out.violations.push_back(
        "all parties conformed but some arc did not trigger (uniformity)");
  }

  // Ledger integrity.
  for (const std::string& chain_name : engine.chain_names()) {
    if (!engine.ledger(chain_name).verify_integrity()) {
      out.violations.push_back("chain " + chain_name +
                               " failed hash/Merkle integrity");
    }
  }
  return out;
}

InvariantReport check_all(const SwapEngine& engine, const SwapReport& report) {
  InvariantReport combined = check_conservation(engine);
  InvariantReport guarantees = check_guarantees(engine, report);
  combined.violations.insert(combined.violations.end(),
                             guarantees.violations.begin(),
                             guarantees.violations.end());
  return combined;
}

}  // namespace xswap::swap
