// Party strategies: conforming behaviour and the deviations the paper's
// adversarial analysis considers (§2.2, §3).
//
// A *conforming* party follows the protocol exactly. Deviating parties may
// crash, withhold steps, reveal secrets early (irrationally), publish
// corrupted contracts, or collude in coalitions that share secrets
// out-of-band instantly. Theorem 4.9's property tests sweep these knobs
// and assert that no conforming party ever ends Underwater.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace xswap::util {
class Rng;
}

namespace xswap::swap {

struct Strategy {
  /// Halt entirely (no publishes, no unlocks, no claims, no refunds) at
  /// this simulated time.
  std::optional<sim::Time> crash_at;

  /// Come back from the crash_at outage at this simulated time with
  /// volatile memory WIPED (the recoverable-protocol model): the party
  /// keeps only its durable state — keys and leader secret — and
  /// re-derives everything else by scanning the chains before acting
  /// again. Requires crash_at; ignored without it.
  std::optional<sim::Time> recover_at;

  /// Never publish contracts on leaving arcs (Phase One defection).
  bool withhold_contracts = false;

  /// Publish contracts whose hashlocks do not match the spec; conforming
  /// counterparties detect the mismatch and ignore them (§4.5 "verifies
  /// that contract is a correct swap contract").
  bool publish_corrupt_contracts = false;

  /// Never call unlock on entering arcs (Phase Two defection; forfeits
  /// the party's own acquisitions).
  bool withhold_unlocks = false;

  /// Never claim triggered entering arcs (leaves assets in escrow).
  bool withhold_claims = false;

  /// Leaders only: release the secret at protocol start without waiting
  /// for contracts on all entering arcs (the "irrational Alice" of §1).
  bool premature_reveal = false;

  /// Delay every unlock submission until this time (adversarial
  /// last-moment triggering, the timing attack of §1: "Carol could
  /// reveal s ... at the very last moment").
  std::optional<sim::Time> delay_unlocks_until;

  /// Coalition id (-1 = none). Members share learned secrets/hashkeys
  /// out-of-band instantly; signatures still prevent them from forging
  /// shorter paths than the digraph admits.
  int coalition = -1;

  /// Fully conforming behaviour?
  bool conforming() const {
    return !crash_at && !withhold_contracts && !publish_corrupt_contracts &&
           !withhold_unlocks && !withhold_claims && !premature_reveal &&
           !delay_unlocks_until && coalition < 0;
  }

  static Strategy honest() { return {}; }
};

/// Parse a deviation spec `KIND[:ARG]` into a Strategy — the one
/// name→Strategy table for the CLI, benches, examples, tests, and the
/// fuzz sweep:
///
///   crash:T        halt at start_time + T
///   crash_recover:T:R
///                  crash at start_time + T, recover at start_time +
///                  T + R with volatile memory wiped (re-derives state
///                  from the chains — the crash-recovery adversary)
///   withhold       withhold unlocks and claims (Phase Two defection)
///   silent         withhold contracts (Phase One defection)
///   corrupt        publish corrupt contracts
///   late:T         delay every unlock until start_time + T
///   reveal         leader reveals the secret prematurely
///
/// Stochastic kinds (the fuzzer's adversary families; they resolve to a
/// concrete Strategy at parse time from `rng`, so a seeded rng replays
/// the same deviation and the simulation stays deterministic):
///
///   flip:P         coin-flip deviation: with probability P% pick one of
///                  the concrete deviations above uniformly (timed ones
///                  draw their tick from [1, 64]); otherwise honest
///   crashrand:T    crash at a uniform random tick in [start_time,
///                  start_time + T]
///   equivocate:P   with probability P% publish corrupt contracts
///                  (advertise contracts that do not match the agreed
///                  spec); otherwise honest
///
/// Times are ticks relative to `start_time` (pass the spec's
/// start_time so deadlines line up; 0 keeps them absolute). Throws
/// std::invalid_argument on unknown kinds, missing or non-numeric
/// arguments, stray arguments on argument-free kinds, P > 100, and
/// stochastic kinds with no rng.
Strategy strategy_from_spec(const std::string& spec, sim::Time start_time = 0,
                            util::Rng* rng = nullptr);

/// Parse a full adversary spec `WHO:KIND[:ARG]` (WHO is a party name or
/// id, uninterpreted here) into (WHO, strategy). Same errors as
/// strategy_from_spec, plus a missing `WHO:` prefix.
std::pair<std::string, Strategy> parse_adversary(const std::string& spec,
                                                 sim::Time start_time = 0,
                                                 util::Rng* rng = nullptr);

/// The KIND names strategy_from_spec accepts, for usage/help text.
const std::vector<std::string>& strategy_spec_kinds();

}  // namespace xswap::swap
