// The waits-for digraph of Theorem 4.12.
//
// "At any step in the protocol, the waits-for digraph W is the subdigraph
// of D^T where (v, u) is an arc of W if (u, v) has no published contract."
// A follower can publish on its leaving arcs only when its waits-for
// in-degree is zero; a cycle of followers in W therefore deadlocks Phase
// One forever — which is exactly why the leader set must be a feedback
// vertex set.
//
// This module builds W from the on-chain record (swap/forensics.hpp
// events) or from a digraph + published set directly, and detects
// deadlocked follower cycles. It powers both the Theorem 4.12 tests and
// post-mortem diagnosis ("the swap stalled because these parties wait on
// each other").
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "swap/forensics.hpp"
#include "swap/spec.hpp"

namespace xswap::swap {

/// Build the waits-for digraph: same vertex set as D; for every arc
/// (u, v) of D without a published contract, W gets the arc (v, u).
graph::Digraph waits_for_digraph(const graph::Digraph& d,
                                 const std::vector<bool>& published);

/// Convenience: from reconstructed arc events.
graph::Digraph waits_for_digraph(const SwapSpec& spec,
                                 const std::vector<ArcEvents>& events);

/// A deadlocked wait: a cycle in W containing no leader. Phase One can
/// never complete while one exists (each member waits for the next).
struct Deadlock {
  std::vector<PartyId> cycle;  // vertexes of one such cycle, in order
};

/// Find a follower-only cycle in W, if any. With leaders forming a
/// feedback vertex set and all leaders having published, none can exist.
std::optional<Deadlock> find_deadlock(const graph::Digraph& waits_for,
                                      const std::vector<PartyId>& leaders);

}  // namespace xswap::swap
