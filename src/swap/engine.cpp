#include "swap/engine.hpp"

#include <stdexcept>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "graph/paths.hpp"
#include "swap/broadcast.hpp"
#include "util/rng.hpp"

namespace xswap::swap {

SwapEngine::SwapEngine(const graph::Digraph& digraph,
                       std::vector<PartyId> leaders, EngineOptions options)
    : SwapEngine(cleared_for_digraph(digraph, std::move(leaders)), options) {}

SwapEngine::SwapEngine(graph::Digraph digraph,
                       std::vector<std::string> party_names,
                       std::vector<PartyId> leaders, std::vector<ArcTerms> arcs,
                       EngineOptions options)
    : SwapEngine(ClearedSwap{std::move(digraph), std::move(party_names),
                             std::move(leaders), std::move(arcs)},
                 options) {}

SwapEngine::SwapEngine(ClearedSwap cleared, EngineOptions options)
    : options_(options) {
  const auto net_problems = options_.net.validate();
  if (!net_problems.empty()) {
    std::string msg = "SwapEngine: invalid network model:";
    for (const auto& p : net_problems) msg += "\n  - " + p;
    throw std::invalid_argument(msg);
  }
  // One protocol hop is publish + confirm on a chain; with a network
  // model attached, its worst-case extra delay joins the hop so the
  // §2.2 timing assumption keeps holding on every perturbed run. The
  // bound comes from the single min_safe_delta() helper — the Δ
  // discipline tools/xswap_lint.py enforces tree-wide.
  const sim::Duration hop = options_.seal_period + options_.chain_submit_delay;
  if (options_.delta < options_.net.min_safe_delta(hop) &&
      !options_.allow_unsafe_timing) {
    throw std::invalid_argument(
        "SwapEngine: delta must cover two chain hops "
        "(publish + confirm, each seal_period + submit_delay + worst-case "
        "network-fault delay)");
  }
  if (options_.mode == ProtocolMode::kSingleLeader &&
      cleared.leaders.size() != 1) {
    throw std::invalid_argument(
        "SwapEngine: single-leader mode requires exactly one leader");
  }

  spec_.digraph = std::move(cleared.digraph);
  spec_.party_names = std::move(cleared.party_names);
  spec_.leaders = std::move(cleared.leaders);
  spec_.delta = options_.delta;
  spec_.broadcast = options_.broadcast;
  spec_.start_time = options_.delta;  // "at least Δ in the future" (§4.2)

  const std::size_t n = spec_.digraph.vertex_count();
  spec_.diam = n <= 12 ? graph::diameter(spec_.digraph)
                       : graph::diameter_upper_bound(spec_.digraph);

  // Deterministic keys and secrets from the seed.
  util::Rng rng(options_.seed);
  spec_.directory.resize(n);
  parties_.reserve(n);
  std::vector<crypto::KeyPair> keypairs;
  keypairs.reserve(n);
  for (PartyId v = 0; v < n; ++v) {
    keypairs.push_back(crypto::KeyPair::from_seed(rng.next_bytes(32)));
    spec_.directory[v] = keypairs.back().public_key();
  }
  for (std::size_t i = 0; i < spec_.leaders.size(); ++i) {
    leader_secrets_.push_back(rng.next_bytes(32));
    spec_.hashlocks.push_back(crypto::sha256_bytes(leader_secrets_.back()));
  }

  build(std::move(cleared.arcs));

  const auto problems = validate_spec(spec_);
  if (!problems.empty()) {
    std::string msg = "SwapEngine: invalid spec:";
    for (const auto& p : problems) msg += "\n  - " + p;
    throw std::invalid_argument(msg);
  }

  strategies_.assign(n, Strategy::honest());

  // Parties are created in run() so that strategies set after
  // construction are honored; keep the keypairs until then.
  keypairs_ = std::move(keypairs);
}

void SwapEngine::build(std::vector<ArcTerms> arcs) {
  spec_.arcs = std::move(arcs);
  // Steady-state event population: one periodic poll per party, one
  // seal per chain, plus in-flight submissions. Pre-sizing the slab
  // keeps pooled workers from growing it mid-run.
  sim_.reserve(2 * (spec_.digraph.vertex_count() + spec_.digraph.arc_count()) +
               16);
  // One ledger per distinct chain name; genesis-fund each arc's party.
  for (graph::ArcId a = 0; a < spec_.digraph.arc_count(); ++a) {
    const ArcTerms& terms = spec_.arcs.at(a);
    if (!ledgers_.count(terms.chain)) {
      ledgers_[terms.chain] = std::make_unique<chain::Ledger>(
          terms.chain, sim_, options_.seal_period);
      ledgers_[terms.chain]->set_submit_delay(options_.chain_submit_delay);
      ledgers_[terms.chain]->set_chain_locks(options_.chain_locks);
      ledgers_[terms.chain]->set_submit_fault(
          options_.net.make_fault(terms.chain, options_.seed));
      if (options_.trace) ledgers_[terms.chain]->enable_trace();
      attach_journal(*ledgers_[terms.chain]);
    }
    const PartyId head = spec_.digraph.arc(a).head;
    ledgers_[terms.chain]->mint(spec_.party_names.at(head), terms.asset);
  }
  if (options_.broadcast) {
    ledgers_[kBroadcastChain] =
        std::make_unique<chain::Ledger>(kBroadcastChain, sim_, options_.seal_period);
    ledgers_[kBroadcastChain]->set_submit_delay(options_.chain_submit_delay);
    ledgers_[kBroadcastChain]->set_chain_locks(options_.chain_locks);
    ledgers_[kBroadcastChain]->set_submit_fault(
        options_.net.make_fault(kBroadcastChain, options_.seed));
    if (options_.trace) ledgers_[kBroadcastChain]->enable_trace();
    attach_journal(*ledgers_[kBroadcastChain]);
  }
}

void SwapEngine::attach_journal(chain::Ledger& ledger) {
  if (options_.durable_dir.empty()) return;
  journals_.push_back(std::make_unique<persist::LedgerJournal>(
      options_.durable_dir + "/" + persist::sanitize_chain_dir(ledger.name()),
      options_.durability));
  ledger.attach_store(journals_.back().get());
}

void SwapEngine::set_strategy(PartyId v, Strategy strategy) {
  if (ran_) throw std::logic_error("set_strategy: engine already ran");
  strategies_.at(v) = strategy;
}

void SwapEngine::override_leader_secrets(const std::vector<Secret>& secrets) {
  if (ran_) throw std::logic_error("override_leader_secrets: engine already ran");
  if (secrets.size() != spec_.leaders.size()) {
    throw std::invalid_argument(
        "override_leader_secrets: need one secret per leader");
  }
  for (const Secret& s : secrets) {
    if (s.size() != 32) {
      throw std::invalid_argument("override_leader_secrets: secrets are 32 bytes");
    }
  }
  leader_secrets_ = secrets;
  for (std::size_t i = 0; i < secrets.size(); ++i) {
    spec_.hashlocks[i] = crypto::sha256_bytes(secrets[i]);
  }
}

const chain::Ledger& SwapEngine::ledger(const std::string& chain_name) const {
  return *ledgers_.at(chain_name);
}

std::vector<std::string> SwapEngine::chain_names() const {
  std::vector<std::string> names;
  names.reserve(ledgers_.size());
  for (const auto& [name, ledger] : ledgers_) names.push_back(name);
  return names;
}

SwapReport SwapEngine::run() {
  if (ran_) throw std::logic_error("SwapEngine::run: already ran");
  ran_ = true;

  // Coalition pools.
  for (PartyId v = 0; v < spec_.digraph.vertex_count(); ++v) {
    const int c = strategies_[v].coalition;
    if (c >= 0 && !coalition_pools_.count(c)) {
      coalition_pools_[c] = std::make_unique<CoalitionPool>();
    }
  }

  // Ledger pointer map shared by all parties.
  std::map<std::string, chain::Ledger*> ledger_ptrs;
  for (auto& [name, ledger] : ledgers_) ledger_ptrs[name] = ledger.get();

  for (PartyId v = 0; v < spec_.digraph.vertex_count(); ++v) {
    const int c = strategies_[v].coalition;
    parties_.push_back(std::make_unique<Party>(
        spec_, v, keypairs_[v], options_.mode, strategies_[v], ledger_ptrs,
        &counters_, c >= 0 ? coalition_pools_[c].get() : nullptr));
    const std::size_t li = spec_.leader_index(v);
    if (li != SwapSpec::npos) {
      parties_.back()->set_leader_secret(leader_secrets_[li]);
    }
  }

  // Broadcast board (published by the untrusted clearing service before
  // the protocol starts; it holds no assets so trust is not required).
  if (options_.broadcast) {
    ledgers_[kBroadcastChain]->submit_contract(
        "clearing", std::make_unique<BroadcastBoard>(spec_),
        spec_.encoded_size());
  }

  // Start chains, schedule party polls (ledgers first so that seals
  // execute before party ticks at equal timestamps).
  for (auto& [name, ledger] : ledgers_) ledger->start();
  for (auto& party : parties_) {
    Party* p = party.get();
    sim_.every(1, 1, [this, p] {
      p->tick(sim_.now());
      return sim_.now() < end_time();
    });
  }

  sim_.run_until(end_time());
  for (auto& [name, ledger] : ledgers_) ledger->stop();
  sim_.run_until(end_time() + 2 * options_.seal_period);

  return harvest();
}

sim::Time SwapEngine::end_time() const {
  // Everything settles by the final hashkey deadline plus the refund
  // round-trip; add margin for sealing and submission latency (and the
  // network model's worst case, so fault-delayed refunds still land).
  return spec_.final_deadline() + 2 * spec_.delta +
         2 * options_.net.min_safe_delta(options_.seal_period +
                                         options_.chain_submit_delay);
}

SwapReport SwapEngine::harvest() {
  SwapReport report;
  const std::size_t arc_count = spec_.digraph.arc_count();
  report.contract_published.assign(arc_count, false);
  report.triggered.assign(arc_count, false);
  report.refunded.assign(arc_count, false);
  report.settled_at.assign(arc_count, 0);

  for (graph::ArcId a = 0; a < arc_count; ++a) {
    const chain::Ledger& ledger = *ledgers_.at(spec_.arcs[a].chain);
    for (const chain::ContractId id : ledger.published_contracts()) {
      const chain::Contract* c = ledger.get_contract(id);
      Disposition disposition = Disposition::kActive;
      sim::Time triggered_at = 0;
      bool matches = false;
      bool triggered = false;
      if (options_.mode == ProtocolMode::kGeneral) {
        const auto* sc = dynamic_cast<const SwapContract*>(c);
        if (sc != nullptr && sc->matches_spec(spec_, a)) {
          matches = true;
          disposition = sc->disposition();
          // §4.1: the arc is triggered once all hashlocks unlock; the
          // claim merely collects (a crashed counterparty may never
          // bother — that harms only itself).
          triggered = sc->all_unlocked() || disposition == Disposition::kClaimed;
          triggered_at = sc->triggered_at();
        }
      } else {
        const auto* sc = dynamic_cast<const SingleLeaderContract*>(c);
        if (sc != nullptr && sc->matches_spec(spec_, a)) {
          matches = true;
          disposition = sc->disposition();
          triggered = sc->unlocked() || disposition == Disposition::kClaimed;
          triggered_at = sc->triggered_at();
        }
      }
      if (!matches) continue;
      report.contract_published[a] = true;
      report.triggered[a] = triggered;
      report.refunded[a] = disposition == Disposition::kRefunded;
      report.settled_at[a] = triggered_at;
      break;
    }
    // Refunded arcs: take the refund transaction's execution time.
    if (report.refunded[a]) {
      for (const chain::Block& block : ledger.blocks()) {
        for (const chain::Transaction& tx : block.txs) {
          if (tx.succeeded && tx.kind == chain::TxKind::kContractCall &&
              tx.summary.rfind("refund", 0) == 0) {
            report.settled_at[a] = std::max(report.settled_at[a], tx.executed_at);
          }
        }
      }
    }
  }

  report.all_triggered = true;
  for (graph::ArcId a = 0; a < arc_count; ++a) {
    if (!report.triggered[a]) report.all_triggered = false;
    if (report.triggered[a]) {
      report.last_trigger_time =
          std::max(report.last_trigger_time, report.settled_at[a]);
    }
  }

  report.outcomes = classify_all(spec_.digraph, report.triggered);
  for (PartyId v = 0; v < spec_.digraph.vertex_count(); ++v) {
    if (strategies_[v].conforming() && !acceptable(report.outcomes[v])) {
      report.no_conforming_underwater = false;
    }
  }

  for (const auto& [name, ledger] : ledgers_) {
    report.total_storage_bytes += ledger->storage_bytes();
    report.total_call_payload_bytes += ledger->call_payload_bytes();
    report.total_transactions += ledger->transaction_count();
    report.failed_transactions += ledger->failed_transaction_count();
  }
  report.hashkey_bytes_submitted = counters_.hashkey_bytes_submitted;
  report.sign_operations = counters_.sign_operations;
  report.finished_at = sim_.now();
  if (!journals_.empty()) {
    // Final group commit: flush any blocks still queued behind the
    // deferred-header batch, then push every journal to disk so the
    // report is only returned once its run is durable.
    for (const auto& [name, ledger] : ledgers_) ledger->seal_batch();
    for (const auto& journal : journals_) journal->commit();
  }
  return report;
}

}  // namespace xswap::swap
