// Canonical wire format for protocol data.
//
// Theorem 4.10 measures "bits stored on all blockchains" and the
// communication bound counts "bits published" — so the library defines an
// actual byte encoding rather than hand-waving sizes. The format is a
// simple length-prefixed binary layout with a version byte; decoding
// rejects malformed input instead of guessing.
//
//   varuint  : unsigned LEB128
//   bytes    : varuint length + raw bytes
//   string   : bytes (UTF-8)
//
// Encoded objects: Hashkey (what an unlock call carries on the wire) and
// SwapSpec (what a contract publication embeds — the digraph copy that
// drives the O(|A|^2) space bound).
#pragma once

#include <optional>

#include "swap/hashkey.hpp"
#include "swap/spec.hpp"
#include "util/bytes.hpp"

namespace xswap::swap {

/// Format version written into every encoding.
inline constexpr std::uint8_t kCodecVersion = 1;

// ---- primitives (exposed for tests and future encoders) ----

/// Append LEB128 unsigned varint.
void put_varuint(util::Bytes& out, std::uint64_t value);
/// Append length-prefixed bytes.
void put_bytes(util::Bytes& out, util::BytesView data);

/// Stateful reader over an encoded buffer; all reads fail (return
/// nullopt) on truncation or malformed data rather than throwing.
class Reader {
 public:
  explicit Reader(util::BytesView data) : data_(data) {}

  std::optional<std::uint64_t> varuint();
  std::optional<util::Bytes> bytes(std::size_t max_len = kMaxField);
  std::optional<std::uint8_t> byte();
  bool at_end() const { return pos_ == data_.size(); }

  /// Per-field sanity cap (prevents hostile length prefixes from driving
  /// huge allocations).
  static constexpr std::size_t kMaxField = 1 << 20;

 private:
  util::BytesView data_;
  std::size_t pos_ = 0;
};

// ---- Hashkey ----

/// Encode a hashkey (secret, path, signature chain).
util::Bytes encode_hashkey(const Hashkey& key);
/// Decode; nullopt on malformed input.
std::optional<Hashkey> decode_hashkey(util::BytesView data);

// ---- SwapSpec ----

/// Encode a full swap spec (digraph, parties, leaders, hashlocks, arc
/// terms, directory, timing). This is the payload a contract publication
/// stores on chain.
util::Bytes encode_spec(const SwapSpec& spec);
/// Decode; nullopt on malformed input.
std::optional<SwapSpec> decode_spec(util::BytesView data);

}  // namespace xswap::swap
