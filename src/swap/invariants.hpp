// Run-wide invariant checking.
//
// After any protocol run — honest or adversarial — these audits must
// pass. They encode the paper's guarantees as machine-checkable
// predicates so that tests, fuzz sweeps, and downstream users can assert
// them with one call:
//
//  * conservation: no chain ever mints or destroys value; transfers and
//    escrow only move it (the "tamper-proof ledger" of §2.2);
//  * settled escrow: a claimed or refunded contract holds nothing;
//  * safety (Theorem 4.9): no conforming party's outcome is Underwater;
//  * liveness bound (Theorem 4.7 / §4.2): every trigger lands by
//    start + 2·diam·Δ, and with everyone conforming everything triggers;
//  * chain integrity: every ledger's hash links and Merkle roots check.
#pragma once

#include <string>
#include <vector>

#include "swap/engine.hpp"

namespace xswap::swap {

/// Outcome of an audit: empty `violations` means all invariants hold.
struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  std::string to_string() const;
};

/// Audit conservation and settled-escrow on every chain of a finished
/// engine. Uses genesis supplies recomputed from the chains themselves.
InvariantReport check_conservation(const SwapEngine& engine);

/// Audit the protocol guarantees on a finished run's report.
/// `all_conforming` should be true when no strategy deviated; it enables
/// the uniformity check (everything must have triggered).
InvariantReport check_guarantees(const SwapEngine& engine,
                                 const SwapReport& report);

/// Both audits combined.
InvariantReport check_all(const SwapEngine& engine, const SwapReport& report);

}  // namespace xswap::swap
