// Execution policy for a batch of independent component swaps.
//
// decompose_offers splits an offer book into component swaps, one per
// non-trivial SCC; each component's SwapEngine owns its own Simulator,
// ledgers, and seed-derived randomness, so components are share-nothing
// by construction and may run in any order — or concurrently. An
// Executor decides that schedule: SerialExecutor reproduces the classic
// in-order loop bit-for-bit, ThreadPoolExecutor(n) fans the components
// out over n worker threads. Scenario::run() aggregates the per-index
// results in component order afterwards, so every BatchReport field
// except the wall-clock ones (wall_ms, components_per_sec) is identical
// across executors.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>

namespace xswap::swap {

struct SwapReport;

/// Schedules `count` independent tasks. Implementations must invoke
/// `task(i)` exactly once for every i in [0, count) and return only when
/// all invocations have finished; they may pick any order and any degree
/// of concurrency (tasks must not depend on each other). If a task
/// throws, the first exception is rethrown to the caller after every
/// started task has finished.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void run(std::size_t count,
                   const std::function<void(std::size_t)>& task) = 0;

  /// Short policy name for reports and logs ("serial", "thread-pool").
  virtual const char* name() const = 0;
};

/// The classic in-order loop on the calling thread — the default policy,
/// bit-for-bit identical to pre-Executor Scenario::run() behaviour.
class SerialExecutor final : public Executor {
 public:
  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override;
  const char* name() const override { return "serial"; }
};

/// Fan the tasks out over a pool of worker threads. Workers pull the
/// next unclaimed index from a shared atomic counter, so the assignment
/// of tasks to threads is load-balanced (and non-deterministic) — which
/// is safe precisely because component engines share no state and the
/// caller aggregates by index afterwards.
class ThreadPoolExecutor final : public Executor {
 public:
  /// Throws std::invalid_argument when `n_threads` is 0.
  explicit ThreadPoolExecutor(std::size_t n_threads);

  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override;
  const char* name() const override { return "thread-pool"; }
  std::size_t thread_count() const { return n_threads_; }

 private:
  std::size_t n_threads_;
};

/// Per-run knobs for Scenario::run(RunOptions). Validation happens at
/// run(): a zero max_components cap is rejected with
/// std::invalid_argument (capping a batch to nothing is always a bug).
struct RunOptions {
  /// Execution policy; nullptr means SerialExecutor. The executor is
  /// borrowed for the duration of the call, not owned.
  Executor* executor = nullptr;

  /// Invoked once per component as soon as that component's engine
  /// finishes, with the component index and its report. Calls are
  /// serialized (never concurrent with each other), but under a
  /// ThreadPoolExecutor they arrive in completion order, not index
  /// order, and from worker threads.
  std::function<void(std::size_t, const SwapReport&)> progress;

  /// Run only the first `max_components` components (in decomposition
  /// order); the rest are skipped, counted in
  /// BatchReport::components_skipped, and logged to stderr. Useful for
  /// sampling huge books.
  std::optional<std::size_t> max_components;
};

}  // namespace xswap::swap
