// Execution policy for a batch of independent component swaps.
//
// decompose_offers splits an offer book into component swaps, one per
// non-trivial SCC; each component's SwapEngine owns its own Simulator,
// ledgers, and seed-derived randomness, so components are share-nothing
// by construction and may run in any order — or concurrently. An
// Executor decides that schedule:
//
//   * SerialExecutor reproduces the classic in-order loop bit-for-bit;
//   * ThreadPoolExecutor(n) spawns n workers per run() call (cheap to
//     reason about, pays thread start/join per batch);
//   * WorkStealingPool(n) keeps n lanes alive across run() calls — a
//     persistent pool with one Chase–Lev-style deque per lane plus a
//     batch injector, so batch-of-batches workloads (fleets of offer
//     books) stop paying thread start-up per book and idle lanes steal
//     the tail of a straggling lane's work.
//
// Scenario::run() aggregates the per-index results in component order
// afterwards, so every BatchReport field except the wall-clock ones
// (wall_ms, components_per_sec) is identical across executors.
//
// Persistent pools are typically obtained from the process-wide
// ExecutorRegistry and handed to Scenario::run via RunOptions::pool (an
// owning handle, safe to share across scenarios and threads of control).
//
// Lock discipline is stated with the Clang Thread Safety annotations
// (util/thread_annotations.hpp): members tagged XSWAP_GUARDED_BY may
// only be touched under their mutex, and -Wthread-safety (CMake
// -DXSWAP_THREAD_SAFETY=ON) proves it at compile time. State that is
// synchronized by a protocol rather than a mutex (the deque atomics,
// the epoch-published task pointer) is documented inline instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace xswap::swap {

struct SwapReport;

/// Schedules `count` independent tasks. Implementations must invoke
/// `task(i)` exactly once for every i in [0, count) and return only when
/// all invocations have finished; they may pick any order and any degree
/// of concurrency (tasks must not depend on each other). If a task
/// throws, the first exception is rethrown to the caller after every
/// started task has finished.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual void run(std::size_t count,
                   const std::function<void(std::size_t)>& task) = 0;

  /// Short policy name for reports and logs ("serial", "thread-pool",
  /// "work-stealing").
  virtual const char* name() const = 0;
};

/// The classic in-order loop on the calling thread — the default policy,
/// bit-for-bit identical to pre-Executor Scenario::run() behaviour.
class SerialExecutor final : public Executor {
 public:
  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override;
  const char* name() const override { return "serial"; }
};

/// Fan the tasks out over a pool of worker threads spawned per run()
/// call. Workers pull the next unclaimed index from a shared atomic
/// counter, so the assignment of tasks to threads is load-balanced (and
/// non-deterministic) — which is safe precisely because component
/// engines share no state and the caller aggregates by index afterwards.
class ThreadPoolExecutor final : public Executor {
 public:
  /// Throws std::invalid_argument when `n_threads` is 0.
  explicit ThreadPoolExecutor(std::size_t n_threads);

  void run(std::size_t count,
           const std::function<void(std::size_t)>& task) override;
  const char* name() const override { return "thread-pool"; }
  std::size_t thread_count() const { return n_threads_; }

 private:
  std::size_t n_threads_;
};

/// A persistent pool of `n_threads` execution lanes reused across run()
/// calls: lane 0 is the calling thread, lanes 1..n-1 are worker threads
/// started once in the constructor and parked on a condition variable
/// between batches (the "injector": run() publishes a batch, wakes every
/// worker, and waits for completion — no thread start/join per batch).
///
/// Within a batch each lane owns a Chase–Lev-style deque pre-filled with
/// a contiguous slice of the index space: the owner pops from the bottom
/// (LIFO, cache-warm), idle lanes steal from other deques' top (FIFO, the
/// oldest — largest remaining — work), so a straggling lane's tail is
/// backfilled by whoever drains first. Task-to-lane assignment is
/// non-deterministic; correctness relies on the Executor contract (tasks
/// independent, caller aggregates by index).
///
/// run() calls are serialized internally: the pool is safe to share
/// between scenarios and between controlling threads (batches queue up
/// on an internal mutex). With n_threads == 1 the pool degenerates to
/// the serial loop on the caller — still persistent, never spawning.
class WorkStealingPool final : public Executor {
 public:
  /// Throws std::invalid_argument when `n_threads` is 0.
  explicit WorkStealingPool(std::size_t n_threads);
  ~WorkStealingPool() override;

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Tasks must not re-enter run() on the same pool (run_mutex_ is not
  /// recursive) and must not touch the batch-handoff state — which is
  /// exactly what XSWAP_EXCLUDES states to the analysis.
  void run(std::size_t count, const std::function<void(std::size_t)>& task)
      override XSWAP_EXCLUDES(run_mutex_, mutex_, error_mutex_);
  const char* name() const override { return "work-stealing"; }

  std::size_t thread_count() const { return lanes_; }
  /// Batches executed so far (pool-reuse observability for tests/benches).
  std::size_t batches_run() const { return batches_.load(std::memory_order_relaxed); }
  /// Tasks executed by a lane other than the one whose deque held them.
  std::size_t steal_count() const { return steals_.load(std::memory_order_relaxed); }

 private:
  /// One lane's deque over the current batch's index space. The slot
  /// array is written only between batches (while every worker is
  /// parked), so in-batch readers race only on the atomic ends: the
  /// owner pops `bottom`, thieves CAS `top`. All end accesses are
  /// seq_cst — the classic Chase–Lev fence placement collapsed into the
  /// total order, which is plenty at component-swap granularity (tasks
  /// are milliseconds, not nanoseconds).
  struct Deque {
    std::atomic<std::int64_t> top{0};
    std::atomic<std::int64_t> bottom{0};
    std::vector<std::size_t> slots;
  };

  void worker_main(std::size_t lane) XSWAP_EXCLUDES(mutex_);
  /// Drain the batch from lane's own deque, then steal; returns when no
  /// task is claimable anywhere (running tasks may still be in flight).
  void work_batch(std::size_t lane) XSWAP_EXCLUDES(mutex_, error_mutex_);
  bool pop_bottom(Deque& d, std::size_t* out);
  bool steal_top(Deque& d, std::size_t* out);
  void run_task(std::size_t index) XSWAP_EXCLUDES(error_mutex_);

  const std::size_t lanes_;
  std::vector<std::unique_ptr<Deque>> deques_;  // one per lane
  std::vector<std::thread> workers_;            // lanes 1..n-1

  util::Mutex run_mutex_;  // serializes run() calls (one batch at a time)

  // Batch state, published under mutex_ before workers wake. The
  // condvars are _any so they can wait on the annotated Mutex directly.
  util::Mutex mutex_;
  std::condition_variable_any batch_cv_;  // workers park between batches
  std::condition_variable_any done_cv_;   // run() waits for batch drain
  std::uint64_t epoch_ XSWAP_GUARDED_BY(mutex_) = 0;  // bumped per batch
  std::size_t joined_ XSWAP_GUARDED_BY(mutex_) = 0;   // acks this epoch
  std::size_t active_ XSWAP_GUARDED_BY(mutex_) = 0;   // inside work_batch
  bool stop_ XSWAP_GUARDED_BY(mutex_) = false;

  // Written by run() while every worker is parked, read by workers
  // after they observe the new epoch under mutex_ — the epoch handoff
  // (release of mutex_ in run(), acquire in worker_main) is the
  // synchronization, not a lock held at the read. Not annotatable; the
  // TSan CI job covers this protocol dynamically.
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::atomic<std::size_t> remaining_{0};  // tasks not yet finished
  std::exception_ptr first_error_ XSWAP_GUARDED_BY(error_mutex_);
  util::Mutex error_mutex_;

  std::atomic<std::size_t> batches_{0};
  std::atomic<std::size_t> steals_{0};
};

/// Process-wide home for persistent pools, so every Scenario::run(),
/// fleet run, CLI invocation, and bench in the process reuses the same
/// warmed-up lanes instead of spawning per batch. Pools are cached by
/// lane count and live until process exit (their destructors join the
/// parked workers).
class ExecutorRegistry {
 public:
  static ExecutorRegistry& instance();

  /// The shared persistent pool with `n_threads` lanes, created on first
  /// use. Thread-safe; the returned handle keeps the pool alive even if
  /// the registry were torn down first.
  std::shared_ptr<WorkStealingPool> shared_pool(std::size_t n_threads)
      XSWAP_EXCLUDES(mutex_);

  /// Elastic acquire: the smallest cached pool with AT LEAST `n_threads`
  /// lanes, or a fresh `n_threads`-lane pool when none is big enough.
  /// Growing this way does not leak the outgrown sizes: after creating a
  /// bigger pool, cached smaller pools nobody else holds are dropped
  /// (their destructors join the parked workers). Pools still referenced
  /// outside the registry are left alone — dropping the cache entry
  /// would orphan, not kill, them. Long-lived services (serve's
  /// ClearingService) use this so a --jobs bump reuses or replaces lanes
  /// instead of accumulating one pool per size ever requested.
  std::shared_ptr<WorkStealingPool> shared_pool_at_least(
      std::size_t n_threads) XSWAP_EXCLUDES(mutex_);

  /// Number of distinct pool sizes currently cached.
  std::size_t pool_count() const XSWAP_EXCLUDES(mutex_);

 private:
  ExecutorRegistry() = default;
  mutable util::Mutex mutex_;
  std::map<std::size_t, std::shared_ptr<WorkStealingPool>> pools_
      XSWAP_GUARDED_BY(mutex_);
};

/// Per-run knobs for Scenario::run(RunOptions). Validation happens at
/// run(): a zero max_components cap is rejected with
/// std::invalid_argument (capping a batch to nothing is always a bug).
struct RunOptions {
  /// Execution policy; nullptr means SerialExecutor. The executor is
  /// borrowed for the duration of the call, not owned.
  Executor* executor = nullptr;

  /// Owning alternative to `executor` — typically a persistent pool from
  /// ExecutorRegistry::shared_pool. Takes precedence over `executor`
  /// when set; shared across scenarios (the pool serializes its batches
  /// internally).
  std::shared_ptr<Executor> pool;

  /// Invoked once per component as soon as that component's engine
  /// finishes, with the component index and its report. Calls are
  /// serialized (never concurrent with each other), but under a
  /// concurrent executor they arrive in completion order, not index
  /// order, and from worker threads.
  std::function<void(std::size_t, const SwapReport&)> progress;

  /// Run only the first `max_components` components (in decomposition
  /// order); the rest are skipped, counted in
  /// BatchReport::components_skipped, and logged to stderr. Useful for
  /// sampling huge books.
  std::optional<std::size_t> max_components;
};

}  // namespace xswap::swap
