// Path-length machinery for the paper's timing analysis.
//
// §2.1 defines D(u, v) as the length of the *longest* (simple) path from u
// to v, and diam(D) as the longest path between any ordered pair. These
// drive the protocol's timeouts: a hashkey with path p expires at
// start + (diam(D) + |p|)·Δ, and the single-leader variant (§4.6) gives arc
// (u, v) timeout (diam(D) + D(v, v̂) + 1)·Δ.
//
// Longest simple path is NP-hard in general; swap digraphs are small
// (parties in a single swap), so `longest_path`/`diameter` run an exact
// DFS enumeration and refuse absurd sizes. `diameter_upper_bound` provides
// the always-safe |V| - 1 fallback: timeouts only need to be *at least*
// the true values for the safety proofs to hold.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace xswap::graph {

/// True iff `d` has no directed cycle (Kahn's algorithm).
bool is_acyclic(const Digraph& d);

/// Topological order of an acyclic digraph, or nullopt if cyclic.
std::optional<std::vector<VertexId>> topological_order(const Digraph& d);

/// D(u, v): length (arc count) of the longest path from `u` to `v`, or
/// nullopt if v is unreachable from u. Follows the paper's path definition
/// (§2.1): all vertexes but the last are distinct, and the last may close
/// back onto the first — so for u == v this is the longest cycle through u
/// (0 if u lies on no cycle, via the trivial path). Exact exponential
/// search; throws std::invalid_argument if d.vertex_count() exceeds
/// `max_exact_vertices`.
std::optional<std::size_t> longest_path(const Digraph& d, VertexId u, VertexId v,
                                        std::size_t max_exact_vertices = 24);

/// diam(D): the longest path length over all ordered vertex pairs, paths
/// per §2.1 (closed cycles count: diam of the n-cycle is n, matching the
/// 6Δ/5Δ/4Δ timeouts of Fig. 1). Exact; same size guard as longest_path.
std::size_t diameter(const Digraph& d, std::size_t max_exact_vertices = 24);

/// Safe upper bound |V| ≥ diam(D) (a closed Hamiltonian cycle has length
/// |V|) for use when exact computation is too expensive. All safety
/// lemmas hold with any over-approximation of the diameter.
std::size_t diameter_upper_bound(const Digraph& d);

/// Longest path lengths from every vertex to `target` in an *acyclic*
/// digraph, by dynamic programming (O(V + A)). Entry is nullopt when the
/// target is unreachable. Throws if `d` is cyclic. This is the D(v, v̂)
/// computation for single-leader digraphs, whose follower subdigraph is
/// acyclic (§4.6).
std::vector<std::optional<std::size_t>> longest_paths_to_dag(const Digraph& d,
                                                             VertexId target);

/// True iff `path` (a vertex sequence) is a directed path in `d`: arcs
/// exist between consecutive vertexes, and all vertexes except possibly
/// the last are distinct (the paper's path definition admits closing
/// cycles). An empty sequence is not a path; a single vertex is.
bool is_path(const Digraph& d, const std::vector<VertexId>& path);

/// All §2.1 paths from `from` to `to`, including the trivial path when
/// from == to and closed cycles back onto `from`. These are exactly the
/// admissible hashkey paths for an arc whose counterparty is `from` and
/// whose secret belongs to leader `to` (Fig. 7). Exponential output;
/// throws std::invalid_argument when d.vertex_count() exceeds
/// `max_exact_vertices`.
std::vector<std::vector<VertexId>> enumerate_paths(
    const Digraph& d, VertexId from, VertexId to,
    std::size_t max_exact_vertices = 16);

}  // namespace xswap::graph
