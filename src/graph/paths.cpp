#include "graph/paths.hpp"

#include <algorithm>
#include <stdexcept>

namespace xswap::graph {

namespace {

// DFS over §2.1 paths starting at `start`, updating best[w] with the
// longest length at which w is visited. An arc closing back to `start`
// contributes to best[start] (closed paths are paths in the paper's
// definition). `depth` counts arcs taken so far.
void dfs_longest(const Digraph& d, VertexId start, VertexId v,
                 std::vector<bool>& on_path, std::size_t depth,
                 std::vector<std::size_t>& best) {
  best[v] = std::max(best[v], depth);
  on_path[v] = true;
  for (const ArcId id : d.out_arcs(v)) {
    const VertexId w = d.arc(id).tail;
    if (w == start) {
      best[start] = std::max(best[start], depth + 1);
    } else if (!on_path[w]) {
      dfs_longest(d, start, w, on_path, depth + 1, best);
    }
  }
  on_path[v] = false;
}

void check_size(const Digraph& d, std::size_t max_exact_vertices) {
  if (d.vertex_count() > max_exact_vertices) {
    throw std::invalid_argument(
        "exact longest-path search refused: digraph too large "
        "(use diameter_upper_bound)");
  }
}

}  // namespace

bool is_acyclic(const Digraph& d) {
  return topological_order(d).has_value();
}

std::optional<std::vector<VertexId>> topological_order(const Digraph& d) {
  const std::size_t n = d.vertex_count();
  std::vector<std::size_t> indegree(n);
  for (VertexId v = 0; v < n; ++v) indegree[v] = d.in_degree(v);

  std::vector<VertexId> ready;
  for (VertexId v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }

  std::vector<VertexId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const VertexId v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const ArcId id : d.out_arcs(v)) {
      const VertexId w = d.arc(id).tail;
      if (--indegree[w] == 0) ready.push_back(w);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

std::optional<std::size_t> longest_path(const Digraph& d, VertexId u, VertexId v,
                                        std::size_t max_exact_vertices) {
  if (u >= d.vertex_count() || v >= d.vertex_count()) {
    throw std::out_of_range("longest_path: vertex id out of range");
  }
  check_size(d, max_exact_vertices);
  std::vector<std::size_t> best(d.vertex_count(), 0);
  std::vector<bool> on_path(d.vertex_count(), false);
  std::vector<bool> reached(d.vertex_count(), false);

  // Track reachability alongside the longest length (best[] alone cannot
  // distinguish "unreachable" from "reachable at length 0 only for u").
  struct Tracker {
    static void dfs(const Digraph& d, VertexId start, VertexId v,
                    std::vector<bool>& on_path, std::size_t depth,
                    std::vector<std::size_t>& best, std::vector<bool>& reached) {
      reached[v] = true;
      best[v] = std::max(best[v], depth);
      on_path[v] = true;
      for (const ArcId id : d.out_arcs(v)) {
        const VertexId w = d.arc(id).tail;
        if (w == start) {
          best[start] = std::max(best[start], depth + 1);
        } else if (!on_path[w]) {
          dfs(d, start, w, on_path, depth + 1, best, reached);
        }
      }
      on_path[v] = false;
    }
  };
  Tracker::dfs(d, u, u, on_path, 0, best, reached);
  if (!reached[v]) return std::nullopt;
  return best[v];
}

std::size_t diameter(const Digraph& d, std::size_t max_exact_vertices) {
  check_size(d, max_exact_vertices);
  std::size_t diam = 0;
  std::vector<std::size_t> best(d.vertex_count(), 0);
  std::vector<bool> on_path(d.vertex_count(), false);
  for (VertexId u = 0; u < d.vertex_count(); ++u) {
    std::fill(best.begin(), best.end(), 0);
    dfs_longest(d, u, u, on_path, 0, best);
    for (const std::size_t len : best) diam = std::max(diam, len);
  }
  return diam;
}

std::size_t diameter_upper_bound(const Digraph& d) {
  return d.vertex_count();
}

std::vector<std::optional<std::size_t>> longest_paths_to_dag(const Digraph& d,
                                                             VertexId target) {
  const auto order = topological_order(d);
  if (!order) {
    throw std::invalid_argument("longest_paths_to_dag: digraph is cyclic");
  }
  std::vector<std::optional<std::size_t>> dist(d.vertex_count());
  dist[target] = 0;
  // Process in reverse topological order: by the time we reach v, all
  // vertexes v can reach are finalized.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const VertexId v = *it;
    for (const ArcId id : d.out_arcs(v)) {
      const VertexId w = d.arc(id).tail;
      if (dist[w].has_value()) {
        const std::size_t cand = *dist[w] + 1;
        if (!dist[v].has_value() || cand > *dist[v]) dist[v] = cand;
      }
    }
  }
  return dist;
}

namespace {

void enumerate_dfs(const Digraph& d, VertexId v, VertexId to,
                   std::vector<VertexId>& cur,
                   std::vector<std::vector<VertexId>>& out) {
  cur.push_back(v);
  if (v == to) {
    out.push_back(cur);
    // A non-start arrival at the target ends the path (vertex
    // distinctness forbids continuing); the start vertex must still
    // explore so that closed cycles back onto it are found.
    if (cur.size() > 1) {
      cur.pop_back();
      return;
    }
  }
  for (const ArcId id : d.out_arcs(v)) {
    const VertexId w = d.arc(id).tail;
    bool on_path = false;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (cur[i] == w) {
        on_path = true;
        // Closing onto the start vertex ends a path (§2.1) — but only
        // record it when the start is the target.
        if (i == 0 && w == to) {
          cur.push_back(w);
          out.push_back(cur);
          cur.pop_back();
        }
        break;
      }
    }
    if (!on_path) enumerate_dfs(d, w, to, cur, out);
  }
  cur.pop_back();
}

}  // namespace

std::vector<std::vector<VertexId>> enumerate_paths(
    const Digraph& d, VertexId from, VertexId to,
    std::size_t max_exact_vertices) {
  if (from >= d.vertex_count() || to >= d.vertex_count()) {
    throw std::out_of_range("enumerate_paths: vertex id out of range");
  }
  check_size(d, max_exact_vertices);
  std::vector<std::vector<VertexId>> out;
  std::vector<VertexId> cur;
  enumerate_dfs(d, from, to, cur, out);
  return out;
}

bool is_path(const Digraph& d, const std::vector<VertexId>& path) {
  if (path.empty()) return false;
  for (const VertexId v : path) {
    if (v >= d.vertex_count()) return false;
  }
  // All vertexes except possibly the last must be distinct (§2.1).
  std::vector<VertexId> prefix(path.begin(), path.end() - 1);
  std::sort(prefix.begin(), prefix.end());
  if (std::adjacent_find(prefix.begin(), prefix.end()) != prefix.end()) {
    return false;
  }
  // If the last vertex repeats an interior vertex it must close the cycle
  // at the start.
  if (path.size() >= 2) {
    const VertexId last = path.back();
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      if (path[i] == last) return false;
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!d.find_arc(path[i], path[i + 1]).has_value()) return false;
  }
  return true;
}

}  // namespace xswap::graph
