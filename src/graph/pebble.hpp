// The lazy and eager pebble games of §4.4.
//
// Phase One of the protocol (contract deployment) is an instance of the
// *lazy* game: pebbles start on arcs leaving leaders, and a vertex pebbles
// its leaving arcs once *all* its entering arcs are pebbled. Phase Two
// (hashkey dissemination, per secret) is an instance of the *eager* game
// on the transpose digraph: starting from one vertex, a vertex pebbles its
// leaving arcs once *any* entering arc is pebbled.
//
// Lemmas 4.1–4.3: in both games every arc is eventually pebbled, within
// diam(D) rounds (a round models the worst-case Δ delay). These functions
// return per-arc round numbers so tests and benches can check the bound.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace xswap::graph {

/// Result of running a pebble game to fixpoint.
struct PebbleResult {
  /// round[a] = round when arc a was pebbled, or kNever.
  std::vector<std::size_t> round;
  /// Largest round used (0 when no arc was ever pebbled).
  std::size_t rounds = 0;
  /// True iff every arc ended up pebbled.
  bool complete = false;

  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);
};

/// Lazy game: round 0 pebbles every arc leaving a leader; thereafter a
/// vertex whose entering arcs are all pebbled pebbles its leaving arcs.
PebbleResult lazy_pebble_game(const Digraph& d,
                              const std::vector<VertexId>& leaders);

/// Eager game: a pebble starts on vertex `z`; a vertex with a pebble on
/// any entering arc (or z itself) pebbles its leaving arcs next round.
PebbleResult eager_pebble_game(const Digraph& d, VertexId z);

}  // namespace xswap::graph
