#include "graph/generators.hpp"

#include <numeric>
#include <set>
#include <stdexcept>

namespace xswap::graph {

Digraph cycle(std::size_t n) {
  if (n < 2) throw std::invalid_argument("cycle: need at least 2 vertexes");
  Digraph d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d.add_arc(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return d;
}

Digraph complete(std::size_t n) {
  if (n < 2) throw std::invalid_argument("complete: need at least 2 vertexes");
  Digraph d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) d.add_arc(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  return d;
}

Digraph hub_and_spokes(std::size_t n) {
  if (n < 2) throw std::invalid_argument("hub_and_spokes: need at least 2 vertexes");
  Digraph d(n);
  for (std::size_t i = 1; i < n; ++i) {
    d.add_arc(0, static_cast<VertexId>(i));
    d.add_arc(static_cast<VertexId>(i), 0);
  }
  return d;
}

Digraph figure1_triangle() { return cycle(3); }

Digraph two_cycles_sharing_vertex(std::size_t a, std::size_t b) {
  if (a < 2 || b < 2) {
    throw std::invalid_argument("two_cycles_sharing_vertex: cycles need length >= 2");
  }
  // Vertex 0 is shared; cycle A uses 1..a-1, cycle B uses a..a+b-2.
  Digraph d(a + b - 1);
  VertexId prev = 0;
  for (std::size_t i = 1; i < a; ++i) {
    d.add_arc(prev, static_cast<VertexId>(i));
    prev = static_cast<VertexId>(i);
  }
  d.add_arc(prev, 0);
  prev = 0;
  for (std::size_t i = a; i < a + b - 1; ++i) {
    d.add_arc(prev, static_cast<VertexId>(i));
    prev = static_cast<VertexId>(i);
  }
  d.add_arc(prev, 0);
  return d;
}

Digraph random_strongly_connected(std::size_t n, std::size_t extra_arcs,
                                  util::Rng& rng) {
  if (n < 2) {
    throw std::invalid_argument("random_strongly_connected: need at least 2 vertexes");
  }
  // Random Hamiltonian cycle guarantees strong connectivity.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  rng.shuffle(perm);

  Digraph d(n);
  std::set<std::pair<VertexId, VertexId>> present;
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId u = perm[i];
    const VertexId v = perm[(i + 1) % n];
    d.add_arc(u, v);
    present.insert({u, v});
  }

  const std::size_t max_extra = n * (n - 1) - n;
  std::size_t to_add = std::min(extra_arcs, max_extra);
  while (to_add > 0) {
    const VertexId u = static_cast<VertexId>(rng.next_below(n));
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (u == v || present.count({u, v})) continue;
    d.add_arc(u, v);
    present.insert({u, v});
    --to_add;
  }
  return d;
}

Digraph grouped_book(std::size_t groups, std::size_t group_size,
                     std::size_t extra_arcs_per_group, util::Rng& rng) {
  if (groups < 1 || group_size < 2) {
    throw std::invalid_argument(
        "grouped_book: need groups >= 1 and group_size >= 2");
  }
  Digraph d(groups * group_size);
  std::vector<VertexId> perm(group_size);
  for (std::size_t g = 0; g < groups; ++g) {
    const VertexId base = static_cast<VertexId>(g * group_size);
    std::iota(perm.begin(), perm.end(), base);
    rng.shuffle(perm);
    for (std::size_t i = 0; i < group_size; ++i) {
      d.add_arc(perm[i], perm[(i + 1) % group_size]);
    }
    for (std::size_t e = 0; e < extra_arcs_per_group; ++e) {
      const VertexId u = base + static_cast<VertexId>(rng.next_below(group_size));
      const VertexId v = base + static_cast<VertexId>(rng.next_below(group_size));
      if (u != v) d.add_arc(u, v);
    }
    if (g + 1 < groups) {
      // Forward-only bridge: inter-group arcs form a DAG, so every SCC
      // stays inside one group.
      const VertexId u = base + static_cast<VertexId>(rng.next_below(group_size));
      const VertexId v = base + static_cast<VertexId>(group_size +
                                                      rng.next_below(group_size));
      d.add_arc(u, v);
    }
  }
  return d;
}

Digraph scale_free_book(std::size_t n, std::size_t arcs_per_vertex,
                        util::Rng& rng) {
  if (n < 2 || arcs_per_vertex < 1) {
    throw std::invalid_argument(
        "scale_free_book: need n >= 2 and arcs_per_vertex >= 1");
  }
  Digraph d(n);
  // Every arc endpoint lands in this urn, so drawing uniformly from it is
  // degree-proportional attachment.
  std::vector<VertexId> urn;
  urn.reserve(2 * n * arcs_per_vertex);
  urn.push_back(0);
  for (VertexId v = 1; v < n; ++v) {
    for (std::size_t e = 0; e < arcs_per_vertex; ++e) {
      const VertexId peer = urn[rng.next_below(urn.size())];
      if (peer == v) continue;
      if (rng.next_chance(1, 2)) {
        d.add_arc(v, peer);
      } else {
        d.add_arc(peer, v);
      }
      urn.push_back(v);
      urn.push_back(peer);
    }
    if (d.out_degree(v) == 0 && d.in_degree(v) == 0) {
      // Keep every vertex attached (possible when all draws hit v).
      d.add_arc(v, urn[0]);
      urn.push_back(v);
      urn.push_back(urn[0]);
    }
  }
  return d;
}

Digraph multi_cycle(std::size_t n, std::size_t multiplicity) {
  if (n < 2) throw std::invalid_argument("multi_cycle: need at least 2 vertexes");
  if (multiplicity == 0) {
    throw std::invalid_argument("multi_cycle: multiplicity must be positive");
  }
  Digraph d(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t m = 0; m < multiplicity; ++m) {
      d.add_arc(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
    }
  }
  return d;
}

}  // namespace xswap::graph
