// Strong connectivity (Tarjan's algorithm).
//
// Theorem 3.5: a uniform swap protocol for D is atomic iff D is strongly
// connected — so strong connectivity is the admission test every swap
// specification must pass.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace xswap::graph {

/// Strongly connected components; `component[v]` is the component index of
/// vertex v. Components are numbered in reverse topological order of the
/// condensation (Tarjan's numbering).
struct SccResult {
  std::vector<std::size_t> component;
  std::size_t component_count = 0;
};

/// Compute SCCs of `d` (iterative Tarjan; safe for deep graphs).
SccResult strongly_connected_components(const Digraph& d);

/// True iff `d` is strongly connected (one component spanning all
/// vertexes). The empty digraph and a single vertex are strongly connected.
bool is_strongly_connected(const Digraph& d);

/// True iff every vertex is reachable from `from` by a directed path.
bool reaches_all(const Digraph& d, VertexId from);

/// Vertexes reachable from `from` (including `from` itself).
std::vector<VertexId> reachable_set(const Digraph& d, VertexId from);

}  // namespace xswap::graph
