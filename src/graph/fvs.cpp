#include "graph/fvs.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <queue>
#include <stdexcept>
#include <utility>

namespace xswap::graph {

bool is_feedback_vertex_set(const Digraph& d,
                            const std::vector<VertexId>& candidates) {
  const std::size_t n = d.vertex_count();
  std::vector<char> removed(n, 0);
  for (const VertexId v : candidates) {
    if (v < n) removed[v] = 1;
  }
  std::vector<std::uint32_t> indeg(n, 0);
  for (const Arc& a : d.arcs()) {
    if (!removed[a.head] && !removed[a.tail]) ++indeg[a.tail];
  }
  std::vector<VertexId> order;
  order.reserve(n);
  std::size_t live = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (removed[v]) continue;
    ++live;
    if (indeg[v] == 0) order.push_back(v);
  }
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const VertexId v = order[qi];
    for (const ArcId a : d.out_arcs(v)) {
      const VertexId w = d.arc(a).tail;
      if (!removed[w] && --indeg[w] == 0) order.push_back(w);
    }
  }
  return order.size() == live;
}

namespace {

using Vert = std::int32_t;

bool erase_sorted(std::vector<Vert>& v, Vert x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

bool insert_sorted(std::vector<Vert>& v, Vert x) {
  const auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it != v.end() && *it == x) return false;
  v.insert(it, x);
  return true;
}

// The engine's mutable working graph: a *simple* digraph (parallel arcs
// are irrelevant to FVS and deduplicated at build) with exact sorted
// adjacency, supporting in-place deletion and degree-1 chain contraction.
// Self-loops — which only arise from contraction, Digraph rejects them —
// live in a side flag, never in the adjacency lists.
struct Kernel {
  std::vector<std::vector<Vert>> out, in;
  std::vector<char> alive;
  std::vector<char> looped;
  std::size_t live = 0;

  explicit Kernel(std::size_t n)
      : out(n), in(n), alive(n, 1), looped(n, 0), live(n) {}

  Kernel(const Digraph& d, const std::vector<char>* removed)
      : Kernel(d.vertex_count()) {
    const std::size_t n = d.vertex_count();
    if (removed != nullptr) {
      for (std::size_t v = 0; v < n; ++v) {
        if ((*removed)[v]) {
          alive[v] = 0;
          --live;
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (!alive[v]) continue;
      auto& o = out[v];
      o.reserve(d.out_degree(static_cast<VertexId>(v)));
      for (const ArcId a : d.out_arcs(static_cast<VertexId>(v))) {
        const VertexId w = d.arc(a).tail;
        if (alive[w]) o.push_back(static_cast<Vert>(w));
      }
      std::sort(o.begin(), o.end());
      o.erase(std::unique(o.begin(), o.end()), o.end());
      auto& i = in[v];
      i.reserve(d.in_degree(static_cast<VertexId>(v)));
      for (const ArcId a : d.in_arcs(static_cast<VertexId>(v))) {
        const VertexId w = d.arc(a).head;
        if (alive[w]) i.push_back(static_cast<Vert>(w));
      }
      std::sort(i.begin(), i.end());
      i.erase(std::unique(i.begin(), i.end()), i.end());
    }
  }

  std::size_t size() const { return alive.size(); }

  template <typename Touch>
  void erase(Vert v, Touch touch) {
    for (const Vert u : out[v]) {
      erase_sorted(in[u], v);
      touch(u);
    }
    for (const Vert u : in[v]) {
      erase_sorted(out[u], v);
      touch(u);
    }
    out[v].clear();
    in[v].clear();
    alive[v] = 0;
    looped[v] = 0;
    --live;
  }

  // v has a unique in-neighbor u: every cycle through v passes through u,
  // so bypass v (arcs u → w for each out-neighbor w) and delete it. FVS
  // solutions of the contracted graph are exactly the solutions of the
  // original that avoid v — same size, and at least one minimum avoids v.
  template <typename Touch>
  void contract_in(Vert v, Touch touch, std::vector<std::uint32_t>* weight) {
    const Vert u = in[v][0];
    erase_sorted(out[u], v);
    for (const Vert w : out[v]) {
      if (w == u) {
        looped[u] = 1;
        continue;
      }
      erase_sorted(in[w], v);
      if (insert_sorted(out[u], w)) insert_sorted(in[w], u);
      touch(w);
    }
    if (weight != nullptr) {
      (*weight)[static_cast<std::size_t>(u)] =
          std::min((*weight)[static_cast<std::size_t>(u)],
                   (*weight)[static_cast<std::size_t>(v)]);
    }
    out[v].clear();
    in[v].clear();
    alive[v] = 0;
    --live;
    touch(u);
  }

  template <typename Touch>
  void contract_out(Vert v, Touch touch, std::vector<std::uint32_t>* weight) {
    const Vert u = out[v][0];
    erase_sorted(in[u], v);
    for (const Vert w : in[v]) {
      if (w == u) {
        looped[u] = 1;
        continue;
      }
      erase_sorted(out[w], v);
      if (insert_sorted(in[u], w)) insert_sorted(out[w], u);
      touch(w);
    }
    if (weight != nullptr) {
      (*weight)[static_cast<std::size_t>(u)] =
          std::min((*weight)[static_cast<std::size_t>(u)],
                   (*weight)[static_cast<std::size_t>(v)]);
    }
    out[v].clear();
    in[v].clear();
    alive[v] = 0;
    --live;
    touch(u);
  }
};

// Worklist reductions to fixpoint, in descending vertex order: LOOP
// (self-loop forces v into every FVS), IN0/OUT0 (v on no cycle), IN1/OUT1
// (chain contraction). Forced vertices are appended to `forced`. With
// `weight` set, contraction min-merges weights (local-ratio bookkeeping).
void reduce(Kernel& k, std::vector<Vert>& forced,
            std::vector<std::uint32_t>* weight) {
  std::priority_queue<Vert> pq;
  for (std::size_t v = 0; v < k.size(); ++v) {
    if (k.alive[v]) pq.push(static_cast<Vert>(v));
  }
  const auto touch = [&pq](Vert v) { pq.push(v); };
  while (!pq.empty()) {
    const Vert v = pq.top();
    pq.pop();
    if (!k.alive[v]) continue;
    if (k.looped[v]) {
      forced.push_back(v);
      k.erase(v, touch);
    } else if (k.out[v].empty() || k.in[v].empty()) {
      k.erase(v, touch);
    } else if (k.in[v].size() == 1) {
      k.contract_in(v, touch, weight);
    } else if (k.out[v].size() == 1) {
      k.contract_out(v, touch, weight);
    }
  }
}

// Iterative Tarjan over the live kernel. comp[v] = -1 for dead vertices;
// components are numbered in reverse topological order.
std::size_t kernel_sccs(const Kernel& k, std::vector<Vert>& comp) {
  const std::size_t n = k.size();
  comp.assign(n, -1);
  std::vector<Vert> index(n, -1), low(n, 0), stack;
  std::vector<char> on_stack(n, 0);
  Vert next_index = 0;
  Vert comp_count = 0;
  struct Frame {
    Vert v;
    std::size_t edge;
  };
  std::vector<Frame> frames;
  for (std::size_t r = 0; r < n; ++r) {
    if (!k.alive[r] || index[r] != -1) continue;
    frames.push_back(Frame{static_cast<Vert>(r), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const Vert v = f.v;
      if (f.edge == 0) {
        index[v] = low[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      bool descended = false;
      while (f.edge < k.out[v].size()) {
        const Vert w = k.out[v][f.edge++];
        if (index[w] == -1) {
          frames.push_back(Frame{w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) low[v] = std::min(low[v], index[w]);
      }
      if (descended) continue;
      if (low[v] == index[v]) {
        while (true) {
          const Vert w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          comp[w] = comp_count;
          if (w == v) break;
        }
        ++comp_count;
      }
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().v] = std::min(low[frames.back().v], low[v]);
      }
    }
  }
  return static_cast<std::size_t>(comp_count);
}

// Remove arcs crossing SCC boundaries (they lie on no cycle). Returns
// whether anything was removed — if so, degrees changed and reductions
// may fire again.
bool drop_cross_arcs(Kernel& k, const std::vector<Vert>& comp) {
  bool removed = false;
  for (std::size_t v = 0; v < k.size(); ++v) {
    if (!k.alive[v]) continue;
    auto& o = k.out[v];
    std::size_t keep = 0;
    for (const Vert w : o) {
      if (comp[w] == comp[v]) {
        o[keep++] = w;
      } else {
        erase_sorted(k.in[w], static_cast<Vert>(v));
        removed = true;
      }
    }
    o.resize(keep);
  }
  return removed;
}

// Full kernelization: reductions and SCC-local decomposition to mutual
// fixpoint. Afterwards every live vertex sits in a nontrivial SCC with
// in/out degree >= 2 — an irreducible kernel.
void kernelize(Kernel& k, std::vector<Vert>& forced,
               std::vector<std::uint32_t>* weight = nullptr) {
  reduce(k, forced, weight);
  while (k.live > 0) {
    std::vector<Vert> comp;
    kernel_sccs(k, comp);
    if (!drop_cross_arcs(k, comp)) break;
    reduce(k, forced, weight);
  }
}

// Shortest cycle found by BFS from up to `max_sources` live vertices (in
// ascending order). On a fully kernelized graph every vertex lies on a
// cycle, so any source yields one; scanning more sources only shortens
// the result. Returns the cycle's vertices (empty iff none found).
std::vector<Vert> shortest_cycle(const Kernel& k, std::size_t max_sources) {
  const std::size_t n = k.size();
  std::vector<Vert> best;
  std::vector<Vert> dist(n, -1), parent(n, -1), touched, queue;
  std::size_t sources = 0;
  for (std::size_t s = 0; s < n && sources < max_sources; ++s) {
    if (!k.alive[s]) continue;
    ++sources;
    if (k.looped[s]) return {static_cast<Vert>(s)};
    for (const Vert t : touched) dist[t] = parent[t] = -1;
    touched.clear();
    queue.clear();
    const Vert sv = static_cast<Vert>(s);
    dist[sv] = 0;
    touched.push_back(sv);
    queue.push_back(sv);
    Vert hit = -1;
    for (std::size_t qi = 0; qi < queue.size() && hit == -1; ++qi) {
      const Vert v = queue[qi];
      // A cycle through v is at least dist[v]+1 long — prune at best.
      if (!best.empty() &&
          static_cast<std::size_t>(dist[v]) + 1 >= best.size()) {
        break;
      }
      for (const Vert w : k.out[v]) {
        if (w == sv) {
          hit = v;  // first hit is at minimal BFS depth
          break;
        }
        if (dist[w] == -1) {
          dist[w] = dist[v] + 1;
          parent[w] = v;
          touched.push_back(w);
          queue.push_back(w);
        }
      }
    }
    if (hit == -1) continue;
    std::vector<Vert> cyc;
    for (Vert v = hit; v != -1; v = parent[v]) cyc.push_back(v);
    if (best.empty() || cyc.size() < best.size()) best = std::move(cyc);
    if (best.size() <= 2) break;  // can't beat a 2-cycle (loops force)
  }
  return best;
}

// Vertex-disjoint cycle packing: every packed cycle needs its own FVS
// vertex, so the count lower-bounds the minimum. Kernelization inside the
// loop is sound for packing too — a vertex forced by a contraction
// self-loop owns a cycle through vertices absorbed into it alone, and
// contraction partitions the absorbed vertices among survivors, so all
// counted cycles are disjoint in the original graph. Stopping early (the
// `max_rounds` cap, or bounded cycle search) just weakens the bound.
std::size_t packing_lower_bound(Kernel k, std::size_t max_rounds,
                                std::size_t max_sources) {
  std::size_t lb = 0;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    std::vector<Vert> forced;
    kernelize(k, forced);
    lb += forced.size();
    if (k.live == 0) break;
    const std::vector<Vert> cyc = shortest_cycle(k, max_sources);
    if (cyc.empty()) break;
    ++lb;
    for (const Vert v : cyc) k.erase(v, [](Vert) {});
  }
  return lb;
}

// Kahn's algorithm on the kernel minus `mask`: is `mask` an FVS of k?
bool kernel_is_fvs(const Kernel& k, const std::vector<char>& mask) {
  const std::size_t n = k.size();
  std::vector<std::uint32_t> indeg(n, 0);
  std::vector<Vert> order;
  std::size_t unmasked = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!k.alive[v] || mask[v]) continue;
    if (k.looped[v]) return false;
    ++unmasked;
    std::uint32_t deg = 0;
    for (const Vert u : k.in[v]) {
      if (!mask[u]) ++deg;
    }
    indeg[v] = deg;
    if (deg == 0) order.push_back(static_cast<Vert>(v));
  }
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const Vert v = order[qi];
    for (const Vert w : k.out[v]) {
      if (!mask[w] && --indeg[w] == 0) order.push_back(w);
    }
  }
  return order.size() == unmasked;
}

// Becker–Geiger-style local-ratio rounds on an (already kernelized,
// strongly connected) kernel: find a short cycle, subtract its minimum
// weight from every vertex on it, move zeroed vertices into the
// solution, re-kernelize, repeat. A reverse-delete pass then drops
// redundant picks. Returns the solution (local ids, unsorted) and a
// cycle-packing lower bound measured on the pristine kernel.
struct ApproxOutcome {
  std::vector<Vert> solution;
  std::size_t lower_bound = 0;
};

ApproxOutcome approx_kernel(const Kernel& pristine) {
  const bool big = pristine.live > 512;
  const std::size_t max_sources = big ? 16 : pristine.live;
  ApproxOutcome out;
  out.lower_bound =
      packing_lower_bound(pristine, big ? 128 : pristine.live, max_sources);

  Kernel k = pristine;
  std::vector<std::uint32_t> weight(k.size(), 1);
  std::vector<Vert> sol;
  while (k.live > 0) {
    std::vector<Vert> forced;
    kernelize(k, forced, &weight);
    sol.insert(sol.end(), forced.begin(), forced.end());
    if (k.live == 0) break;
    std::vector<Vert> cyc = shortest_cycle(k, max_sources);
    std::sort(cyc.begin(), cyc.end());
    std::uint32_t m = std::numeric_limits<std::uint32_t>::max();
    for (const Vert v : cyc) {
      m = std::min(m, weight[static_cast<std::size_t>(v)]);
    }
    for (const Vert v : cyc) {
      auto& wv = weight[static_cast<std::size_t>(v)];
      wv -= m;
      if (wv == 0) {
        sol.push_back(v);
        k.erase(v, [](Vert) {});
      }
    }
  }

  // Reverse-delete minimality filter (newest picks first). Skipped on
  // very large kernels where the O(|sol| * arcs) recheck would dominate;
  // the unfiltered set is still a valid FVS.
  if (pristine.live <= 4096) {
    std::vector<char> mask(pristine.size(), 0);
    for (const Vert v : sol) mask[static_cast<std::size_t>(v)] = 1;
    for (std::size_t i = sol.size(); i-- > 0;) {
      const std::size_t v = static_cast<std::size_t>(sol[i]);
      mask[v] = 0;
      if (!kernel_is_fvs(pristine, mask)) mask[v] = 1;
    }
    sol.clear();
    for (std::size_t v = 0; v < pristine.size(); ++v) {
      if (mask[v]) sol.push_back(static_cast<Vert>(v));
    }
  }
  out.solution = std::move(sol);
  return out;
}

// Branch-and-bound for the minimum FVS of a small kernel: kernelize,
// prune against the incumbent with a cycle-packing lower bound, branch on
// every vertex of a shortest cycle (each FVS must hit it).
struct Bnb {
  std::size_t node_budget = std::numeric_limits<std::size_t>::max();
  std::size_t nodes = 0;
  bool aborted = false;
  std::size_t best_size = 0;
  std::vector<Vert> best;
  bool found = false;
};

void bnb_recurse(Kernel k, std::vector<Vert> chosen, Bnb& ctx) {
  if (ctx.aborted) return;
  if (++ctx.nodes > ctx.node_budget) {
    ctx.aborted = true;
    return;
  }
  std::vector<Vert> forced;
  kernelize(k, forced);
  chosen.insert(chosen.end(), forced.begin(), forced.end());
  if (chosen.size() >= ctx.best_size) return;
  if (k.live == 0) {
    ctx.best_size = chosen.size();
    ctx.best = std::move(chosen);
    ctx.found = true;
    return;
  }
  if (chosen.size() + packing_lower_bound(k, k.live, k.live) >=
      ctx.best_size) {
    return;
  }
  std::vector<Vert> cyc = shortest_cycle(k, k.live);
  std::sort(cyc.begin(), cyc.end());
  for (const Vert v : cyc) {
    Kernel next = k;
    next.erase(v, [](Vert) {});
    std::vector<Vert> next_chosen = chosen;
    next_chosen.push_back(v);
    bnb_recurse(std::move(next), std::move(next_chosen), ctx);
    if (ctx.aborted) return;
  }
}

// Extract the sub-kernel induced by `verts` (sorted ascending), relabeled
// to 0..m-1. After kernelization fixpoint all arcs stay inside one SCC,
// so adjacency maps over directly.
Kernel extract(const Kernel& k, const std::vector<Vert>& verts) {
  Kernel sub(verts.size());
  const auto local = [&verts](Vert v) {
    return static_cast<Vert>(
        std::lower_bound(verts.begin(), verts.end(), v) - verts.begin());
  };
  for (std::size_t i = 0; i < verts.size(); ++i) {
    const Vert v = verts[i];
    sub.out[i].reserve(k.out[v].size());
    for (const Vert w : k.out[v]) sub.out[i].push_back(local(w));
    sub.in[i].reserve(k.in[v].size());
    for (const Vert w : k.in[v]) sub.in[i].push_back(local(w));
  }
  return sub;
}

// Group the live kernel vertices by SCC; each group sorted ascending,
// groups ordered by their smallest vertex.
std::vector<std::vector<Vert>> live_components(const Kernel& k) {
  std::vector<Vert> comp;
  const std::size_t count = kernel_sccs(k, comp);
  std::vector<std::vector<Vert>> groups(count);
  for (std::size_t v = 0; v < k.size(); ++v) {
    if (k.alive[v]) groups[static_cast<std::size_t>(comp[v])].push_back(
        static_cast<Vert>(v));
  }
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<Vert>& a, const std::vector<Vert>& b) {
              return a.front() < b.front();
            });
  return groups;
}

struct ComponentOutcome {
  std::vector<Vert> vertices;  // kernel-global ids
  std::size_t lower_bound = 0;
  bool exact = false;
};

ComponentOutcome solve_component(const Kernel& k, const std::vector<Vert>& verts,
                                 const FvsOptions& options) {
  const Kernel sub = extract(k, verts);
  ComponentOutcome out;
  if (verts.size() > options.max_exact_vertices &&
      verts.size() > options.approx_greedy_above) {
    // Huge irreducible kernel: the local-ratio rounds re-kernelize and
    // re-search cycles per picked vertex, so route to the near-linear
    // degree-product greedy instead. Contraction can leave parallel
    // kernel arcs; collapse them so the greedy's degree scores count
    // neighbors, not multiplicity.
    Digraph sd(sub.size());
    std::vector<Vert> outs;
    for (std::size_t v = 0; v < sub.size(); ++v) {
      outs.assign(sub.out[v].begin(), sub.out[v].end());
      std::sort(outs.begin(), outs.end());
      outs.erase(std::unique(outs.begin(), outs.end()), outs.end());
      for (const Vert w : outs) {
        sd.add_arc(static_cast<VertexId>(v), static_cast<VertexId>(w));
      }
    }
    out.exact = false;
    out.lower_bound =
        std::max<std::size_t>(packing_lower_bound(sub, 128, 16), 1);
    for (const VertexId v : greedy_feedback_vertex_set(sd)) {
      out.vertices.push_back(verts[static_cast<std::size_t>(v)]);
    }
    return out;
  }
  const ApproxOutcome approx = approx_kernel(sub);
  if (verts.size() <= options.max_exact_vertices) {
    Bnb ctx;
    ctx.node_budget = options.max_bnb_nodes;
    ctx.best = approx.solution;
    ctx.best_size = approx.solution.size();
    ctx.found = true;
    bnb_recurse(sub, {}, ctx);
    if (!ctx.aborted) {
      out.exact = true;
      out.lower_bound = ctx.best_size;
      out.vertices.reserve(ctx.best.size());
      for (const Vert v : ctx.best) {
        out.vertices.push_back(verts[static_cast<std::size_t>(v)]);
      }
      return out;
    }
  }
  out.exact = false;
  out.lower_bound = std::max<std::size_t>(approx.lower_bound, 1);
  out.vertices.reserve(approx.solution.size());
  for (const Vert v : approx.solution) {
    out.vertices.push_back(verts[static_cast<std::size_t>(v)]);
  }
  return out;
}

// Budgeted feasibility oracle: does d minus `removed` admit an FVS of
// size <= budget? Exact — kernelize, then branch-and-bound each
// component against the remaining budget.
bool fvs_within_budget(const Digraph& d, const std::vector<char>& removed,
                       std::size_t budget) {
  Kernel k(d, &removed);
  std::vector<Vert> forced;
  kernelize(k, forced);
  if (forced.size() > budget) return false;
  std::size_t used = forced.size();
  if (k.live == 0) return true;
  for (const std::vector<Vert>& verts : live_components(k)) {
    const std::size_t remaining = budget - used;
    // Capped branch-and-bound: only solutions strictly better than the
    // cap survive pruning, so `found` means this component's minimum fits
    // in the remaining budget (and best_size is that minimum).
    Bnb ctx;
    ctx.best_size = remaining + 1;
    bnb_recurse(extract(k, verts), {}, ctx);
    if (!ctx.found) return false;
    used += ctx.best_size;
  }
  return used <= budget;
}

// The lexicographically smallest FVS of size `kstar` (the minimum), as
// classic increasing-size subset enumeration in lexicographic order
// returns it. Single ascending scan: accept v iff some minimum FVS
// extends the accepted prefix plus v. A rejected vertex stays rejected —
// "no k-FVS contains S ∪ {v}" is monotone as S grows — and no accepted
// witness can use a previously rejected vertex (that would contradict its
// rejection), so the unconstrained budget oracle suffices and the scan
// makes at most one oracle call per vertex.
std::vector<VertexId> lex_reconstruct(const Digraph& d, std::size_t kstar) {
  const std::size_t n = d.vertex_count();
  std::vector<char> removed(n, 0);
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n && out.size() < kstar; ++v) {
    removed[v] = 1;
    if (fvs_within_budget(d, removed, kstar - out.size() - 1)) {
      out.push_back(v);
    } else {
      removed[v] = 0;
    }
  }
  return out;
}

}  // namespace

FvsResult find_feedback_vertex_set(const Digraph& d,
                                   const FvsOptions& options) {
  FvsResult result;
  Kernel k(d, nullptr);
  std::vector<Vert> forced;
  kernelize(k, forced);
  result.forced_vertices = forced.size();
  result.kernel_vertices = k.live;

  std::vector<VertexId> solution;
  solution.reserve(forced.size());
  for (const Vert v : forced) solution.push_back(static_cast<VertexId>(v));
  std::size_t lower_bound = forced.size();
  bool exact = true;

  if (k.live > 0) {
    for (const std::vector<Vert>& verts : live_components(k)) {
      const ComponentOutcome outcome = solve_component(k, verts, options);
      for (const Vert v : outcome.vertices) {
        solution.push_back(static_cast<VertexId>(v));
      }
      lower_bound += outcome.lower_bound;
      exact = exact && outcome.exact;
    }
  }

  result.exact = exact;
  if (exact && d.vertex_count() <= options.max_exact_vertices) {
    // Small enough for the bit-for-bit guarantee: return the
    // lexicographically smallest minimum, like subset enumeration did.
    solution = lex_reconstruct(d, solution.size());
  }
  std::sort(solution.begin(), solution.end());
  result.vertices = std::move(solution);
  result.lower_bound = lower_bound;
  return result;
}

std::vector<VertexId> minimum_feedback_vertex_set(
    const Digraph& d, std::size_t max_exact_vertices) {
  Kernel k(d, nullptr);
  std::vector<Vert> forced;
  kernelize(k, forced);
  std::size_t kstar = forced.size();
  if (k.live > 0) {
    for (const std::vector<Vert>& verts : live_components(k)) {
      if (verts.size() > max_exact_vertices) {
        throw std::invalid_argument(
            "minimum_feedback_vertex_set: irreducible kernel too large for "
            "exact search (use find_feedback_vertex_set or "
            "greedy_feedback_vertex_set)");
      }
      Bnb ctx;
      const Kernel sub = extract(k, verts);
      const ApproxOutcome approx = approx_kernel(sub);
      ctx.best = approx.solution;
      ctx.best_size = approx.solution.size();
      ctx.found = true;
      bnb_recurse(sub, {}, ctx);
      kstar += ctx.best_size;
    }
  }
  if (kstar == 0) return {};
  return lex_reconstruct(d, kstar);
}

std::vector<VertexId> greedy_feedback_vertex_set(const Digraph& d) {
  const std::size_t n = d.vertex_count();
  // Multigraph degrees on d minus the chosen set (parallel arcs count,
  // exactly as the historical copy-per-removal implementation scored).
  std::vector<std::size_t> in_deg(n, 0), out_deg(n, 0);
  for (const Arc& a : d.arcs()) {
    ++out_deg[a.head];
    ++in_deg[a.tail];
  }

  // Incremental acyclicity: iteratively trim vertices with zero
  // in/out-degree among the un-chosen, un-trimmed rest. The graph minus
  // the chosen set is acyclic iff everything trims away.
  std::vector<std::size_t> trim_in = in_deg, trim_out = out_deg;
  std::vector<char> chosen(n, 0), trimmed(n, 0);
  std::size_t live_cyclic = n;
  std::vector<VertexId> trim_queue;
  const auto try_trim = [&](VertexId v) {
    if (!chosen[v] && !trimmed[v] && (trim_in[v] == 0 || trim_out[v] == 0)) {
      trim_queue.push_back(v);
    }
  };
  const auto drain_trims = [&]() {
    while (!trim_queue.empty()) {
      const VertexId v = trim_queue.back();
      trim_queue.pop_back();
      if (chosen[v] || trimmed[v] || (trim_in[v] > 0 && trim_out[v] > 0)) {
        continue;
      }
      trimmed[v] = 1;
      --live_cyclic;
      for (const ArcId a : d.out_arcs(v)) {
        const VertexId t = d.arc(a).tail;
        if (!chosen[t] && !trimmed[t]) {
          --trim_in[t];
          try_trim(t);
        }
      }
      for (const ArcId a : d.in_arcs(v)) {
        const VertexId h = d.arc(a).head;
        if (!chosen[h] && !trimmed[h]) {
          --trim_out[h];
          try_trim(h);
        }
      }
    }
  };
  for (VertexId v = 0; v < n; ++v) try_trim(v);
  drain_trims();

  // Lazy max-heap keyed (score desc, id asc): pops the smallest id among
  // the maximum (in+1)(out+1) scores — the same pick an ascending scan
  // with a strictly-greater comparison makes. Entries go stale as degrees
  // drop; a popped entry must match the current score to count.
  using Entry = std::pair<std::size_t, VertexId>;  // (score, vertex)
  const auto worse = [](const Entry& a, const Entry& b) {
    if (a.first != b.first) return a.first < b.first;
    return a.second > b.second;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(worse)> heap(worse);
  const auto push_candidate = [&](VertexId v) {
    if (!chosen[v] && in_deg[v] > 0 && out_deg[v] > 0) {
      heap.push(Entry{(in_deg[v] + 1) * (out_deg[v] + 1), v});
    }
  };
  for (VertexId v = 0; v < n; ++v) push_candidate(v);

  std::vector<VertexId> result;
  while (live_cyclic > 0) {
    VertexId v = 0;
    while (true) {
      if (heap.empty()) return result;  // unreachable: cyclic => candidate
      const Entry top = heap.top();
      heap.pop();
      v = top.second;
      if (!chosen[v] && in_deg[v] > 0 && out_deg[v] > 0 &&
          top.first == (in_deg[v] + 1) * (out_deg[v] + 1)) {
        break;
      }
    }
    chosen[v] = 1;
    result.push_back(v);
    // A pick can land in the already-trimmed (acyclic) part — the
    // historical scan scored those too. Its arcs left the trim graph
    // when it was trimmed, so only un-trimmed picks touch trim degrees.
    const bool v_in_trim_graph = !trimmed[v];
    for (const ArcId a : d.out_arcs(v)) {
      const VertexId t = d.arc(a).tail;
      if (!chosen[t]) {
        --in_deg[t];
        push_candidate(t);
        if (v_in_trim_graph && !trimmed[t]) {
          --trim_in[t];
          try_trim(t);
        }
      }
    }
    for (const ArcId a : d.in_arcs(v)) {
      const VertexId h = d.arc(a).head;
      if (!chosen[h]) {
        --out_deg[h];
        push_candidate(h);
        if (v_in_trim_graph && !trimmed[h]) {
          --trim_out[h];
          try_trim(h);
        }
      }
    }
    if (v_in_trim_graph) {
      --live_cyclic;
      drain_trims();
    }
  }
  return result;
}

}  // namespace xswap::graph
