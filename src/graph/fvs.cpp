#include "graph/fvs.hpp"

#include <stdexcept>

#include "graph/paths.hpp"

namespace xswap::graph {

bool is_feedback_vertex_set(const Digraph& d,
                            const std::vector<VertexId>& candidates) {
  return is_acyclic(d.without_vertices(candidates));
}

namespace {

// Enumerate k-subsets of 0..n-1 in lexicographic order, testing each.
bool try_subsets(const Digraph& d, std::size_t n, std::size_t k,
                 std::vector<VertexId>& out) {
  std::vector<VertexId> subset(k);
  for (std::size_t i = 0; i < k; ++i) subset[i] = static_cast<VertexId>(i);
  while (true) {
    if (is_feedback_vertex_set(d, subset)) {
      out = subset;
      return true;
    }
    // Next k-combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] != static_cast<VertexId>(n - k + i)) {
        ++subset[i];
        for (std::size_t j = i + 1; j < k; ++j) {
          subset[j] = subset[j - 1] + 1;
        }
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

}  // namespace

std::vector<VertexId> minimum_feedback_vertex_set(
    const Digraph& d, std::size_t max_exact_vertices) {
  const std::size_t n = d.vertex_count();
  if (n > max_exact_vertices) {
    throw std::invalid_argument(
        "minimum_feedback_vertex_set: digraph too large for exact search "
        "(use greedy_feedback_vertex_set)");
  }
  if (is_acyclic(d)) return {};
  for (std::size_t k = 1; k <= n; ++k) {
    std::vector<VertexId> out;
    if (try_subsets(d, n, k, out)) return out;
  }
  // Unreachable: the full vertex set is always an FVS.
  throw std::logic_error("minimum_feedback_vertex_set: no FVS found");
}

std::vector<VertexId> greedy_feedback_vertex_set(const Digraph& d) {
  std::vector<VertexId> chosen;
  Digraph work = d;
  while (!is_acyclic(work)) {
    // Pick the not-yet-removed vertex with the largest in*out degree
    // product — a cheap proxy for "on many cycles".
    VertexId best = 0;
    std::size_t best_score = 0;
    for (VertexId v = 0; v < work.vertex_count(); ++v) {
      const std::size_t score = (work.in_degree(v) + 1) * (work.out_degree(v) + 1);
      if (work.in_degree(v) > 0 && work.out_degree(v) > 0 && score > best_score) {
        best = v;
        best_score = score;
      }
    }
    chosen.push_back(best);
    work = work.without_vertices({best});
  }
  return chosen;
}

}  // namespace xswap::graph
