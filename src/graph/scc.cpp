#include "graph/scc.hpp"

#include <algorithm>

namespace xswap::graph {

SccResult strongly_connected_components(const Digraph& d) {
  const std::size_t n = d.vertex_count();
  constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<VertexId> stack;
  std::size_t next_index = 0;

  // Explicit DFS frames: (vertex, position within its out-arc list).
  struct Frame {
    VertexId v;
    std::size_t arc_pos;
  };
  std::vector<Frame> frames;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto& out = d.out_arcs(f.v);
      if (f.arc_pos < out.size()) {
        const VertexId w = d.arc(out[f.arc_pos]).tail;
        ++f.arc_pos;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[f.v] = std::min(lowlink[f.v], index[w]);
        }
      } else {
        const VertexId v = f.v;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().v] = std::min(lowlink[frames.back().v], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it off the Tarjan stack.
          while (true) {
            const VertexId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.component_count;
            if (w == v) break;
          }
          ++result.component_count;
        }
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Digraph& d) {
  if (d.vertex_count() <= 1) return true;
  return strongly_connected_components(d).component_count == 1;
}

std::vector<VertexId> reachable_set(const Digraph& d, VertexId from) {
  std::vector<bool> seen(d.vertex_count(), false);
  std::vector<VertexId> order;
  std::vector<VertexId> work = {from};
  seen[from] = true;
  while (!work.empty()) {
    const VertexId v = work.back();
    work.pop_back();
    order.push_back(v);
    for (const ArcId id : d.out_arcs(v)) {
      const VertexId w = d.arc(id).tail;
      if (!seen[w]) {
        seen[w] = true;
        work.push_back(w);
      }
    }
  }
  return order;
}

bool reaches_all(const Digraph& d, VertexId from) {
  return reachable_set(d, from).size() == d.vertex_count();
}

}  // namespace xswap::graph
