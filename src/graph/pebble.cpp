#include "graph/pebble.hpp"

#include <stdexcept>

namespace xswap::graph {

namespace {

bool all_pebbled(const std::vector<std::size_t>& round) {
  for (const std::size_t r : round) {
    if (r == PebbleResult::kNever) return false;
  }
  return true;
}

std::size_t max_round(const std::vector<std::size_t>& round) {
  std::size_t m = 0;
  for (const std::size_t r : round) {
    if (r != PebbleResult::kNever) m = std::max(m, r);
  }
  return m;
}

}  // namespace

PebbleResult lazy_pebble_game(const Digraph& d,
                              const std::vector<VertexId>& leaders) {
  PebbleResult result;
  result.round.assign(d.arc_count(), PebbleResult::kNever);

  std::vector<bool> is_leader(d.vertex_count(), false);
  for (const VertexId v : leaders) {
    if (v >= d.vertex_count()) {
      throw std::out_of_range("lazy_pebble_game: leader id out of range");
    }
    is_leader[v] = true;
  }

  // Round 0: arcs leaving leaders.
  for (const VertexId v : leaders) {
    for (const ArcId a : d.out_arcs(v)) result.round[a] = 0;
  }

  // Fixpoint iteration; each iteration is one Δ round.
  for (std::size_t r = 1; r <= d.vertex_count() + d.arc_count() + 1; ++r) {
    bool changed = false;
    for (VertexId v = 0; v < d.vertex_count(); ++v) {
      if (is_leader[v]) continue;
      bool all_in = d.in_degree(v) > 0;
      for (const ArcId a : d.in_arcs(v)) {
        // Only pebbles from *previous* rounds enable this round.
        if (result.round[a] == PebbleResult::kNever || result.round[a] >= r) {
          all_in = false;
          break;
        }
      }
      if (!all_in) continue;
      for (const ArcId a : d.out_arcs(v)) {
        if (result.round[a] == PebbleResult::kNever) {
          result.round[a] = r;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  result.complete = all_pebbled(result.round);
  result.rounds = max_round(result.round);
  return result;
}

PebbleResult eager_pebble_game(const Digraph& d, VertexId z) {
  if (z >= d.vertex_count()) {
    throw std::out_of_range("eager_pebble_game: start vertex out of range");
  }
  PebbleResult result;
  result.round.assign(d.arc_count(), PebbleResult::kNever);

  // Round 0: z's pebble lets it pebble its leaving arcs immediately.
  for (const ArcId a : d.out_arcs(z)) result.round[a] = 0;

  for (std::size_t r = 1; r <= d.vertex_count() + d.arc_count() + 1; ++r) {
    bool changed = false;
    for (VertexId v = 0; v < d.vertex_count(); ++v) {
      bool any_in = false;
      for (const ArcId a : d.in_arcs(v)) {
        if (result.round[a] != PebbleResult::kNever && result.round[a] < r) {
          any_in = true;
          break;
        }
      }
      if (!any_in) continue;
      for (const ArcId a : d.out_arcs(v)) {
        if (result.round[a] == PebbleResult::kNever) {
          result.round[a] = r;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }

  result.complete = all_pebbled(result.round);
  result.rounds = max_round(result.round);
  return result;
}

}  // namespace xswap::graph
