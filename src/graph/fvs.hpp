// Feedback vertex sets (the paper's "leaders").
//
// Theorem 4.12: in any uniform hashed-timelock swap protocol, the leader
// set must be a feedback vertex set of D (deleting it leaves D acyclic).
// §5 notes finding a *minimum* FVS is NP-complete [Karp 72] but efficient
// approximations exist [Becker–Geiger 96]. Any FVS is a *valid* leader
// set — minimality only affects how many leaders sign and the resulting
// timelock depth, never safety — so the engine is free to approximate
// once graphs outgrow exact search.
//
// The engine is layered:
//   1. Kernelization — linear-time in-place reduction rules on a mutable
//      adjacency structure (self-loop forcing, in/out-degree-0 pruning,
//      in/out-degree-1 chain contraction, SCC-local decomposition). No
//      `without_vertices` full-graph copies anywhere.
//   2. Exact — branch-and-bound on each irreducible kernel component
//      (branch on a shortest cycle, prune with a vertex-disjoint
//      cycle-packing lower bound) when the kernel fits under
//      FvsOptions::max_exact_vertices.
//   3. Approximation — Becker–Geiger-style weighted local-ratio rounds on
//      kernels too large for exact search, with a reverse-delete
//      minimality filter and a reported optimality gap against the
//      cycle-packing lower bound.
//   4. Greedy fallback — kernel components beyond
//      FvsOptions::approx_greedy_above route to the near-linear
//      degree-product greedy (still a valid FVS; Theorem 4.12 needs
//      validity, not minimality), keeping huge instances out of the
//      super-linear local-ratio loop.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace xswap::graph {

/// Tuning knobs for the FVS engine — the single source of truth for the
/// exact/approximate split (clearing, serve, and the CLI all take one of
/// these instead of hardcoding thresholds).
struct FvsOptions {
  /// Default exact budget. Measured against the *kernel* per SCC, not the
  /// raw vertex count: a 10^6-party cycle kernelizes to nothing and is
  /// solved exactly, while complete(25) is irreducible and falls back to
  /// the approximation.
  static constexpr std::size_t kDefaultMaxExactVertices = 24;

  /// Largest irreducible kernel component solved exactly by
  /// branch-and-bound; larger kernels use the local-ratio approximation.
  std::size_t max_exact_vertices = kDefaultMaxExactVertices;

  /// Branch-and-bound node budget per kernel component. If exhausted the
  /// engine falls back to the approximation for that component (and the
  /// result is no longer flagged exact).
  std::size_t max_bnb_nodes = 1u << 20;

  /// Kernel components larger than this skip the local-ratio rounds and
  /// take the near-linear degree-product greedy instead (the local-ratio
  /// loop re-kernelizes and re-searches cycles per picked vertex, which
  /// turns super-linear on huge irreducible kernels). The default sits
  /// above every kernel the clearing paths produce in practice, so only
  /// deliberately huge instances (bench_fvs scale sweeps) reroute; the
  /// greedy result is still a valid FVS and still reports a cycle-packing
  /// lower bound.
  std::size_t approx_greedy_above = 50'000;
};

/// Result of the layered engine: a valid FVS plus quality/accounting.
struct FvsResult {
  /// The feedback vertex set, sorted ascending. Always valid.
  std::vector<VertexId> vertices;

  /// Proven lower bound on the minimum FVS size (forced vertices plus,
  /// per kernel component, the exact optimum or a vertex-disjoint
  /// cycle-packing bound). `vertices.size() >= lower_bound` always.
  std::size_t lower_bound = 0;

  /// True iff every kernel component was solved exactly, so
  /// `vertices.size()` is the true minimum.
  bool exact = false;

  /// Vertexes surviving kernelization (summed over all irreducible
  /// components). 0 means the reductions solved the instance outright.
  std::size_t kernel_vertices = 0;

  /// Vertexes forced into the FVS by reduction rules (self-loops created
  /// by chain contraction).
  std::size_t forced_vertices = 0;

  /// Achieved size over proven lower bound (1.0 when exact or empty).
  double optimality_gap() const {
    if (vertices.empty() || exact) return 1.0;
    const std::size_t lb = lower_bound > 0 ? lower_bound : 1;
    return static_cast<double>(vertices.size()) / static_cast<double>(lb);
  }
};

/// True iff deleting `candidates` from `d` leaves an acyclic digraph.
/// Copy-free: runs Kahn's algorithm directly on `d`, skipping candidates.
bool is_feedback_vertex_set(const Digraph& d,
                            const std::vector<VertexId>& candidates);

/// The layered engine entry point: kernelize, solve each irreducible
/// component (exact branch-and-bound under `options.max_exact_vertices`,
/// local-ratio approximation above it), and lift the solution back to
/// `d`. When the whole digraph is small enough that the result is exact
/// and `d.vertex_count() <= options.max_exact_vertices`, the returned set
/// is additionally the lexicographically smallest minimum FVS — i.e.
/// bit-for-bit what classic subset enumeration returns.
FvsResult find_feedback_vertex_set(const Digraph& d,
                                   const FvsOptions& options = {});

/// A minimum feedback vertex set — the lexicographically smallest one, as
/// classic increasing-size subset enumeration would return. Internally
/// kernelize + branch-and-bound + lexicographic reconstruction, so
/// "exact" stretches well past 20 raw vertexes: the guard throws
/// std::invalid_argument only when some irreducible *kernel* component
/// exceeds `max_exact_vertices` (a 25-cycle solves instantly; complete(25)
/// throws).
std::vector<VertexId> minimum_feedback_vertex_set(
    const Digraph& d,
    std::size_t max_exact_vertices = FvsOptions::kDefaultMaxExactVertices);

/// Greedy feedback vertex set: repeatedly delete the vertex with the
/// largest in·out degree product until acyclic. Always returns a valid
/// FVS (possibly larger than minimum); runs in near-linear time (in-place
/// degree maintenance + a lazy max-heap — no per-removal graph copies).
/// Output is pinned bit-for-bit to the historical copy-per-removal
/// implementation.
std::vector<VertexId> greedy_feedback_vertex_set(const Digraph& d);

}  // namespace xswap::graph
