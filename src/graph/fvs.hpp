// Feedback vertex sets (the paper's "leaders").
//
// Theorem 4.12: in any uniform hashed-timelock swap protocol, the leader
// set must be a feedback vertex set of D (deleting it leaves D acyclic).
// §5 notes finding a *minimum* FVS is NP-complete [Karp 72] but efficient
// approximations exist [Becker–Geiger 96]. We provide:
//   * a verifier (is the given set an FVS?),
//   * exact minimum search (increasing-size subset enumeration; fine for
//     swap-sized digraphs),
//   * a fast greedy heuristic for larger instances, always valid, not
//     necessarily minimum.
#pragma once

#include <vector>

#include "graph/digraph.hpp"

namespace xswap::graph {

/// True iff deleting `candidates` from `d` leaves an acyclic digraph.
bool is_feedback_vertex_set(const Digraph& d,
                            const std::vector<VertexId>& candidates);

/// A minimum feedback vertex set, by exhaustive search over subsets in
/// increasing size order. Exponential; throws std::invalid_argument when
/// d.vertex_count() > max_exact_vertices.
std::vector<VertexId> minimum_feedback_vertex_set(
    const Digraph& d, std::size_t max_exact_vertices = 20);

/// Greedy feedback vertex set: repeatedly delete the vertex with the
/// largest in·out degree product until acyclic. Always returns a valid
/// FVS (possibly larger than minimum); runs in polynomial time.
std::vector<VertexId> greedy_feedback_vertex_set(const Digraph& d);

}  // namespace xswap::graph
