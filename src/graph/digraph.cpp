#include "graph/digraph.hpp"

#include <stdexcept>

namespace xswap::graph {

Digraph::Digraph(std::size_t n) : out_(n), in_(n) {}

VertexId Digraph::add_vertex() {
  out_.emplace_back();
  in_.emplace_back();
  return static_cast<VertexId>(out_.size() - 1);
}

ArcId Digraph::add_arc(VertexId head, VertexId tail) {
  if (head >= vertex_count() || tail >= vertex_count()) {
    throw std::out_of_range("Digraph::add_arc: vertex id out of range");
  }
  if (head == tail) {
    throw std::invalid_argument("Digraph::add_arc: self-loops not allowed");
  }
  const ArcId id = static_cast<ArcId>(arcs_.size());
  arcs_.push_back(Arc{head, tail});
  out_[head].push_back(id);
  in_[tail].push_back(id);
  return id;
}

std::optional<ArcId> Digraph::find_arc(VertexId head, VertexId tail) const {
  if (head >= vertex_count()) return std::nullopt;
  for (const ArcId id : out_[head]) {
    if (arcs_[id].tail == tail) return id;
  }
  return std::nullopt;
}

Digraph Digraph::transpose() const {
  Digraph t(vertex_count());
  // Insert in arc-id order so ids line up between D and D^T.
  for (const Arc& a : arcs_) t.add_arc(a.tail, a.head);
  return t;
}

Digraph Digraph::without_vertices(const std::vector<VertexId>& removed) const {
  std::vector<bool> gone(vertex_count(), false);
  for (const VertexId v : removed) {
    if (v >= vertex_count()) {
      throw std::out_of_range("Digraph::without_vertices: bad vertex id");
    }
    gone[v] = true;
  }
  Digraph d(vertex_count());
  for (const Arc& a : arcs_) {
    if (!gone[a.head] && !gone[a.tail]) d.add_arc(a.head, a.tail);
  }
  return d;
}

bool Digraph::operator==(const Digraph& rhs) const {
  return vertex_count() == rhs.vertex_count() && arcs_ == rhs.arcs_;
}

}  // namespace xswap::graph
