// Digraph families used by tests, examples, and the benchmark harness.
//
// These are the workloads of EXPERIMENTS.md: the paper's own figures
// (triangle swap of Fig. 1, two-leader digraphs of Figs. 6–8) plus
// parameterized families (cycles, cliques, random strongly-connected
// digraphs) for the complexity sweeps of Theorems 4.7 and 4.10.
#pragma once

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace xswap::graph {

/// Directed cycle 0 → 1 → … → n-1 → 0. diam = n - 1; minimum FVS size 1.
Digraph cycle(std::size_t n);

/// Complete digraph on n vertexes (both arcs between every pair).
/// diam = n - 1; minimum FVS size n - 1.
Digraph complete(std::size_t n);

/// "Hub" swap: bidirectional arcs between vertex 0 and each of 1..n-1
/// (a market maker trading with n-1 counterparties). Single-leader
/// digraph: {0} is an FVS.
Digraph hub_and_spokes(std::size_t n);

/// The three-party swap of Fig. 1: Alice(0) → Bob(1) → Carol(2) → Alice.
Digraph figure1_triangle();

/// Two directed cycles of lengths a and b sharing exactly vertex 0
/// (a kidney-exchange-style instance). Minimum FVS is {0}.
Digraph two_cycles_sharing_vertex(std::size_t a, std::size_t b);

/// Uniformly random strongly-connected digraph: a random Hamiltonian
/// cycle plus `extra_arcs` additional distinct random arcs. Requires n ≥ 2.
Digraph random_strongly_connected(std::size_t n, std::size_t extra_arcs,
                                  util::Rng& rng);

/// Directed multigraph: like cycle(n) but with `multiplicity` parallel
/// arcs in place of each single arc (§5: several blockchains per pair).
Digraph multi_cycle(std::size_t n, std::size_t multiplicity);

/// Grouped order book at production scale: `groups` disjoint clusters of
/// `group_size` parties, each cluster a random Hamiltonian cycle plus
/// `extra_arcs_per_group` random intra-group arcs, with a forward-only
/// bridge arc to the next group (a DAG between groups — never a cycle,
/// mirroring tools/gen_stream.py's cross-group pressure). Every SCC is
/// one group, so the FVS kernel is SCC-local by construction. Scales to
/// 10^6 parties. Requires groups >= 1 and group_size >= 2.
Digraph grouped_book(std::size_t groups, std::size_t group_size,
                     std::size_t extra_arcs_per_group, util::Rng& rng);

/// Scale-free order book (preferential attachment): vertexes arrive one
/// at a time, each adding `arcs_per_vertex` arcs whose other endpoint is
/// drawn proportionally to current degree, with random orientation — the
/// hub-heavy shape of real books where market makers touch most flow.
/// Not necessarily strongly connected; feed it through decompose-style
/// SCC splitting. Requires n >= 2 and arcs_per_vertex >= 1.
Digraph scale_free_book(std::size_t n, std::size_t arcs_per_vertex,
                        util::Rng& rng);

}  // namespace xswap::graph
