// The swap digraph model of §2.1/§3.
//
// Vertexes are parties, arcs are proposed asset transfers. Following the
// paper, an arc (u, v) has *head* u and *tail* v and transfers an asset
// from u to v; it "leaves" u and "enters" v. Parallel arcs are allowed
// (§5 extends the protocol to directed multigraphs: Alice may owe Bob
// assets on two distinct blockchains), so arcs are identified by dense
// ArcId rather than by endpoint pair.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace xswap::graph {

using VertexId = std::uint32_t;
using ArcId = std::uint32_t;

/// A directed arc from `head` to `tail` (paper orientation: the asset
/// moves head → tail).
struct Arc {
  VertexId head;
  VertexId tail;

  bool operator==(const Arc&) const = default;
};

/// A finite directed multigraph with dense vertex and arc ids.
class Digraph {
 public:
  /// Empty digraph with `n` vertexes (ids 0..n-1) and no arcs.
  explicit Digraph(std::size_t n = 0);

  /// Append a new vertex; returns its id.
  VertexId add_vertex();

  /// Add an arc head → tail; returns its id. Self-loops are rejected
  /// (the paper's arcs connect *distinct* vertexes). Parallel arcs are
  /// allowed.
  ArcId add_arc(VertexId head, VertexId tail);

  std::size_t vertex_count() const { return out_.size(); }
  std::size_t arc_count() const { return arcs_.size(); }

  const Arc& arc(ArcId id) const { return arcs_[id]; }
  const std::vector<Arc>& arcs() const { return arcs_; }

  /// Arc ids leaving `v` (v is their head).
  const std::vector<ArcId>& out_arcs(VertexId v) const { return out_[v]; }
  /// Arc ids entering `v` (v is their tail).
  const std::vector<ArcId>& in_arcs(VertexId v) const { return in_[v]; }

  std::size_t out_degree(VertexId v) const { return out_[v].size(); }
  std::size_t in_degree(VertexId v) const { return in_[v].size(); }

  /// Any arc head → tail, if one exists (first by insertion order).
  std::optional<ArcId> find_arc(VertexId head, VertexId tail) const;

  /// The transpose digraph D^T (all arcs reversed, same ids). Phase Two
  /// of the protocol is the eager pebble game on D^T (Lemma 4.6).
  Digraph transpose() const;

  /// Copy of this digraph with the given vertexes (and incident arcs)
  /// removed. Vertex ids are preserved; the removed vertexes remain as
  /// isolated ids so that callers need not remap. Used by the feedback
  /// vertex set verifier ("deletion leaves D acyclic").
  Digraph without_vertices(const std::vector<VertexId>& removed) const;

  bool operator==(const Digraph& rhs) const;

 private:
  std::vector<Arc> arcs_;
  std::vector<std::vector<ArcId>> out_;
  std::vector<std::vector<ArcId>> in_;
};

}  // namespace xswap::graph
