#include "persist/segment_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace xswap::persist {
namespace {

// A frame length past this is corruption, not data: one journal record
// is one sealed block, and no simulated block approaches 256 MiB.
constexpr std::uint32_t kMaxRecordBytes = 1u << 28;

constexpr std::size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc

std::string segment_name(std::size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%06zu.seg", index);
  return buf;
}

void put_be32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v >> 24);
  out[1] = static_cast<std::uint8_t>(v >> 16);
  out[2] = static_cast<std::uint8_t>(v >> 8);
  out[3] = static_cast<std::uint8_t>(v);
}

std::uint32_t get_be32(const std::uint8_t* in) {
  return (static_cast<std::uint32_t>(in[0]) << 24) |
         (static_cast<std::uint32_t>(in[1]) << 16) |
         (static_cast<std::uint32_t>(in[2]) << 8) |
         static_cast<std::uint32_t>(in[3]);
}

const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

util::Bytes read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("persist: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  util::Bytes out;
  std::array<std::uint8_t, 1 << 16> chunk;
  std::size_t n;
  while ((n = std::fread(chunk.data(), 1, chunk.size(), f)) > 0) {
    out.insert(out.end(), chunk.data(), chunk.data() + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    throw std::runtime_error("persist: read of '" + path + "' failed");
  }
  return out;
}

}  // namespace

const char* to_string(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kBatch: return "batch";
    case FsyncPolicy::kNever: break;
  }
  return "never";
}

FsyncPolicy fsync_policy_from_name(const std::string& name) {
  if (name == "always") return FsyncPolicy::kAlways;
  if (name == "batch") return FsyncPolicy::kBatch;
  if (name == "never") return FsyncPolicy::kNever;
  throw std::invalid_argument("persist: unknown fsync policy '" + name +
                              "' (expected always|batch|never)");
}

std::uint32_t crc32(util::BytesView data) {
  const auto& table = crc_table();
  std::uint32_t c = 0xffffffffu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

SegmentStore::SegmentStore(std::string dir, DurabilityOptions options)
    : dir_(std::move(dir)), options_(options) {
  if (options_.segment_bytes == 0) {
    throw std::invalid_argument("SegmentStore: segment_bytes must be positive");
  }
  std::filesystem::create_directories(dir_);
  if (!segment_files(dir_).empty()) {
    throw std::invalid_argument(
        "SegmentStore: directory '" + dir_ +
        "' already contains segments (recover it, then journal into a "
        "fresh directory)");
  }
  open_next_segment();
}

SegmentStore::~SegmentStore() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
  }
}

void SegmentStore::open_next_segment() {
  if (file_ != nullptr) {
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path =
      dir_ + "/" + segment_name(segment_index_);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    throw std::runtime_error("SegmentStore: cannot create '" + path +
                             "': " + std::strerror(errno));
  }
  ++segment_index_;
  current_segment_bytes_ = 0;
}

void SegmentStore::append(util::BytesView payload) {
  if (payload.empty()) {
    throw std::invalid_argument("SegmentStore::append: empty payload");
  }
  if (payload.size() > kMaxRecordBytes) {
    throw std::invalid_argument("SegmentStore::append: record too large");
  }
  const std::size_t frame = kFrameHeaderBytes + payload.size();
  // Rotate rather than split: a record that does not fit the remainder
  // of the current segment starts the next one (and an oversized record
  // simply has a segment to itself).
  if (current_segment_bytes_ > 0 &&
      current_segment_bytes_ + frame > options_.segment_bytes) {
    open_next_segment();
  }
  std::uint8_t header[kFrameHeaderBytes];
  put_be32(header, static_cast<std::uint32_t>(payload.size()));
  put_be32(header + 4, crc32(payload));
  if (std::fwrite(header, 1, sizeof header, file_) != sizeof header ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size()) {
    throw std::runtime_error("SegmentStore: write to '" + dir_ + "' failed");
  }
  current_segment_bytes_ += frame;
  bytes_written_ += frame;
  ++records_appended_;
}

void SegmentStore::flush(bool fsync) {
  if (std::fflush(file_) != 0) {
    throw std::runtime_error("SegmentStore: flush of '" + dir_ + "' failed");
  }
  if (fsync) {
    if (::fsync(fileno(file_)) != 0) {
      throw std::runtime_error("SegmentStore: fsync of '" + dir_ +
                               "' failed: " + std::strerror(errno));
    }
    ++fsync_count_;
  }
}

std::vector<std::string> segment_files(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    throw std::invalid_argument("persist: '" + dir + "' is not a directory");
  }
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".seg") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

RecordScan read_records(const std::string& dir) {
  const std::vector<std::string> files = segment_files(dir);
  RecordScan scan;
  for (std::size_t s = 0; s < files.size(); ++s) {
    const bool last_segment = s + 1 == files.size();
    const util::Bytes buf = read_file(files[s]);
    std::size_t off = 0;
    while (off < buf.size()) {
      const auto tear = [&](const std::string& why) {
        scan.torn_tail = true;
        scan.torn_reason = files[s] + ": " + why;
      };
      if (buf.size() - off < kFrameHeaderBytes) {
        if (last_segment) {
          tear("truncated frame header at offset " + std::to_string(off));
          return scan;
        }
        throw RecoveryError("persist: " + files[s] +
                            ": truncated frame header mid-log at offset " +
                            std::to_string(off));
      }
      const std::uint32_t length = get_be32(buf.data() + off);
      const std::uint32_t expect_crc = get_be32(buf.data() + off + 4);
      if (length == 0) {
        throw RecoveryError("persist: " + files[s] +
                            ": zero-length record at offset " +
                            std::to_string(off));
      }
      if (length > kMaxRecordBytes) {
        throw RecoveryError("persist: " + files[s] +
                            ": implausible record length " +
                            std::to_string(length) + " at offset " +
                            std::to_string(off));
      }
      if (buf.size() - off - kFrameHeaderBytes < length) {
        if (last_segment) {
          tear("truncated record payload at offset " + std::to_string(off));
          return scan;
        }
        throw RecoveryError("persist: " + files[s] +
                            ": truncated record payload mid-log at offset " +
                            std::to_string(off));
      }
      const util::BytesView payload(buf.data() + off + kFrameHeaderBytes,
                                    length);
      if (crc32(payload) != expect_crc) {
        // Checksum damage is a torn write only when this record is the
        // very last one on disk; anywhere earlier it is corruption.
        if (last_segment && off + kFrameHeaderBytes + length == buf.size()) {
          tear("checksum mismatch on final record at offset " +
               std::to_string(off));
          return scan;
        }
        throw RecoveryError("persist: " + files[s] +
                            ": checksum mismatch mid-log at offset " +
                            std::to_string(off));
      }
      scan.records.emplace_back(payload.begin(), payload.end());
      off += kFrameHeaderBytes + length;
    }
  }
  return scan;
}

}  // namespace xswap::persist
