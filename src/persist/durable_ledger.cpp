#include "persist/durable_ledger.hpp"

#include <stdexcept>

#include "chain/block.hpp"

namespace xswap::persist {
namespace {

constexpr std::uint8_t kTagMint = 1;
constexpr std::uint8_t kTagBlock = 2;

void put_u8(util::Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u64(util::Bytes& out, std::uint64_t v) {
  util::append(out, util::be64(v));
}

void put_string(util::Bytes& out, const std::string& s) {
  put_u64(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

void put_digest(util::Bytes& out, const crypto::Digest256& d) {
  out.insert(out.end(), d.begin(), d.end());
}

/// Bounds-checked reader over one record payload.
class Cursor {
 public:
  explicit Cursor(util::BytesView data) : data_(data) {}

  std::uint8_t u8() {
    need(1, "u8");
    return data_[pos_++];
  }

  std::uint64_t u64() {
    need(8, "u64");
    const std::uint64_t v = util::read_be64(data_.subspan(pos_, 8));
    pos_ += 8;
    return v;
  }

  std::string string() {
    const std::uint64_t len = u64();
    need(len, "string body");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                  static_cast<std::size_t>(len));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  crypto::Digest256 digest() {
    need(32, "digest");
    crypto::Digest256 d;
    std::copy_n(data_.begin() + static_cast<std::ptrdiff_t>(pos_), 32,
                d.begin());
    pos_ += 32;
    return d;
  }

  void expect_done() const {
    if (pos_ != data_.size()) {
      throw RecoveryError("persist: journal record has " +
                          std::to_string(data_.size() - pos_) +
                          " trailing bytes");
    }
  }

 private:
  void need(std::uint64_t n, const char* what) const {
    if (data_.size() - pos_ < n) {
      throw RecoveryError(std::string("persist: journal record truncated "
                                      "reading ") +
                          what);
    }
  }

  util::BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace

LedgerJournal::LedgerJournal(std::string dir, DurabilityOptions options)
    : options_(options), store_(std::move(dir), options) {
  if (options_.group_blocks == 0) {
    throw std::invalid_argument("LedgerJournal: group_blocks must be positive");
  }
}

void LedgerJournal::append_mint(const chain::Address& owner,
                                const chain::Asset& asset) {
  store_.append(encode_mint_record(owner, asset));
}

void LedgerJournal::append_block(const chain::Block& block) {
  store_.append(encode_block_record(block));
}

void LedgerJournal::commit() {
  store_.flush(/*fsync=*/options_.policy != FsyncPolicy::kNever);
}

std::size_t LedgerJournal::group_blocks() const {
  return options_.policy == FsyncPolicy::kAlways ? 1 : options_.group_blocks;
}

util::Bytes encode_mint_record(const chain::Address& owner,
                               const chain::Asset& asset) {
  util::Bytes out;
  put_u8(out, kTagMint);
  put_u8(out, asset.fungible ? 1 : 0);
  put_string(out, asset.symbol);
  put_u64(out, asset.amount);
  put_string(out, asset.unique_id);
  put_string(out, owner);
  return out;
}

util::Bytes encode_block_record(const chain::Block& block) {
  util::Bytes out;
  put_u8(out, kTagBlock);
  put_u64(out, block.height);
  put_u64(out, block.sealed_at);
  put_digest(out, block.prev_hash);
  put_digest(out, block.tx_root);
  put_u64(out, block.txs.size());
  for (const chain::Transaction& tx : block.txs) {
    put_u8(out, static_cast<std::uint8_t>(tx.kind));
    put_u8(out, tx.succeeded ? 1 : 0);
    put_u64(out, tx.payload_bytes);
    put_u64(out, tx.submitted_at);
    put_u64(out, tx.executed_at);
    put_string(out, tx.sender);
    put_string(out, tx.summary);
    put_string(out, tx.error);
  }
  return out;
}

JournalRecord decode_record(util::BytesView payload) {
  Cursor cur(payload);
  JournalRecord rec;
  const std::uint8_t tag = cur.u8();
  if (tag == kTagMint) {
    rec.kind = JournalRecord::Kind::kMint;
    rec.asset.fungible = cur.u8() != 0;
    rec.asset.symbol = cur.string();
    rec.asset.amount = cur.u64();
    rec.asset.unique_id = cur.string();
    rec.owner = cur.string();
  } else if (tag == kTagBlock) {
    rec.kind = JournalRecord::Kind::kBlock;
    rec.block.height = cur.u64();
    rec.block.sealed_at = cur.u64();
    rec.block.prev_hash = cur.digest();
    rec.block.tx_root = cur.digest();
    const std::uint64_t ntx = cur.u64();
    // The tx count is bounded by the remaining payload (each tx costs
    // well over one byte), so a damaged count fails fast instead of
    // reserving gigabytes.
    if (ntx > payload.size()) {
      throw RecoveryError("persist: journal block claims " +
                          std::to_string(ntx) + " transactions in a " +
                          std::to_string(payload.size()) + "-byte record");
    }
    rec.block.txs.reserve(static_cast<std::size_t>(ntx));
    for (std::uint64_t i = 0; i < ntx; ++i) {
      chain::Transaction tx;
      const std::uint8_t kind = cur.u8();
      if (kind > static_cast<std::uint8_t>(chain::TxKind::kTransfer)) {
        throw RecoveryError("persist: journal transaction has unknown kind " +
                            std::to_string(kind));
      }
      tx.kind = static_cast<chain::TxKind>(kind);
      tx.succeeded = cur.u8() != 0;
      tx.payload_bytes = static_cast<std::size_t>(cur.u64());
      tx.submitted_at = cur.u64();
      tx.executed_at = cur.u64();
      tx.sender = cur.string();
      tx.summary = cur.string();
      tx.error = cur.string();
      rec.block.txs.push_back(std::move(tx));
    }
  } else {
    throw RecoveryError("persist: journal record has unknown tag " +
                        std::to_string(tag));
  }
  cur.expect_done();
  return rec;
}

RecoveryReport recover(const std::string& dir, chain::Ledger& ledger) {
  const RecordScan scan = read_records(dir);
  RecoveryReport report;
  report.torn_tail = scan.torn_tail;
  report.torn_reason = scan.torn_reason;
  for (std::size_t i = 0; i < scan.records.size(); ++i) {
    JournalRecord rec = decode_record(scan.records[i]);
    try {
      if (rec.kind == JournalRecord::Kind::kMint) {
        ledger.mint(rec.owner, rec.asset);
        ++report.mints;
      } else {
        ledger.restore_sealed_block(std::move(rec.block));
        ++report.blocks;
      }
    } catch (const RecoveryError&) {
      throw;
    } catch (const std::exception& e) {
      // Replay-level damage (heights that do not chain, duplicated
      // records, re-minted unique assets) surfaces as a named error
      // pinned to the record index — never skipped.
      throw RecoveryError("persist: " + dir + ": record " +
                          std::to_string(i) + " does not replay: " + e.what());
    }
  }
  chain::Ledger::IntegrityFailure failure;
  if (!ledger.verify_integrity(&failure)) {
    throw RecoveryError(
        "persist: " + dir + ": recovered chain fails integrity at block " +
        std::to_string(failure.height) + " (" +
        chain::to_string(failure.check) + ")");
  }
  return report;
}

RecoveredLedger recover_ledger(const std::string& dir,
                               const std::string& chain_name) {
  RecoveredLedger out;
  out.sim = std::make_unique<sim::Simulator>();
  out.ledger = std::make_unique<chain::Ledger>(chain_name, *out.sim);
  out.report = recover(dir, *out.ledger);
  return out;
}

std::string sanitize_chain_dir(const std::string& chain_name) {
  std::string out = chain_name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out.empty() ? "_" : out;
}

}  // namespace xswap::persist
