// Ledger journaling + recovery replay over the segment store.
//
// LedgerJournal implements chain::BlockStore: attach one to a Ledger
// (Ledger::attach_store) and every genesis mint plus every sealed block
// header+transaction list is encoded into checksummed records, group-
// committed at the seal_batch cadence. recover() replays a journal
// directory back into an empty Ledger and re-verifies the whole hash
// chain and every Merkle root via the diagnostic verify_integrity
// overload, so a recovered ledger is exactly the sealed prefix the
// journal attests — a torn tail (at most the final record) is discarded
// deterministically, and any other damage is a named RecoveryError.
//
// Recovery semantics: the journal restores the authenticated block
// history and the genesis asset allocation. Contract objects are native
// C++ closures and are not re-instantiated from disk — a recovered
// ledger answers blocks()/verify_integrity()/storage accounting and
// balance-of-mint queries, which is what restart-time auditing needs.
// Protocol-level crash recovery (swap::Strategy::recover_at) instead
// re-derives a party's volatile state by scanning the live chains,
// which stay intact across a party crash.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chain/block_store.hpp"
#include "chain/ledger.hpp"
#include "persist/segment_store.hpp"
#include "sim/simulator.hpp"

namespace xswap::persist {

/// BlockStore that frames mints and sealed blocks into a SegmentStore.
class LedgerJournal final : public chain::BlockStore {
 public:
  LedgerJournal(std::string dir, DurabilityOptions options = {});

  void append_mint(const chain::Address& owner,
                   const chain::Asset& asset) override;
  void append_block(const chain::Block& block) override;
  void commit() override;
  std::size_t group_blocks() const override;

  const SegmentStore& store() const { return store_; }

 private:
  DurabilityOptions options_;
  SegmentStore store_;
};

/// What a replay recovered (diagnostics for stats and smoke checks).
struct RecoveryReport {
  std::size_t mints = 0;
  std::size_t blocks = 0;  // including genesis
  bool torn_tail = false;
  std::string torn_reason;
};

/// Replay the journal at `dir` into `ledger` (which must be freshly
/// constructed: never started, no mints, genesis only), then re-verify
/// the full hash chain + Merkle roots. Throws RecoveryError — naming
/// the record index or the first failing block and check — on anything
/// that does not replay cleanly; a torn tail alone is tolerated and
/// reported.
RecoveryReport recover(const std::string& dir, chain::Ledger& ledger);

/// recover() into a self-owned Simulator + Ledger pair (restart-time
/// auditing of a finished run's journals).
struct RecoveredLedger {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<chain::Ledger> ledger;
  RecoveryReport report;
};

RecoveredLedger recover_ledger(const std::string& dir,
                               const std::string& chain_name);

// ---- Record codec (exposed for the torn-write corpus tests) ----

util::Bytes encode_mint_record(const chain::Address& owner,
                               const chain::Asset& asset);
util::Bytes encode_block_record(const chain::Block& block);

/// Decoded journal record: exactly one of the two shapes.
struct JournalRecord {
  enum class Kind : std::uint8_t { kMint = 1, kBlock = 2 };
  Kind kind = Kind::kMint;
  chain::Address owner;   // kMint
  chain::Asset asset;     // kMint
  chain::Block block;     // kBlock
};

/// Decode one record payload; throws RecoveryError on malformed bytes.
JournalRecord decode_record(util::BytesView payload);

/// Filesystem-safe directory component for a chain name (non
/// [A-Za-z0-9._-] bytes become '_').
std::string sanitize_chain_dir(const std::string& chain_name);

}  // namespace xswap::persist
