// Append-only segment store: the byte layer under durable ledgers.
//
// Records are opaque payloads framed as
//
//   [u32 BE payload length][u32 BE CRC-32 of payload][payload bytes]
//
// and appended to rotating segment files (`000000.seg`, `000001.seg`,
// ...) inside one directory. A record is never split across segments:
// when the current segment would overflow `segment_bytes` the store
// rotates first (an oversized record gets a fresh segment to itself, so
// segments may exceed the nominal size by design).
//
// Writes are buffered (stdio) and made durable by flush(): every
// group-commit boundary costs one fflush and — policy permitting — one
// fsync, never one per record. That is the amortization bench_durability
// measures.
//
// Reading back (read_records) is strict everywhere except the tail: a
// final record of the FINAL segment that is truncated or fails its
// checksum is a torn write — discarded deterministically and reported in
// RecordScan. The same damage anywhere else is corruption and throws
// RecoveryError; recovery never silently skips a record mid-log.
#pragma once

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace xswap::persist {

/// When appended records must reach stable storage.
enum class FsyncPolicy : std::uint8_t {
  kAlways,  // fsync at every commit, one block per commit
  kBatch,   // fsync at every group commit (DurabilityOptions::group_blocks)
  kNever,   // fflush only; durability is best-effort (tests, benches)
};

const char* to_string(FsyncPolicy policy);

/// Parse "always"/"batch"/"never" (CLI flag values); throws
/// std::invalid_argument on anything else.
FsyncPolicy fsync_policy_from_name(const std::string& name);

struct DurabilityOptions {
  FsyncPolicy policy = FsyncPolicy::kBatch;
  /// Nominal segment rotation threshold (a lone oversized record may
  /// exceed it — records are never split).
  std::size_t segment_bytes = 4u * 1024 * 1024;
  /// Sealed blocks per group commit under kBatch/kNever (kAlways pins
  /// the cadence to 1 regardless).
  std::size_t group_blocks = 64;
};

/// Named, deterministic recovery failure: corruption that is not a torn
/// tail (mid-log damage, implausible frames, records that do not replay).
class RecoveryError : public std::runtime_error {
 public:
  explicit RecoveryError(const std::string& what) : std::runtime_error(what) {}
};

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of `data`. Exposed so the
/// torn-write corpus tests can forge and break checksums byte-exactly.
std::uint32_t crc32(util::BytesView data);

/// Append side of the store. One writer per directory; the directory is
/// created on demand and must not already contain segment files (recover
/// from an old directory first, then journal into a fresh one).
class SegmentStore {
 public:
  SegmentStore(std::string dir, DurabilityOptions options);
  /// Flushes buffered bytes to the OS (no fsync — a crash between the
  /// last commit and destruction may tear the tail, which recovery
  /// tolerates by design).
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Frame `payload` and buffer it into the current segment, rotating
  /// first if the frame would overflow the nominal segment size.
  void append(util::BytesView payload);

  /// Push buffered bytes to the OS; when `fsync` also force them to
  /// stable storage. Throws std::runtime_error on I/O failure.
  void flush(bool fsync);

  const std::string& directory() const { return dir_; }
  std::size_t records_appended() const { return records_appended_; }
  /// Framed bytes handed to the OS-level buffer so far.
  std::size_t bytes_written() const { return bytes_written_; }
  std::size_t fsync_count() const { return fsync_count_; }
  std::size_t segment_count() const { return segment_index_; }

 private:
  void open_next_segment();

  std::string dir_;
  DurabilityOptions options_;
  std::FILE* file_ = nullptr;
  std::size_t current_segment_bytes_ = 0;
  std::size_t segment_index_ = 0;  // segments opened so far
  std::size_t records_appended_ = 0;
  std::size_t bytes_written_ = 0;
  std::size_t fsync_count_ = 0;
};

/// Result of scanning a store directory back into records.
struct RecordScan {
  std::vector<util::Bytes> records;
  /// True when the final record of the final segment was truncated or
  /// checksum-damaged and therefore discarded.
  bool torn_tail = false;
  /// Human-readable reason for the discarded tail (empty otherwise).
  std::string torn_reason;
};

/// Segment files under `dir`, in append (name) order. Throws
/// std::invalid_argument when the directory does not exist.
std::vector<std::string> segment_files(const std::string& dir);

/// Read every record under `dir` in append order. Tolerates exactly one
/// torn tail (see file comment); throws RecoveryError on zero-length
/// records, implausible lengths, or damage anywhere before the tail.
RecordScan read_records(const std::string& dir);

}  // namespace xswap::persist
