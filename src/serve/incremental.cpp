#include "serve/incremental.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <stdexcept>
#include <utility>

#include "graph/scc.hpp"

namespace xswap::serve {

IncrementalClearing::IncrementalClearing(IncrementalOptions options)
    : options_(options) {
  if (options.max_dirty < 0.0) {
    throw std::invalid_argument(
        "IncrementalClearing: max_dirty must be non-negative");
  }
}

namespace {

/// Condensation components on some path comp_from ⇝ comp_to: the
/// intersection of forward reachability from comp_from and backward
/// reachability from comp_to. Empty when comp_to is unreachable.
std::vector<std::size_t> affected_region(
    const std::vector<std::vector<std::size_t>>& cond_out,
    const std::vector<std::vector<std::size_t>>& cond_in,
    std::size_t comp_from, std::size_t comp_to) {
  const auto reach = [](const std::vector<std::vector<std::size_t>>& adj,
                        std::size_t start) {
    std::vector<char> seen(adj.size(), 0);
    std::deque<std::size_t> frontier{start};
    seen[start] = 1;
    while (!frontier.empty()) {
      const std::size_t c = frontier.front();
      frontier.pop_front();
      for (const std::size_t next : adj[c]) {
        if (!seen[next]) {
          seen[next] = 1;
          frontier.push_back(next);
        }
      }
    }
    return seen;
  };
  const std::vector<char> forward = reach(cond_out, comp_from);
  const std::vector<char> backward = reach(cond_in, comp_to);
  std::vector<std::size_t> region;
  if (!forward[comp_to]) return region;  // no path — nothing can merge
  for (std::size_t c = 0; c < forward.size(); ++c) {
    if (forward[c] && backward[c]) region.push_back(c);
  }
  return region;
}

}  // namespace

std::size_t IncrementalClearing::dirty_parties_for_add(
    const swap::Offer& offer) const {
  const auto from_it = comp_of_party_.find(offer.from);
  const auto to_it = comp_of_party_.find(offer.to);
  if (from_it == comp_of_party_.end() || to_it == comp_of_party_.end()) {
    // A fresh endpoint cannot close a cycle this event: no arc enters a
    // brand-new vertex (or leaves one nothing points at yet).
    return 0;
  }
  const std::size_t cu = from_it->second;
  const std::size_t cv = to_it->second;
  if (cu == cv) return comp_parties_[cu];  // component re-clears
  // Adding condensation arc cu→cv merges exactly the components on
  // paths cv ⇝ cu (they all land in one SCC through the new arc).
  std::size_t parties = 0;
  for (const std::size_t c : affected_region(cond_out_, cond_in_, cv, cu)) {
    parties += comp_parties_[c];
  }
  return parties;
}

std::size_t IncrementalClearing::dirty_parties_for_expire(
    const swap::Offer& offer) const {
  const auto from_it = comp_of_party_.find(offer.from);
  const auto to_it = comp_of_party_.find(offer.to);
  if (from_it == comp_of_party_.end() || to_it == comp_of_party_.end()) {
    return 0;
  }
  // Only an intra-component expire can change structure (the component
  // may split, or just needs its FVS redone on one fewer arc); removing
  // a cross-component arc merges nothing and splits nothing.
  return from_it->second == to_it->second ? comp_parties_[from_it->second]
                                          : 0;
}

void IncrementalClearing::add(swap::Offer offer) {
  if (offer.from.empty() || offer.to.empty()) {
    throw std::invalid_argument("IncrementalClearing::add: empty party name");
  }
  if (offer.from == offer.to) {
    throw std::invalid_argument(
        "IncrementalClearing::add: self-transfer offer");
  }
  if (offer.chain.empty()) {
    throw std::invalid_argument(
        "IncrementalClearing::add: offer without a chain");
  }
  std::string key = swap::offer_key(offer);
  if (by_key_.count(key)) {
    throw std::invalid_argument(
        "IncrementalClearing::add: duplicate live offer " + offer.from +
        " -> " + offer.to + " on " + offer.chain);
  }

  const std::size_t dirty = dirty_parties_for_add(offer);
  const bool full =
      static_cast<double>(dirty) >
      options_.max_dirty * static_cast<double>(live_parties_);

  const std::uint64_t id = next_id_++;
  by_key_.emplace(key, id);
  live_.push_back(LiveOffer{std::move(offer), id, std::move(key)});

  ++stats_.adds;
  if (full) {
    ++stats_.full_recomputes;
  } else {
    ++stats_.incremental_updates;
  }
  refresh(!full);
}

void IncrementalClearing::expire(const swap::Offer& offer) {
  const std::string key = swap::offer_key(offer);
  const auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    throw std::invalid_argument(
        "IncrementalClearing::expire: no live offer " + offer.from + " -> " +
        offer.to + " on " + offer.chain);
  }

  const std::size_t dirty = dirty_parties_for_expire(offer);
  const bool full =
      static_cast<double>(dirty) >
      options_.max_dirty * static_cast<double>(live_parties_);

  const std::uint64_t id = it->second;
  by_key_.erase(it);
  live_.erase(std::find_if(live_.begin(), live_.end(),
                           [&](const LiveOffer& lo) { return lo.id == id; }));

  ++stats_.expires;
  if (full) {
    ++stats_.full_recomputes;
  } else {
    ++stats_.incremental_updates;
  }
  refresh(!full);
}

void IncrementalClearing::refresh(bool use_cache) {
  // Mirror decompose_offers over the live book, step for step — same
  // intern order, same Tarjan numbering, same grouping and unmatched
  // ordering — with the per-component clear_offers calls optionally
  // served from the exact-subset cache.
  swap::Decomposition next;
  std::vector<std::vector<std::uint64_t>> next_swap_ids;
  std::map<std::vector<std::uint64_t>, swap::ClearedSwap> next_cache;

  std::map<std::string, swap::PartyId> ids;
  std::vector<std::string> names;
  graph::Digraph digraph;
  const auto intern = [&](const std::string& name) -> swap::PartyId {
    const auto it = ids.find(name);
    if (it != ids.end()) return it->second;
    const swap::PartyId id = digraph.add_vertex();
    ids.emplace(name, id);
    names.push_back(name);
    return id;
  };
  std::vector<std::pair<swap::PartyId, swap::PartyId>> endpoints;
  endpoints.reserve(live_.size());
  for (const LiveOffer& lo : live_) {
    const swap::PartyId head = intern(lo.offer.from);
    const swap::PartyId tail = intern(lo.offer.to);
    digraph.add_arc(head, tail);
    endpoints.emplace_back(head, tail);
  }

  const graph::SccResult scc = graph::strongly_connected_components(digraph);

  std::map<std::size_t, std::vector<std::size_t>> by_component;  // live_ idx
  for (std::size_t i = 0; i < live_.size(); ++i) {
    const auto [head, tail] = endpoints[i];
    if (scc.component[head] == scc.component[tail]) {
      by_component[scc.component[head]].push_back(i);
    } else {
      next.unmatched.push_back(live_[i].offer);
    }
  }

  for (const auto& [component, live_indices] : by_component) {
    std::vector<std::uint64_t> subset_ids;
    subset_ids.reserve(live_indices.size());
    for (const std::size_t i : live_indices) subset_ids.push_back(live_[i].id);

    if (use_cache) {
      const auto hit = cache_.find(subset_ids);
      if (hit != cache_.end()) {
        ++stats_.components_reused;
        next.swaps.push_back(hit->second);
        next_swap_ids.push_back(subset_ids);
        next_cache.emplace(std::move(subset_ids), hit->second);
        continue;
      }
    }
    std::vector<swap::Offer> subset;
    subset.reserve(live_indices.size());
    for (const std::size_t i : live_indices) subset.push_back(live_[i].offer);
    ++stats_.components_recleared;
    auto cleared = swap::clear_offers(subset, options_.fvs);
    if (cleared.has_value()) {
      next.swaps.push_back(*cleared);
      next_swap_ids.push_back(subset_ids);
      next_cache.emplace(std::move(subset_ids), std::move(*cleared));
    } else {
      // Unreachable for subsets grouped by full-graph SCC (see the note
      // in decompose_offers), but mirror its fallback regardless.
      for (const std::size_t i : live_indices) {
        next.unmatched.push_back(live_[i].offer);
      }
    }
  }

  decomp_ = std::move(next);
  swap_offer_ids_ = std::move(next_swap_ids);
  cache_ = std::move(next_cache);

  // Partition metadata for the next event's dirty analysis.
  comp_of_party_.clear();
  for (std::size_t v = 0; v < names.size(); ++v) {
    comp_of_party_.emplace(names[v], scc.component[v]);
  }
  comp_parties_.assign(scc.component_count, 0);
  for (std::size_t v = 0; v < names.size(); ++v) {
    ++comp_parties_[scc.component[v]];
  }
  cond_out_.assign(scc.component_count, {});
  cond_in_.assign(scc.component_count, {});
  for (const auto& [head, tail] : endpoints) {
    const std::size_t ch = scc.component[head];
    const std::size_t ct = scc.component[tail];
    if (ch != ct) {
      cond_out_[ch].push_back(ct);
      cond_in_[ct].push_back(ch);
    }
  }
  live_parties_ = names.size();
}

swap::Decomposition IncrementalClearing::consume() {
  swap::Decomposition out = decomp_;

  std::set<std::uint64_t> matched;
  for (const std::vector<std::uint64_t>& swap_ids : swap_offer_ids_) {
    matched.insert(swap_ids.begin(), swap_ids.end());
  }
  if (!matched.empty()) {
    std::vector<LiveOffer> kept;
    kept.reserve(live_.size() - matched.size());
    for (LiveOffer& lo : live_) {
      if (matched.count(lo.id)) {
        by_key_.erase(lo.key);
      } else {
        kept.push_back(std::move(lo));
      }
    }
    live_ = std::move(kept);
  }
  // Removing offers never creates arcs, so no new component can form:
  // the survivors are exactly the unmatched offers, every one still
  // cross-component. The refresh keeps the invariant mechanically (and
  // reuses nothing expensive — there is no swap left to re-clear).
  refresh(true);
  return out;
}

std::vector<swap::Offer> IncrementalClearing::live_offers() const {
  std::vector<swap::Offer> offers;
  offers.reserve(live_.size());
  for (const LiveOffer& lo : live_) offers.push_back(lo.offer);
  return offers;
}

}  // namespace xswap::serve
