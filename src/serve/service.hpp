// Clearing-as-a-service: the long-lived daemon behind `xswap serve`.
//
// A ClearingService owns the whole streaming pipeline:
//
//   producers ──submit()──▶ OfferStream ──▶ service thread
//                 (bounded: backpressure)      │ apply add/expire
//                                              │ (IncrementalClearing)
//                                              ▼ on `clear` / EOF drain
//                                     consume() → component swaps
//                                              │ largest-first dispatch
//                                              ▼ onto the Executor
//                                     one SwapEngine per component
//                                              │
//                                     ComponentReport per component
//                                     (on_report callback, stats)
//
// Determinism contract: component i of clearing point k runs with seed
//   options.engine.seed + (components dispatched before point k) + i,
// i in decomposition order. A stream that is only `add` events followed
// by the shutdown drain therefore reproduces `xswap batch` field for
// field (seed + i per component, identical decomposition — pinned by
// tests/serve_service_test.cpp). The largest-component-first schedule
// only permutes WHICH LANE runs an engine, never its seed or inputs, so
// every deterministic report field is jobs-independent.
//
// Theorems 4.7/4.9 are per-swap statements about one protocol instance
// under its Δ assumption; the service never touches a running engine —
// admission, incremental decomposition, and scheduling all happen
// strictly before an engine starts — so both theorems apply to each
// cleared component exactly as in the batch path (docs/PAPER_MAP.md).
//
// Threading: ONE service thread applies events and dispatches clears;
// engines fan out on the executor inside clear_components and are
// joined before the next event is applied. Stats are snapshotted under
// a dedicated mutex (PR 7 annotated locking throughout).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "persist/segment_store.hpp"
#include "serve/incremental.hpp"
#include "serve/offer_stream.hpp"
#include "serve/stats.hpp"
#include "swap/scenario.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace xswap::serve {

/// One cleared component's result, emitted per component at each
/// clearing point (in decomposition order within the point).
struct ComponentReport {
  std::size_t clear_batch = 0;  // which clearing point (0-based)
  std::size_t index = 0;        // decomposition order within the point
  std::uint64_t seed = 0;       // the seed this component ran with
  swap::ClearedSwap cleared;    // parties, digraph, leaders, terms
  swap::BatchReport report;     // aggregate_batch of this one swap
  bool audit_ok = true;         // swap::check_all verdict
  double latency_ms = 0.0;      // wall clock of this engine's run
};

struct ServiceOptions {
  /// Per-component engine knobs; seed is the BASE seed (see the
  /// determinism contract above). chain_locks is overridden by the
  /// service when components may run concurrently.
  swap::EngineOptions engine;

  /// Ingest queue bound — the backpressure knob (OfferStream capacity).
  std::size_t queue_cap = 1024;

  /// Incremental-clearing fallback threshold (IncrementalOptions).
  double max_dirty = 0.5;

  /// Leader-election tuning for every cleared component
  /// (IncrementalOptions::fvs; the `--fvs-exact-max` serve flag).
  graph::FvsOptions fvs;

  /// Executor lanes for component dispatch. 1 (default) runs components
  /// serially on the service thread; n > 1 acquires the registry's
  /// elastic shared pool (shared_pool_at_least) unless `pool` is set.
  std::size_t jobs = 1;

  /// Explicit executor, overriding the jobs-based choice (owning; shared
  /// pools serialize their batches internally).
  std::shared_ptr<swap::Executor> pool;

  /// Invoked once per cleared component, from the service thread, in
  /// decomposition order within each clearing point. Never concurrent
  /// with itself.
  std::function<void(const ComponentReport&)> on_report;

  /// When non-empty, every cleared component journals its chains under
  /// `<durable_dir>/run-NNN/clear<point>-c<i>/<chain>/`, and the
  /// constructor replays + integrity-verifies every journal left by
  /// prior runs in the same directory (crash recovery; counted in
  /// ServiceStats::recovered_*). A corrupt journal throws
  /// persist::RecoveryError from the constructor; a torn tail — the
  /// expected shape after SIGKILL mid-write — is tolerated and counted.
  /// Journaling is observational: reports, traces, and seeds are
  /// bit-identical with durability on or off.
  std::string durable_dir;

  /// Fsync policy and group-commit sizing for the journals.
  persist::DurabilityOptions durability;
};

class ClearingService {
 public:
  /// Validates options (throws std::invalid_argument on queue_cap == 0,
  /// jobs == 0, or a negative max_dirty). Does NOT start the service
  /// thread — tests exploit this to fill the queue to capacity and
  /// observe deterministic rejection before anything is consumed.
  explicit ClearingService(ServiceOptions options);

  /// Closes the stream and joins the service thread (errors are
  /// swallowed here; call wait() to observe them).
  ~ClearingService();

  ClearingService(const ClearingService&) = delete;
  ClearingService& operator=(const ClearingService&) = delete;

  /// Launch the service thread. Throws std::logic_error on a second call.
  void start();

  /// Non-blocking submit (backpressure: kRejectedFull at capacity).
  SubmitResult submit(OfferEvent event);
  /// Blocking submit: throttles the producer to clearing speed.
  SubmitResult submit_wait(OfferEvent event);

  /// End the stream: already-admitted events are still applied, then one
  /// final clearing point drains the book (graceful drain). Idempotent.
  void close();

  /// close(), join the service thread, rethrow the first service error
  /// if any, and return the final stats. Safe to call once.
  ServiceStats wait();

  /// Consistent snapshot of the counters (callable any time).
  ServiceStats stats() const XSWAP_EXCLUDES(stats_mutex_);

  /// Offers still live after the final drain — unmatched at shutdown,
  /// returned to their makers. Meaningful after wait().
  const std::vector<swap::Offer>& final_unmatched() const {
    return final_unmatched_;
  }

 private:
  void service_main();
  void apply(OfferEvent event);
  /// Execute one clearing point: consume the decomposition, dispatch the
  /// components largest-first on the executor, emit ComponentReports in
  /// decomposition order.
  void clear_components();
  /// Replay every journal under prior `run-NNN` epochs of durable_dir
  /// (filling the recovered_* stats), then claim `run-<max+1>` as this
  /// process's epoch directory (run_dir_). Constructor-only.
  void recover_existing_runs() XSWAP_EXCLUDES(stats_mutex_);

  ServiceOptions options_;
  OfferStream stream_;
  IncrementalClearing incremental_;  // touched by the service thread only
  std::shared_ptr<swap::Executor> executor_;  // null → serial dispatch
  bool concurrent_ = false;  // components may overlap → striped chain locks

  std::thread thread_;
  bool started_ = false;
  std::exception_ptr error_;               // set by the service thread
  std::size_t dispatched_ = 0;             // components before this point
  std::string run_dir_;                    // this run's durable epoch dir
  std::vector<swap::Offer> final_unmatched_;

  mutable util::Mutex stats_mutex_;
  ServiceStats stats_ XSWAP_GUARDED_BY(stats_mutex_);
};

}  // namespace xswap::serve
