// Observability counters of the clearing service.
//
// A ServiceStats value is a consistent SNAPSHOT (ClearingService::stats
// copies under the service lock), so readers never see half-updated
// counters; the queue fields are sampled from the ingest stream at
// snapshot time.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "serve/incremental.hpp"

namespace xswap::serve {

struct ServiceStats {
  // Ingest (the OfferStream's view).
  std::size_t events_admitted = 0;
  std::size_t events_rejected_full = 0;    // backpressure sheds
  std::size_t events_rejected_invalid = 0; // admitted but failed to apply
  std::size_t queue_depth = 0;             // at snapshot time
  std::size_t queue_high_water = 0;

  // Applied events.
  std::size_t adds_applied = 0;
  std::size_t expires_applied = 0;
  std::size_t clears = 0;  // clearing points executed (incl. final drain)

  // The live book at snapshot time.
  std::size_t offers_live = 0;
  std::size_t parties_live = 0;

  // Clearing outcomes, accumulated over every clearing point.
  std::size_t components_cleared = 0;
  std::size_t swaps_fully_triggered = 0;
  std::size_t violations = 0;  // components whose invariant audit failed

  // Crash recovery (`serve --durable`): journals left by prior runs,
  // replayed and integrity-verified at startup before this run's epoch
  // directory is chosen.
  std::size_t recovered_ledgers = 0;     // journals replayed + verified
  std::size_t recovered_blocks = 0;      // sealed blocks restored in them
  std::size_t recovery_torn_tails = 0;   // journals with a torn tail record

  // Incremental-vs-full recompute economics (see serve/incremental.hpp).
  IncrementalStats incremental;

  // Wall-clock latency of each cleared component's engine run, in
  // completion order across clearing points.
  std::vector<double> component_latency_ms;

  /// Nearest-rank percentile of the component latencies; p in [0, 100].
  /// 0 when no component has cleared.
  double latency_percentile(double p) const {
    if (component_latency_ms.empty()) return 0.0;
    std::vector<double> sorted = component_latency_ms;
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::min(std::max(p, 0.0), 100.0);
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size())));
    return sorted[rank == 0 ? 0 : rank - 1];
  }
};

}  // namespace xswap::serve
