// Incremental SCC maintenance over a live offer book.
//
// The batch path (swap/clearing.hpp) recomputes everything from scratch:
// decompose_offers builds the offer digraph, runs Tarjan, and re-clears
// every component — including the feedback-vertex-set search, which is
// exact (exponential) up to 16 parties. A streaming service applying
// that after every add/expire would pay the full FVS bill per event even
// when the event touches one small component.
//
// IncrementalClearing keeps a Decomposition continuously equal —
// operator== equal, field for field — to decompose_offers(live offers).
// The trick is NOT to maintain Tarjan's numbering incrementally (the
// component numbering depends on a global DFS; a single arc can renumber
// components the event never touched), but to split the work by cost:
//
//   * the linear part (digraph build + Tarjan + grouping) reruns per
//     event — it is O(offers) and embarrassingly cheap next to FVS;
//   * the expensive part (clear_offers per component: FVS search,
//     validation) is scoped to the *dirty region* via exact reuse: each
//     cleared component is cached keyed by the sequence of live-offer
//     ids it was built from. A component whose offer subset sequence is
//     unchanged — the common case, since adds append and expires
//     elsewhere preserve relative order — reuses the cached ClearedSwap
//     verbatim (clear_offers is a pure function of the subset sequence,
//     so the cached value is byte-identical to a recompute).
//
// The dirty region is bounded before refreshing by a union-of-affected-
// region analysis on the previous condensation: an add u→v can only
// merge the components on condensation paths comp(v) ⇝ comp(u); an
// intra-component expire can only split its own component; everything
// else leaves component structure untouched. When the dirty region
// exceeds max_dirty × live parties the refresh runs the full
// decompose_offers-style pass with no cache lookups (counted in
// IncrementalStats::full_recomputes) — the cache would mostly miss
// anyway. Either path yields the identical Decomposition; the tests
// assert equality against decompose_offers after every step.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "swap/clearing.hpp"

namespace xswap::serve {

struct IncrementalOptions {
  /// Fall back to a full (cache-less) recompute when the dirty region
  /// holds more than this fraction of the live parties. 0 means always
  /// full; 1 means never (every refresh goes through the reuse cache).
  double max_dirty = 0.5;

  /// Leader-election tuning passed to every per-component clear_offers
  /// call (the `--fvs-exact-max` serve flag lands here). Changing it
  /// only affects freshly cleared components; cached entries were built
  /// under the same options because the options are fixed per instance.
  graph::FvsOptions fvs;
};

/// Counters for the incremental-vs-full economics (surfaced by the
/// service's stats line and BENCH_serve.json).
struct IncrementalStats {
  std::size_t adds = 0;
  std::size_t expires = 0;
  std::size_t incremental_updates = 0;  // refreshes through the cache
  std::size_t full_recomputes = 0;      // dirty region too big — no cache
  std::size_t components_reused = 0;    // cache hits (FVS skipped)
  std::size_t components_recleared = 0; // cache misses (clear_offers ran)

  /// Fraction of mutating refreshes that went full. 0 when nothing ran.
  double full_ratio() const {
    const std::size_t total = incremental_updates + full_recomputes;
    return total == 0
               ? 0.0
               : static_cast<double>(full_recomputes) /
                     static_cast<double>(total);
  }
};

class IncrementalClearing {
 public:
  /// Throws std::invalid_argument when max_dirty is negative.
  explicit IncrementalClearing(IncrementalOptions options = {});

  /// Admit one offer into the live book. Throws std::invalid_argument on
  /// the same malformed shapes decompose_offers rejects (empty party
  /// name, empty chain, self-transfer) and on a duplicate of a live
  /// offer — identity is offer_key(). An expired key may be re-added.
  void add(swap::Offer offer);

  /// Withdraw a live offer (matched by offer_key). Throws
  /// std::invalid_argument when no live offer has that identity.
  void expire(const swap::Offer& offer);

  /// The current decomposition — always equal to
  /// decompose_offers(live_offers()), including ordering.
  const swap::Decomposition& decomposition() const { return decomp_; }

  /// Execute a clearing point: return the current decomposition and
  /// remove every matched offer (offers inside a returned swap) from the
  /// live book. Unmatched offers STAY live, waiting for counterparties
  /// in later events.
  swap::Decomposition consume();

  /// The live offers, in admission order (the order decompose_offers
  /// equivalence is defined over).
  std::vector<swap::Offer> live_offers() const;
  std::size_t live_offer_count() const { return live_.size(); }
  /// Distinct parties appearing in live offers.
  std::size_t live_party_count() const { return live_parties_; }

  const IncrementalStats& stats() const { return stats_; }

 private:
  struct LiveOffer {
    swap::Offer offer;
    std::uint64_t id;  // admission-ordered, never reused
    std::string key;   // offer_key(offer)
  };

  /// Parties the mutation can structurally affect, measured on the
  /// partition of the PREVIOUS refresh (see file comment).
  std::size_t dirty_parties_for_add(const swap::Offer& offer) const;
  std::size_t dirty_parties_for_expire(const swap::Offer& offer) const;

  /// Recompute decomp_ from live_ (the decompose_offers mirror). With
  /// `use_cache` the per-component clear_offers calls go through the
  /// exact-subset cache; without it everything re-clears. Also rebuilds
  /// the partition metadata the next dirty analysis reads.
  void refresh(bool use_cache);

  IncrementalOptions options_;
  IncrementalStats stats_;

  std::vector<LiveOffer> live_;                 // admission order
  std::map<std::string, std::uint64_t> by_key_; // live identity index
  std::uint64_t next_id_ = 0;

  swap::Decomposition decomp_;
  /// Live-offer ids behind decomp_.swaps[i] (what consume() removes).
  std::vector<std::vector<std::uint64_t>> swap_offer_ids_;
  /// Exact-reuse cache: offer-id subset sequence → its cleared swap.
  std::map<std::vector<std::uint64_t>, swap::ClearedSwap> cache_;

  // Partition metadata of the last refresh, for the dirty analysis.
  std::map<std::string, std::size_t> comp_of_party_;
  std::vector<std::size_t> comp_parties_;          // party count per comp
  std::vector<std::vector<std::size_t>> cond_out_; // condensation arcs
  std::vector<std::vector<std::size_t>> cond_in_;
  std::size_t live_parties_ = 0;
};

}  // namespace xswap::serve
