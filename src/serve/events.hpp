// The streamed-event model of the clearing service (serve/ layer).
//
// A long-lived clearing daemon does not receive one finished offer book;
// it receives a STREAM of events that mutate the live book:
//
//   add     a party submits a new offer (duplicate submissions of the
//           same (from, to, chain, asset) tuple are rejected, exactly as
//           the batch path rejects duplicate offers);
//   expire  a previously added offer is withdrawn or times out before it
//           cleared (matched by the same identity tuple);
//   clear   a clearing point: every component swap the live book
//           currently decomposes into is executed and its offers are
//           consumed; unmatched offers stay live, waiting for
//           counterparties. End-of-stream implies one final clear (the
//           graceful drain), so a stream that is just `add` lines is
//           exactly the one-shot batch path.
//
// The wire format is newline-delimited text, a strict superset of the
// `xswap batch` offers-file format so existing books stream unchanged:
//
//   [add] FROM TO CHAIN coin:SYM:AMOUNT|unique:SYM:ID
//   expire FROM TO CHAIN coin:SYM:AMOUNT|unique:SYM:ID
//   clear
//
// A line whose first token is none of the verbs is an `add` (the batch
// format); '#' starts a comment; blank lines are skipped.
#pragma once

#include <optional>
#include <string>

#include "swap/clearing.hpp"

namespace xswap::serve {

enum class EventKind {
  kAdd,     // offer joins the live book
  kExpire,  // offer leaves the live book (identity-matched)
  kClear,   // execute and consume every current component swap
};

const char* to_string(EventKind kind);

/// One streamed event. `offer` is meaningful for kAdd/kExpire only.
struct OfferEvent {
  EventKind kind = EventKind::kAdd;
  swap::Offer offer;

  bool operator==(const OfferEvent&) const = default;
};

OfferEvent add_event(swap::Offer offer);
OfferEvent expire_event(swap::Offer offer);
OfferEvent clear_event();

/// Parse one `coin:SYM:AMOUNT` / `unique:SYM:ID` asset spec (the same
/// grammar the batch offers file uses). Throws std::invalid_argument on
/// malformed specs.
chain::Asset parse_asset_spec(const std::string& spec);

/// Render an asset back into the spec grammar (round-trips through
/// parse_asset_spec).
std::string asset_spec(const chain::Asset& asset);

/// Parse one stream line. Returns std::nullopt for blank/comment lines;
/// throws std::invalid_argument (with the offending detail) on
/// malformed lines. `#` comments may trail any line.
std::optional<OfferEvent> parse_event_line(const std::string& line);

/// Render an event back into the one-line wire format (round-trips
/// through parse_event_line; `add` events carry the explicit verb).
std::string event_line(const OfferEvent& event);

}  // namespace xswap::serve
