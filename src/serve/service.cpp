#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "chain/ledger.hpp"
#include "swap/invariants.hpp"

namespace xswap::serve {

ClearingService::ClearingService(ServiceOptions options)
    : options_(std::move(options)),
      stream_(options_.queue_cap),  // throws on queue_cap == 0
      incremental_(IncrementalOptions{options_.max_dirty, options_.fvs}) {
  if (options_.jobs == 0) {
    throw std::invalid_argument("ClearingService: jobs must be >= 1");
  }
  if (options_.pool) {
    executor_ = options_.pool;
    concurrent_ = true;  // unknown width — assume overlap, lock chains
  } else if (options_.jobs > 1) {
    executor_ =
        swap::ExecutorRegistry::instance().shared_pool_at_least(options_.jobs);
    concurrent_ = true;
  }
}

ClearingService::~ClearingService() {
  stream_.close();
  if (thread_.joinable()) thread_.join();
}

void ClearingService::start() {
  if (started_) throw std::logic_error("ClearingService: already started");
  started_ = true;
  thread_ = std::thread([this] { service_main(); });
}

SubmitResult ClearingService::submit(OfferEvent event) {
  return stream_.try_push(std::move(event));
}

SubmitResult ClearingService::submit_wait(OfferEvent event) {
  return stream_.push_wait(std::move(event));
}

void ClearingService::close() { stream_.close(); }

ServiceStats ClearingService::wait() {
  stream_.close();
  if (thread_.joinable()) thread_.join();
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  return stats();
}

ServiceStats ClearingService::stats() const {
  ServiceStats snapshot;
  {
    const util::MutexLock lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.events_admitted = stream_.admitted();
  snapshot.events_rejected_full = stream_.rejected_full();
  snapshot.queue_depth = stream_.depth();
  snapshot.queue_high_water = stream_.high_water();
  return snapshot;
}

void ClearingService::service_main() {
  try {
    std::vector<OfferEvent> batch;
    while (stream_.wait_drain(&batch)) {
      for (OfferEvent& event : batch) apply(std::move(event));
      batch.clear();
    }
    // Graceful drain: the stream is closed and empty — one final
    // clearing point executes whatever the live book decomposes into,
    // so no admitted offer is silently dropped.
    clear_components();
    final_unmatched_ = incremental_.live_offers();
  } catch (...) {
    error_ = std::current_exception();
    stream_.close();  // unblock producers parked in push_wait
  }
}

void ClearingService::apply(OfferEvent event) {
  switch (event.kind) {
    case EventKind::kAdd:
      try {
        incremental_.add(std::move(event.offer));
      } catch (const std::invalid_argument&) {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.events_rejected_invalid;
        return;
      }
      break;
    case EventKind::kExpire:
      try {
        incremental_.expire(event.offer);
      } catch (const std::invalid_argument&) {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.events_rejected_invalid;
        return;
      }
      break;
    case EventKind::kClear:
      clear_components();
      return;  // clear_components updated the counters
  }
  const util::MutexLock lock(stats_mutex_);
  if (event.kind == EventKind::kAdd) {
    ++stats_.adds_applied;
  } else {
    ++stats_.expires_applied;
  }
  stats_.offers_live = incremental_.live_offer_count();
  stats_.parties_live = incremental_.live_party_count();
  stats_.incremental = incremental_.stats();
}

void ClearingService::clear_components() {
  swap::Decomposition decomp = incremental_.consume();
  const std::size_t count = decomp.swaps.size();

  if (count > 0) {
    // Engines carry decomposition-order seeds (see the determinism
    // contract in the header): the schedule below may permute lanes,
    // never seeds.
    std::vector<std::unique_ptr<swap::SwapEngine>> engines;
    engines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      swap::EngineOptions per_swap = options_.engine;
      per_swap.seed = options_.engine.seed + dispatched_ + i;
      if (concurrent_) {
        // Components of one clearing point may model the same chain
        // name; once they can overlap, same-name seals must serialize
        // through the striped locks, exactly as fleet/batch --jobs do.
        per_swap.chain_locks = &chain::ChainLockRegistry::global();
      }
      engines.push_back(
          std::make_unique<swap::SwapEngine>(decomp.swaps[i], per_swap));
    }

    // Largest-component-first dispatch: task t runs component order[t],
    // so the most expensive engines (party count, then arc count — the
    // FVS-size proxies that dominate run time) start first and small
    // components backfill around the straggler.
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const swap::ClearedSwap& sa = decomp.swaps[a];
                       const swap::ClearedSwap& sb = decomp.swaps[b];
                       if (sa.party_names.size() != sb.party_names.size()) {
                         return sa.party_names.size() > sb.party_names.size();
                       }
                       if (sa.arcs.size() != sb.arcs.size()) {
                         return sa.arcs.size() > sb.arcs.size();
                       }
                       return a < b;
                     });

    std::vector<swap::SwapReport> reports(count);
    std::vector<double> latencies(count, 0.0);
    swap::SerialExecutor serial;
    swap::Executor& executor = executor_ ? *executor_ : serial;
    executor.run(count, [&](std::size_t slot) {
      const std::size_t i = order[slot];
      const auto started = std::chrono::steady_clock::now();
      reports[i] = engines[i]->run();
      latencies[i] = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    });

    std::size_t point = 0;
    {
      const util::MutexLock lock(stats_mutex_);
      point = stats_.clears;
    }
    // Emit in decomposition order, serialized on the service thread, so
    // downstream consumers (the CLI's JSON lines, tests) see a
    // deterministic sequence regardless of the lane schedule.
    for (std::size_t i = 0; i < count; ++i) {
      ComponentReport component;
      component.clear_batch = point;
      component.index = i;
      component.seed = options_.engine.seed + dispatched_ + i;
      component.audit_ok =
          swap::check_all(*engines[i], reports[i]).ok();
      component.latency_ms = latencies[i];
      component.report = swap::aggregate_batch({reports[i]}, {}, 0,
                                               latencies[i]);
      component.cleared = std::move(decomp.swaps[i]);
      {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.components_cleared;
        if (component.report.swaps_fully_triggered > 0) {
          ++stats_.swaps_fully_triggered;
        }
        if (!component.audit_ok) ++stats_.violations;
        stats_.component_latency_ms.push_back(latencies[i]);
      }
      if (options_.on_report) options_.on_report(component);
    }
    dispatched_ += count;
  }

  const util::MutexLock lock(stats_mutex_);
  ++stats_.clears;
  stats_.offers_live = incremental_.live_offer_count();
  stats_.parties_live = incremental_.live_party_count();
  stats_.incremental = incremental_.stats();
}

}  // namespace xswap::serve
