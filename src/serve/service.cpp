#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "chain/ledger.hpp"
#include "persist/durable_ledger.hpp"
#include "swap/invariants.hpp"

namespace xswap::serve {

namespace {

// Parse "run-NNN" → NNN; nullopt for anything that is not a run epoch.
std::optional<std::size_t> run_number(const std::string& name) {
  constexpr const char kPrefix[] = "run-";
  constexpr std::size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (std::size_t i = kPrefixLen; i < name.size(); ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

// Sorted subdirectories of `dir` (empty when `dir` does not exist).
// Sorting keeps the recovery replay order deterministic across
// filesystems, whose directory iteration order is unspecified.
std::vector<std::filesystem::path> sorted_subdirs(
    const std::filesystem::path& dir) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_directory()) out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

ClearingService::ClearingService(ServiceOptions options)
    : options_(std::move(options)),
      stream_(options_.queue_cap),  // throws on queue_cap == 0
      incremental_(IncrementalOptions{options_.max_dirty, options_.fvs}) {
  if (options_.jobs == 0) {
    throw std::invalid_argument("ClearingService: jobs must be >= 1");
  }
  if (options_.pool) {
    executor_ = options_.pool;
    concurrent_ = true;  // unknown width — assume overlap, lock chains
  } else if (options_.jobs > 1) {
    executor_ =
        swap::ExecutorRegistry::instance().shared_pool_at_least(options_.jobs);
    concurrent_ = true;
  }
  if (!options_.durable_dir.empty()) recover_existing_runs();
}

void ClearingService::recover_existing_runs() {
  namespace fs = std::filesystem;
  fs::create_directories(options_.durable_dir);

  // Claim the next epoch number before replaying: prior runs are
  // read-only from here on, and this run's journals land under a fresh
  // run-NNN so a later recovery never mixes epochs.
  std::size_t next = 0;
  for (const fs::path& run : sorted_subdirs(options_.durable_dir)) {
    const std::optional<std::size_t> n = run_number(run.filename().string());
    if (n.has_value()) next = std::max(next, *n + 1);
  }

  // Replay every journal of every prior epoch: run-NNN/<component>/<chain>.
  // RecoveryError (corrupt frame, failed replay, integrity mismatch)
  // propagates out of the constructor; a torn tail — the expected shape
  // after a mid-write kill — is tolerated by the segment reader and only
  // counted here.
  const util::MutexLock lock(stats_mutex_);
  for (const fs::path& run : sorted_subdirs(options_.durable_dir)) {
    if (!run_number(run.filename().string()).has_value()) continue;
    for (const fs::path& component : sorted_subdirs(run)) {
      for (const fs::path& chain_dir : sorted_subdirs(component)) {
        if (persist::segment_files(chain_dir.string()).empty()) continue;
        const persist::RecoveredLedger recovered = persist::recover_ledger(
            chain_dir.string(), chain_dir.filename().string());
        ++stats_.recovered_ledgers;
        stats_.recovered_blocks += recovered.report.blocks;
        if (recovered.report.torn_tail) ++stats_.recovery_torn_tails;
      }
    }
  }

  char epoch[32];
  std::snprintf(epoch, sizeof(epoch), "run-%03zu", next);
  run_dir_ = options_.durable_dir + "/" + epoch;
  fs::create_directories(run_dir_);
}

ClearingService::~ClearingService() {
  stream_.close();
  if (thread_.joinable()) thread_.join();
}

void ClearingService::start() {
  if (started_) throw std::logic_error("ClearingService: already started");
  started_ = true;
  thread_ = std::thread([this] { service_main(); });
}

SubmitResult ClearingService::submit(OfferEvent event) {
  return stream_.try_push(std::move(event));
}

SubmitResult ClearingService::submit_wait(OfferEvent event) {
  return stream_.push_wait(std::move(event));
}

void ClearingService::close() { stream_.close(); }

ServiceStats ClearingService::wait() {
  stream_.close();
  if (thread_.joinable()) thread_.join();
  if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  return stats();
}

ServiceStats ClearingService::stats() const {
  ServiceStats snapshot;
  {
    const util::MutexLock lock(stats_mutex_);
    snapshot = stats_;
  }
  snapshot.events_admitted = stream_.admitted();
  snapshot.events_rejected_full = stream_.rejected_full();
  snapshot.queue_depth = stream_.depth();
  snapshot.queue_high_water = stream_.high_water();
  return snapshot;
}

void ClearingService::service_main() {
  try {
    std::vector<OfferEvent> batch;
    while (stream_.wait_drain(&batch)) {
      for (OfferEvent& event : batch) apply(std::move(event));
      batch.clear();
    }
    // Graceful drain: the stream is closed and empty — one final
    // clearing point executes whatever the live book decomposes into,
    // so no admitted offer is silently dropped.
    clear_components();
    final_unmatched_ = incremental_.live_offers();
  } catch (...) {
    error_ = std::current_exception();
    stream_.close();  // unblock producers parked in push_wait
  }
}

void ClearingService::apply(OfferEvent event) {
  switch (event.kind) {
    case EventKind::kAdd:
      try {
        incremental_.add(std::move(event.offer));
      } catch (const std::invalid_argument&) {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.events_rejected_invalid;
        return;
      }
      break;
    case EventKind::kExpire:
      try {
        incremental_.expire(event.offer);
      } catch (const std::invalid_argument&) {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.events_rejected_invalid;
        return;
      }
      break;
    case EventKind::kClear:
      clear_components();
      return;  // clear_components updated the counters
  }
  const util::MutexLock lock(stats_mutex_);
  if (event.kind == EventKind::kAdd) {
    ++stats_.adds_applied;
  } else {
    ++stats_.expires_applied;
  }
  stats_.offers_live = incremental_.live_offer_count();
  stats_.parties_live = incremental_.live_party_count();
  stats_.incremental = incremental_.stats();
}

void ClearingService::clear_components() {
  swap::Decomposition decomp = incremental_.consume();
  const std::size_t count = decomp.swaps.size();

  std::size_t point = 0;
  {
    const util::MutexLock lock(stats_mutex_);
    point = stats_.clears;
  }

  if (count > 0) {
    // Engines carry decomposition-order seeds (see the determinism
    // contract in the header): the schedule below may permute lanes,
    // never seeds.
    std::vector<std::unique_ptr<swap::SwapEngine>> engines;
    engines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      swap::EngineOptions per_swap = options_.engine;
      per_swap.seed = options_.engine.seed + dispatched_ + i;
      if (!run_dir_.empty()) {
        // One journal tree per component, keyed by clearing point and
        // decomposition index — both deterministic, so a recovery sweep
        // can line replayed chains up against the original reports.
        per_swap.durable_dir = run_dir_ + "/clear" + std::to_string(point) +
                               "-c" + std::to_string(i);
        per_swap.durability = options_.durability;
      }
      if (concurrent_) {
        // Components of one clearing point may model the same chain
        // name; once they can overlap, same-name seals must serialize
        // through the striped locks, exactly as fleet/batch --jobs do.
        per_swap.chain_locks = &chain::ChainLockRegistry::global();
      }
      engines.push_back(
          std::make_unique<swap::SwapEngine>(decomp.swaps[i], per_swap));
    }

    // Largest-component-first dispatch: task t runs component order[t],
    // so the most expensive engines (party count, then arc count — the
    // FVS-size proxies that dominate run time) start first and small
    // components backfill around the straggler.
    std::vector<std::size_t> order(count);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const swap::ClearedSwap& sa = decomp.swaps[a];
                       const swap::ClearedSwap& sb = decomp.swaps[b];
                       if (sa.party_names.size() != sb.party_names.size()) {
                         return sa.party_names.size() > sb.party_names.size();
                       }
                       if (sa.arcs.size() != sb.arcs.size()) {
                         return sa.arcs.size() > sb.arcs.size();
                       }
                       return a < b;
                     });

    std::vector<swap::SwapReport> reports(count);
    std::vector<double> latencies(count, 0.0);
    swap::SerialExecutor serial;
    swap::Executor& executor = executor_ ? *executor_ : serial;
    executor.run(count, [&](std::size_t slot) {
      const std::size_t i = order[slot];
      const auto started = std::chrono::steady_clock::now();
      reports[i] = engines[i]->run();
      latencies[i] = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - started)
                         .count();
    });

    // Emit in decomposition order, serialized on the service thread, so
    // downstream consumers (the CLI's JSON lines, tests) see a
    // deterministic sequence regardless of the lane schedule.
    for (std::size_t i = 0; i < count; ++i) {
      ComponentReport component;
      component.clear_batch = point;
      component.index = i;
      component.seed = options_.engine.seed + dispatched_ + i;
      component.audit_ok =
          swap::check_all(*engines[i], reports[i]).ok();
      component.latency_ms = latencies[i];
      component.report = swap::aggregate_batch({reports[i]}, {}, 0,
                                               latencies[i]);
      component.cleared = std::move(decomp.swaps[i]);
      {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.components_cleared;
        if (component.report.swaps_fully_triggered > 0) {
          ++stats_.swaps_fully_triggered;
        }
        if (!component.audit_ok) ++stats_.violations;
        stats_.component_latency_ms.push_back(latencies[i]);
      }
      if (options_.on_report) options_.on_report(component);
    }
    dispatched_ += count;
  }

  const util::MutexLock lock(stats_mutex_);
  ++stats_.clears;
  stats_.offers_live = incremental_.live_offer_count();
  stats_.parties_live = incremental_.live_party_count();
  stats_.incremental = incremental_.stats();
}

}  // namespace xswap::serve
