#include "serve/offer_stream.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace xswap::serve {

const char* to_string(SubmitResult result) {
  switch (result) {
    case SubmitResult::kAdmitted:
      return "admitted";
    case SubmitResult::kRejectedFull:
      return "rejected-full";
    case SubmitResult::kRejectedClosed:
      return "rejected-closed";
  }
  return "?";
}

OfferStream::OfferStream(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("OfferStream: capacity must be >= 1");
  }
}

SubmitResult OfferStream::try_push(OfferEvent event) {
  {
    const util::MutexLock lock(mutex_);
    if (closed_) return SubmitResult::kRejectedClosed;
    if (queue_.size() >= capacity_) {
      ++rejected_full_;
      return SubmitResult::kRejectedFull;
    }
    queue_.push_back(std::move(event));
    ++admitted_;
    high_water_ = std::max(high_water_, queue_.size());
  }
  not_empty_.notify_one();
  return SubmitResult::kAdmitted;
}

SubmitResult OfferStream::push_wait(OfferEvent event) {
  {
    util::MutexLock lock(mutex_);
    while (!closed_ && queue_.size() >= capacity_) not_full_.wait(mutex_);
    if (closed_) return SubmitResult::kRejectedClosed;
    queue_.push_back(std::move(event));
    ++admitted_;
    high_water_ = std::max(high_water_, queue_.size());
  }
  not_empty_.notify_one();
  return SubmitResult::kAdmitted;
}

bool OfferStream::wait_drain(std::vector<OfferEvent>* out) {
  bool freed = false;
  bool live = true;
  {
    util::MutexLock lock(mutex_);
    while (!closed_ && queue_.empty()) not_empty_.wait(mutex_);
    freed = queue_.size() >= capacity_;  // producers may be parked
    live = !queue_.empty() || !closed_;
    for (OfferEvent& event : queue_) out->push_back(std::move(event));
    queue_.clear();
  }
  // The whole queue just emptied: every parked producer can proceed.
  if (freed) not_full_.notify_all();
  return live;
}

void OfferStream::close() {
  {
    const util::MutexLock lock(mutex_);
    if (closed_) return;
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool OfferStream::closed() const {
  const util::MutexLock lock(mutex_);
  return closed_;
}

std::size_t OfferStream::depth() const {
  const util::MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t OfferStream::high_water() const {
  const util::MutexLock lock(mutex_);
  return high_water_;
}

std::size_t OfferStream::admitted() const {
  const util::MutexLock lock(mutex_);
  return admitted_;
}

std::size_t OfferStream::rejected_full() const {
  const util::MutexLock lock(mutex_);
  return rejected_full_;
}

}  // namespace xswap::serve
