#include "serve/events.hpp"

#include <cerrno>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace xswap::serve {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::invalid_argument("serve event: " + what);
}

}  // namespace

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kAdd:
      return "add";
    case EventKind::kExpire:
      return "expire";
    case EventKind::kClear:
      return "clear";
  }
  return "?";
}

OfferEvent add_event(swap::Offer offer) {
  return OfferEvent{EventKind::kAdd, std::move(offer)};
}

OfferEvent expire_event(swap::Offer offer) {
  return OfferEvent{EventKind::kExpire, std::move(offer)};
}

OfferEvent clear_event() { return OfferEvent{EventKind::kClear, {}}; }

chain::Asset parse_asset_spec(const std::string& spec) {
  const auto c1 = spec.find(':');
  const auto c2 = spec.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    malformed("asset must be coin:SYM:AMOUNT or unique:SYM:ID, got '" + spec +
              "'");
  }
  const std::string kind = spec.substr(0, c1);
  const std::string symbol = spec.substr(c1 + 1, c2 - c1 - 1);
  const std::string value = spec.substr(c2 + 1);
  if (kind == "coin") {
    errno = 0;
    const unsigned long long amount =
        value.empty() ||
                value.find_first_not_of("0123456789") != std::string::npos
            ? 0
            : std::strtoull(value.c_str(), nullptr, 10);
    if (amount == 0 || errno == ERANGE) {
      malformed("coin amount must be a positive 64-bit integer, got '" + value +
                "'");
    }
    return chain::Asset::coins(symbol, amount);
  }
  if (kind == "unique") {
    if (value.empty()) malformed("unique asset needs a non-empty id");
    return chain::Asset::unique(symbol, value);
  }
  malformed("unknown asset kind '" + kind + "'");
}

std::string asset_spec(const chain::Asset& asset) {
  if (asset.fungible) {
    return "coin:" + asset.symbol + ':' + std::to_string(asset.amount);
  }
  return "unique:" + asset.symbol + ':' + asset.unique_id;
}

std::optional<OfferEvent> parse_event_line(const std::string& line) {
  std::string body = line;
  const auto hash = body.find('#');
  if (hash != std::string::npos) body.resize(hash);

  std::istringstream fields(body);
  std::string first;
  if (!(fields >> first)) return std::nullopt;  // blank/comment line

  EventKind kind = EventKind::kAdd;
  std::string from;
  if (first == "clear") {
    std::string extra;
    if (fields >> extra) malformed("clear takes no arguments, got '" + extra + "'");
    return clear_event();
  }
  if (first == "add" || first == "expire") {
    kind = first == "add" ? EventKind::kAdd : EventKind::kExpire;
    if (!(fields >> from)) malformed(first + " needs FROM TO CHAIN ASSET");
  } else {
    from = first;  // verbless batch-format line: an add
  }

  std::string to, chain_name, spec, extra;
  if (!(fields >> to >> chain_name >> spec)) {
    malformed("need FROM TO CHAIN ASSET, got '" + body + "'");
  }
  if (fields >> extra) malformed("trailing token '" + extra + "'");
  return OfferEvent{kind, swap::Offer{std::move(from), std::move(to),
                                      std::move(chain_name),
                                      parse_asset_spec(spec)}};
}

std::string event_line(const OfferEvent& event) {
  if (event.kind == EventKind::kClear) return "clear";
  return std::string(to_string(event.kind)) + ' ' + event.offer.from + ' ' +
         event.offer.to + ' ' + event.offer.chain + ' ' +
         asset_spec(event.offer.asset);
}

}  // namespace xswap::serve
