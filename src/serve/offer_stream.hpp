// Bounded, thread-safe ingest queue of the clearing service.
//
// Producers (network handlers, the CLI's stdin reader, tests) push
// OfferEvents; the single service thread drains them in FIFO order. The
// queue is BOUNDED — that bound is the service's backpressure contract:
//
//   * try_push rejects deterministically when the queue holds exactly
//     `capacity` events (kRejectedFull), so an overloaded service sheds
//     load instead of growing without limit;
//   * push_wait blocks the producer until space frees up — the
//     cooperative flavour, used by the CLI so a fast stdin feed throttles
//     to clearing speed rather than dropping offers;
//   * close() ends the stream: producers are refused (kRejectedClosed)
//     while the consumer drains what was already admitted — an admitted
//     event is never lost (the drain-on-shutdown guarantee, pinned by
//     tests/serve_service_test.cpp).
//
// Lock discipline follows the PR 7 convention: one annotated util::Mutex
// guards everything, both condvars are _any waiting on the Mutex itself.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <vector>

#include "serve/events.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace xswap::serve {

/// What happened to a submitted event.
enum class SubmitResult {
  kAdmitted,        // queued; the service will apply it
  kRejectedFull,    // queue at capacity (backpressure) — not queued
  kRejectedClosed,  // stream closed — not queued
};

const char* to_string(SubmitResult result);

class OfferStream {
 public:
  /// Throws std::invalid_argument when `capacity` is 0 (a queue that can
  /// admit nothing deadlocks every producer).
  explicit OfferStream(std::size_t capacity);

  OfferStream(const OfferStream&) = delete;
  OfferStream& operator=(const OfferStream&) = delete;

  /// Non-blocking submit: kRejectedFull at capacity, kRejectedClosed
  /// after close(). Never waits.
  SubmitResult try_push(OfferEvent event) XSWAP_EXCLUDES(mutex_);

  /// Blocking submit: waits while the queue is full, returns kAdmitted
  /// once queued or kRejectedClosed if the stream closes first (events
  /// already admitted stay queued).
  SubmitResult push_wait(OfferEvent event) XSWAP_EXCLUDES(mutex_);

  /// Consumer side: block until at least one event is queued or the
  /// stream is closed; move everything queued into *out (appended).
  /// Returns false only when the stream is closed AND fully drained —
  /// the consumer's termination signal.
  bool wait_drain(std::vector<OfferEvent>* out) XSWAP_EXCLUDES(mutex_);

  /// End the stream. Idempotent. Wakes blocked producers (they return
  /// kRejectedClosed) and the consumer (it drains the remainder).
  void close() XSWAP_EXCLUDES(mutex_);

  std::size_t capacity() const { return capacity_; }
  bool closed() const XSWAP_EXCLUDES(mutex_);
  /// Events currently queued (admitted, not yet drained).
  std::size_t depth() const XSWAP_EXCLUDES(mutex_);
  /// Largest depth ever observed — how close the stream came to shedding.
  std::size_t high_water() const XSWAP_EXCLUDES(mutex_);
  std::size_t admitted() const XSWAP_EXCLUDES(mutex_);
  std::size_t rejected_full() const XSWAP_EXCLUDES(mutex_);

 private:
  const std::size_t capacity_;

  mutable util::Mutex mutex_;
  std::condition_variable_any not_full_;   // producers park here
  std::condition_variable_any not_empty_;  // the consumer parks here
  std::deque<OfferEvent> queue_ XSWAP_GUARDED_BY(mutex_);
  bool closed_ XSWAP_GUARDED_BY(mutex_) = false;
  std::size_t high_water_ XSWAP_GUARDED_BY(mutex_) = 0;
  std::size_t admitted_ XSWAP_GUARDED_BY(mutex_) = 0;
  std::size_t rejected_full_ XSWAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace xswap::serve
