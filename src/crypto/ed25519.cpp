#include "crypto/ed25519.hpp"

#include <stdexcept>

#include "crypto/ed25519_field.hpp"
#include "crypto/ed25519_scalar.hpp"
#include "crypto/sha512.hpp"

namespace xswap::crypto {

namespace {

// Extended twisted-Edwards coordinates (X : Y : Z : T), x = X/Z, y = Y/Z,
// T = XY/Z. Formulas are the a=-1 "hwcd" set.
struct Point {
  Fe25519 x, y, z, t;
};

Point identity() {
  return Point{Fe25519::zero(), Fe25519::one(), Fe25519::one(), Fe25519::zero()};
}

Point add(const Point& p, const Point& q) {
  const Fe25519 a = (p.y - p.x) * (q.y - q.x);
  const Fe25519 b = (p.y + p.x) * (q.y + q.x);
  const Fe25519 c = p.t * Fe25519::two_d() * q.t;
  const Fe25519 d = (p.z * q.z) + (p.z * q.z);
  const Fe25519 e = b - a;
  const Fe25519 f = d - c;
  const Fe25519 g = d + c;
  const Fe25519 h = b + a;
  return Point{e * f, g * h, f * g, e * h};
}

Point dbl(const Point& p) {
  const Fe25519 a = p.x.square();
  const Fe25519 b = p.y.square();
  const Fe25519 zz = p.z.square();
  const Fe25519 c = zz + zz;
  const Fe25519 h = a + b;
  const Fe25519 e = h - (p.x + p.y).square();
  const Fe25519 g = a - b;
  const Fe25519 f = c + g;
  return Point{e * f, g * h, f * g, e * h};
}

/// Nibble `i` (little-endian, 0..63) of a 256-bit scalar.
unsigned scalar_nibble(const Scalar25519& k, std::size_t i) {
  return static_cast<unsigned>(k.limb(i / 16) >> (4 * (i % 16))) & 0xf;
}

/// Generic 4-bit-window scalar multiplication: one table of the first
/// 15 multiples of `p`, then four doublings plus at most one addition
/// per nibble (~250 doublings + ~75 additions, versus ~256 + ~128 for
/// bit-at-a-time double-and-add). Used for the variable-base half of
/// verification; fixed-base multiplication has its own comb below.
Point scalar_mul(const Scalar25519& k, const Point& p) {
  Point multiples[16];
  multiples[0] = identity();
  multiples[1] = p;
  for (std::size_t j = 2; j < 16; ++j) multiples[j] = add(multiples[j - 1], p);
  Point acc = identity();
  bool any = false;
  for (int i = 63; i >= 0; --i) {
    if (any) {
      acc = dbl(acc);
      acc = dbl(acc);
      acc = dbl(acc);
      acc = dbl(acc);
    }
    const unsigned d = scalar_nibble(k, static_cast<std::size_t>(i));
    if (d != 0) {
      acc = any ? add(acc, multiples[d]) : multiples[d];
      any = true;
    }
  }
  return any ? acc : identity();
}

std::array<std::uint8_t, 32> compress(const Point& p) {
  const Fe25519 zinv = p.z.invert();
  const Fe25519 x = p.x * zinv;
  const Fe25519 y = p.y * zinv;
  std::array<std::uint8_t, 32> out = y.to_bytes();
  if (x.is_negative()) out[31] |= 0x80;
  return out;
}

bool decompress(util::BytesView b32, Point* out) {
  if (b32.size() != 32) return false;
  const bool x_negative = (b32[31] & 0x80) != 0;
  const Fe25519 y = Fe25519::from_bytes(b32);
  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const Fe25519 y2 = y.square();
  const Fe25519 u = y2 - Fe25519::one();
  const Fe25519 v = (Fe25519::d() * y2) + Fe25519::one();
  Fe25519 x;
  if (!fe25519_sqrt_ratio(u, v, &x)) return false;
  if (x.is_zero() && x_negative) return false;  // -0 is non-canonical
  if (x.is_negative() != x_negative) x = x.negate();
  *out = Point{x, y, Fe25519::one(), x * y};
  return true;
}

const Point& base_point() {
  // B has y = 4/5 and the "even" x (RFC 8032 §5.1).
  static const Point kB = [] {
    const Fe25519 y = Fe25519::from_u64(4) * Fe25519::from_u64(5).invert();
    std::array<std::uint8_t, 32> enc = y.to_bytes();  // sign bit 0
    Point p;
    if (!decompress(util::BytesView(enc.data(), enc.size()), &p)) {
      throw std::logic_error("ed25519: base point decompression failed");
    }
    return p;
  }();
  return kB;
}

/// Fixed-base comb: pt[i][j] = j · 16^i · B for nibble position i and
/// digit j. Every multiplication by B (key generation, signing, the S·B
/// half of verification) then costs at most 63 additions and no
/// doublings. Built once per process (~1k additions), thread-safe via
/// the magic-static; ~128 KiB resident.
struct BaseComb {
  Point pt[64][16];
};

const BaseComb& base_comb() {
  static const BaseComb kComb = [] {
    BaseComb comb;
    Point power = base_point();  // 16^i · B as i advances
    for (std::size_t i = 0; i < 64; ++i) {
      comb.pt[i][0] = identity();
      for (std::size_t j = 1; j < 16; ++j) {
        comb.pt[i][j] = add(comb.pt[i][j - 1], power);
      }
      if (i + 1 < 64) power = add(comb.pt[i][15], power);
    }
    return comb;
  }();
  return kComb;
}

/// k · B via the comb: one table lookup and addition per nonzero nibble.
Point scalar_mul_base(const Scalar25519& k) {
  const BaseComb& comb = base_comb();
  Point acc = identity();
  bool any = false;
  for (std::size_t i = 0; i < 64; ++i) {
    const unsigned d = scalar_nibble(k, i);
    if (d != 0) {
      acc = any ? add(acc, comb.pt[i][d]) : comb.pt[i][d];
      any = true;
    }
  }
  return acc;
}

std::array<std::uint8_t, 32> clamp(const std::uint8_t h[32]) {
  std::array<std::uint8_t, 32> a;
  std::copy(h, h + 32, a.begin());
  a[0] &= 0xf8;
  a[31] &= 0x7f;
  a[31] |= 0x40;
  return a;
}

Scalar25519 hash_to_scalar(util::BytesView r_enc, util::BytesView a_enc,
                           util::BytesView message) {
  Sha512 h;
  h.update(r_enc);
  h.update(a_enc);
  h.update(message);
  const Digest512 d = h.finalize();
  return Scalar25519::from_bytes_wide(util::BytesView(d.data(), d.size()));
}

bool points_equal(const Point& p, const Point& q) {
  // X1/Z1 == X2/Z2  <=>  X1*Z2 == X2*Z1, likewise for Y.
  return (p.x * q.z == q.x * p.z) && (p.y * q.z == q.y * p.z);
}

}  // namespace

std::optional<Signature> Signature::from_bytes(util::BytesView b) {
  if (b.size() != 64) return std::nullopt;
  Signature s;
  std::copy(b.begin(), b.end(), s.bytes.begin());
  return s;
}

KeyPair KeyPair::from_seed(util::BytesView seed32) {
  if (seed32.size() != 32) {
    throw std::invalid_argument("KeyPair::from_seed: need 32 bytes");
  }
  const Digest512 h = sha512(seed32);
  KeyPair kp;
  kp.scalar_ = clamp(h.data());
  std::copy(h.begin() + 32, h.end(), kp.prefix_.begin());

  const Scalar25519 a =
      Scalar25519::from_bytes(util::BytesView(kp.scalar_.data(), 32));
  kp.public_key_.bytes = compress(scalar_mul_base(a));
  return kp;
}

Signature KeyPair::sign(util::BytesView message) const {
  // r = SHA512(prefix || message) mod L
  Sha512 hr;
  hr.update(util::BytesView(prefix_.data(), prefix_.size()));
  hr.update(message);
  const Digest512 rd = hr.finalize();
  const Scalar25519 r =
      Scalar25519::from_bytes_wide(util::BytesView(rd.data(), rd.size()));

  const std::array<std::uint8_t, 32> r_enc = compress(scalar_mul_base(r));

  const Scalar25519 k = hash_to_scalar(
      util::BytesView(r_enc.data(), r_enc.size()),
      util::BytesView(public_key_.bytes.data(), public_key_.bytes.size()),
      message);
  const Scalar25519 a =
      Scalar25519::from_bytes(util::BytesView(scalar_.data(), scalar_.size()));
  const Scalar25519 s = r + (k * a);

  Signature sig;
  std::copy(r_enc.begin(), r_enc.end(), sig.bytes.begin());
  const auto s_enc = s.to_bytes();
  std::copy(s_enc.begin(), s_enc.end(), sig.bytes.begin() + 32);
  return sig;
}

bool verify(const PublicKey& pk, util::BytesView message,
            const Signature& signature) {
  const util::BytesView r_enc(signature.bytes.data(), 32);
  const util::BytesView s_enc(signature.bytes.data() + 32, 32);
  if (!Scalar25519::is_canonical(s_enc)) return false;

  Point r_point, a_point;
  if (!decompress(r_enc, &r_point)) return false;
  if (!decompress(util::BytesView(pk.bytes.data(), pk.bytes.size()), &a_point)) {
    return false;
  }

  const Scalar25519 s = Scalar25519::from_bytes(s_enc);
  const Scalar25519 k = hash_to_scalar(
      r_enc, util::BytesView(pk.bytes.data(), pk.bytes.size()), message);

  // Check S·B == R + k·A (cofactorless verification).
  const Point lhs = scalar_mul_base(s);
  const Point rhs = add(r_point, scalar_mul(k, a_point));
  return points_equal(lhs, rhs);
}

}  // namespace xswap::crypto
