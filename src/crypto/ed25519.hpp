// Ed25519 signatures (RFC 8032), implemented from scratch on top of
// Fe25519 / Scalar25519.
//
// This is the paper's `sig(x, v)` primitive: hashkeys carry a nested chain
// of signatures, one per party along the path back to the leader who
// generated the secret, and swap contracts verify the entire chain before
// unlocking a hashlock. Validated against the RFC 8032 test vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/bytes.hpp"

namespace xswap::crypto {

/// 32-byte compressed-point public key.
struct PublicKey {
  std::array<std::uint8_t, 32> bytes{};

  bool operator==(const PublicKey&) const = default;
};

/// 64-byte signature (R || S).
struct Signature {
  std::array<std::uint8_t, 64> bytes{};

  bool operator==(const Signature&) const = default;

  util::Bytes as_bytes() const { return util::Bytes(bytes.begin(), bytes.end()); }
  static std::optional<Signature> from_bytes(util::BytesView b);
};

/// Key pair expanded from a 32-byte seed per RFC 8032 §5.1.5.
class KeyPair {
 public:
  /// Deterministic key generation from a 32-byte seed.
  static KeyPair from_seed(util::BytesView seed32);

  const PublicKey& public_key() const { return public_key_; }

  /// Sign `message` (RFC 8032 §5.1.6).
  Signature sign(util::BytesView message) const;

 private:
  KeyPair() = default;

  std::array<std::uint8_t, 32> scalar_;  // clamped secret scalar a
  std::array<std::uint8_t, 32> prefix_;  // nonce-derivation prefix
  PublicKey public_key_;
};

/// Verify `signature` on `message` under `pk` (RFC 8032 §5.1.7, with
/// canonical-S rejection). Returns false on any malformed input.
bool verify(const PublicKey& pk, util::BytesView message,
            const Signature& signature);

}  // namespace xswap::crypto
