#include "crypto/ed25519_scalar.hpp"

#include <stdexcept>

namespace xswap::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// L, little-endian limbs.
constexpr std::array<u64, 4> kL = {
    0x5812631A5CF5D3EDULL, 0x14DEF9DEA2F79CD6ULL,
    0x0000000000000000ULL, 0x1000000000000000ULL};

bool geq(const std::array<u64, 4>& a, const std::array<u64, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    const std::size_t k = static_cast<std::size_t>(i);
    if (a[k] != b[k]) return a[k] > b[k];
  }
  return true;
}

void sub_in_place(std::array<u64, 4>& a, const std::array<u64, 4>& b) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 diff = static_cast<u128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;
  }
}

// Reduce an n-limb little-endian value mod L via binary long division.
std::array<u64, 4> mod_l(const std::vector<u64>& wide) {
  std::array<u64, 4> r{0, 0, 0, 0};
  for (int limb = static_cast<int>(wide.size()) - 1; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      // r = (r << 1) | next bit. r < L < 2^253 so the shift cannot overflow.
      u64 carry = 0;
      for (std::size_t i = 0; i < 4; ++i) {
        const u64 next_carry = r[i] >> 63;
        r[i] = (r[i] << 1) | carry;
        carry = next_carry;
      }
      r[0] |= (wide[static_cast<std::size_t>(limb)] >> bit) & 1;
      if (geq(r, kL)) sub_in_place(r, kL);
    }
  }
  return r;
}

std::vector<u64> limbs_from_le_bytes(util::BytesView bytes) {
  std::vector<u64> limbs((bytes.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    limbs[i / 8] |= static_cast<u64>(bytes[i]) << ((i % 8) * 8);
  }
  return limbs;
}

}  // namespace

Scalar25519 Scalar25519::from_bytes(util::BytesView b32) {
  if (b32.size() != 32) throw std::invalid_argument("Scalar25519: need 32 bytes");
  Scalar25519 out;
  out.limb_ = mod_l(limbs_from_le_bytes(b32));
  return out;
}

Scalar25519 Scalar25519::from_bytes_wide(util::BytesView b64) {
  if (b64.size() != 64) throw std::invalid_argument("Scalar25519: need 64 bytes");
  Scalar25519 out;
  out.limb_ = mod_l(limbs_from_le_bytes(b64));
  return out;
}

bool Scalar25519::is_canonical(util::BytesView b32) {
  if (b32.size() != 32) return false;
  const auto limbs = limbs_from_le_bytes(b32);
  std::array<u64, 4> v{limbs[0], limbs[1], limbs[2], limbs[3]};
  return !geq(v, kL);
}

std::array<std::uint8_t, 32> Scalar25519::to_bytes() const {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(limb_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

Scalar25519 Scalar25519::operator+(const Scalar25519& rhs) const {
  Scalar25519 out;
  u64 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 acc = static_cast<u128>(limb_[i]) + rhs.limb_[i] + carry;
    out.limb_[i] = static_cast<u64>(acc);
    carry = static_cast<u64>(acc >> 64);
  }
  // Both operands < L < 2^253, so no 256-bit overflow; one subtraction
  // restores the invariant.
  if (geq(out.limb_, kL)) sub_in_place(out.limb_, kL);
  return out;
}

Scalar25519 Scalar25519::operator*(const Scalar25519& rhs) const {
  std::vector<u64> wide(8, 0);
  for (std::size_t i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 acc = static_cast<u128>(limb_[i]) * rhs.limb_[j] +
                       wide[i + j] + carry;
      wide[i + j] = static_cast<u64>(acc);
      carry = acc >> 64;
    }
    wide[i + 4] = static_cast<u64>(carry);
  }
  Scalar25519 out;
  out.limb_ = mod_l(wide);
  return out;
}

bool Scalar25519::is_zero() const {
  return limb_[0] == 0 && limb_[1] == 0 && limb_[2] == 0 && limb_[3] == 0;
}

bool Scalar25519::operator==(const Scalar25519& rhs) const {
  return limb_ == rhs.limb_;
}

}  // namespace xswap::crypto
