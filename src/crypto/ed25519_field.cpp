#include "crypto/ed25519_field.hpp"

#include <stdexcept>

namespace xswap::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// p = 2^255 - 19, little-endian limbs.
constexpr std::array<u64, 4> kP = {
    0xFFFFFFFFFFFFFFEDULL, 0xFFFFFFFFFFFFFFFFULL,
    0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL};

bool geq(const std::array<u64, 4>& a, const std::array<u64, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[static_cast<std::size_t>(i)] != b[static_cast<std::size_t>(i)]) {
      return a[static_cast<std::size_t>(i)] > b[static_cast<std::size_t>(i)];
    }
  }
  return true;  // equal
}

// a -= b, assuming a >= b.
void sub_in_place(std::array<u64, 4>& a, const std::array<u64, 4>& b) {
  u64 borrow = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 diff = static_cast<u128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<u64>(diff);
    borrow = (diff >> 64) ? 1 : 0;  // two's-complement high bits set on underflow
  }
}

void reduce_once(std::array<u64, 4>& a) {
  if (geq(a, kP)) sub_in_place(a, kP);
}

// Reduce an 8-limb product to 4 reduced limbs using 2^256 ≡ 38 (mod p).
std::array<u64, 4> reduce_wide(const std::array<u64, 8>& t) {
  std::array<u64, 4> r;
  // First fold: r = lo + 38 * hi  (can overflow into a small carry limb).
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 acc = static_cast<u128>(t[i]) +
                     static_cast<u128>(t[i + 4]) * 38 + carry;
    r[i] = static_cast<u64>(acc);
    carry = acc >> 64;
  }
  // Second fold: the carry limb c contributes c * 2^256 ≡ c * 38.
  u64 c = static_cast<u64>(carry);
  while (c != 0) {
    u128 acc = static_cast<u128>(r[0]) + static_cast<u128>(c) * 38;
    r[0] = static_cast<u64>(acc);
    u128 k = acc >> 64;
    for (std::size_t i = 1; i < 4 && k != 0; ++i) {
      acc = static_cast<u128>(r[i]) + k;
      r[i] = static_cast<u64>(acc);
      k = acc >> 64;
    }
    c = static_cast<u64>(k);
  }
  reduce_once(r);
  reduce_once(r);
  return r;
}

std::array<u64, 8> mul_wide(const std::array<u64, 4>& a,
                            const std::array<u64, 4>& b) {
  std::array<u64, 8> t{};
  for (std::size_t i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (std::size_t j = 0; j < 4; ++j) {
      const u128 acc = static_cast<u128>(a[i]) * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<u64>(acc);
      carry = acc >> 64;
    }
    t[i + 4] = static_cast<u64>(carry);
  }
  return t;
}

}  // namespace

Fe25519 Fe25519::from_limbs(const std::array<std::uint64_t, 4>& limbs) {
  Fe25519 out;
  out.limb_ = limbs;
  reduce_once(out.limb_);
  return out;
}

Fe25519 Fe25519::from_u64(std::uint64_t v) {
  return from_limbs({v, 0, 0, 0});
}

Fe25519 Fe25519::from_bytes(util::BytesView b32) {
  if (b32.size() != 32) throw std::invalid_argument("Fe25519: need 32 bytes");
  std::array<u64, 4> limbs{};
  for (std::size_t i = 0; i < 32; ++i) {
    limbs[i / 8] |= static_cast<u64>(b32[i]) << ((i % 8) * 8);
  }
  limbs[3] &= 0x7FFFFFFFFFFFFFFFULL;  // ignore the sign bit
  Fe25519 out;
  out.limb_ = limbs;
  reduce_once(out.limb_);
  return out;
}

std::array<std::uint8_t, 32> Fe25519::to_bytes() const {
  std::array<std::uint8_t, 32> out{};
  for (std::size_t i = 0; i < 32; ++i) {
    out[i] = static_cast<std::uint8_t>(limb_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

Fe25519 Fe25519::operator+(const Fe25519& rhs) const {
  Fe25519 out;
  u128 carry = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const u128 acc = static_cast<u128>(limb_[i]) + rhs.limb_[i] + carry;
    out.limb_[i] = static_cast<u64>(acc);
    carry = acc >> 64;
  }
  // a, b < p < 2^255 so the sum fits in 256 bits; carry is impossible,
  // but the sum may still exceed p.
  reduce_once(out.limb_);
  return out;
}

Fe25519 Fe25519::operator-(const Fe25519& rhs) const {
  // a - b (mod p) computed as a + (p - b) to stay in unsigned arithmetic.
  std::array<u64, 4> pb = kP;
  sub_in_place(pb, rhs.limb_);
  Fe25519 tmp;
  tmp.limb_ = pb;
  return *this + tmp;
}

Fe25519 Fe25519::operator*(const Fe25519& rhs) const {
  Fe25519 out;
  out.limb_ = reduce_wide(mul_wide(limb_, rhs.limb_));
  return out;
}

Fe25519 Fe25519::square() const { return *this * *this; }

Fe25519 Fe25519::negate() const { return Fe25519::zero() - *this; }

Fe25519 Fe25519::pow(const std::array<std::uint64_t, 4>& exponent) const {
  Fe25519 result = Fe25519::one();
  Fe25519 base = *this;
  bool started = false;
  for (int limb = 3; limb >= 0; --limb) {
    for (int bit = 63; bit >= 0; --bit) {
      if (started) result = result.square();
      if ((exponent[static_cast<std::size_t>(limb)] >> bit) & 1) {
        result = started ? result * base : base;
        started = true;
      } else if (!started) {
        continue;
      }
    }
  }
  return started ? result : Fe25519::one();
}

Fe25519 Fe25519::invert() const {
  // p - 2 = 2^255 - 21.
  return pow({0xFFFFFFFFFFFFFFEBULL, 0xFFFFFFFFFFFFFFFFULL,
              0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL});
}

Fe25519 Fe25519::pow_p38() const {
  // (p + 3) / 8 = 2^252 - 2.
  return pow({0xFFFFFFFFFFFFFFFEULL, 0xFFFFFFFFFFFFFFFFULL,
              0xFFFFFFFFFFFFFFFFULL, 0x0FFFFFFFFFFFFFFFULL});
}

bool Fe25519::is_zero() const {
  return limb_[0] == 0 && limb_[1] == 0 && limb_[2] == 0 && limb_[3] == 0;
}

bool Fe25519::is_negative() const { return (limb_[0] & 1) != 0; }

bool Fe25519::operator==(const Fe25519& rhs) const { return limb_ == rhs.limb_; }

const Fe25519& Fe25519::d() {
  static const Fe25519 kD = [] {
    const Fe25519 num = Fe25519::from_u64(121665).negate();
    const Fe25519 den = Fe25519::from_u64(121666);
    return num * den.invert();
  }();
  return kD;
}

const Fe25519& Fe25519::two_d() {
  static const Fe25519 k2D = d() + d();
  return k2D;
}

const Fe25519& Fe25519::sqrt_minus_one() {
  static const Fe25519 kSqrtM1 = [] {
    // 2^((p-1)/4); (p-1)/4 = 2^253 - 5.
    return Fe25519::from_u64(2).pow({0xFFFFFFFFFFFFFFFBULL,
                                     0xFFFFFFFFFFFFFFFFULL,
                                     0xFFFFFFFFFFFFFFFFULL,
                                     0x1FFFFFFFFFFFFFFFULL});
  }();
  return kSqrtM1;
}

bool fe25519_sqrt_ratio(const Fe25519& u, const Fe25519& v, Fe25519* root) {
  // Candidate root r = u * v^3 * (u * v^7)^((p-5)/8); standard RFC 8032
  // decompression arithmetic, expressed via x^((p+3)/8) on u/v:
  // compute w = u * v.invert(), r = w^((p+3)/8); then fix up with sqrt(-1).
  const Fe25519 w = u * v.invert();
  Fe25519 r = w.pow_p38();
  if (r.square() == w) {
    *root = r;
    return true;
  }
  r = r * Fe25519::sqrt_minus_one();
  if (r.square() == w) {
    *root = r;
    return true;
  }
  return false;
}

}  // namespace xswap::crypto
