// Arithmetic in GF(2^255 - 19), the base field of Curve25519/edwards25519.
//
// Internal building block for the Ed25519 implementation (RFC 8032).
// Elements are held fully reduced in four 64-bit little-endian limbs;
// multiplication reduces via 2^256 ≡ 38 (mod p). Not constant-time: the
// repository uses signatures inside a deterministic simulator, not on a
// network-facing host (see DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace xswap::crypto {

/// An element of GF(2^255 - 19), always kept in [0, p).
class Fe25519 {
 public:
  /// Zero element.
  Fe25519() : limb_{0, 0, 0, 0} {}

  /// Element from little-endian limbs; caller must supply a reduced value.
  static Fe25519 from_limbs(const std::array<std::uint64_t, 4>& limbs);

  /// Small integer constant.
  static Fe25519 from_u64(std::uint64_t v);

  /// Decode 32 little-endian bytes; the top bit is ignored (RFC 8032
  /// field-element decoding), and the value is reduced mod p.
  static Fe25519 from_bytes(util::BytesView b32);

  /// Encode as 32 little-endian bytes (canonical, fully reduced).
  std::array<std::uint8_t, 32> to_bytes() const;

  static Fe25519 zero() { return Fe25519(); }
  static Fe25519 one() { return from_u64(1); }

  /// Curve constant d = -121665/121666 (computed once, cached).
  static const Fe25519& d();
  /// 2d, used by the extended-coordinates addition formula.
  static const Fe25519& two_d();
  /// sqrt(-1) = 2^((p-1)/4), used during point decompression.
  static const Fe25519& sqrt_minus_one();

  Fe25519 operator+(const Fe25519& rhs) const;
  Fe25519 operator-(const Fe25519& rhs) const;
  Fe25519 operator*(const Fe25519& rhs) const;
  Fe25519 square() const;
  Fe25519 negate() const;

  /// Multiplicative inverse via Fermat (x^(p-2)); inverse of 0 is 0.
  Fe25519 invert() const;

  /// x^(2^252 - 2) = candidate square root exponent (p+3)/8.
  Fe25519 pow_p38() const;

  bool is_zero() const;
  /// "Negative" in the RFC 8032 sense: least-significant bit of the
  /// canonical encoding.
  bool is_negative() const;

  bool operator==(const Fe25519& rhs) const;

 private:
  Fe25519 pow(const std::array<std::uint64_t, 4>& exponent) const;

  std::array<std::uint64_t, 4> limb_;
};

/// Square root of (u/v) used in decompression; returns false when no root
/// exists. On success `*root` holds a root with unspecified sign.
bool fe25519_sqrt_ratio(const Fe25519& u, const Fe25519& v, Fe25519* root);

}  // namespace xswap::crypto
