#include "crypto/hmac.hpp"

namespace xswap::crypto {

Digest256 hmac_sha256(util::BytesView key, util::BytesView message) {
  constexpr std::size_t kBlock = 64;

  // Keys longer than the block size are hashed first (RFC 2104 §2).
  util::Bytes k(kBlock, 0);
  if (key.size() > kBlock) {
    const Digest256 kd = sha256(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  util::Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Digest256 inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad);
  outer.update(util::BytesView(inner_digest.data(), inner_digest.size()));
  return outer.finalize();
}

}  // namespace xswap::crypto
