// Arithmetic modulo the edwards25519 group order
// L = 2^252 + 27742317777372353535851937790883648493 (RFC 8032).
//
// Internal building block for Ed25519 signing/verification. Reduction uses
// binary long division — simple and obviously correct; signature throughput
// is measured honestly by bench_crypto rather than optimized.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace xswap::crypto {

/// A scalar in [0, L), little-endian 64-bit limbs.
class Scalar25519 {
 public:
  Scalar25519() : limb_{0, 0, 0, 0} {}

  /// Reduce a 256-bit little-endian value mod L.
  static Scalar25519 from_bytes(util::BytesView b32);

  /// Reduce a 512-bit little-endian value mod L (hash outputs).
  static Scalar25519 from_bytes_wide(util::BytesView b64);

  /// True iff the 32 little-endian bytes encode a value already < L
  /// (RFC 8032 requires rejecting non-canonical S during verification).
  static bool is_canonical(util::BytesView b32);

  /// Canonical 32-byte little-endian encoding.
  std::array<std::uint8_t, 32> to_bytes() const;

  Scalar25519 operator+(const Scalar25519& rhs) const;
  Scalar25519 operator*(const Scalar25519& rhs) const;

  bool is_zero() const;
  bool operator==(const Scalar25519& rhs) const;

  /// Little-endian limb access, used by the scalar-multiplication ladder.
  std::uint64_t limb(std::size_t i) const { return limb_[i]; }

 private:
  std::array<std::uint64_t, 4> limb_;
};

}  // namespace xswap::crypto
