// SHA-512 (FIPS 180-4), required by Ed25519 (RFC 8032) for key expansion
// and the nonce/challenge hashes. Validated against NIST example vectors.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace xswap::crypto {

using Digest512 = std::array<std::uint8_t, 64>;

/// Incremental SHA-512 (same shape as Sha256).
class Sha512 {
 public:
  Sha512();

  void update(util::BytesView data);
  Digest512 finalize();

 private:
  void compress(const std::uint8_t block[128]);

  std::uint64_t state_[8];
  std::uint8_t buffer_[128];
  std::size_t buffered_;
  std::uint64_t total_bytes_;
  bool finalized_;
};

/// One-shot SHA-512 of `data`.
Digest512 sha512(util::BytesView data);

}  // namespace xswap::crypto
