// HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//
// Used by the simulator for deterministic per-party secret derivation
// (leaders derive swap secrets from a seed and a swap id) so that repeated
// runs of an experiment regenerate identical hashlocks.
#pragma once

#include "crypto/sha256.hpp"
#include "util/bytes.hpp"

namespace xswap::crypto {

/// HMAC-SHA256 of `message` under `key`.
Digest256 hmac_sha256(util::BytesView key, util::BytesView message);

}  // namespace xswap::crypto
