// SHA-256 (FIPS 180-4).
//
// This is the hash function `H(·)` of the paper: hashlocks are
// `h = H(s)` for a 32-byte secret `s`. Implemented from the spec and
// validated against the NIST example vectors in tests/crypto_sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.hpp"

namespace xswap::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256. Use when hashing data that arrives in pieces;
/// for one-shot hashing prefer the free function sha256().
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void update(util::BytesView data);

  /// Finish and return the 32-byte digest. The object must not be used
  /// after finalization (create a fresh one instead).
  Digest256 finalize();

 private:
  void compress(const std::uint8_t block[64]);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_;
  std::uint64_t total_bytes_;
  bool finalized_;
};

/// One-shot SHA-256 of `data`.
Digest256 sha256(util::BytesView data);

/// One-shot SHA-256, returned as a Bytes vector (convenient for hashlocks).
util::Bytes sha256_bytes(util::BytesView data);

}  // namespace xswap::crypto
