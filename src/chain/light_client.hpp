// SPV-style light client.
//
// §2.2 models a blockchain as a "publicly-readable, tamper-proof" ledger;
// parties watching many chains (every arc has its own) need not replay
// full blocks. A light client tracks only block headers — hash-chained
// and Merkle-committed — and checks transaction inclusion against them.
// This is also the mechanism a real bond-pool arbiter (swap/bonds.hpp)
// would use to verify fault evidence from foreign chains.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "chain/block.hpp"
#include "chain/merkle.hpp"

namespace xswap::chain {

/// A block's consensus-critical summary.
struct BlockHeader {
  std::uint64_t height = 0;
  sim::Time sealed_at = 0;
  crypto::Digest256 prev_hash{};
  crypto::Digest256 tx_root{};

  /// Same hash as the full block (the header carries everything the
  /// block hash commits to).
  crypto::Digest256 hash() const;

  static BlockHeader from_block(const Block& block);
};

/// Tracks a single chain's headers and answers inclusion queries.
class LightClient {
 public:
  /// Accept the next header. Returns false (and ignores the header) if
  /// it does not extend the current tip (wrong height or broken
  /// prev-hash link).
  bool accept(const BlockHeader& header);

  /// Number of accepted headers.
  std::size_t height() const { return headers_.size(); }

  const std::optional<BlockHeader> tip() const {
    if (headers_.empty()) return std::nullopt;
    return headers_.back();
  }

  /// Verify that a transaction with digest `tx_digest` is included in
  /// the accepted header at `height` via `proof`.
  bool verify_inclusion(std::uint64_t height, const crypto::Digest256& tx_digest,
                        const MerkleProof& proof) const;

 private:
  std::vector<BlockHeader> headers_;
};

/// Inclusion proof for `block.txs[index]`, checkable by LightClient.
MerkleProof prove_transaction(const Block& block, std::size_t index);

}  // namespace xswap::chain
