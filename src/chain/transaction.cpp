#include "chain/transaction.hpp"

namespace xswap::chain {

const char* to_string(TxKind kind) {
  switch (kind) {
    case TxKind::kGenesis: return "genesis";
    case TxKind::kPublishContract: return "publish";
    case TxKind::kContractCall: return "call";
    case TxKind::kTransfer: return "transfer";
  }
  return "unknown";
}

crypto::Digest256 Transaction::digest() const {
  util::Bytes enc;
  enc.push_back(static_cast<std::uint8_t>(kind));
  util::append(enc, util::str_bytes(sender));
  util::append(enc, util::str_bytes(summary));
  util::append(enc, util::be64(payload_bytes));
  util::append(enc, util::be64(submitted_at));
  util::append(enc, util::be64(executed_at));
  enc.push_back(succeeded ? 1 : 0);
  return crypto::sha256(enc);
}

}  // namespace xswap::chain
