// Smart-contract hosting interface (§2.2).
//
// A contract is an object published on a ledger. Once published it is
// irrevocable: no party can remove it or tamper with its terms; only its
// own entry points mutate its state. The Ledger enforces this by keeping
// the only mutable reference and exposing published contracts to
// observers as const.
#pragma once

#include <cstdint>
#include <string>

#include "sim/simulator.hpp"

namespace xswap::chain {

class Ledger;
using Address = std::string;
using ContractId = std::uint64_t;

/// Address form under which a contract holds escrowed assets.
Address contract_address(ContractId id);

/// Context passed to contract entry points: who called, at what chain
/// time, and on which ledger the contract lives (for asset movement).
struct CallContext {
  Address sender;
  sim::Time time = 0;
  Ledger* ledger = nullptr;
  ContractId self = 0;
};

/// Base class for on-chain contracts. Concrete contracts (e.g. the swap
/// contract of Fig. 4–5) define their own typed entry points; calls are
/// routed through Ledger::submit_call so that execution happens at block
/// seal time with ledger-provided context.
class Contract {
 public:
  virtual ~Contract() = default;

  /// Short type label ("swap", "swap1l", ...) for traces.
  virtual std::string type_name() const = 0;

  /// Bytes of on-chain storage this contract occupies (Theorem 4.10
  /// accounting). Includes its copy of the swap digraph, hashlock
  /// vectors, etc.
  virtual std::size_t storage_bytes() const = 0;

  /// Invoked by the ledger when the publishing transaction executes.
  /// Typically takes escrow of the contract's asset; throwing aborts the
  /// publication (the transaction is recorded as failed).
  virtual void on_publish(const CallContext& ctx) = 0;
};

}  // namespace xswap::chain
