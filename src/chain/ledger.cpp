#include "chain/ledger.hpp"

#include <stdexcept>

namespace xswap::chain {

Address contract_address(ContractId id) {
  return "contract:" + std::to_string(id);
}

Ledger::Ledger(std::string name, sim::Simulator& sim, sim::Duration seal_period)
    : name_(std::move(name)), sim_(sim), seal_period_(seal_period) {
  if (seal_period_ == 0) {
    throw std::invalid_argument("Ledger: seal period must be positive");
  }
  // Genesis block.
  Block genesis;
  genesis.height = 0;
  genesis.sealed_at = sim_.now();
  genesis.tx_root = genesis.compute_tx_root();
  blocks_.push_back(std::move(genesis));
}

void Ledger::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  sim_.every(sim_.now() + seal_period_, seal_period_, [this] {
    if (!running_) return false;
    seal();
    return true;
  });
}

void Ledger::mint(const Address& owner, const Asset& asset) {
  if (asset.fungible) {
    balances_[owner][asset.symbol] += asset.amount;
  } else {
    const auto key = std::make_pair(asset.symbol, asset.unique_id);
    if (unique_owners_.count(key)) {
      throw std::invalid_argument("Ledger::mint: unique asset already exists");
    }
    unique_owners_[key] = owner;
  }
  record("[" + std::to_string(sim_.now()) + "] genesis: " + asset.to_string() +
         " -> " + owner);
}

std::uint64_t Ledger::balance(const Address& owner,
                              const std::string& symbol) const {
  const auto it = balances_.find(owner);
  if (it == balances_.end()) return 0;
  const auto jt = it->second.find(symbol);
  return jt == it->second.end() ? 0 : jt->second;
}

std::optional<Address> Ledger::owner_of(const std::string& symbol,
                                        const std::string& unique_id) const {
  const auto it = unique_owners_.find({symbol, unique_id});
  if (it == unique_owners_.end()) return std::nullopt;
  return it->second;
}

std::uint64_t Ledger::total_supply(const std::string& symbol) const {
  std::uint64_t total = 0;
  for (const auto& [owner, per_symbol] : balances_) {
    const auto it = per_symbol.find(symbol);
    if (it != per_symbol.end()) total += it->second;
  }
  return total;
}

bool Ledger::owns(const Address& owner, const Asset& asset) const {
  if (asset.fungible) return balance(owner, asset.symbol) >= asset.amount;
  const auto current = owner_of(asset.symbol, asset.unique_id);
  return current.has_value() && *current == owner;
}

void Ledger::transfer(const Address& from, const Address& to, const Asset& asset) {
  if (!owns(from, asset)) {
    throw std::runtime_error("Ledger::transfer: " + from + " cannot pay " +
                             asset.to_string());
  }
  if (asset.fungible) {
    balances_[from][asset.symbol] -= asset.amount;
    balances_[to][asset.symbol] += asset.amount;
  } else {
    unique_owners_[{asset.symbol, asset.unique_id}] = to;
  }
}

ContractId Ledger::submit_contract(const Address& sender,
                                   std::unique_ptr<Contract> contract,
                                   std::size_t payload_bytes) {
  if (!contract) {
    throw std::invalid_argument("Ledger::submit_contract: null contract");
  }
  const ContractId id = next_contract_id_++;
  PendingTx p;
  p.tx.kind = TxKind::kPublishContract;
  p.tx.sender = sender;
  p.tx.summary = "publish " + contract->type_name() + " as " + contract_address(id);
  p.tx.payload_bytes = payload_bytes;
  p.tx.submitted_at = sim_.now();
  p.to_publish = std::move(contract);
  p.target = id;
  enqueue(std::move(p));
  return id;
}

void Ledger::enqueue(PendingTx p) {
  if (submit_delay_ == 0) {
    mempool_.push_back(std::move(p));
    return;
  }
  // Delayed entry to the mempool; shared_ptr keeps the closure copyable
  // for std::function.
  auto held = std::make_shared<PendingTx>(std::move(p));
  sim_.after(submit_delay_, [this, held] { mempool_.push_back(std::move(*held)); });
}

void Ledger::submit_call(const Address& sender, ContractId id, std::string method,
                         std::size_t payload_bytes, CallFn fn) {
  PendingTx p;
  p.tx.kind = TxKind::kContractCall;
  p.tx.sender = sender;
  p.tx.summary = method + " on " + contract_address(id);
  p.tx.payload_bytes = payload_bytes;
  p.tx.submitted_at = sim_.now();
  p.target = id;
  p.call = std::move(fn);
  enqueue(std::move(p));
}

const Contract* Ledger::get_contract(ContractId id) const {
  const auto it = contracts_.find(id);
  return it == contracts_.end() ? nullptr : it->second.get();
}

void Ledger::execute(PendingTx& p, Transaction& tx) {
  const CallContext ctx{tx.sender, sim_.now(), this, p.target};
  if (tx.kind == TxKind::kPublishContract) {
    // Publication: run the escrow hook, then make the contract visible.
    p.to_publish->on_publish(ctx);
    published_order_.push_back(p.target);
    contracts_[p.target] = std::move(p.to_publish);
  } else if (tx.kind == TxKind::kContractCall) {
    const auto it = contracts_.find(p.target);
    if (it == contracts_.end()) {
      throw std::runtime_error("call to unpublished contract " +
                               contract_address(p.target));
    }
    p.call(*it->second, ctx);
  }
}

void Ledger::seal() {
  Block block;
  block.height = blocks_.size();
  block.sealed_at = sim_.now();
  block.prev_hash = blocks_.back().hash();

  std::vector<PendingTx> batch;
  batch.swap(mempool_);
  for (PendingTx& p : batch) {
    Transaction tx = std::move(p.tx);
    tx.executed_at = sim_.now();
    try {
      execute(p, tx);
      tx.succeeded = true;
    } catch (const std::exception& e) {
      tx.succeeded = false;
      tx.error = e.what();
      ++failed_tx_count_;
    }
    ++tx_count_;
    payload_storage_bytes_ += tx.payload_bytes;
    if (tx.kind == TxKind::kContractCall) {
      call_payload_bytes_ += tx.payload_bytes;
    }
    record("[" + std::to_string(sim_.now()) + "] " +
           std::string(to_string(tx.kind)) + " by " + tx.sender + ": " +
           tx.summary + (tx.succeeded ? "" : " FAILED (" + tx.error + ")"));
    block.txs.push_back(std::move(tx));
  }
  if (block.txs.empty()) return;  // skip empty blocks, keep the chain compact
  block.tx_root = block.compute_tx_root();
  blocks_.push_back(std::move(block));
}

bool Ledger::verify_integrity() const {
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.compute_tx_root() != b.tx_root) return false;
    if (i > 0 && b.prev_hash != blocks_[i - 1].hash()) return false;
  }
  return true;
}

std::size_t Ledger::storage_bytes() const {
  std::size_t total = payload_storage_bytes_;
  for (const auto& [id, contract] : contracts_) {
    total += contract->storage_bytes();
  }
  return total;
}

void Ledger::record(std::string line) { trace_.push_back(std::move(line)); }

}  // namespace xswap::chain
