#include "chain/ledger.hpp"

#include <cassert>

#include "chain/block_store.hpp"
#include <functional>
#include <stdexcept>

namespace xswap::chain {

Address contract_address(ContractId id) {
  return "contract:" + std::to_string(id);
}

ChainLockRegistry::ChainLockRegistry(std::size_t stripes)
    : stripe_count_(stripes) {
  if (stripes == 0) {
    throw std::invalid_argument("ChainLockRegistry: need at least 1 stripe");
  }
  stripes_ = std::make_unique<util::Mutex[]>(stripe_count_);
}

ChainLockRegistry::~ChainLockRegistry() {
  // Destroying the registry while a ledger still holds a stripe pointer
  // leaves that ledger sealing through freed memory. Debug builds catch
  // the inverted destruction order here; chain_ledger_test covers the
  // contract in release builds too (via attached_ledgers()).
  assert(attached_.load(std::memory_order_relaxed) == 0 &&
         "ChainLockRegistry destroyed before its attached Ledgers");
}

util::Mutex& ChainLockRegistry::stripe_for(const std::string& chain_name) {
  return stripes_[std::hash<std::string>{}(chain_name) % stripe_count_];
}

ChainLockRegistry& ChainLockRegistry::global() {
  static ChainLockRegistry registry;
  return registry;
}

Ledger::Ledger(std::string name, sim::Simulator& sim, sim::Duration seal_period)
    : name_(std::move(name)), sim_(sim), seal_period_(seal_period) {
  if (seal_period_ == 0) {
    throw std::invalid_argument("Ledger: seal period must be positive");
  }
  // Genesis block.
  Block genesis;
  genesis.height = 0;
  genesis.sealed_at = sim_.now();
  genesis.tx_root = genesis.compute_tx_root();
  blocks_.push_back(std::move(genesis));
}

void Ledger::start() {
  if (started_) return;
  started_ = true;
  running_ = true;
  sim_.every(sim_.now() + seal_period_, seal_period_, [this] {
    if (!running_) return false;
    seal();
    return true;
  });
}

Ledger::~Ledger() {
  if (lock_registry_ != nullptr) lock_registry_->detach();
}

void Ledger::set_chain_locks(ChainLockRegistry* registry) {
  if (lock_registry_ != nullptr) lock_registry_->detach();
  lock_registry_ = registry;
  if (registry == nullptr) {
    seal_stripe_ = nullptr;
    return;
  }
  registry->attach();
  seal_stripe_ = &registry->stripe_for(name_);
}

void Ledger::enable_trace() {
  if (!owned_trace_) owned_trace_ = std::make_unique<StringTraceSink>();
  trace_sink_ = owned_trace_.get();
}

const std::vector<std::string>& Ledger::trace() const {
  static const std::vector<std::string> kEmpty;
  return owned_trace_ ? owned_trace_->lines() : kEmpty;
}

Ledger::AccountId Ledger::intern_account(const Address& name) {
  const auto [it, inserted] =
      account_ids_.try_emplace(name, static_cast<AccountId>(account_names_.size()));
  if (inserted) {
    account_names_.push_back(name);
    balances_tab_.emplace_back();
  }
  return it->second;
}

Ledger::AccountId Ledger::find_account(const Address& name) const {
  const auto it = account_ids_.find(name);
  return it == account_ids_.end() ? kNoId : it->second;
}

Ledger::SymbolId Ledger::intern_symbol(const std::string& symbol) {
  const auto [it, inserted] =
      symbol_ids_.try_emplace(symbol, static_cast<SymbolId>(symbol_names_.size()));
  if (inserted) {
    symbol_names_.push_back(symbol);
    supply_.push_back(0);
  }
  return it->second;
}

Ledger::SymbolId Ledger::find_symbol(const std::string& symbol) const {
  const auto it = symbol_ids_.find(symbol);
  return it == symbol_ids_.end() ? kNoId : it->second;
}

std::uint64_t& Ledger::balance_slot(AccountId account, SymbolId symbol) {
  std::vector<std::uint64_t>& row = balances_tab_[account];
  if (row.size() <= symbol) row.resize(symbol + 1, 0);
  return row[symbol];
}

void Ledger::mint(const Address& owner, const Asset& asset) {
  if (asset.fungible) {
    const AccountId acc = intern_account(owner);
    const SymbolId sym = intern_symbol(asset.symbol);
    balance_slot(acc, sym) += asset.amount;
    supply_[sym] += asset.amount;
  } else {
    const auto key = std::make_pair(asset.symbol, asset.unique_id);
    if (unique_owner_ids_.count(key)) {
      throw std::invalid_argument("Ledger::mint: unique asset already exists");
    }
    unique_owner_ids_.emplace(key, intern_account(owner));
  }
  if (store_ != nullptr) store_->append_mint(owner, asset);
  if (trace_sink_) {
    record("[" + std::to_string(sim_.now()) + "] genesis: " + asset.to_string() +
           " -> " + owner);
  }
}

std::uint64_t Ledger::balance(const Address& owner,
                              const std::string& symbol) const {
  const AccountId acc = find_account(owner);
  if (acc == kNoId) return 0;
  const SymbolId sym = find_symbol(symbol);
  const std::vector<std::uint64_t>& row = balances_tab_[acc];
  return sym == kNoId || sym >= row.size() ? 0 : row[sym];
}

std::optional<Address> Ledger::owner_of(const std::string& symbol,
                                        const std::string& unique_id) const {
  const auto it = unique_owner_ids_.find({symbol, unique_id});
  if (it == unique_owner_ids_.end()) return std::nullopt;
  return account_names_[it->second];
}

std::uint64_t Ledger::total_supply(const std::string& symbol) const {
  const SymbolId sym = find_symbol(symbol);
  return sym == kNoId ? 0 : supply_[sym];
}

bool Ledger::owns(const Address& owner, const Asset& asset) const {
  if (asset.fungible) return balance(owner, asset.symbol) >= asset.amount;
  const auto it = unique_owner_ids_.find({asset.symbol, asset.unique_id});
  if (it == unique_owner_ids_.end()) return false;
  const AccountId acc = find_account(owner);
  return acc != kNoId && acc == it->second;
}

std::map<Address, std::map<std::string, std::uint64_t>> Ledger::balances() const {
  std::map<Address, std::map<std::string, std::uint64_t>> view;
  for (AccountId acc = 0; acc < balances_tab_.size(); ++acc) {
    const std::vector<std::uint64_t>& row = balances_tab_[acc];
    for (SymbolId sym = 0; sym < row.size(); ++sym) {
      if (row[sym] != 0) view[account_names_[acc]][symbol_names_[sym]] = row[sym];
    }
  }
  return view;
}

std::map<std::pair<std::string, std::string>, Address> Ledger::unique_owners()
    const {
  std::map<std::pair<std::string, std::string>, Address> view;
  for (const auto& [key, acc] : unique_owner_ids_) {
    view[key] = account_names_[acc];
  }
  return view;
}

void Ledger::transfer(const Address& from, const Address& to, const Asset& asset) {
  if (!owns(from, asset)) {
    throw std::runtime_error("Ledger::transfer: " + from + " cannot pay " +
                             asset.to_string());
  }
  if (asset.fungible) {
    // Zero-amount lots pass the owns() check even for unknown accounts
    // or symbols (0 >= 0); there is nothing to move, so stop before the
    // id lookups below would index with kNoId.
    if (asset.amount == 0) return;
    // `from` passed the owns() check with a positive amount, so its ids
    // exist and its row covers the symbol; only `to` may be new.
    const SymbolId sym = find_symbol(asset.symbol);
    balances_tab_[find_account(from)][sym] -= asset.amount;
    balance_slot(intern_account(to), sym) += asset.amount;
  } else {
    unique_owner_ids_[{asset.symbol, asset.unique_id}] = intern_account(to);
  }
}

ContractId Ledger::submit_contract(const Address& sender,
                                   std::unique_ptr<Contract> contract,
                                   std::size_t payload_bytes) {
  if (!contract) {
    throw std::invalid_argument("Ledger::submit_contract: null contract");
  }
  const ContractId id = next_contract_id_++;
  PendingTx p;
  p.tx.kind = TxKind::kPublishContract;
  p.tx.sender = sender;
  p.tx.summary = "publish " + contract->type_name() + " as " + contract_address(id);
  p.tx.payload_bytes = payload_bytes;
  p.tx.submitted_at = sim_.now();
  p.to_publish = std::move(contract);
  p.target = id;
  enqueue(std::move(p));
  return id;
}

void Ledger::enqueue(PendingTx p) {
  sim::Duration delay = submit_delay_;
  if (submit_fault_) {
    const sim::Duration extra = submit_fault_(sim_.now());
    if (extra > 0) ++perturbed_submissions_;
    delay += extra;
  }
  if (delay == 0) {
    mempool_.push_back(std::move(p));
    return;
  }
  // Delayed entry to the mempool; shared_ptr keeps the closure copyable
  // for std::function.
  auto held = std::make_shared<PendingTx>(std::move(p));
  sim_.after(delay, [this, held] { mempool_.push_back(std::move(*held)); });
}

void Ledger::submit_call(const Address& sender, ContractId id, std::string method,
                         std::size_t payload_bytes, CallFn fn) {
  PendingTx p;
  p.tx.kind = TxKind::kContractCall;
  p.tx.sender = sender;
  p.tx.summary = method + " on " + contract_address(id);
  p.tx.payload_bytes = payload_bytes;
  p.tx.submitted_at = sim_.now();
  p.target = id;
  p.call = std::move(fn);
  enqueue(std::move(p));
}

void Ledger::execute(PendingTx& p, Transaction& tx) {
  const CallContext ctx{tx.sender, sim_.now(), this, p.target};
  if (tx.kind == TxKind::kPublishContract) {
    // Publication: run the escrow hook, then make the contract visible.
    p.to_publish->on_publish(ctx);
    published_order_.push_back(p.target);
    if (contracts_.size() < p.target) contracts_.resize(p.target);
    contracts_[p.target - 1] = std::move(p.to_publish);
  } else if (tx.kind == TxKind::kContractCall) {
    Contract* target = p.target >= 1 && p.target <= contracts_.size()
                           ? contracts_[p.target - 1].get()
                           : nullptr;
    if (target == nullptr) {
      throw std::runtime_error("call to unpublished contract " +
                               contract_address(p.target));
    }
    p.call(*target, ctx);
  }
}

void Ledger::seal() {
  if (mempool_.empty()) return;  // skip empty blocks, keep the chain compact
  if (seal_stripe_ == nullptr) {
    seal_locked();
    return;
  }
  // Same-chain seals across concurrently running components serialize
  // on the name's stripe; disjoint chains hash to other stripes and
  // proceed in parallel (see ChainLockRegistry).
  const util::MutexLock guard(*seal_stripe_);
  seal_locked();
}

void Ledger::seal_locked() {
  // Header hashing (tx Merkle root + chain link) is deferred to
  // seal_batch(): the seal tick pays for transaction execution only.
  Block block;
  block.height = blocks_.size();
  block.sealed_at = sim_.now();

  std::vector<PendingTx> batch;
  batch.swap(mempool_);
  block.txs.reserve(batch.size());
  for (PendingTx& p : batch) {
    Transaction tx = std::move(p.tx);
    tx.executed_at = sim_.now();
    try {
      execute(p, tx);
      tx.succeeded = true;
    } catch (const std::exception& e) {
      tx.succeeded = false;
      tx.error = e.what();
      ++failed_tx_count_;
    }
    ++tx_count_;
    payload_storage_bytes_ += tx.payload_bytes;
    if (tx.kind == TxKind::kContractCall) {
      call_payload_bytes_ += tx.payload_bytes;
    }
    if (trace_sink_) {
      record("[" + std::to_string(sim_.now()) + "] " +
             std::string(to_string(tx.kind)) + " by " + tx.sender + ": " +
             tx.summary + (tx.succeeded ? "" : " FAILED (" + tx.error + ")"));
    }
    block.txs.push_back(std::move(tx));
  }
  blocks_.push_back(std::move(block));
  if (store_ != nullptr) {
    // Group commit rides the deferred-header batch: once group_blocks()
    // sealed blocks queue unhashed, flush them (one Merkle pass, one
    // journal append run, one commit) instead of paying per block.
    std::size_t pending;
    {
      const util::MutexLock guard(flush_mutex_);
      pending = blocks_.size() - hashed_blocks_;
    }
    if (pending >= store_->group_blocks()) seal_batch();
  }
}

void Ledger::seal_batch() const {
  // One pass over every queued block: leaf digests land in one shared
  // scratch buffer that merkle_root_inplace consumes level by level, so
  // N queued mempools cost N roots but zero per-block allocation churn.
  // Earlier headers complete before later ones read them for the chain
  // link. The instance-level flush mutex (never the cross-component
  // stripe) makes concurrent const observers of a finished ledger safe
  // and keeps this callable from contract callbacks while seal() holds
  // the stripe — only seal() itself, which callbacks cannot reach, ever
  // takes a stripe lock.
  const util::MutexLock guard(flush_mutex_);
  const std::size_t first = hashed_blocks_;
  for (std::size_t i = hashed_blocks_; i < blocks_.size(); ++i) {
    Block& block = blocks_[i];
    block.prev_hash = blocks_[i - 1].hash();
    block.tx_root = block.compute_tx_root(leaf_scratch_);
    if (store_ != nullptr) store_->append_block(block);
  }
  hashed_blocks_ = blocks_.size();
  if (store_ != nullptr && hashed_blocks_ > first) store_->commit();
}

bool Ledger::verify_integrity() const { return verify_integrity(nullptr); }

bool Ledger::verify_integrity(IntegrityFailure* failure) const {
  seal_batch();
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Block& b = blocks_[i];
    if (b.compute_tx_root() != b.tx_root) {
      if (failure != nullptr) {
        failure->height = i;
        failure->check = IntegrityFailure::Check::kTxRoot;
      }
      return false;
    }
    if (i > 0 && b.prev_hash != blocks_[i - 1].hash()) {
      if (failure != nullptr) {
        failure->height = i;
        failure->check = IntegrityFailure::Check::kPrevHash;
      }
      return false;
    }
  }
  return true;
}

const char* to_string(Ledger::IntegrityFailure::Check check) {
  switch (check) {
    case Ledger::IntegrityFailure::Check::kTxRoot: return "tx_root";
    case Ledger::IntegrityFailure::Check::kPrevHash: break;
  }
  return "prev_hash";
}

void Ledger::attach_store(BlockStore* store) {
  if (store == nullptr) {
    store_ = nullptr;
    return;
  }
  if (started_ || tx_count_ != 0 || !account_ids_.empty() ||
      !unique_owner_ids_.empty() || blocks_.size() != 1 ||
      !blocks_[0].txs.empty()) {
    throw std::logic_error(
        "Ledger::attach_store: ledger already has state; the journal "
        "must cover the chain from genesis");
  }
  store_ = store;
  store_->append_block(blocks_[0]);
  store_->commit();
}

void Ledger::restore_sealed_block(Block block) {
  if (started_) {
    throw std::logic_error(
        "Ledger::restore_sealed_block: ledger already started");
  }
  const util::MutexLock guard(flush_mutex_);
  if (block.height == 0) {
    if (blocks_.size() != 1 || !blocks_[0].txs.empty() || tx_count_ != 0) {
      throw std::invalid_argument(
          "Ledger::restore_sealed_block: duplicate genesis record");
    }
    blocks_[0] = std::move(block);
    return;  // hashed_blocks_ stays 1: the restored header is complete
  }
  if (block.height != blocks_.size()) {
    throw std::invalid_argument(
        "Ledger::restore_sealed_block: height " + std::to_string(block.height) +
        " does not chain after tip " + std::to_string(blocks_.size() - 1));
  }
  for (const Transaction& tx : block.txs) {
    ++tx_count_;
    if (!tx.succeeded) ++failed_tx_count_;
    payload_storage_bytes_ += tx.payload_bytes;
    if (tx.kind == TxKind::kContractCall) {
      call_payload_bytes_ += tx.payload_bytes;
    }
  }
  blocks_.push_back(std::move(block));
  hashed_blocks_ = blocks_.size();
}

std::size_t Ledger::storage_bytes() const {
  std::size_t total = payload_storage_bytes_;
  for (const auto& contract : contracts_) {
    if (contract) total += contract->storage_bytes();
  }
  return total;
}

}  // namespace xswap::chain
