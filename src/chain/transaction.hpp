// Transactions recorded on a simulated blockchain.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/sha256.hpp"
#include "sim/simulator.hpp"
#include "util/bytes.hpp"

namespace xswap::chain {

/// Party or contract address. Party addresses are their names; contract
/// addresses use the "contract:<id>" form (see contract_address()).
using Address = std::string;

enum class TxKind : std::uint8_t {
  kGenesis,          // initial asset allocation
  kPublishContract,  // a smart contract was published (and took escrow)
  kContractCall,     // an entry point of a published contract was invoked
  kTransfer,         // a plain asset transfer
};

const char* to_string(TxKind kind);

/// One ledger transaction. `payload_bytes` is the size charged to
/// on-chain storage (contract state at publication, call arguments for
/// calls) — the quantity measured by Theorem 4.10's space bound.
struct Transaction {
  TxKind kind = TxKind::kTransfer;
  Address sender;
  std::string summary;          // human-readable description for traces
  std::size_t payload_bytes = 0;
  sim::Time submitted_at = 0;
  sim::Time executed_at = 0;
  bool succeeded = false;
  std::string error;            // failure reason when !succeeded

  /// Digest binding the transaction's content (Merkle leaf).
  crypto::Digest256 digest() const;
};

}  // namespace xswap::chain
