// Opt-in ledger tracing.
//
// The ledger's hot path (seal, mint) used to format a human-readable
// line for every action into an always-on string vector, whether or not
// anyone read it. Tracing is now a sink interface: the default is no
// sink at all — call sites skip the formatting entirely — and consumers
// that want the classic string trace (figure harnesses, forensics,
// tests, the CLI's --trace flag) attach a StringTraceSink.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace xswap::chain {

/// Receives one formatted line per ledger action ("[12] publish swap
/// ..."). Implementations may stream, store, or count; record() is only
/// invoked when a sink is attached, so an absent sink costs nothing.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(std::string line) = 0;
};

/// The classic in-memory trace: every line, in order.
class StringTraceSink final : public TraceSink {
 public:
  void record(std::string line) override { lines_.push_back(std::move(line)); }
  const std::vector<std::string>& lines() const { return lines_; }
  void clear() { lines_.clear(); }

 private:
  std::vector<std::string> lines_;
};

}  // namespace xswap::chain
