#include "chain/asset.hpp"

#include <stdexcept>

namespace xswap::chain {

Asset Asset::coins(std::string symbol, std::uint64_t amount) {
  if (amount == 0) throw std::invalid_argument("Asset::coins: zero amount");
  Asset a;
  a.symbol = std::move(symbol);
  a.amount = amount;
  a.fungible = true;
  return a;
}

Asset Asset::unique(std::string symbol, std::string id) {
  if (id.empty()) throw std::invalid_argument("Asset::unique: empty id");
  Asset a;
  a.symbol = std::move(symbol);
  a.amount = 1;
  a.fungible = false;
  a.unique_id = std::move(id);
  return a;
}

std::string Asset::to_string() const {
  if (fungible) return std::to_string(amount) + " " + symbol;
  return symbol + "#" + unique_id;
}

util::Bytes Asset::encode() const {
  util::Bytes out = util::str_bytes(symbol);
  util::append(out, util::be64(amount));
  out.push_back(fungible ? 1 : 0);
  util::append(out, util::str_bytes(unique_id));
  return out;
}

}  // namespace xswap::chain
