#include "chain/light_client.hpp"

#include <stdexcept>

namespace xswap::chain {

crypto::Digest256 BlockHeader::hash() const {
  util::Bytes enc = util::be64(height);
  util::append(enc, util::be64(sealed_at));
  util::append(enc, util::BytesView(prev_hash.data(), prev_hash.size()));
  util::append(enc, util::BytesView(tx_root.data(), tx_root.size()));
  return crypto::sha256(enc);
}

BlockHeader BlockHeader::from_block(const Block& block) {
  return BlockHeader{block.height, block.sealed_at, block.prev_hash,
                     block.tx_root};
}

bool LightClient::accept(const BlockHeader& header) {
  if (headers_.empty()) {
    // First header must be a genesis-like start (no link to check).
    headers_.push_back(header);
    return true;
  }
  const BlockHeader& tip = headers_.back();
  if (header.height <= tip.height) return false;
  if (header.prev_hash != tip.hash()) return false;
  headers_.push_back(header);
  return true;
}

bool LightClient::verify_inclusion(std::uint64_t height,
                                   const crypto::Digest256& tx_digest,
                                   const MerkleProof& proof) const {
  for (const BlockHeader& h : headers_) {
    if (h.height == height) {
      return merkle_verify(tx_digest, proof, h.tx_root);
    }
  }
  return false;
}

MerkleProof prove_transaction(const Block& block, std::size_t index) {
  if (index >= block.txs.size()) {
    throw std::out_of_range("prove_transaction: index out of range");
  }
  std::vector<crypto::Digest256> leaves;
  leaves.reserve(block.txs.size());
  for (const Transaction& tx : block.txs) leaves.push_back(tx.digest());
  return merkle_prove(leaves, index);
}

}  // namespace xswap::chain
