#include "chain/merkle.hpp"

#include <stdexcept>

#include "util/bytes.hpp"

namespace xswap::chain {

namespace {

crypto::Digest256 hash_pair(const crypto::Digest256& l, const crypto::Digest256& r) {
  crypto::Sha256 h;
  h.update(util::BytesView(l.data(), l.size()));
  h.update(util::BytesView(r.data(), r.size()));
  return h.finalize();
}

}  // namespace

crypto::Digest256 merkle_root(const std::vector<crypto::Digest256>& leaves) {
  std::vector<crypto::Digest256> scratch = leaves;
  return merkle_root_inplace(scratch);
}

crypto::Digest256 merkle_root_inplace(std::vector<crypto::Digest256>& leaves) {
  if (leaves.empty()) return crypto::Digest256{};
  std::size_t n = leaves.size();
  while (n > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i < n; i += 2) {
      const crypto::Digest256& left = leaves[i];
      const crypto::Digest256& right = (i + 1 < n) ? leaves[i + 1] : leaves[i];
      leaves[out++] = hash_pair(left, right);
    }
    n = out;
  }
  return leaves[0];
}

MerkleProof merkle_prove(const std::vector<crypto::Digest256>& leaves,
                         std::size_t index) {
  if (index >= leaves.size()) {
    throw std::out_of_range("merkle_prove: index out of range");
  }
  MerkleProof proof;
  proof.index = index;
  std::vector<crypto::Digest256> level = leaves;
  std::size_t i = index;
  while (level.size() > 1) {
    const std::size_t sibling = (i % 2 == 0) ? std::min(i + 1, level.size() - 1)
                                             : i - 1;
    proof.siblings.push_back(level[sibling]);
    std::vector<crypto::Digest256> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t j = 0; j < level.size(); j += 2) {
      const crypto::Digest256& left = level[j];
      const crypto::Digest256& right = (j + 1 < level.size()) ? level[j + 1] : level[j];
      next.push_back(hash_pair(left, right));
    }
    level = std::move(next);
    i /= 2;
  }
  return proof;
}

bool merkle_verify(const crypto::Digest256& leaf, const MerkleProof& proof,
                   const crypto::Digest256& root) {
  crypto::Digest256 acc = leaf;
  std::size_t i = proof.index;
  for (const crypto::Digest256& sib : proof.siblings) {
    acc = (i % 2 == 0) ? hash_pair(acc, sib) : hash_pair(sib, acc);
    i /= 2;
  }
  return acc == root;
}

}  // namespace xswap::chain
