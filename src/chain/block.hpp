// Sealed blocks of the simulated blockchain.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/merkle.hpp"
#include "chain/transaction.hpp"

namespace xswap::chain {

/// A sealed block: transactions plus tamper-evidence (Merkle root over tx
/// digests, hash-chain link to the previous block).
struct Block {
  std::uint64_t height = 0;
  sim::Time sealed_at = 0;
  crypto::Digest256 prev_hash{};
  crypto::Digest256 tx_root{};
  std::vector<Transaction> txs;

  /// Block header hash (chains blocks together).
  crypto::Digest256 hash() const;

  /// Recompute the Merkle root from `txs` (for integrity checks).
  crypto::Digest256 compute_tx_root() const;
};

}  // namespace xswap::chain
