// Sealed blocks of the simulated blockchain.
#pragma once

#include <cstdint>
#include <vector>

#include "chain/merkle.hpp"
#include "chain/transaction.hpp"

namespace xswap::chain {

/// A sealed block: transactions plus tamper-evidence (Merkle root over tx
/// digests, hash-chain link to the previous block).
struct Block {
  std::uint64_t height = 0;
  sim::Time sealed_at = 0;
  crypto::Digest256 prev_hash{};
  crypto::Digest256 tx_root{};
  std::vector<Transaction> txs;

  /// Block header hash (chains blocks together).
  crypto::Digest256 hash() const;

  /// Recompute the Merkle root from `txs` (for integrity checks).
  crypto::Digest256 compute_tx_root() const;

  /// Merkle root from `txs` using `leaf_scratch` for the whole tree
  /// (cleared and clobbered). Batched sealing reuses one scratch buffer
  /// across every queued block, so N blocks cost one allocation-free
  /// Merkle pass instead of N allocating ones.
  crypto::Digest256 compute_tx_root(
      std::vector<crypto::Digest256>& leaf_scratch) const;
};

}  // namespace xswap::chain
