// Merkle commitments over block transactions.
//
// Each sealed block commits to its transactions with a Merkle root, and
// the ledger can produce inclusion proofs — the "publicly-readable,
// tamper-proof" ledger abstraction of §2.2 made concrete.
#pragma once

#include <vector>

#include "crypto/sha256.hpp"

namespace xswap::chain {

/// Merkle root of an ordered list of leaf digests. Interior nodes are
/// SHA-256 of the concatenated children; an odd node is paired with
/// itself; the empty list has the all-zero root.
crypto::Digest256 merkle_root(const std::vector<crypto::Digest256>& leaves);

/// merkle_root that consumes `leaves` as its own scratch space: each
/// level is halved in place, so the whole tree costs zero allocations
/// beyond the buffer the caller already holds. Batched sealing
/// (Ledger::seal_batch) reuses one such buffer across every queued
/// block — one Merkle pass instead of one allocation storm per block.
/// `leaves` is clobbered (left holding only the root).
crypto::Digest256 merkle_root_inplace(std::vector<crypto::Digest256>& leaves);

/// Inclusion proof for a leaf: sibling digests from leaf level to the
/// root, plus the leaf's index (whose bits give left/right orientation).
struct MerkleProof {
  std::size_t index = 0;
  std::vector<crypto::Digest256> siblings;
};

/// Proof for `leaves[index]`. Throws std::out_of_range on a bad index.
MerkleProof merkle_prove(const std::vector<crypto::Digest256>& leaves,
                         std::size_t index);

/// Check `proof` connects `leaf` to `root`.
bool merkle_verify(const crypto::Digest256& leaf, const MerkleProof& proof,
                   const crypto::Digest256& root);

}  // namespace xswap::chain
