// A simulated blockchain ledger (§2.2).
//
// Provides the paper's blockchain abstraction: clients submit transactions
// (asset transfers, contract publications, contract calls); the ledger
// seals them into Merkle-committed blocks on a fixed period driven by the
// discrete-event simulator. Submitted transactions execute at the next
// seal and become *visible* to observers only then — so one "publish +
// confirm" round trip costs up to one seal period, and the paper's Δ must
// be at least that (the protocol engine enforces the margin).
//
// The ledger also keeps the bookkeeping the benchmarks need: per-chain
// storage bytes (Theorem 4.10), transaction and call counts, and an event
// trace for the figure-reproduction harnesses.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chain/asset.hpp"
#include "chain/block.hpp"
#include "chain/contract.hpp"
#include "chain/transaction.hpp"
#include "sim/simulator.hpp"

namespace xswap::chain {

/// A single blockchain. Each arc of a swap digraph runs on its own Ledger
/// (plus optionally one shared broadcast chain, §4.5).
class Ledger {
 public:
  /// `seal_period`: ticks between blocks. The genesis block is sealed
  /// immediately; subsequent seals happen every `seal_period` ticks once
  /// start() is called.
  Ledger(std::string name, sim::Simulator& sim, sim::Duration seal_period = 1);

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  const std::string& name() const { return name_; }

  /// Begin sealing blocks (schedules the periodic seal event).
  void start();
  /// Stop sealing after the current tick (lets simulations drain).
  void stop() { running_ = false; }

  /// Extra ticks between a client's submission and the transaction
  /// entering the mempool — models a congested or slow chain. The
  /// paper's Δ must cover seal_period + submit_delay for its timing
  /// analysis to apply; the ablation benches deliberately violate this.
  void set_submit_delay(sim::Duration delay) { submit_delay_ = delay; }
  sim::Duration submit_delay() const { return submit_delay_; }

  // ---- Assets ----

  /// Genesis allocation: credit `owner` with `asset` out of thin air.
  void mint(const Address& owner, const Asset& asset);

  /// Fungible balance of `owner` for `symbol`.
  std::uint64_t balance(const Address& owner, const std::string& symbol) const;

  /// Current owner of a unique token, if it exists on this chain.
  std::optional<Address> owner_of(const std::string& symbol,
                                  const std::string& unique_id) const;

  /// True iff `owner` can currently pay `asset` (balance or token).
  bool owns(const Address& owner, const Asset& asset) const;

  /// Sum of `symbol` across all accounts (conservation audits: transfers
  /// never change total supply; only mint() does).
  std::uint64_t total_supply(const std::string& symbol) const;

  /// All fungible balances (owner → symbol → amount), for audits.
  const std::map<Address, std::map<std::string, std::uint64_t>>& balances() const {
    return balances_;
  }

  /// All unique-token owners ((symbol, id) → owner), for audits.
  const std::map<std::pair<std::string, std::string>, Address>& unique_owners()
      const {
    return unique_owners_;
  }

  /// Move `asset` from `from` to `to`; throws std::runtime_error when
  /// `from` cannot pay. Contracts use this to take escrow and to pay out.
  void transfer(const Address& from, const Address& to, const Asset& asset);

  // ---- Contracts ----

  /// Submit a contract for publication. The id is assigned immediately;
  /// escrow is taken and the contract becomes visible at the next seal.
  /// `payload_bytes` is the storage charged for the publication tx (the
  /// contract adds its own storage_bytes() on top).
  ContractId submit_contract(const Address& sender,
                             std::unique_ptr<Contract> contract,
                             std::size_t payload_bytes);

  /// Submit a call to a published contract's entry point. `method` labels
  /// the trace; `payload_bytes` models the call-argument size (hashkeys
  /// with their signature chains are big — that is the |A|·|L| term of
  /// the communication bound). `fn` performs the typed invocation; any
  /// exception it throws marks the transaction failed without aborting
  /// the simulation.
  using CallFn = std::function<void(Contract&, const CallContext&)>;
  void submit_call(const Address& sender, ContractId id, std::string method,
                   std::size_t payload_bytes, CallFn fn);

  /// Read-only view of a *published* contract (nullptr before the sealing
  /// block, or for unknown ids). Observers may inspect but never mutate.
  const Contract* get_contract(ContractId id) const;

  /// Ids of all published contracts, in publication order.
  const std::vector<ContractId>& published_contracts() const {
    return published_order_;
  }

  // ---- Chain data ----

  const std::vector<Block>& blocks() const { return blocks_; }

  /// Verify hash-chain links and Merkle roots of every sealed block.
  bool verify_integrity() const;

  /// Total bytes stored on this chain: transaction payloads plus live
  /// contract state (Theorem 4.10's measure).
  std::size_t storage_bytes() const;

  std::size_t transaction_count() const { return tx_count_; }
  std::size_t failed_transaction_count() const { return failed_tx_count_; }
  std::size_t call_payload_bytes() const { return call_payload_bytes_; }

  /// Human-readable event trace ("[12] publish swap ...").
  const std::vector<std::string>& trace() const { return trace_; }

 private:
  struct PendingTx {
    Transaction tx;
    // Exactly one of these is set for publish/call transactions.
    std::unique_ptr<Contract> to_publish;
    ContractId target = 0;
    CallFn call;
  };

  void seal();
  void execute(PendingTx& p, Transaction& tx);
  void record(std::string line);
  void enqueue(PendingTx p);

  std::string name_;
  sim::Simulator& sim_;
  sim::Duration seal_period_;
  sim::Duration submit_delay_ = 0;
  bool running_ = false;
  bool started_ = false;

  std::map<Address, std::map<std::string, std::uint64_t>> balances_;
  std::map<std::pair<std::string, std::string>, Address> unique_owners_;

  std::vector<PendingTx> mempool_;
  std::vector<Block> blocks_;

  std::map<ContractId, std::unique_ptr<Contract>> contracts_;
  std::vector<ContractId> published_order_;
  ContractId next_contract_id_ = 1;

  std::size_t tx_count_ = 0;
  std::size_t failed_tx_count_ = 0;
  std::size_t payload_storage_bytes_ = 0;
  std::size_t call_payload_bytes_ = 0;
  std::vector<std::string> trace_;
};

}  // namespace xswap::chain
