// A simulated blockchain ledger (§2.2).
//
// Provides the paper's blockchain abstraction: clients submit transactions
// (asset transfers, contract publications, contract calls); the ledger
// seals them into Merkle-committed blocks on a fixed period driven by the
// discrete-event simulator. Submitted transactions execute at the next
// seal and become *visible* to observers only then — so one "publish +
// confirm" round trip costs up to one seal period, and the paper's Δ must
// be at least that (the protocol engine enforces the margin).
//
// State layout is built for the per-transaction hot path: addresses and
// asset symbols are interned into dense ids at first use (an
// unordered_map at the intern boundary only), and balances, supplies,
// and contracts live in id-indexed flat vectors. The classic nested-map
// views (balances(), unique_owners()) are compatibility shims that
// materialize on demand for audits and tests.
//
// The ledger also keeps the bookkeeping the benchmarks need: per-chain
// storage bytes (Theorem 4.10), transaction and call counts, and — when a
// TraceSink is attached (chain/trace.hpp) — an event trace for the
// figure-reproduction harnesses. With no sink (the default) the hot path
// does zero trace formatting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chain/asset.hpp"
#include "chain/block.hpp"
#include "chain/contract.hpp"
#include "chain/trace.hpp"
#include "chain/transaction.hpp"
#include "sim/simulator.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace xswap::chain {

class BlockStore;

/// Striped per-chain-name locks for concurrent component execution.
///
/// Component swaps are share-nothing (each SwapEngine builds its own
/// Ledger instances), but two components — or two books in a fleet —
/// may model the *same underlying chain* (equal chain names). The
/// paper's §2.2 ledger abstraction serializes each chain's seals; the
/// registry preserves that below component granularity: every ledger
/// with the same name maps onto the same lock stripe, so same-chain
/// seal critical sections serialize across concurrently running
/// components while disjoint chains (different stripes) proceed in
/// parallel. Which component wins a stripe first is immaterial to
/// results — each Ledger instance still applies its own transactions in
/// deterministic simulated (time, seq) order, and batch aggregation is
/// index-ordered — so trace hashes and reports stay bit-identical to
/// the serial schedule (the golden determinism gate asserts this).
/// LIFETIME CONTRACT: Ledger::set_chain_locks stores a raw pointer into
/// this registry's stripe array, so the registry must outlive every
/// ledger attached to it (detach with set_chain_locks(nullptr) first
/// otherwise). Attached ledgers are refcounted and the destructor
/// asserts the count is zero in debug builds; attached_ledgers() exposes
/// it for tests.
class ChainLockRegistry {
 public:
  static constexpr std::size_t kDefaultStripes = 64;

  explicit ChainLockRegistry(std::size_t stripes = kDefaultStripes);
  ~ChainLockRegistry();

  ChainLockRegistry(const ChainLockRegistry&) = delete;
  ChainLockRegistry& operator=(const ChainLockRegistry&) = delete;

  /// The stripe serializing `chain_name`'s seals (stable for the
  /// registry's lifetime; distinct names may share a stripe).
  util::Mutex& stripe_for(const std::string& chain_name);

  std::size_t stripe_count() const { return stripe_count_; }

  /// Ledgers currently holding a stripe pointer into this registry
  /// (must be zero at destruction — see the lifetime contract above).
  std::size_t attached_ledgers() const {
    return attached_.load(std::memory_order_relaxed);
  }

  /// Process-wide registry, the default home for fleet runs.
  static ChainLockRegistry& global();

 private:
  friend class Ledger;  // attach/detach bookkeeping from set_chain_locks
  void attach() { attached_.fetch_add(1, std::memory_order_relaxed); }
  void detach() { attached_.fetch_sub(1, std::memory_order_relaxed); }

  std::unique_ptr<util::Mutex[]> stripes_;
  std::size_t stripe_count_;
  std::atomic<std::size_t> attached_{0};
};

/// A single blockchain. Each arc of a swap digraph runs on its own Ledger
/// (plus optionally one shared broadcast chain, §4.5).
class Ledger {
 public:
  /// Dense id of an interned account address (assigned at first use).
  using AccountId = std::uint32_t;
  /// Dense id of an interned fungible-asset symbol.
  using SymbolId = std::uint32_t;
  static constexpr std::uint32_t kNoId = 0xffffffffu;

  /// `seal_period`: ticks between blocks. The genesis block is sealed
  /// immediately; subsequent seals happen every `seal_period` ticks once
  /// start() is called.
  Ledger(std::string name, sim::Simulator& sim, sim::Duration seal_period = 1);

  /// Detaches from the chain-lock registry, if any (see set_chain_locks
  /// and the ChainLockRegistry lifetime contract).
  ~Ledger();

  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  const std::string& name() const { return name_; }

  /// Begin sealing blocks (schedules the periodic seal event).
  void start();
  /// Stop sealing after the current tick (lets simulations drain).
  void stop() { running_ = false; }

  /// Extra ticks between a client's submission and the transaction
  /// entering the mempool — models a congested or slow chain. The
  /// paper's Δ must cover seal_period + submit_delay for its timing
  /// analysis to apply; the ablation benches deliberately violate this.
  void set_submit_delay(sim::Duration delay) { submit_delay_ = delay; }
  sim::Duration submit_delay() const { return submit_delay_; }

  /// Per-submission network-fault hook: called once per submitted
  /// transaction with the submission time; the returned ticks are added
  /// on top of submit_delay before the transaction enters the mempool.
  /// Seeded fault models (swap/netmodel.hpp) use this to inject latency
  /// jitter, client-retried drops, and timed partitions without
  /// touching the sealing path. Null (the default) costs nothing. The Δ
  /// timing contract extends to the hook's worst case — the engine
  /// validates Δ against NetworkModel::max_extra_delay().
  using SubmitFault = std::function<sim::Duration(sim::Time)>;
  void set_submit_fault(SubmitFault fault) { submit_fault_ = std::move(fault); }

  /// Submissions the fault hook has delayed so far (fault-injection
  /// observability for tests and the fuzz report).
  std::size_t perturbed_submissions() const { return perturbed_submissions_; }

  /// Serialize this chain's seal critical sections through `registry`'s
  /// stripe for the chain name (nullptr — the default — means no
  /// cross-component lock). Enables running components that model the
  /// same chain concurrently while keeping per-ledger serialization.
  /// The registry must outlive this ledger or be detached first by
  /// calling set_chain_locks(nullptr); attachment is refcounted so the
  /// registry can assert the contract at destruction.
  void set_chain_locks(ChainLockRegistry* registry);

  // ---- Assets ----

  /// Genesis allocation: credit `owner` with `asset` out of thin air.
  void mint(const Address& owner, const Asset& asset);

  /// Fungible balance of `owner` for `symbol`.
  std::uint64_t balance(const Address& owner, const std::string& symbol) const;

  /// Current owner of a unique token, if it exists on this chain.
  std::optional<Address> owner_of(const std::string& symbol,
                                  const std::string& unique_id) const;

  /// True iff `owner` can currently pay `asset` (balance or token).
  bool owns(const Address& owner, const Asset& asset) const;

  /// Sum of `symbol` across all accounts (conservation audits: transfers
  /// never change total supply; only mint() does). O(1): supplies are
  /// tracked per interned symbol at mint time.
  std::uint64_t total_supply(const std::string& symbol) const;

  /// All nonzero fungible balances (owner → symbol → amount), for
  /// audits. Compatibility shim over the id-indexed tables: materialized
  /// on demand, so call it for inspection, not in a hot loop.
  std::map<Address, std::map<std::string, std::uint64_t>> balances() const;

  /// All unique-token owners ((symbol, id) → owner), for audits.
  /// Materialized on demand like balances().
  std::map<std::pair<std::string, std::string>, Address> unique_owners() const;

  /// Move `asset` from `from` to `to`; throws std::runtime_error when
  /// `from` cannot pay. Contracts use this to take escrow and to pay out.
  void transfer(const Address& from, const Address& to, const Asset& asset);

  // ---- Contracts ----

  /// Submit a contract for publication. The id is assigned immediately;
  /// escrow is taken and the contract becomes visible at the next seal.
  /// `payload_bytes` is the storage charged for the publication tx (the
  /// contract adds its own storage_bytes() on top).
  ContractId submit_contract(const Address& sender,
                             std::unique_ptr<Contract> contract,
                             std::size_t payload_bytes);

  /// Submit a call to a published contract's entry point. `method` labels
  /// the trace; `payload_bytes` models the call-argument size (hashkeys
  /// with their signature chains are big — that is the |A|·|L| term of
  /// the communication bound). `fn` performs the typed invocation; any
  /// exception it throws marks the transaction failed without aborting
  /// the simulation.
  using CallFn = std::function<void(Contract&, const CallContext&)>;
  void submit_call(const Address& sender, ContractId id, std::string method,
                   std::size_t payload_bytes, CallFn fn);

  /// Read-only view of a *published* contract (nullptr before the sealing
  /// block, or for unknown ids). Observers may inspect but never mutate.
  const Contract* get_contract(ContractId id) const {
    return id >= 1 && id <= contracts_.size() ? contracts_[id - 1].get()
                                              : nullptr;
  }

  /// Ids of all published contracts, in publication order.
  const std::vector<ContractId>& published_contracts() const {
    return published_order_;
  }

  // ---- Chain data ----

  /// Sealed blocks, oldest first. Forces any deferred seal hashing
  /// first (see seal_batch), so observers always see complete headers.
  const std::vector<Block>& blocks() const {
    seal_batch();
    return blocks_;
  }

  /// Batched sealing: seal() executes transactions at the seal tick but
  /// defers the block's Merkle root and hash-chain link; this flushes
  /// every queued block's header in ONE pass (shared leaf scratch, zero
  /// per-block allocation) instead of one Merkle pass per seal. Called
  /// automatically by blocks()/verify_integrity(); idempotent and cheap
  /// when nothing is queued. Deferral is invisible to the protocol —
  /// contract visibility and balances change at the seal tick as before;
  /// only tamper-evidence bookkeeping moves out of the hot loop.
  void seal_batch() const;

  /// Verify hash-chain links and Merkle roots of every sealed block.
  bool verify_integrity() const;

  /// First failing block of a diagnostic verify_integrity pass.
  struct IntegrityFailure {
    enum class Check : std::uint8_t {
      kTxRoot,    // Merkle root does not match the block's transactions
      kPrevHash,  // hash-chain link does not match the previous header
    };
    std::uint64_t height = 0;
    Check check = Check::kTxRoot;
  };

  /// Diagnostic overload: like verify_integrity(), but on failure also
  /// reports the first failing block and which check failed (`failure`
  /// may be null). Recovery error messages are built from this.
  bool verify_integrity(IntegrityFailure* failure) const;

  // ---- Durability ----

  /// Attach a durability store (non-owning; nullptr detaches). Must be
  /// called on a fresh ledger — before start(), mint(), or any
  /// submission — so the journal covers the chain from genesis; throws
  /// std::logic_error otherwise. The genesis header is journaled (and
  /// committed) immediately. The store must outlive the ledger or be
  /// detached first.
  void attach_store(BlockStore* store);

  /// Recovery replay: re-install a block previously journaled by
  /// seal_batch, header included, WITHOUT re-executing transactions
  /// (contracts are native objects — see persist/durable_ledger.hpp for
  /// the recovery semantics). Only callable before start(); height 0
  /// replaces the constructed genesis, and every later height must
  /// chain directly after the current tip (throws std::invalid_argument
  /// otherwise — duplicated or reordered journal records surface here).
  void restore_sealed_block(Block block);

  /// Total bytes stored on this chain: transaction payloads plus live
  /// contract state (Theorem 4.10's measure).
  std::size_t storage_bytes() const;

  std::size_t transaction_count() const { return tx_count_; }
  std::size_t failed_transaction_count() const { return failed_tx_count_; }
  std::size_t call_payload_bytes() const { return call_payload_bytes_; }

  // ---- Tracing ----

  /// Attach a sink receiving one formatted line per ledger action
  /// (non-owning; pass nullptr to detach). No sink — the default — means
  /// the hot path skips all trace formatting.
  void set_trace_sink(TraceSink* sink) { trace_sink_ = sink; }

  /// Convenience: own a StringTraceSink and route tracing to it, making
  /// trace() return its lines (idempotent).
  void enable_trace();

  bool tracing() const { return trace_sink_ != nullptr; }

  /// Human-readable event trace ("[12] publish swap ...") collected by
  /// the owned sink of enable_trace(); empty when tracing was never
  /// enabled (or routed to an external sink).
  const std::vector<std::string>& trace() const;

 private:
  struct PendingTx {
    Transaction tx;
    // Exactly one of these is set for publish/call transactions.
    std::unique_ptr<Contract> to_publish;
    ContractId target = 0;
    CallFn call;
  };

  struct UniqueKeyHash {
    std::size_t operator()(const std::pair<std::string, std::string>& k) const {
      const std::size_t h1 = std::hash<std::string>{}(k.first);
      const std::size_t h2 = std::hash<std::string>{}(k.second);
      return h1 ^ (h2 + 0x9e3779b97f4a7c15ull + (h1 << 6) + (h1 >> 2));
    }
  };

  // Interning: dense ids assigned at first use; const lookups never
  // intern (absent names mean zero balance / no owner).
  AccountId intern_account(const Address& name);
  AccountId find_account(const Address& name) const;
  SymbolId intern_symbol(const std::string& symbol);
  SymbolId find_symbol(const std::string& symbol) const;
  /// Mutable balance cell, growing the account's row on demand.
  std::uint64_t& balance_slot(AccountId account, SymbolId symbol);

  void seal();
  void seal_locked();
  void execute(PendingTx& p, Transaction& tx);
  void record(std::string line) { trace_sink_->record(std::move(line)); }
  void enqueue(PendingTx p);

  std::string name_;
  sim::Simulator& sim_;
  sim::Duration seal_period_;
  sim::Duration submit_delay_ = 0;
  SubmitFault submit_fault_;
  std::size_t perturbed_submissions_ = 0;
  bool running_ = false;
  bool started_ = false;

  // Id-indexed asset state. balances_tab_ rows are ragged (grown to the
  // highest symbol a given account ever touched); supply_ is per symbol.
  std::unordered_map<std::string, AccountId> account_ids_;
  std::vector<Address> account_names_;
  std::vector<std::vector<std::uint64_t>> balances_tab_;
  std::unordered_map<std::string, SymbolId> symbol_ids_;
  std::vector<std::string> symbol_names_;
  std::vector<std::uint64_t> supply_;
  std::unordered_map<std::pair<std::string, std::string>, AccountId,
                     UniqueKeyHash>
      unique_owner_ids_;

  std::vector<PendingTx> mempool_;
  // Deferred-header state: blocks_[hashed_blocks_..] have executed their
  // transactions but carry zero tx_root/prev_hash until seal_batch()
  // fills them (lazily, from const observers — hence mutable, with the
  // flush mutex keeping concurrent const readers of a finished ledger
  // as safe as the pure getter they used to call).
  // blocks_ itself is synchronized by the run protocol, not a mutex:
  // seal_locked() appends on the simulation thread while the run is in
  // flight, and concurrent const observers are only allowed on a
  // finished ledger (the documented BatchReport aggregation contract),
  // where the flush mutex below makes header completion safe.
  mutable std::vector<Block> blocks_;
  mutable util::Mutex flush_mutex_;
  mutable std::size_t hashed_blocks_
      XSWAP_GUARDED_BY(flush_mutex_) = 1;  // genesis header is eager
  mutable std::vector<crypto::Digest256> leaf_scratch_
      XSWAP_GUARDED_BY(flush_mutex_);

  // Cross-component seal serialization (nullptr = not shared). Held by
  // seal() across transaction execution — the §2.2 critical section —
  // and never by any public entry point, so contract callbacks may call
  // blocks()/verify_integrity()/seal_batch() without self-deadlock.
  // Points into lock_registry_'s stripe array; the registry must
  // outlive this ledger (refcounted, asserted by the registry's dtor).
  util::Mutex* seal_stripe_ = nullptr;
  ChainLockRegistry* lock_registry_ = nullptr;

  // Contract ids are dense (assigned sequentially from 1), so the live
  // table is a vector indexed by id-1; unpublished slots hold nullptr.
  std::vector<std::unique_ptr<Contract>> contracts_;
  std::vector<ContractId> published_order_;
  ContractId next_contract_id_ = 1;

  std::size_t tx_count_ = 0;
  std::size_t failed_tx_count_ = 0;
  std::size_t payload_storage_bytes_ = 0;
  std::size_t call_payload_bytes_ = 0;

  TraceSink* trace_sink_ = nullptr;
  std::unique_ptr<StringTraceSink> owned_trace_;

  // Durability store (nullptr = in-memory only, the default). mint()
  // and seal_batch() journal through it; seal_locked() forces a header
  // flush whenever `group_blocks()` sealed blocks are queued, which is
  // how group commit rides the existing deferred-hashing batch.
  BlockStore* store_ = nullptr;
};

const char* to_string(Ledger::IntegrityFailure::Check check);

}  // namespace xswap::chain
