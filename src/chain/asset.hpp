// Assets transferable on a simulated blockchain.
//
// The paper's examples swap fungible cryptocurrency (bitcoin, alt-coin)
// and a non-fungible automobile title. Both are modeled: a fungible asset
// is an amount of a symbol, a unique asset is a (symbol, id) token.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.hpp"

namespace xswap::chain {

/// A transferable asset: a fungible lot ("25 BTC") or a unique token
/// ("TITLE cadillac-vin-1957").
struct Asset {
  std::string symbol;
  std::uint64_t amount = 0;   // fungible quantity; 1 for unique assets
  bool fungible = true;
  std::string unique_id;      // empty for fungible assets

  /// Fungible lot of `amount` units of `symbol`.
  static Asset coins(std::string symbol, std::uint64_t amount);

  /// Unique (non-fungible) token.
  static Asset unique(std::string symbol, std::string id);

  /// Human-readable description ("25 BTC", "TITLE#cadillac").
  std::string to_string() const;

  /// Canonical byte encoding, used for hashing and storage accounting.
  util::Bytes encode() const;

  bool operator==(const Asset&) const = default;
};

}  // namespace xswap::chain
