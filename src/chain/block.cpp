#include "chain/block.hpp"

namespace xswap::chain {

crypto::Digest256 Block::hash() const {
  util::Bytes enc = util::be64(height);
  util::append(enc, util::be64(sealed_at));
  util::append(enc, util::BytesView(prev_hash.data(), prev_hash.size()));
  util::append(enc, util::BytesView(tx_root.data(), tx_root.size()));
  return crypto::sha256(enc);
}

crypto::Digest256 Block::compute_tx_root() const {
  std::vector<crypto::Digest256> leaves;
  return compute_tx_root(leaves);
}

crypto::Digest256 Block::compute_tx_root(
    std::vector<crypto::Digest256>& leaf_scratch) const {
  leaf_scratch.clear();
  leaf_scratch.reserve(txs.size());
  for (const Transaction& tx : txs) leaf_scratch.push_back(tx.digest());
  return merkle_root_inplace(leaf_scratch);
}

}  // namespace xswap::chain
