// Durability hook for Ledger (implemented by persist/LedgerJournal).
//
// chain/ stays free of file I/O and of any dependency on the persist
// layer: the ledger journals through this abstract interface exactly the
// way it traces through TraceSink. A store receives genesis allocations
// (append_mint) and completed block headers (append_block, called from
// seal_batch once prev_hash/tx_root are filled), plus a commit() at each
// group boundary. group_blocks() tells the ledger how many sealed blocks
// may queue before it forces a header flush — the group-commit cadence.
#pragma once

#include <cstddef>

#include "chain/asset.hpp"
#include "chain/transaction.hpp"

namespace xswap::chain {

struct Block;

class BlockStore {
 public:
  virtual ~BlockStore() = default;

  /// Journal a genesis allocation (mint happens outside any block).
  virtual void append_mint(const Address& owner, const Asset& asset) = 0;

  /// Journal a sealed block whose header (prev_hash, tx_root) is
  /// complete. Called from seal_batch in height order.
  virtual void append_block(const Block& block) = 0;

  /// Group-commit boundary: everything appended so far must reach the
  /// OS (and stable storage, per the store's fsync policy).
  virtual void commit() = 0;

  /// Sealed blocks that may queue unflushed before the ledger forces a
  /// seal_batch (1 = flush-per-block, the `always` fsync policy).
  virtual std::size_t group_blocks() const = 0;
};

}  // namespace xswap::chain
