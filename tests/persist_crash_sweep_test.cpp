// Crash-point sweep over the pinned 16-component adversarial run.
//
// The book is run once with durability on; then, for EVERY record
// boundary of every chain journal it wrote, a crash is simulated by
// truncating a copy of the journal at that boundary (clean cut and
// torn-tail variant both) and recovering it. Recovery must always
// yield exactly the sealed prefix — verified hash chain, Merkle roots,
// and record counts — never a partial or reordered state. Together
// with the golden-trace check below this pins the durability
// contract: journaling is observational (bit-identical traces with it
// on or off), and a crash at any write boundary loses at most the
// final, uncommitted record.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "crypto/sha256.hpp"
#include "persist/durable_ledger.hpp"
#include "swap/scenario.hpp"
#include "util/bytes.hpp"

namespace xswap::swap {
namespace {

// The golden-trace witness of tests/sim_determinism_test.cpp: the same
// book journaled to disk must reproduce it bit for bit.
constexpr char kGoldenTraceSha256[] =
    "250830b80726156c07a6ef84faf2cccfabc4566b680db2891fd31ba630062cd1";

/// The 16-component adversarial book of sim_determinism_test.cpp:
/// twelve 3-party rings and four 4-party rings, one deviation flavour
/// per afflicted ring (delta = 6, seed 987).
ScenarioBuilder adversarial_book(bool tracing) {
  ScenarioBuilder builder;
  for (std::size_t r = 0; r < 16; ++r) {
    const std::string tag = "R" + std::to_string(r);
    const std::string chain = "ring" + std::to_string(r) + "-";
    const std::string a = tag + "A", b = tag + "B", c = tag + "C";
    const std::string sr = std::to_string(r);
    if (r % 4 == 3) {
      const std::string d4 = tag + "D";
      builder.offer(a, b, chain + "0", chain::Asset::coins("S" + sr, 5))
          .offer(b, c, chain + "1", chain::Asset::coins("T" + sr, 7))
          .offer(c, d4, chain + "2", chain::Asset::unique("NFT" + sr, "id" + sr))
          .offer(d4, a, chain + "3", chain::Asset::coins("U" + sr, 2));
    } else {
      builder.offer(a, b, chain + "0", chain::Asset::coins("S" + sr, 5))
          .offer(b, c, chain + "1", chain::Asset::coins("T" + sr, 7))
          .offer(c, a, chain + "2", chain::Asset::coins("U" + sr, 2));
    }
  }
  builder.seed(987).delta(6).trace(tracing);
  builder.strategy("R1B", strategy_from_spec("crash:10", 6));
  builder.strategy("R3C", strategy_from_spec("withhold", 6));
  builder.strategy("R5A", strategy_from_spec("silent", 6));
  builder.strategy("R7B", strategy_from_spec("corrupt", 6));
  builder.strategy("R9C", strategy_from_spec("late:20", 6));
  builder.strategy("R11A", strategy_from_spec("crash:4", 6));
  return builder;
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/xswap_sweep_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string golden_trace_sha(const Scenario& scenario) {
  std::string text;
  for (std::size_t i = 0; i < scenario.swap_count(); ++i) {
    const SwapEngine& engine = scenario.engine(i);
    for (const std::string& name : engine.chain_names()) {
      text += "== swap" + std::to_string(i) + " chain " + name + " ==\n";
      for (const std::string& line : engine.ledger(name).trace()) {
        text += line;
        text += '\n';
      }
    }
  }
  return util::to_hex(crypto::sha256(util::Bytes(text.begin(), text.end())));
}

/// Re-journal the first `count` records into a fresh directory — the
/// on-disk state of a process that crashed right after that record's
/// write+commit returned.
void write_prefix(const std::vector<util::Bytes>& records, std::size_t count,
                  const std::string& dir) {
  std::filesystem::remove_all(dir);
  persist::SegmentStore store(dir, {});
  for (std::size_t i = 0; i < count; ++i) store.append(records[i]);
  store.flush(/*fsync=*/false);
}

/// Append a partial frame header to the journal's last segment — the
/// on-disk state of a crash MID-write of the next record.
void tear_tail(const std::string& dir) {
  const std::vector<std::string> files = persist::segment_files(dir);
  ASSERT_FALSE(files.empty());
  std::ofstream out(files.back(), std::ios::binary | std::ios::app);
  const char garbage[4] = {0x00, 0x00, 0x00, 0x2a};
  out.write(garbage, sizeof garbage);
  ASSERT_TRUE(out.good());
}

struct PrefixShape {
  std::size_t mints = 0;
  std::size_t blocks = 0;
};

PrefixShape shape_of(const std::vector<util::Bytes>& records,
                     std::size_t count) {
  PrefixShape shape;
  for (std::size_t i = 0; i < count; ++i) {
    const persist::JournalRecord rec = persist::decode_record(records[i]);
    if (rec.kind == persist::JournalRecord::Kind::kMint) {
      ++shape.mints;
    } else {
      ++shape.blocks;
    }
  }
  return shape;
}

TEST(CrashSweep, EveryRecordBoundaryOfThePinnedRunRecovers) {
  const std::string dir = fresh_dir("book");
  Scenario scenario = adversarial_book(/*tracing=*/true).durable(dir).build();
  const BatchReport batch = scenario.run();

  // Durability is observational: the journaled run reproduces the
  // golden trace and report exactly.
  EXPECT_EQ(batch.swaps_fully_triggered, 12u);
  EXPECT_TRUE(batch.no_conforming_underwater);
  EXPECT_EQ(batch.total_transactions, 131u);
  EXPECT_EQ(golden_trace_sha(scenario), kGoldenTraceSha256);

  const std::string scratch = fresh_dir("scratch");
  std::size_t journals = 0, boundaries = 0;
  for (std::size_t i = 0; i < scenario.swap_count(); ++i) {
    const SwapEngine& engine = scenario.engine(i);
    for (const std::string& name : engine.chain_names()) {
      const std::string jdir = dir + "/swap-" + std::to_string(i) + "/" +
                               persist::sanitize_chain_dir(name);
      const persist::RecordScan scan = persist::read_records(jdir);
      ASSERT_FALSE(scan.torn_tail) << jdir;
      ASSERT_FALSE(scan.records.empty()) << jdir;
      ++journals;

      // The intact journal replays to the live ledger, bit for bit.
      const chain::Ledger& live = engine.ledger(name);
      const persist::RecoveredLedger full =
          persist::recover_ledger(jdir, name);
      ASSERT_EQ(full.ledger->blocks().size(), live.blocks().size()) << jdir;
      EXPECT_EQ(full.ledger->blocks().back().hash(),
                live.blocks().back().hash())
          << jdir;

      // Crash at every record boundary: the sealed prefix — and nothing
      // else — comes back, clean cut or torn mid-write.
      for (std::size_t k = 0; k <= scan.records.size(); ++k) {
        const PrefixShape expected = shape_of(scan.records, k);
        write_prefix(scan.records, k, scratch);
        {
          const persist::RecoveredLedger got =
              persist::recover_ledger(scratch, name);
          EXPECT_FALSE(got.report.torn_tail) << jdir << " @" << k;
          EXPECT_EQ(got.report.mints, expected.mints) << jdir << " @" << k;
          EXPECT_EQ(got.report.blocks, expected.blocks) << jdir << " @" << k;
          EXPECT_TRUE(got.ledger->verify_integrity()) << jdir << " @" << k;
        }
        tear_tail(scratch);
        {
          const persist::RecoveredLedger got =
              persist::recover_ledger(scratch, name);
          EXPECT_TRUE(got.report.torn_tail) << jdir << " @" << k;
          EXPECT_EQ(got.report.mints, expected.mints) << jdir << " @" << k;
          EXPECT_EQ(got.report.blocks, expected.blocks) << jdir << " @" << k;
          EXPECT_TRUE(got.ledger->verify_integrity()) << jdir << " @" << k;
        }
        ++boundaries;
      }
    }
  }
  // 12 three-chain rings + 4 four-chain rings = 52 journals; make sure
  // the sweep actually covered them (and did real work per journal).
  EXPECT_EQ(journals, 52u);
  EXPECT_GT(boundaries, journals);
}

TEST(CrashSweep, DurabilityOffAndOnAreBitIdentical) {
  // The same book with durability OFF: identical trace hash, so the
  // journaling hooks cost nothing observable (the golden determinism
  // gate holds with the feature both ways).
  Scenario off = adversarial_book(/*tracing=*/true).build();
  off.run();
  Scenario on =
      adversarial_book(/*tracing=*/true).durable(fresh_dir("onoff")).build();
  on.run();
  EXPECT_EQ(golden_trace_sha(off), golden_trace_sha(on));
  EXPECT_EQ(golden_trace_sha(on), kGoldenTraceSha256);
}

}  // namespace
}  // namespace xswap::swap
