// IncrementalClearing (serve/incremental.hpp) against its ground truth:
// after EVERY add/expire, decomposition() must equal
// decompose_offers(live offers) — operator== equal, field for field,
// ordering included — because the service's golden gate (streaming ≡
// batch) rests entirely on this invariant. The economics claims
// (incremental refreshes dominate, cache reuse happens, max_dirty = 1
// never goes full) are asserted on the same runs.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "serve/incremental.hpp"
#include "util/rng.hpp"

namespace xswap::serve {
namespace {

swap::Offer offer(const std::string& from, const std::string& to,
                  const std::string& chain, std::uint64_t amount = 1) {
  return swap::Offer{from, to, chain, chain::Asset::coins("TOK", amount)};
}

/// Apply + assert the ground-truth equivalence in one step.
void add_checked(IncrementalClearing& inc, std::vector<swap::Offer>& mirror,
                 swap::Offer o) {
  mirror.push_back(o);
  inc.add(std::move(o));
  ASSERT_EQ(inc.decomposition(), swap::decompose_offers(mirror));
}

void expire_checked(IncrementalClearing& inc,
                    std::vector<swap::Offer>& mirror, const swap::Offer& o) {
  const std::string key = swap::offer_key(o);
  for (auto it = mirror.begin(); it != mirror.end(); ++it) {
    if (swap::offer_key(*it) == key) {
      mirror.erase(it);
      break;
    }
  }
  inc.expire(o);
  ASSERT_EQ(inc.decomposition(), swap::decompose_offers(mirror));
}

TEST(IncrementalClearing, RejectsMalformedOffersAndBadOptions) {
  EXPECT_THROW(IncrementalClearing(IncrementalOptions{-0.1, {}}),
               std::invalid_argument);
  IncrementalClearing inc;
  EXPECT_THROW(inc.add(offer("A", "A", "ch")), std::invalid_argument);
  EXPECT_THROW(inc.add(offer("", "B", "ch")), std::invalid_argument);
  EXPECT_THROW(inc.add(offer("A", "", "ch")), std::invalid_argument);
  EXPECT_THROW(inc.add(offer("A", "B", "")), std::invalid_argument);
  inc.add(offer("A", "B", "ch"));
  EXPECT_THROW(inc.add(offer("A", "B", "ch")), std::invalid_argument);
  EXPECT_THROW(inc.expire(offer("A", "B", "other")), std::invalid_argument);
  EXPECT_EQ(inc.live_offer_count(), 1u);
}

TEST(IncrementalClearing, MergeAndSplitTrackTheBatchDecomposition) {
  IncrementalClearing inc;
  std::vector<swap::Offer> mirror;

  // Two independent 2-cycles.
  add_checked(inc, mirror, offer("A", "B", "c1"));
  add_checked(inc, mirror, offer("B", "A", "c2"));
  add_checked(inc, mirror, offer("C", "D", "c3"));
  add_checked(inc, mirror, offer("D", "C", "c4"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 2u);
  EXPECT_EQ(inc.live_party_count(), 4u);

  // Bridge B↔C: all four parties merge into ONE component — exactly the
  // shape a greedy clear-on-cycle streaming rule would get wrong.
  add_checked(inc, mirror, offer("B", "C", "c5"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 2u);  // B→C alone: cross
  add_checked(inc, mirror, offer("C", "B", "c6"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 1u);
  EXPECT_EQ(inc.decomposition().swaps[0].party_names.size(), 4u);

  // Expiring one bridge arc splits the merged component back apart.
  expire_checked(inc, mirror, offer("C", "B", "c6"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 2u);
  expire_checked(inc, mirror, offer("B", "C", "c5"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 2u);

  // An expired identity may be re-added.
  add_checked(inc, mirror, offer("B", "C", "c5"));
  add_checked(inc, mirror, offer("C", "B", "c6"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 1u);
}

TEST(IncrementalClearing, ConsumeRemovesMatchedKeepsUnmatchedLive) {
  IncrementalClearing inc;
  inc.add(offer("A", "B", "c1"));
  inc.add(offer("B", "C", "c2"));
  inc.add(offer("C", "A", "c3"));
  inc.add(offer("D", "E", "c4"));  // no counterparty — unmatched
  ASSERT_EQ(inc.decomposition().swaps.size(), 1u);

  const swap::Decomposition cleared = inc.consume();
  EXPECT_EQ(cleared.swaps.size(), 1u);
  ASSERT_EQ(cleared.unmatched.size(), 1u);
  EXPECT_EQ(cleared.unmatched[0].from, "D");

  // The ring's offers are consumed; D→E stays live awaiting E→D.
  EXPECT_EQ(inc.live_offer_count(), 1u);
  EXPECT_EQ(inc.decomposition().swaps.size(), 0u);
  EXPECT_EQ(inc.decomposition(), swap::decompose_offers(inc.live_offers()));

  // The counterparty finally arrives: the leftover clears.
  inc.add(offer("E", "D", "c5"));
  EXPECT_EQ(inc.decomposition().swaps.size(), 1u);
  // And consumed identities may be re-submitted (their keys are free).
  inc.add(offer("A", "B", "c1"));
  EXPECT_EQ(inc.live_offer_count(), 3u);
}

/// Seeded generator over a grouped party universe: GROUPS groups of
/// SIZE parties, offers mostly intra-group (components stay small
/// relative to the book — the service's design load), with occasional
/// forward-only cross-group offers (a DAG between groups: never merges,
/// always unmatched).
struct GroupedBook {
  static constexpr std::size_t kGroups = 8;
  static constexpr std::size_t kSize = 4;

  util::Rng rng;
  std::vector<swap::Offer> live;

  explicit GroupedBook(std::uint64_t seed) : rng(seed) {}

  std::string party(std::size_t group, std::size_t member) const {
    return "G" + std::to_string(group) + "P" + std::to_string(member);
  }

  bool is_live(const swap::Offer& o) const {
    const std::string key = swap::offer_key(o);
    for (const swap::Offer& l : live) {
      if (swap::offer_key(l) == key) return true;
    }
    return false;
  }

  /// A fresh (non-live) offer, or nullopt if the draw collided.
  std::optional<swap::Offer> draw_add() {
    const std::size_t group = rng.next_below(kGroups);
    std::string from, to;
    if (rng.next_chance(85, 100) || group + 1 == kGroups) {
      const std::size_t a = rng.next_below(kSize);
      std::size_t b = rng.next_below(kSize - 1);
      if (b >= a) ++b;
      from = party(group, a);
      to = party(group, b);
    } else {
      // Forward-only bridge: group → group + 1 (a DAG, never a cycle).
      from = party(group, rng.next_below(kSize));
      to = party(group + 1, rng.next_below(kSize));
    }
    const char chain = static_cast<char>('x' + rng.next_below(3));
    swap::Offer o = offer(from, to, std::string(1, chain),
                          1 + rng.next_below(4));
    if (is_live(o)) return std::nullopt;
    return o;
  }
};

TEST(IncrementalClearing, RandomizedStepsMatchBatchDecomposition) {
  constexpr std::size_t kSteps = 500;
  IncrementalClearing inc;  // default max_dirty = 0.5
  GroupedBook book(20180807);

  std::size_t mutations = 0;
  while (mutations < kSteps) {
    const bool do_add =
        book.live.empty() || book.rng.next_chance(70, 100);
    if (do_add) {
      const auto o = book.draw_add();
      if (!o.has_value()) continue;  // key collision — redraw
      ASSERT_NO_FATAL_FAILURE(add_checked(inc, book.live, *o));
    } else {
      const swap::Offer victim =
          book.live[book.rng.next_below(book.live.size())];
      ASSERT_NO_FATAL_FAILURE(expire_checked(inc, book.live, victim));
    }
    ++mutations;
  }

  const IncrementalStats& stats = inc.stats();
  EXPECT_EQ(stats.adds + stats.expires, kSteps);
  // The acceptance bar: at the default threshold, fewer than half the
  // refreshes fall back to a full recompute...
  EXPECT_LT(stats.full_recomputes, kSteps / 2);
  EXPECT_LT(stats.full_ratio(), 0.5);
  // ...and the exact-subset cache is doing real work (untouched
  // components reuse their cleared swap instead of re-running FVS).
  EXPECT_GT(stats.components_reused, 0u);
}

TEST(IncrementalClearing, MaxDirtyOneNeverRecomputesFully) {
  IncrementalClearing inc(IncrementalOptions{1.0, {}});
  GroupedBook book(424242);
  std::size_t mutations = 0;
  while (mutations < 120) {
    const bool do_add = book.live.empty() || book.rng.next_chance(70, 100);
    if (do_add) {
      const auto o = book.draw_add();
      if (!o.has_value()) continue;
      ASSERT_NO_FATAL_FAILURE(add_checked(inc, book.live, *o));
    } else {
      const swap::Offer victim =
          book.live[book.rng.next_below(book.live.size())];
      ASSERT_NO_FATAL_FAILURE(expire_checked(inc, book.live, victim));
    }
    ++mutations;
  }
  // The dirty region is a subset of the live parties, so with the
  // threshold at 1.0 nothing can exceed it.
  EXPECT_EQ(inc.stats().full_recomputes, 0u);
  EXPECT_EQ(inc.stats().incremental_updates, 120u);
}

}  // namespace
}  // namespace xswap::serve
