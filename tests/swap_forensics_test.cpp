// Fault forensics (§5): reconstruct who failed an enabled transition
// from public chain data, and settle bonds accordingly.
#include "swap/forensics.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/bonds.hpp"
#include "swap/engine.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

TEST(Forensics, CleanRunBlamesNobody) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  engine.run();
  const FaultReport report = analyze_faults(engine);
  EXPECT_FALSE(report.anyone_at_fault());
  EXPECT_TRUE(report.findings.empty());
  for (graph::ArcId a = 0; a < 3; ++a) {
    EXPECT_TRUE(report.arcs[a].published.has_value());
    EXPECT_TRUE(report.arcs[a].unlocked_at[0].has_value());
  }
}

TEST(Forensics, WithheldContractBlamed) {
  // Bob (follower) never publishes (B,C): Phase One fault on Bob alone.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(1, s);
  engine.run();
  const FaultReport report = analyze_faults(engine);
  EXPECT_TRUE(report.at_fault[1]);
  EXPECT_FALSE(report.at_fault[0]);
  EXPECT_FALSE(report.at_fault[2]);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].kind, FaultKind::kWithheldContract);
}

TEST(Forensics, CrashedLeaderBlamedForSilence) {
  // Leader Alice crashes right after Phase One completes: contracts all
  // exist but she never reveals.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.crash_at = engine.spec().start_time + 3;  // after publishing (A,B)
  engine.set_strategy(0, s);
  engine.run();
  const FaultReport report = analyze_faults(engine);
  EXPECT_TRUE(report.at_fault[0]);
  bool leader_fault = false;
  for (const auto& f : report.findings) {
    if (f.party == 0 && f.kind == FaultKind::kLeaderNeverRevealed) {
      leader_fault = true;
    }
  }
  EXPECT_TRUE(leader_fault);
  EXPECT_FALSE(report.at_fault[1]);
  EXPECT_FALSE(report.at_fault[2]);
}

TEST(Forensics, WithheldUnlockBlamed) {
  // Carol refuses to relay the secret she provably learned (her leaving
  // arc (C,A) was unlocked by Alice).
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_unlocks = true;
  s.withhold_claims = true;
  engine.set_strategy(2, s);
  engine.run();
  const FaultReport report = analyze_faults(engine);
  EXPECT_TRUE(report.at_fault[2]);
  EXPECT_FALSE(report.at_fault[0]);
  EXPECT_FALSE(report.at_fault[1]);
  bool relay_fault = false;
  for (const auto& f : report.findings) {
    if (f.party == 2 && f.kind == FaultKind::kWithheldUnlock) relay_fault = true;
  }
  EXPECT_TRUE(relay_fault);
}

TEST(Forensics, CorruptContractCountsAsWithheld) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.publish_corrupt_contracts = true;
  engine.set_strategy(1, s);
  engine.run();
  const FaultReport report = analyze_faults(engine);
  // No spec-matching contract on Bob's leaving arc: same as withholding.
  EXPECT_TRUE(report.at_fault[1]);
  EXPECT_FALSE(report.at_fault[0]);
  EXPECT_FALSE(report.at_fault[2]);
}

TEST(Forensics, SweepNeverBlamesConformingParties) {
  // Whatever one deviator does, conforming parties are never blamed.
  util::Rng rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.next_below(3);
    const graph::Digraph d = graph::cycle(n);
    SwapEngine engine(d, {0});
    const PartyId deviator = static_cast<PartyId>(rng.next_below(n));
    Strategy s;
    switch (rng.next_below(4)) {
      case 0: s.withhold_contracts = true; break;
      case 1: s.withhold_unlocks = true; break;
      case 2: s.crash_at = engine.spec().start_time + rng.next_below(20); break;
      default: s.publish_corrupt_contracts = true; break;
    }
    engine.set_strategy(deviator, s);
    engine.run();
    const FaultReport report = analyze_faults(engine);
    for (PartyId v = 0; v < n; ++v) {
      if (v != deviator) {
        EXPECT_FALSE(report.at_fault[v])
            << "trial " << trial << ": conforming party " << v << " blamed";
      }
    }
  }
}

// ---- Bond pool ----

class BondTest : public ::testing::Test {
 protected:
  static constexpr const char* kArbiter = "arbiter";

  // Sets up an engine plus a bond chain where every party deposits 10 BND.
  void run_with_bonds(SwapEngine& engine) {
    bond_ledger_ = std::make_unique<chain::Ledger>("bonds", engine.simulator(), 1);
    const auto& spec = engine.spec();
    for (const auto& name : spec.party_names) {
      bond_ledger_->mint(name, chain::Asset::coins("BND", 10));
    }
    pool_id_ = bond_ledger_->submit_contract(
        kArbiter,
        std::make_unique<BondPool>(spec, chain::Asset::coins("BND", 10), kArbiter),
        64);
    bond_ledger_->start();
    for (const auto& name : spec.party_names) {
      // Deposits execute once the pool is published (next seal).
      bond_ledger_->submit_call(
          name, pool_id_, "deposit", 8,
          [](chain::Contract& c, const chain::CallContext& ctx) {
            dynamic_cast<BondPool&>(c).deposit(ctx);
          });
    }
    report_ = engine.run();
    fault_report_ = settle_bonds(engine, *bond_ledger_, pool_id_, kArbiter);
    engine.simulator().run_until(engine.simulator().now() + 2);
  }

  const BondPool& pool() const {
    return *dynamic_cast<const BondPool*>(bond_ledger_->get_contract(pool_id_));
  }

  std::unique_ptr<chain::Ledger> bond_ledger_;
  chain::ContractId pool_id_ = 0;
  SwapReport report_;
  FaultReport fault_report_;
};

TEST_F(BondTest, CleanRunReturnsAllBonds) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  run_with_bonds(engine);
  EXPECT_TRUE(pool().settled());
  EXPECT_FALSE(fault_report_.anyone_at_fault());
  for (const auto& name : engine.spec().party_names) {
    EXPECT_EQ(bond_ledger_->balance(name, "BND"), 10u) << name;
  }
}

TEST_F(BondTest, FaultyPartySlashedOthersCompensated) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(1, s);
  run_with_bonds(engine);
  EXPECT_TRUE(pool().settled());
  EXPECT_TRUE(fault_report_.at_fault[1]);
  // Bob's 10 BND are split between Alice and Carol (5 each on top of
  // their returned bonds).
  EXPECT_EQ(bond_ledger_->balance("P0", "BND"), 15u);
  EXPECT_EQ(bond_ledger_->balance("P1", "BND"), 0u);
  EXPECT_EQ(bond_ledger_->balance("P2", "BND"), 15u);
}

TEST_F(BondTest, DepositRules) {
  sim::Simulator sim;
  chain::Ledger ledger("bonds", sim, 1);
  SwapEngine engine(graph::figure1_triangle(), {0});
  const auto& spec = engine.spec();
  ledger.mint("P0", chain::Asset::coins("BND", 25));
  const auto id = ledger.submit_contract(
      "arb", std::make_unique<BondPool>(spec, chain::Asset::coins("BND", 10), "arb"),
      64);
  ledger.start();
  const auto call_deposit = [&](const std::string& who) {
    ledger.submit_call(who, id, "deposit", 8,
                       [](chain::Contract& c, const chain::CallContext& ctx) {
                         dynamic_cast<BondPool&>(c).deposit(ctx);
                       });
  };
  call_deposit("P0");
  sim.run_until(2);
  call_deposit("P0");       // double deposit fails
  call_deposit("stranger");  // non-party fails
  sim.run_until(4);
  const auto* pool = dynamic_cast<const BondPool*>(ledger.get_contract(id));
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->deposit_count(), 1u);
  EXPECT_EQ(ledger.failed_transaction_count(), 2u);
}

TEST_F(BondTest, SettleRules) {
  sim::Simulator sim;
  chain::Ledger ledger("bonds", sim, 1);
  SwapEngine engine(graph::figure1_triangle(), {0});
  const auto& spec = engine.spec();
  const auto id = ledger.submit_contract(
      "arb", std::make_unique<BondPool>(spec, chain::Asset::coins("BND", 10), "arb"),
      64);
  ledger.start();
  sim.run_until(2);
  const auto call_settle = [&](const std::string& who, std::vector<bool> faults) {
    ledger.submit_call(who, id, "settle", 8,
                       [faults](chain::Contract& c, const chain::CallContext& ctx) {
                         dynamic_cast<BondPool&>(c).settle(ctx, faults);
                       });
  };
  call_settle("impostor", {false, false, false});  // wrong arbiter
  call_settle("arb", {false, false});              // wrong size
  sim.run_until(4);
  EXPECT_EQ(ledger.failed_transaction_count(), 2u);
  call_settle("arb", {false, false, false});
  sim.run_until(6);
  const auto* pool = dynamic_cast<const BondPool*>(ledger.get_contract(id));
  EXPECT_TRUE(pool->settled());
  call_settle("arb", {false, false, false});  // double settle fails
  sim.run_until(8);
  EXPECT_EQ(ledger.failed_transaction_count(), 3u);
}

}  // namespace
}  // namespace xswap::swap
