// Property suite for the layered FVS engine (kernelization +
// branch-and-bound + local-ratio approximation):
//   * every solver output is a valid FVS on 500 seeded random digraphs,
//   * exact results match the historical subset enumeration bit-for-bit,
//   * greedy matches the historical copy-per-removal implementation
//     bit-for-bit (pinned regression reference),
//   * the approximation stays within 2x of exact on all n <= 14 instances,
//   * reduction rules preserve FVS-solution equivalence (the kernel
//     solution lifts to a valid, same-size full-graph FVS).
#include "graph/fvs.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace xswap::graph {
namespace {

// ---- Historical reference implementations (pre-engine semantics) ----

// Enumerate k-subsets of 0..n-1 in lexicographic order, testing each —
// verbatim the old exact solver.
bool ref_try_subsets(const Digraph& d, std::size_t n, std::size_t k,
                     std::vector<VertexId>& out) {
  std::vector<VertexId> subset(k);
  for (std::size_t i = 0; i < k; ++i) subset[i] = static_cast<VertexId>(i);
  while (true) {
    if (is_feedback_vertex_set(d, subset)) {
      out = subset;
      return true;
    }
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (subset[i] != static_cast<VertexId>(n - k + i)) {
        ++subset[i];
        for (std::size_t j = i + 1; j < k; ++j) subset[j] = subset[j - 1] + 1;
        break;
      }
      if (i == 0) return false;
    }
    if (k == 0) return false;
  }
}

std::vector<VertexId> ref_minimum(const Digraph& d) {
  const std::size_t n = d.vertex_count();
  if (is_acyclic(d)) return {};
  for (std::size_t k = 1; k <= n; ++k) {
    std::vector<VertexId> out;
    if (ref_try_subsets(d, n, k, out)) return out;
  }
  return {};  // unreachable: the full vertex set is an FVS
}

// Verbatim the old greedy: one full Digraph copy per removal.
std::vector<VertexId> ref_greedy(const Digraph& d) {
  std::vector<VertexId> chosen;
  Digraph work = d;
  while (!is_acyclic(work)) {
    VertexId best = 0;
    std::size_t best_score = 0;
    for (VertexId v = 0; v < work.vertex_count(); ++v) {
      const std::size_t score =
          (work.in_degree(v) + 1) * (work.out_degree(v) + 1);
      if (work.in_degree(v) > 0 && work.out_degree(v) > 0 &&
          score > best_score) {
        best = v;
        best_score = score;
      }
    }
    chosen.push_back(best);
    work = work.without_vertices({best});
  }
  return chosen;
}

// ---- Seeded instance soup: strongly connected, multi-SCC, DAG parts,
// parallel arcs — everything the clearing paths can feed the engine. ----

Digraph random_digraph(util::Rng& rng, std::size_t max_n) {
  const std::size_t kind = rng.next_below(4);
  if (kind == 0) {
    const std::size_t n = 2 + rng.next_below(max_n - 1);
    return random_strongly_connected(n, rng.next_below(2 * n), rng);
  }
  // Arbitrary digraph: random arcs over n vertexes, occasionally with
  // parallel arcs, DAG regions, and several SCCs.
  const std::size_t n = 2 + rng.next_below(max_n - 1);
  const std::size_t arcs = rng.next_below(3 * n + 1);
  Digraph d(n);
  for (std::size_t a = 0; a < arcs; ++a) {
    const VertexId u = static_cast<VertexId>(rng.next_below(n));
    const VertexId v = static_cast<VertexId>(rng.next_below(n));
    if (u != v) d.add_arc(u, v);
  }
  return d;
}

TEST(FvsProperty, EverySolverValidOn500RandomDigraphs) {
  util::Rng rng(20180807);
  for (int trial = 0; trial < 500; ++trial) {
    const Digraph d = random_digraph(rng, 24);
    const FvsResult engine = find_feedback_vertex_set(d);
    EXPECT_TRUE(is_feedback_vertex_set(d, engine.vertices)) << trial;
    EXPECT_GE(engine.vertices.size(), engine.lower_bound) << trial;
    EXPECT_GE(engine.optimality_gap(), 1.0) << trial;
    EXPECT_TRUE(std::is_sorted(engine.vertices.begin(), engine.vertices.end()))
        << trial;
    EXPECT_TRUE(is_feedback_vertex_set(d, greedy_feedback_vertex_set(d)))
        << trial;
  }
}

TEST(FvsProperty, ExactMatchesSubsetEnumerationBitForBit) {
  // Families the old solver was tested on, plus seeded random instances.
  std::vector<Digraph> instances;
  for (std::size_t n = 2; n <= 10; ++n) instances.push_back(cycle(n));
  for (std::size_t n = 2; n <= 7; ++n) instances.push_back(complete(n));
  instances.push_back(two_cycles_sharing_vertex(3, 4));
  instances.push_back(two_cycles_sharing_vertex(4, 5));
  instances.push_back(hub_and_spokes(6));
  instances.push_back(multi_cycle(3, 2));
  instances.push_back(multi_cycle(5, 3));
  util::Rng rng(424242);
  for (int trial = 0; trial < 120; ++trial) {
    instances.push_back(random_digraph(rng, 12));
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    const Digraph& d = instances[i];
    const std::vector<VertexId> reference = ref_minimum(d);
    // The public exact API is pinned to the reference output exactly.
    EXPECT_EQ(minimum_feedback_vertex_set(d), reference) << i;
    // So is the engine while the instance fits its exact budget.
    const FvsResult engine = find_feedback_vertex_set(d);
    ASSERT_TRUE(engine.exact) << i;
    EXPECT_EQ(engine.vertices, reference) << i;
    EXPECT_EQ(engine.lower_bound, reference.size()) << i;
    EXPECT_DOUBLE_EQ(engine.optimality_gap(), 1.0) << i;
  }
}

TEST(FvsProperty, GreedyPinnedToReferenceBitForBit) {
  std::vector<Digraph> instances;
  for (std::size_t n = 2; n <= 12; ++n) instances.push_back(cycle(n));
  for (std::size_t n = 2; n <= 8; ++n) instances.push_back(complete(n));
  instances.push_back(hub_and_spokes(9));
  instances.push_back(multi_cycle(4, 3));
  instances.push_back(two_cycles_sharing_vertex(5, 7));
  util::Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    instances.push_back(random_digraph(rng, 40));
  }
  for (std::size_t i = 0; i < instances.size(); ++i) {
    EXPECT_EQ(greedy_feedback_vertex_set(instances[i]),
              ref_greedy(instances[i]))
        << i;
  }
}

TEST(FvsProperty, ApproxWithinTwiceExactOnSmallInstances) {
  // Force the approximation everywhere (exact budget 0) and compare
  // against the true minimum on every n <= 14 instance.
  FvsOptions approx_only;
  approx_only.max_exact_vertices = 0;
  util::Rng rng(1234);
  for (int trial = 0; trial < 250; ++trial) {
    const Digraph d = random_digraph(rng, 14);
    const FvsResult approx = find_feedback_vertex_set(d, approx_only);
    EXPECT_TRUE(is_feedback_vertex_set(d, approx.vertices)) << trial;
    const std::size_t exact_size = ref_minimum(d).size();
    EXPECT_LE(approx.vertices.size(), 2 * exact_size) << trial;
    EXPECT_LE(approx.lower_bound, exact_size) << trial;
  }
}

TEST(FvsProperty, KernelSolutionLiftsToFullGraph) {
  // Instances past the old 20-vertex exact cap: the engine must still be
  // exact whenever every irreducible kernel fits the budget, and its
  // lifted solution must be a valid FVS of the *original* digraph with
  // the same size as the kernel-level optimum (reduction-equivalence).
  util::Rng rng(5150);
  for (int trial = 0; trial < 60; ++trial) {
    const Digraph d = random_digraph(rng, 60);
    const FvsResult engine = find_feedback_vertex_set(d);
    EXPECT_TRUE(is_feedback_vertex_set(d, engine.vertices)) << trial;
    if (engine.exact) {
      EXPECT_EQ(engine.vertices.size(), engine.lower_bound) << trial;
    }
  }
  // Structured sanity: a 10^3-party cycle kernelizes away entirely.
  const FvsResult ring = find_feedback_vertex_set(cycle(1000));
  EXPECT_TRUE(ring.exact);
  EXPECT_EQ(ring.kernel_vertices, 0u);
  EXPECT_EQ(ring.vertices, std::vector<VertexId>{0});
  // Grouped books keep every SCC inside one group: small kernels, exact
  // answers, gap 1.0 — the shape the serve path feeds the engine.
  util::Rng book_rng(99);
  const Digraph book = grouped_book(50, 6, 4, book_rng);
  const FvsResult cleared = find_feedback_vertex_set(book);
  EXPECT_TRUE(cleared.exact);
  EXPECT_TRUE(is_feedback_vertex_set(book, cleared.vertices));
  EXPECT_DOUBLE_EQ(cleared.optimality_gap(), 1.0);
  // Scale-free books are hub-heavy and not strongly connected; the
  // engine must still produce a valid FVS.
  util::Rng sf_rng(7);
  const Digraph sf = scale_free_book(300, 2, sf_rng);
  const FvsResult sf_result = find_feedback_vertex_set(sf);
  EXPECT_TRUE(is_feedback_vertex_set(sf, sf_result.vertices));
}

TEST(FvsProperty, NodeBudgetExhaustionFallsBackToApprox) {
  // complete(18) is irreducible; a 10-node branch-and-bound budget can't
  // finish, so the engine must fall back to the (still valid)
  // approximation and drop the exact flag.
  FvsOptions tiny;
  tiny.max_bnb_nodes = 10;
  const Digraph d = complete(18);
  const FvsResult result = find_feedback_vertex_set(d, tiny);
  EXPECT_FALSE(result.exact);
  EXPECT_TRUE(is_feedback_vertex_set(d, result.vertices));
  EXPECT_GE(result.vertices.size(), result.lower_bound);
}

TEST(FvsProperty, OptionsKnobWidensExactRange) {
  // complete(18) exceeded the old 16-vertex clearing threshold; under the
  // unified FvsOptions default (24) it is solved exactly, and the result
  // is the lexicographically smallest minimum: drop all but the last.
  const Digraph d = complete(18);
  const FvsResult result = find_feedback_vertex_set(d);
  ASSERT_TRUE(result.exact);
  ASSERT_EQ(result.vertices.size(), 17u);
  for (VertexId v = 0; v < 17; ++v) EXPECT_EQ(result.vertices[v], v);
}

}  // namespace
}  // namespace xswap::graph
