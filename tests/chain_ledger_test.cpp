#include "chain/ledger.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace xswap::chain {
namespace {

// Minimal contract used to exercise the hosting machinery: escrows an
// asset at publication and releases it on demand.
class EscrowContract : public Contract {
 public:
  EscrowContract(Address party, Asset asset)
      : party_(std::move(party)), asset_(std::move(asset)) {}

  std::string type_name() const override { return "escrow"; }
  std::size_t storage_bytes() const override { return asset_.encode().size(); }

  void on_publish(const CallContext& ctx) override {
    ctx.ledger->transfer(party_, contract_address(ctx.self), asset_);
    escrowed_ = true;
  }

  void release(const CallContext& ctx, const Address& to) {
    if (!escrowed_) throw std::runtime_error("nothing escrowed");
    ctx.ledger->transfer(contract_address(ctx.self), to, asset_);
    escrowed_ = false;
  }

  bool escrowed() const { return escrowed_; }

 private:
  Address party_;
  Asset asset_;
  bool escrowed_ = false;
};

class LedgerTest : public ::testing::Test {
 protected:
  LedgerTest() : ledger_("testchain", sim_, /*seal_period=*/2) {
    ledger_.enable_trace();  // tracing is opt-in; tests read it back
    ledger_.mint("alice", Asset::coins("BTC", 100));
    ledger_.mint("carol", Asset::unique("TITLE", "cadillac"));
    ledger_.start();
  }

  sim::Simulator sim_;
  Ledger ledger_;
};

TEST_F(LedgerTest, GenesisBalances) {
  EXPECT_EQ(ledger_.balance("alice", "BTC"), 100u);
  EXPECT_EQ(ledger_.balance("bob", "BTC"), 0u);
  EXPECT_EQ(ledger_.owner_of("TITLE", "cadillac"), "carol");
  EXPECT_FALSE(ledger_.owner_of("TITLE", "ghost").has_value());
}

TEST_F(LedgerTest, MintRejectsDuplicateUnique) {
  EXPECT_THROW(ledger_.mint("bob", Asset::unique("TITLE", "cadillac")),
               std::invalid_argument);
}

TEST_F(LedgerTest, OwnsChecksBothKinds) {
  EXPECT_TRUE(ledger_.owns("alice", Asset::coins("BTC", 100)));
  EXPECT_FALSE(ledger_.owns("alice", Asset::coins("BTC", 101)));
  EXPECT_TRUE(ledger_.owns("carol", Asset::unique("TITLE", "cadillac")));
  EXPECT_FALSE(ledger_.owns("alice", Asset::unique("TITLE", "cadillac")));
}

TEST_F(LedgerTest, TransferMovesAssets) {
  ledger_.transfer("alice", "bob", Asset::coins("BTC", 30));
  EXPECT_EQ(ledger_.balance("alice", "BTC"), 70u);
  EXPECT_EQ(ledger_.balance("bob", "BTC"), 30u);
  EXPECT_THROW(ledger_.transfer("bob", "alice", Asset::coins("BTC", 31)),
               std::runtime_error);
}

TEST_F(LedgerTest, ContractInvisibleUntilSealed) {
  const ContractId id = ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 10)),
      64);
  EXPECT_EQ(ledger_.get_contract(id), nullptr);
  sim_.run_until(2);  // first seal
  ASSERT_NE(ledger_.get_contract(id), nullptr);
  EXPECT_EQ(ledger_.get_contract(id)->type_name(), "escrow");
}

TEST_F(LedgerTest, PublishTakesEscrow) {
  const ContractId id = ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 10)),
      64);
  sim_.run_until(2);
  EXPECT_EQ(ledger_.balance("alice", "BTC"), 90u);
  EXPECT_EQ(ledger_.balance(contract_address(id), "BTC"), 10u);
}

TEST_F(LedgerTest, FailedPublishLeavesNoContract) {
  // bob owns nothing: the escrow hook throws and publication is rejected.
  const ContractId id = ledger_.submit_contract(
      "bob", std::make_unique<EscrowContract>("bob", Asset::coins("BTC", 10)), 64);
  sim_.run_until(2);
  EXPECT_EQ(ledger_.get_contract(id), nullptr);
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(LedgerTest, CallsExecuteAtSeal) {
  const ContractId id = ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 10)),
      64);
  sim_.run_until(2);
  ledger_.submit_call("alice", id, "release", 16,
                      [](Contract& c, const CallContext& ctx) {
                        dynamic_cast<EscrowContract&>(c).release(ctx, "bob");
                      });
  // Not executed yet.
  EXPECT_EQ(ledger_.balance("bob", "BTC"), 0u);
  sim_.run_until(4);
  EXPECT_EQ(ledger_.balance("bob", "BTC"), 10u);
}

TEST_F(LedgerTest, FailingCallIsRecordedNotFatal) {
  const ContractId id = ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 10)),
      64);
  sim_.run_until(2);
  ledger_.submit_call("bob", id, "release", 16,
                      [](Contract& c, const CallContext& ctx) {
                        auto& e = dynamic_cast<EscrowContract&>(c);
                        e.release(ctx, "bob");
                        e.release(ctx, "bob");  // second release throws
                      });
  sim_.run_until(4);
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(LedgerTest, CallToUnpublishedContractFails) {
  ledger_.submit_call("alice", 999, "release", 8,
                      [](Contract&, const CallContext&) {});
  sim_.run_until(2);
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(LedgerTest, BlocksChainAndVerify) {
  ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 1)),
      10);
  sim_.run_until(2);
  ledger_.submit_call("alice", 1, "noop", 4, [](Contract&, const CallContext&) {});
  sim_.run_until(4);
  EXPECT_GE(ledger_.blocks().size(), 3u);  // genesis + 2
  EXPECT_TRUE(ledger_.verify_integrity());
}

TEST_F(LedgerTest, EmptyTicksProduceNoBlocks) {
  sim_.run_until(20);
  EXPECT_EQ(ledger_.blocks().size(), 1u);  // genesis only
}

TEST_F(LedgerTest, StorageAccounting) {
  ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 10)),
      100);
  sim_.run_until(2);
  ledger_.submit_call("alice", 1, "release", 40,
                      [](Contract& c, const CallContext& ctx) {
                        dynamic_cast<EscrowContract&>(c).release(ctx, "bob");
                      });
  sim_.run_until(4);
  // 100 (publish payload) + 40 (call payload) + live contract state.
  EXPECT_GE(ledger_.storage_bytes(), 140u);
  EXPECT_EQ(ledger_.call_payload_bytes(), 40u);
  EXPECT_EQ(ledger_.transaction_count(), 2u);
}

TEST_F(LedgerTest, TraceRecordsEvents) {
  ledger_.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 1)),
      10);
  sim_.run_until(2);
  bool found = false;
  for (const auto& line : ledger_.trace()) {
    if (line.find("publish") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Ledger, TraceOffByDefault) {
  // The null-sink path: no sink attached means no lines and no
  // formatting on the hot path (the acceptance gate for opt-in tracing).
  sim::Simulator sim;
  Ledger ledger("quiet", sim, 1);
  EXPECT_FALSE(ledger.tracing());
  ledger.mint("alice", Asset::coins("BTC", 5));
  ledger.start();
  ledger.submit_contract(
      "alice", std::make_unique<EscrowContract>("alice", Asset::coins("BTC", 1)),
      10);
  sim.run_until(3);
  EXPECT_EQ(ledger.transaction_count(), 1u);
  EXPECT_TRUE(ledger.trace().empty());
}

TEST(Ledger, ExternalTraceSink) {
  sim::Simulator sim;
  Ledger ledger("sunk", sim, 1);
  StringTraceSink sink;
  ledger.set_trace_sink(&sink);
  EXPECT_TRUE(ledger.tracing());
  ledger.mint("alice", Asset::coins("BTC", 5));
  EXPECT_EQ(sink.lines().size(), 1u);
  EXPECT_TRUE(ledger.trace().empty());  // owned trace never enabled
  ledger.set_trace_sink(nullptr);
  ledger.mint("bob", Asset::coins("BTC", 5));
  EXPECT_EQ(sink.lines().size(), 1u);  // detached: no further lines
}

TEST_F(LedgerTest, BalancesViewMaterializes) {
  ledger_.transfer("alice", "bob", Asset::coins("BTC", 30));
  const auto view = ledger_.balances();
  EXPECT_EQ(view.at("alice").at("BTC"), 70u);
  EXPECT_EQ(view.at("bob").at("BTC"), 30u);
  const auto uniques = ledger_.unique_owners();
  EXPECT_EQ(uniques.at({"TITLE", "cadillac"}), "carol");
}

TEST_F(LedgerTest, ZeroAmountTransferIsANoOp) {
  // owns() accepts a zero lot from anyone (0 >= 0), including accounts
  // and symbols the ledger has never seen — the transfer must be a
  // harmless no-op, not an out-of-bounds id lookup.
  Asset zero;  // aggregate: fungible, amount 0, empty symbol
  zero.symbol = "BTC";
  ledger_.transfer("ghost", "bob", zero);
  EXPECT_EQ(ledger_.balance("bob", "BTC"), 0u);
  zero.symbol = "NEVER_MINTED";
  ledger_.transfer("alice", "bob", zero);
  EXPECT_EQ(ledger_.total_supply("NEVER_MINTED"), 0u);
}

TEST_F(LedgerTest, TotalSupplyTracksMintsNotTransfers) {
  EXPECT_EQ(ledger_.total_supply("BTC"), 100u);
  ledger_.transfer("alice", "bob", Asset::coins("BTC", 60));
  EXPECT_EQ(ledger_.total_supply("BTC"), 100u);
  ledger_.mint("dave", Asset::coins("BTC", 11));
  EXPECT_EQ(ledger_.total_supply("BTC"), 111u);
  EXPECT_EQ(ledger_.total_supply("UNKNOWN"), 0u);
}

TEST(Ledger, RejectsZeroSealPeriod) {
  sim::Simulator sim;
  EXPECT_THROW(Ledger("x", sim, 0), std::invalid_argument);
}

// ----------------------------------------------------- batched sealing

TEST_F(LedgerTest, SealBatchFlushesDeferredHeadersInOnePass) {
  // Three seals' worth of transactions: seal() defers each block's
  // Merkle root and chain link; seal_batch() (here via blocks() and
  // verify_integrity()) must complete every header exactly as eager
  // sealing would have.
  for (int round = 0; round < 3; ++round) {
    ledger_.transfer("alice", "bob", Asset::coins("BTC", 1));
    ledger_.submit_call("alice", 9999, "noop", 8, [](Contract&,
                                                     const CallContext&) {});
    sim_.run_until(sim_.now() + 2);
  }
  const std::vector<Block>& blocks = ledger_.blocks();  // flushes
  ASSERT_EQ(blocks.size(), 4u);  // genesis + 3 sealed
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].tx_root, blocks[i].compute_tx_root()) << "block " << i;
    EXPECT_EQ(blocks[i].prev_hash, blocks[i - 1].hash()) << "block " << i;
  }
  EXPECT_TRUE(ledger_.verify_integrity());
  ledger_.seal_batch();  // idempotent on a flushed chain
  EXPECT_TRUE(ledger_.verify_integrity());
}

TEST(Ledger, ChainLocksSerializeSameNameSeals) {
  // Two Ledger instances modeling the same chain name share a lock
  // stripe; with the registry attached both still seal exactly the
  // blocks they would have sealed privately (locks change nothing
  // observable — they only order cross-instance critical sections).
  ChainLockRegistry registry(4);
  sim::Simulator sim_a, sim_b;
  Ledger a("shared-chain", sim_a, 1), b("shared-chain", sim_b, 1);
  a.set_chain_locks(&registry);
  b.set_chain_locks(&registry);
  a.mint("alice", Asset::coins("BTC", 5));
  b.mint("bob", Asset::coins("BTC", 7));
  a.start();
  b.start();
  a.transfer("alice", "bob", Asset::coins("BTC", 2));
  sim_a.run_until(2);
  sim_b.run_until(2);
  EXPECT_TRUE(a.verify_integrity());
  EXPECT_TRUE(b.verify_integrity());
  EXPECT_EQ(a.balance("bob", "BTC"), 2u);
  EXPECT_EQ(b.balance("bob", "BTC"), 7u);
}

TEST(Ledger, ChainLockRegistryTracksAttachedLedgers) {
  // Lifetime contract: Ledger::seal_stripe_ is a raw pointer into the
  // registry, so the registry must outlive every attached ledger. The
  // attach/detach refcount makes the contract observable here and is
  // what the registry's destructor asserts on in debug builds.
  ChainLockRegistry registry(4);
  EXPECT_EQ(registry.attached_ledgers(), 0u);
  {
    sim::Simulator sim_a, sim_b;
    Ledger a("alpha", sim_a, 1), b("beta", sim_b, 1);
    a.set_chain_locks(&registry);
    EXPECT_EQ(registry.attached_ledgers(), 1u);
    b.set_chain_locks(&registry);
    EXPECT_EQ(registry.attached_ledgers(), 2u);

    // Re-attaching to the same registry must not double-count.
    a.set_chain_locks(&registry);
    EXPECT_EQ(registry.attached_ledgers(), 2u);

    // Swapping a ledger to a second registry moves its count over.
    {
      ChainLockRegistry other(2);
      a.set_chain_locks(&other);
      EXPECT_EQ(registry.attached_ledgers(), 1u);
      EXPECT_EQ(other.attached_ledgers(), 1u);
      // Detach before `other` dies (its destructor asserts on this).
      a.set_chain_locks(nullptr);
      EXPECT_EQ(other.attached_ledgers(), 0u);
    }

    // Explicit detach releases the stripe reference immediately...
    b.set_chain_locks(nullptr);
    EXPECT_EQ(registry.attached_ledgers(), 0u);

    // ...and both re-attach for the destructor leg of the contract.
    a.set_chain_locks(&registry);
    b.set_chain_locks(&registry);
    EXPECT_EQ(registry.attached_ledgers(), 2u);
  }
  // ...and ledger destruction detaches the rest.
  EXPECT_EQ(registry.attached_ledgers(), 0u);
}

// -------------------------------------- diagnostic integrity checking

/// A height-1 block with one transaction, correctly rooted and chained
/// onto `ledger`'s genesis — the valid baseline each corruption test
/// then damages in exactly one way.
Block chained_block(const Ledger& ledger) {
  Block b;
  b.height = 1;
  b.sealed_at = 2;
  Transaction tx;
  tx.kind = TxKind::kTransfer;
  tx.sender = "alice";
  tx.summary = "transfer: 1 BTC -> bob";
  tx.succeeded = true;
  b.txs.push_back(tx);
  b.tx_root = b.compute_tx_root();
  b.prev_hash = ledger.blocks().front().hash();
  return b;
}

TEST(LedgerIntegrity, DiagnosticOverloadNamesTxRootFailure) {
  sim::Simulator sim;
  Ledger ledger("diag", sim, 1);
  Block bad = chained_block(ledger);
  bad.tx_root[0] ^= 0x01;  // Merkle root no longer matches the txs
  ledger.restore_sealed_block(std::move(bad));

  Ledger::IntegrityFailure failure;
  EXPECT_FALSE(ledger.verify_integrity(&failure));
  EXPECT_EQ(failure.height, 1u);
  EXPECT_EQ(failure.check, Ledger::IntegrityFailure::Check::kTxRoot);
  EXPECT_STREQ(to_string(failure.check), "tx_root");
  // The plain overload agrees, it just cannot say why.
  EXPECT_FALSE(ledger.verify_integrity());
}

TEST(LedgerIntegrity, DiagnosticOverloadNamesPrevHashFailure) {
  sim::Simulator sim;
  Ledger ledger("diag", sim, 1);
  Block bad = chained_block(ledger);
  bad.prev_hash[0] ^= 0x01;  // root still valid, chain link broken
  ledger.restore_sealed_block(std::move(bad));

  Ledger::IntegrityFailure failure;
  EXPECT_FALSE(ledger.verify_integrity(&failure));
  EXPECT_EQ(failure.height, 1u);
  EXPECT_EQ(failure.check, Ledger::IntegrityFailure::Check::kPrevHash);
  EXPECT_STREQ(to_string(failure.check), "prev_hash");
}

TEST(LedgerIntegrity, DiagnosticOverloadAcceptsNullAndCleanChains) {
  sim::Simulator sim;
  Ledger ledger("diag", sim, 1);
  ledger.restore_sealed_block(chained_block(ledger));
  EXPECT_TRUE(ledger.verify_integrity(nullptr));
  Ledger::IntegrityFailure untouched;
  untouched.height = 77;
  EXPECT_TRUE(ledger.verify_integrity(&untouched));
  EXPECT_EQ(untouched.height, 77u);  // success leaves the out-param alone
}

TEST(LedgerIntegrity, RestoreRejectsGapsDuplicatesAndLiveLedgers) {
  sim::Simulator sim;
  Ledger ledger("diag", sim, 1);
  Block skip = chained_block(ledger);
  skip.height = 2;  // gap: tip is genesis
  EXPECT_THROW(ledger.restore_sealed_block(std::move(skip)),
               std::invalid_argument);

  ledger.restore_sealed_block(chained_block(ledger));
  Block dup = chained_block(ledger);  // height 1 again
  EXPECT_THROW(ledger.restore_sealed_block(std::move(dup)),
               std::invalid_argument);

  // Restoring into a started ledger is a programming error: replay is
  // a recovery-time operation, never concurrent with live sealing.
  sim::Simulator live_sim;
  Ledger live("live", live_sim, 1);
  live.start();
  EXPECT_THROW(live.restore_sealed_block(chained_block(ledger)),
               std::logic_error);
}

}  // namespace
}  // namespace xswap::chain
