// Parameterized grid: digraph family × protocol mode × Δ × broadcast.
// Every combination must produce uniform all-Deal runs that pass the full
// invariant audit.
#include <gtest/gtest.h>

#include "graph/fvs.hpp"
#include "graph/generators.hpp"
#include "swap/invariants.hpp"

namespace xswap::swap {
namespace {

struct SweepCase {
  const char* name;
  int family;           // 0=cycle4 1=hub5 2=two_cycles(3,3) 3=fig8 4=multi_cycle(3,2)
  ProtocolMode mode;
  sim::Duration delta;
  bool broadcast;
};

graph::Digraph build_family(int family) {
  switch (family) {
    case 0: return graph::cycle(4);
    case 1: return graph::hub_and_spokes(5);
    case 2: return graph::two_cycles_sharing_vertex(3, 3);
    case 4: return graph::multi_cycle(3, 2);
    default: {
      graph::Digraph d(3);
      d.add_arc(0, 1);
      d.add_arc(1, 2);
      d.add_arc(2, 0);
      d.add_arc(1, 0);
      d.add_arc(2, 1);
      d.add_arc(0, 2);
      return d;
    }
  }
}

std::vector<PartyId> leaders_for(int family) {
  return family == 3 ? std::vector<PartyId>{0, 1} : std::vector<PartyId>{0};
}

class ProtocolSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweep, UniformAllDealAndInvariants) {
  const SweepCase& c = GetParam();
  const graph::Digraph d = build_family(c.family);
  const auto leaders = leaders_for(c.family);

  EngineOptions options;
  options.mode = c.mode;
  options.delta = c.delta;
  options.broadcast = c.broadcast;
  options.seed = 31000 + static_cast<std::uint64_t>(c.family) * 17 +
                 c.delta * 3 + (c.broadcast ? 1 : 0);
  SwapEngine engine(d, leaders, options);
  const SwapReport report = engine.run();

  EXPECT_TRUE(report.all_triggered);
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kDeal);
  const InvariantReport audit = check_all(engine, report);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
  EXPECT_LE(report.last_trigger_time, engine.spec().final_deadline());
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const auto add = [&](const char* name, int family, ProtocolMode mode,
                       sim::Duration delta, bool broadcast) {
    cases.push_back(SweepCase{name, family, mode, delta, broadcast});
  };
  for (const sim::Duration delta : {2u, 4u, 7u}) {
    // General protocol on every family.
    for (int family = 0; family <= 4; ++family) {
      static const char* kNames[] = {"cycle4", "hub5", "twocyc", "fig8",
                                     "multi"};
      add(kNames[family], family, ProtocolMode::kGeneral, delta, false);
    }
    // Single-leader mode on the single-leader families.
    for (const int family : {0, 1, 2, 4}) {
      static const char* kNames1L[] = {"cycle4_1L", "hub5_1L", "twocyc_1L",
                                       "", "multi_1L"};
      add(kNames1L[family], family, ProtocolMode::kSingleLeader, delta, false);
    }
    // Broadcast on a couple of families.
    add("cycle4_bc", 0, ProtocolMode::kGeneral, delta, true);
    add("fig8_bc", 3, ProtocolMode::kGeneral, delta, true);
  }
  return cases;
}

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  return std::string(info.param.name) + "_d" +
         std::to_string(info.param.delta);
}

INSTANTIATE_TEST_SUITE_P(Grid, ProtocolSweep, ::testing::ValuesIn(sweep_cases()),
                         case_name);

}  // namespace
}  // namespace xswap::swap
