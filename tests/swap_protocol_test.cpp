// End-to-end protocol runs with all parties conforming: uniformity
// (everyone ends Deal) and the Theorem 4.7 time bound.
#include <gtest/gtest.h>

#include "graph/fvs.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "swap/engine.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

void expect_all_deal(const SwapReport& report, const SwapSpec& spec) {
  EXPECT_TRUE(report.all_triggered);
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    EXPECT_TRUE(report.contract_published[a]) << "arc " << a;
    EXPECT_TRUE(report.triggered[a]) << "arc " << a;
    EXPECT_FALSE(report.refunded[a]) << "arc " << a;
  }
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kDeal);
  EXPECT_TRUE(report.no_conforming_underwater);
  // Theorem 4.7: triggered within 2·diam·Δ of the start.
  EXPECT_LE(report.last_trigger_time,
            spec.start_time + 2 * spec.diam * spec.delta);
}

TEST(Protocol, TriangleSingleLeaderGeneralMode) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, TriangleEachLeaderChoiceWorks) {
  for (PartyId leader = 0; leader < 3; ++leader) {
    SwapEngine engine(graph::figure1_triangle(), {leader});
    const SwapReport report = engine.run();
    expect_all_deal(report, engine.spec());
  }
}

TEST(Protocol, Figure8TwoLeaderTriangleWithReverseArcs) {
  // Figs. 7–8: a two-leader digraph — triangle plus reversed arcs needs a
  // 2-element feedback vertex set.
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 0);
  d.add_arc(1, 0);
  d.add_arc(2, 1);
  d.add_arc(0, 2);
  ASSERT_TRUE(graph::is_feedback_vertex_set(d, {0, 1}));
  SwapEngine engine(d, {0, 1});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, CompleteDigraphAllButOneLeaders) {
  const graph::Digraph d = graph::complete(4);
  SwapEngine engine(d, {0, 1, 2});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, TwoCyclesSharedVertexSingleLeader) {
  const graph::Digraph d = graph::two_cycles_sharing_vertex(3, 4);
  SwapEngine engine(d, {0});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, HubAndSpokes) {
  SwapEngine engine(graph::hub_and_spokes(5), {0});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, MultigraphParallelArcs) {
  // §5: several blockchains between the same pair of parties.
  SwapEngine engine(graph::multi_cycle(3, 2), {0});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, LargerCycle) {
  SwapEngine engine(graph::cycle(8), {3});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, NonMinimalLeaderSetStillWorks) {
  // Any FVS works, minimal or not (here: every vertex is a leader).
  SwapEngine engine(graph::figure1_triangle(), {0, 1, 2});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, SharedChainForAllArcs) {
  // All arcs on one blockchain is allowed (arcs ↔ contracts, not chains).
  graph::Digraph d = graph::figure1_triangle();
  std::vector<ArcTerms> arcs;
  for (graph::ArcId a = 0; a < 3; ++a) {
    arcs.push_back(ArcTerms{"mainnet",
                            chain::Asset::coins("TOK" + std::to_string(a), 5)});
  }
  SwapEngine engine(d, {"Alice", "Bob", "Carol"}, {0}, arcs, EngineOptions{});
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, RandomStronglyConnectedSweep) {
  util::Rng rng(20180718);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 3 + rng.next_below(5);
    const graph::Digraph d = graph::random_strongly_connected(n, rng.next_below(n), rng);
    const auto leaders = graph::minimum_feedback_vertex_set(d);
    EngineOptions options;
    options.seed = 1000 + static_cast<std::uint64_t>(trial);
    SwapEngine engine(d, leaders, options);
    const SwapReport report = engine.run();
    expect_all_deal(report, engine.spec());
  }
}

TEST(Protocol, DeltaVariations) {
  for (const sim::Duration delta : {2u, 3u, 8u}) {
    EngineOptions options;
    options.delta = delta;
    SwapEngine engine(graph::figure1_triangle(), {0}, options);
    const SwapReport report = engine.run();
    expect_all_deal(report, engine.spec());
  }
}

TEST(Protocol, SlowChainsLargerSealPeriod) {
  EngineOptions options;
  options.seal_period = 2;
  options.delta = 6;
  SwapEngine engine(graph::figure1_triangle(), {0}, options);
  const SwapReport report = engine.run();
  expect_all_deal(report, engine.spec());
}

TEST(Protocol, ReportsResourceUsage) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  const SwapReport report = engine.run();
  EXPECT_GT(report.total_storage_bytes, 0u);
  EXPECT_GT(report.hashkey_bytes_submitted, 0u);
  EXPECT_GT(report.sign_operations, 0u);
  EXPECT_GT(report.total_transactions, 0u);
  EXPECT_EQ(report.failed_transactions, 0u);
}

TEST(Protocol, ChainsStayConsistent) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  engine.run();
  for (graph::ArcId a = 0; a < 3; ++a) {
    EXPECT_TRUE(engine.ledger(engine.spec().arcs[a].chain).verify_integrity());
  }
}

TEST(Protocol, EngineRejectsBadConfigurations) {
  // Non-FVS leader set.
  EXPECT_THROW(SwapEngine(graph::two_cycles_sharing_vertex(3, 3), {1}),
               std::invalid_argument);
  // Not strongly connected.
  graph::Digraph path(2);
  path.add_arc(0, 1);
  EXPECT_THROW(SwapEngine(path, {0}), std::invalid_argument);
  // Delta too small for the seal period.
  EngineOptions options;
  options.delta = 1;
  EXPECT_THROW(SwapEngine(graph::figure1_triangle(), {0}, options),
               std::invalid_argument);
  // Double run.
  SwapEngine engine(graph::figure1_triangle(), {0});
  engine.run();
  EXPECT_THROW(engine.run(), std::logic_error);
}

}  // namespace
}  // namespace xswap::swap
