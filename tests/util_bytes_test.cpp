#include "util/bytes.hpp"

#include <gtest/gtest.h>

namespace xswap::util {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, StrBytes) {
  const Bytes b = str_bytes("abc");
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 'a');
  EXPECT_EQ(b[2], 'c');
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = concat({a, b, a});
  EXPECT_EQ(c, (Bytes{1, 2, 3, 1, 2}));
}

TEST(Bytes, Append) {
  Bytes dst = {1};
  append(dst, Bytes{2, 3});
  EXPECT_EQ(dst, (Bytes{1, 2, 3}));
}

TEST(Bytes, Be64RoundTrip) {
  const std::uint64_t v = 0x0123456789abcdefULL;
  const Bytes enc = be64(v);
  ASSERT_EQ(enc.size(), 8u);
  EXPECT_EQ(enc[0], 0x01);
  EXPECT_EQ(enc[7], 0xef);
  EXPECT_EQ(read_be64(enc), v);
}

TEST(Bytes, Be64Zero) {
  EXPECT_EQ(read_be64(be64(0)), 0u);
}

TEST(Bytes, ReadBe64RejectsShort) {
  EXPECT_THROW(read_be64(Bytes{1, 2, 3}), std::invalid_argument);
}

TEST(Bytes, CtEqual) {
  EXPECT_TRUE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 3}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
  EXPECT_FALSE(ct_equal(Bytes{1, 2}, Bytes{1, 2, 3}));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

}  // namespace
}  // namespace xswap::util
