// Robustness and edge paths: large digraphs on the safe diameter bound,
// run-to-run determinism, broadcast board misuse, and party construction
// errors.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/broadcast.hpp"
#include "swap/engine.hpp"
#include "swap/invariants.hpp"

namespace xswap::swap {
namespace {

TEST(Robustness, LargeCycleUsesDiameterUpperBound) {
  // n = 14 > the exact-diameter threshold: the engine falls back to the
  // safe |V| bound; all guarantees must still hold (over-approximating
  // the diameter only loosens timeouts).
  SwapEngine engine(graph::cycle(14), {0});
  EXPECT_EQ(engine.spec().diam, 14u);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  EXPECT_TRUE(check_all(engine, report).ok());
}

TEST(Robustness, LargeHubSingleLeaderMode) {
  EngineOptions options;
  options.mode = ProtocolMode::kSingleLeader;
  SwapEngine engine(graph::hub_and_spokes(15), {0}, options);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  EXPECT_TRUE(check_all(engine, report).ok());
}

TEST(Robustness, SameSeedSameRun) {
  const auto run = [](std::uint64_t seed) {
    EngineOptions options;
    options.seed = seed;
    SwapEngine engine(graph::cycle(4), {0}, options);
    return engine.run();
  };
  const SwapReport a = run(42), b = run(42), c = run(43);
  EXPECT_EQ(a.settled_at, b.settled_at);
  EXPECT_EQ(a.total_storage_bytes, b.total_storage_bytes);
  EXPECT_EQ(a.hashkey_bytes_submitted, b.hashkey_bytes_submitted);
  // Different seed: different secrets/keys, so different on-the-wire
  // bytes are possible but the protocol outcome is identical.
  EXPECT_TRUE(c.all_triggered);
}

TEST(Robustness, DifferentSeedsDifferentHashlocks) {
  EngineOptions a, b;
  a.seed = 1;
  b.seed = 2;
  SwapEngine ea(graph::cycle(3), {0}, a);
  SwapEngine eb(graph::cycle(3), {0}, b);
  EXPECT_NE(ea.spec().hashlocks[0], eb.spec().hashlocks[0]);
  EXPECT_NE(ea.spec().directory[0].bytes, eb.spec().directory[0].bytes);
}

TEST(Robustness, BoardRejectsImposterPost) {
  // A non-leader posting to the broadcast board must fail on-chain.
  EngineOptions options;
  options.broadcast = true;
  SwapEngine engine(graph::figure1_triangle(), {0}, options);
  // Run first so the board is published and the protocol completes.
  engine.run();
  const chain::Ledger& board_chain = engine.ledger(kBroadcastChain);
  // All board posts must come from the leader; scan the chain for any
  // successful post by someone else.
  for (const chain::Block& block : board_chain.blocks()) {
    for (const chain::Transaction& tx : block.txs) {
      if (tx.kind == chain::TxKind::kContractCall && tx.succeeded &&
          tx.summary.rfind("post", 0) == 0) {
        EXPECT_EQ(tx.sender, engine.spec().party_names[0]);
      }
    }
  }
}

TEST(Robustness, PartyConstructorValidation) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  const SwapSpec& spec = engine.spec();
  ProtocolCounters counters;
  const crypto::KeyPair keys = crypto::KeyPair::from_seed(util::Bytes(32, 7));

  // Missing ledger for a spec'd chain.
  std::map<std::string, chain::Ledger*> empty;
  EXPECT_THROW(Party(spec, 0, keys, ProtocolMode::kGeneral, Strategy::honest(),
                     empty, &counters, nullptr),
               std::invalid_argument);

  // Out-of-range party id.
  sim::Simulator sim;
  chain::Ledger l0("chain-0", sim), l1("chain-1", sim), l2("chain-2", sim);
  std::map<std::string, chain::Ledger*> ledgers = {
      {"chain-0", &l0}, {"chain-1", &l1}, {"chain-2", &l2}};
  EXPECT_THROW(Party(spec, 9, keys, ProtocolMode::kGeneral, Strategy::honest(),
                     ledgers, &counters, nullptr),
               std::out_of_range);

  // Followers cannot be handed leader secrets.
  Party follower(spec, 1, keys, ProtocolMode::kGeneral, Strategy::honest(),
                 ledgers, &counters, nullptr);
  EXPECT_THROW(follower.set_leader_secret(util::Bytes(32, 1)), std::logic_error);
}

TEST(Robustness, AssetApi) {
  EXPECT_EQ(chain::Asset::coins("BTC", 5).to_string(), "5 BTC");
  EXPECT_EQ(chain::Asset::unique("TITLE", "x").to_string(), "TITLE#x");
  EXPECT_THROW(chain::Asset::coins("BTC", 0), std::invalid_argument);
  EXPECT_THROW(chain::Asset::unique("TITLE", ""), std::invalid_argument);
  EXPECT_NE(chain::Asset::coins("A", 1).encode(),
            chain::Asset::coins("A", 2).encode());
}

TEST(Robustness, MixedStrategiesLargeGraph) {
  // 8-party ring with three simultaneous deviators of different kinds.
  SwapEngine engine(graph::cycle(8), {0});
  Strategy crash;
  crash.crash_at = engine.spec().start_time + 10;
  Strategy withhold;
  withhold.withhold_unlocks = true;
  Strategy late;
  late.delay_unlocks_until = engine.spec().final_deadline() - 2;
  engine.set_strategy(2, crash);
  engine.set_strategy(4, withhold);
  engine.set_strategy(6, late);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.no_conforming_underwater);
  const InvariantReport audit = check_guarantees(engine, report);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
}

}  // namespace
}  // namespace xswap::swap
