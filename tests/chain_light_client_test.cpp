// SPV-style light client: header chains and inclusion proofs.
#include "chain/light_client.hpp"

#include <gtest/gtest.h>

#include "chain/ledger.hpp"
#include "sim/simulator.hpp"

namespace xswap::chain {
namespace {

// Build a small chain with a few transfer transactions per block.
class LightClientTest : public ::testing::Test {
 protected:
  LightClientTest() : ledger_("lc", sim_, 1) {
    ledger_.mint("alice", Asset::coins("TOK", 100));
    ledger_.start();
    // Three blocks of simple transfers via a contract-free path: use a
    // tiny contract to generate call transactions instead.
    for (int round = 0; round < 3; ++round) {
      ledger_.submit_call("alice", 999, "noop", 4,
                          [](Contract&, const CallContext&) {});
      ledger_.submit_call("alice", 998, "noop", 4,
                          [](Contract&, const CallContext&) {});
      sim_.run_until(sim_.now() + 1);
    }
  }

  sim::Simulator sim_;
  Ledger ledger_;
};

TEST_F(LightClientTest, HeaderHashMatchesBlockHash) {
  for (const Block& b : ledger_.blocks()) {
    EXPECT_EQ(BlockHeader::from_block(b).hash(), b.hash());
  }
}

TEST_F(LightClientTest, AcceptsValidHeaderChain) {
  LightClient client;
  for (const Block& b : ledger_.blocks()) {
    EXPECT_TRUE(client.accept(BlockHeader::from_block(b))) << b.height;
  }
  EXPECT_EQ(client.height(), ledger_.blocks().size());
  EXPECT_EQ(client.tip()->height, ledger_.blocks().back().height);
}

TEST_F(LightClientTest, RejectsBrokenLink) {
  LightClient client;
  ASSERT_GE(ledger_.blocks().size(), 3u);
  EXPECT_TRUE(client.accept(BlockHeader::from_block(ledger_.blocks()[0])));
  BlockHeader tampered = BlockHeader::from_block(ledger_.blocks()[1]);
  tampered.prev_hash[0] ^= 1;
  EXPECT_FALSE(client.accept(tampered));
  // Skipping a block also breaks the link.
  EXPECT_FALSE(client.accept(BlockHeader::from_block(ledger_.blocks()[2])));
}

TEST_F(LightClientTest, RejectsNonMonotoneHeight) {
  LightClient client;
  EXPECT_TRUE(client.accept(BlockHeader::from_block(ledger_.blocks()[0])));
  EXPECT_FALSE(client.accept(BlockHeader::from_block(ledger_.blocks()[0])));
}

TEST_F(LightClientTest, VerifiesInclusionProofs) {
  LightClient client;
  for (const Block& b : ledger_.blocks()) {
    client.accept(BlockHeader::from_block(b));
  }
  for (const Block& b : ledger_.blocks()) {
    for (std::size_t i = 0; i < b.txs.size(); ++i) {
      const MerkleProof proof = prove_transaction(b, i);
      EXPECT_TRUE(client.verify_inclusion(b.height, b.txs[i].digest(), proof));
    }
  }
}

TEST_F(LightClientTest, RejectsForeignTransaction) {
  LightClient client;
  for (const Block& b : ledger_.blocks()) {
    client.accept(BlockHeader::from_block(b));
  }
  const Block& b = ledger_.blocks().back();
  ASSERT_FALSE(b.txs.empty());
  const MerkleProof proof = prove_transaction(b, 0);
  crypto::Digest256 wrong = b.txs[0].digest();
  wrong[0] ^= 1;
  EXPECT_FALSE(client.verify_inclusion(b.height, wrong, proof));
  // Unknown height fails too.
  EXPECT_FALSE(client.verify_inclusion(12345, b.txs[0].digest(), proof));
}

TEST_F(LightClientTest, ProveTransactionBadIndex) {
  const Block& b = ledger_.blocks().back();
  EXPECT_THROW(prove_transaction(b, b.txs.size()), std::out_of_range);
}

}  // namespace
}  // namespace xswap::chain
