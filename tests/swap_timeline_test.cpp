// Timeline collection and rendering across chains.
#include "swap/timeline.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/engine.hpp"

namespace xswap::swap {
namespace {

TEST(Timeline, CleanRunHasFullLifecyclePerArc) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  engine.run();
  const auto events = collect_timeline(engine);

  // Each arc: 1 publish, 1 unlock (single hashlock), 1 claim.
  std::vector<int> publishes(3, 0), unlocks(3, 0), claims(3, 0), refunds(3, 0);
  for (const TimelineEvent& ev : events) {
    ASSERT_TRUE(ev.succeeded);
    switch (ev.kind) {
      case EventKind::kPublish: ++publishes[ev.arc]; break;
      case EventKind::kUnlock: ++unlocks[ev.arc]; break;
      case EventKind::kClaim: ++claims[ev.arc]; break;
      case EventKind::kRefund: ++refunds[ev.arc]; break;
    }
  }
  for (graph::ArcId a = 0; a < 3; ++a) {
    EXPECT_EQ(publishes[a], 1) << a;
    EXPECT_EQ(unlocks[a], 1) << a;
    EXPECT_EQ(claims[a], 1) << a;
    EXPECT_EQ(refunds[a], 0) << a;
  }
}

TEST(Timeline, EventsAreChronological) {
  SwapEngine engine(graph::cycle(5), {0});
  engine.run();
  const auto events = collect_timeline(engine);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].at, events[i].at);
  }
  // Per arc: publish < unlock < claim.
  std::vector<sim::Time> publish_at(5, 0), unlock_at(5, 0), claim_at(5, 0);
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kPublish) publish_at[ev.arc] = ev.at;
    if (ev.kind == EventKind::kUnlock) unlock_at[ev.arc] = ev.at;
    if (ev.kind == EventKind::kClaim) claim_at[ev.arc] = ev.at;
  }
  for (graph::ArcId a = 0; a < 5; ++a) {
    EXPECT_LT(publish_at[a], unlock_at[a]);
    EXPECT_LE(unlock_at[a], claim_at[a]);
  }
}

TEST(Timeline, AdversarialRunShowsRefundsAndFailures) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(2, s);
  engine.run();
  const auto events = collect_timeline(engine);
  bool saw_refund = false;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kRefund && ev.succeeded) saw_refund = true;
  }
  EXPECT_TRUE(saw_refund);
}

TEST(Timeline, RenderContainsPartiesAndEvents) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  engine.run();
  const std::string text = render_timeline(engine.spec(), collect_timeline(engine));
  EXPECT_NE(text.find("publish"), std::string::npos);
  EXPECT_NE(text.find("unlock"), std::string::npos);
  EXPECT_NE(text.find("claim"), std::string::npos);
  EXPECT_NE(text.find("(P0,P1)"), std::string::npos);
}

TEST(Timeline, SingleLeaderModeWorksToo) {
  EngineOptions options;
  options.mode = ProtocolMode::kSingleLeader;
  SwapEngine engine(graph::figure1_triangle(), {0}, options);
  engine.run();
  const auto events = collect_timeline(engine);
  int unlocks = 0;
  for (const auto& ev : events) {
    if (ev.kind == EventKind::kUnlock) ++unlocks;
  }
  EXPECT_EQ(unlocks, 3);
}

}  // namespace
}  // namespace xswap::swap
