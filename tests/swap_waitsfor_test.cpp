// The waits-for digraph of Theorem 4.12: deadlock detection for Phase One.
#include "swap/waitsfor.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "swap/engine.hpp"

namespace xswap::swap {
namespace {

TEST(WaitsFor, ReversedUnpublishedArcs) {
  const graph::Digraph d = graph::cycle(3);
  // Only arc (0,1) published: W has arcs (2,1) and (0,2).
  const graph::Digraph w = waits_for_digraph(d, {true, false, false});
  EXPECT_EQ(w.arc_count(), 2u);
  EXPECT_TRUE(w.find_arc(2, 1).has_value());
  EXPECT_TRUE(w.find_arc(0, 2).has_value());
}

TEST(WaitsFor, EmptyWhenAllPublished) {
  const graph::Digraph d = graph::cycle(4);
  const graph::Digraph w = waits_for_digraph(d, std::vector<bool>(4, true));
  EXPECT_EQ(w.arc_count(), 0u);
  EXPECT_FALSE(find_deadlock(w, {0}).has_value());
}

TEST(WaitsFor, SizeMismatchRejected) {
  EXPECT_THROW(waits_for_digraph(graph::cycle(3), {true}), std::invalid_argument);
}

TEST(WaitsFor, InitialStateDeadlocksWithoutFvsLeaders) {
  // Theorem 4.12's argument: nothing published yet, W = D^T. If the
  // leaders are not a feedback vertex set, a follower cycle exists in W
  // and Phase One can never complete.
  const graph::Digraph d = graph::two_cycles_sharing_vertex(3, 3);
  const graph::Digraph w = waits_for_digraph(d, std::vector<bool>(d.arc_count(), false));
  // Leader {1} covers only the first cycle: the second cycle deadlocks.
  const auto deadlock = find_deadlock(w, {1});
  ASSERT_TRUE(deadlock.has_value());
  EXPECT_GE(deadlock->cycle.size(), 2u);
  // Leader {0} (the shared vertex, a real FVS) leaves no follower cycle.
  EXPECT_FALSE(find_deadlock(w, {0}).has_value());
}

TEST(WaitsFor, DeadlockCycleIsARealCycle) {
  const graph::Digraph d = graph::cycle(5);
  const graph::Digraph w =
      waits_for_digraph(d, std::vector<bool>(d.arc_count(), false));
  const auto deadlock = find_deadlock(w, {});
  ASSERT_TRUE(deadlock.has_value());
  ASSERT_EQ(deadlock->cycle.size(), 5u);
  // Consecutive members must be joined by W arcs.
  for (std::size_t i = 0; i < deadlock->cycle.size(); ++i) {
    const PartyId from = deadlock->cycle[i];
    const PartyId to = deadlock->cycle[(i + 1) % deadlock->cycle.size()];
    EXPECT_TRUE(w.find_arc(from, to).has_value()) << from << "->" << to;
  }
}

TEST(WaitsFor, LiveRunNeverDeadlocks) {
  // Reconstruct W from the chains after an honest run: empty.
  SwapEngine engine(graph::figure1_triangle(), {0});
  engine.run();
  std::map<std::string, const chain::Ledger*> ledgers;
  for (const auto& terms : engine.spec().arcs) {
    ledgers[terms.chain] = &engine.ledger(terms.chain);
  }
  const auto events = collect_arc_events(engine.spec(), ledgers);
  const graph::Digraph w = waits_for_digraph(engine.spec(), events);
  EXPECT_EQ(w.arc_count(), 0u);
}

TEST(WaitsFor, StalledRunShowsWhoWaits) {
  // Bob withholds: afterwards W records exactly who waited on whom.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(1, s);
  engine.run();
  std::map<std::string, const chain::Ledger*> ledgers;
  for (const auto& terms : engine.spec().arcs) {
    ledgers[terms.chain] = &engine.ledger(terms.chain);
  }
  const auto events = collect_arc_events(engine.spec(), ledgers);
  const graph::Digraph w = waits_for_digraph(engine.spec(), events);
  // (B,C) and (C,A) never published: Carol waits on Bob, Alice on Carol.
  EXPECT_EQ(w.arc_count(), 2u);
  EXPECT_TRUE(w.find_arc(2, 1).has_value());
  EXPECT_TRUE(w.find_arc(0, 2).has_value());
  EXPECT_FALSE(find_deadlock(w, {0}).has_value());  // chain, not a cycle
}

}  // namespace
}  // namespace xswap::swap
