#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

// Global allocation counter for the steady-state tests below. Replacing
// operator new in one TU instruments the whole test binary; the counter
// is atomic so unrelated multithreaded suites stay correct.
namespace {
std::atomic<unsigned long long> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace xswap::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(5, [&] { order.push_back(2); });
  s.at(3, [&] { order.push_back(1); });
  s.at(9, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 9u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(4, [&] { order.push_back(1); });
  s.at(4, [&] { order.push_back(2); });
  s.at(4, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, AfterIsRelative) {
  Simulator s;
  Time fired_at = 0;
  s.at(10, [&] { s.after(5, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 15u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.at(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.after(1, chain);
  };
  s.at(0, chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 4u);
}

TEST(Simulator, EveryRepeatsUntilFalse) {
  Simulator s;
  int fires = 0;
  s.every(2, 3, [&] { return ++fires < 4; });
  s.run();
  EXPECT_EQ(fires, 4);
  EXPECT_EQ(s.now(), 2u + 3u * 3u);
}

TEST(Simulator, EveryRejectsZeroPeriod) {
  Simulator s;
  EXPECT_THROW(s.every(0, 0, [] { return false; }), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.at(5, [&] { ++fired; });
  s.at(10, [&] { ++fired; });
  s.at(11, [&] { ++fired; });
  s.run_until(10);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator s;
  s.run_until(42);
  EXPECT_EQ(s.now(), 42u);
}

TEST(Simulator, RunHonorsMaxEvents) {
  Simulator s;
  int fires = 0;
  s.every(0, 1, [&] { ++fires; return true; });
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_EQ(fires, 100);
}

TEST(Simulator, FarFutureEventsKeepTimeOrder) {
  // Mix events inside the near-future calendar window with events far
  // beyond it (the overflow heap), including collisions on the same
  // tick scheduled from both sides of the window boundary.
  Simulator s;
  std::vector<int> order;
  s.at(100'000, [&] { order.push_back(4); });   // far future (overflow)
  s.at(3, [&] { order.push_back(1); });         // calendar
  s.at(100'000, [&] { order.push_back(5); });   // same far tick, later seq
  s.at(50'000, [&] {
    order.push_back(2);
    // By now 100'000 is within reach of later scheduling; a direct
    // insert at the same tick must run after the two overflow events.
    s.at(100'000, [&] { order.push_back(6); });
    s.after(1, [&] { order.push_back(3); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(s.now(), 100'000u);
}

TEST(Simulator, RunUntilAcrossCalendarWindows) {
  Simulator s;
  std::vector<Time> fired;
  for (Time t = 0; t < 10; ++t) {
    s.at(t * 1000, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run_until(4500);
  EXPECT_EQ(fired.size(), 5u);  // t = 0..4000
  EXPECT_EQ(s.now(), 4500u);
  EXPECT_EQ(s.pending(), 5u);
  s.run_until(20'000);
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(fired.back(), 9000u);
}

TEST(Simulator, ResetReturnsToInitialState) {
  Simulator s;
  int first_run = 0;
  s.every(1, 1, [&] { ++first_run; return true; });
  s.at(5, [&] { ++first_run; });
  s.run_until(3);
  EXPECT_GT(s.pending(), 0u);

  s.reset();
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());

  // The core is fully reusable: same schedule, same behaviour.
  std::vector<int> order;
  s.at(4, [&] { order.push_back(2); });
  s.at(2, [&] { order.push_back(1); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), 4u);
}

TEST(Simulator, ResetDropsPeriodicTasks) {
  Simulator s;
  int fires = 0;
  s.every(1, 1, [&] { ++fires; return true; });
  s.run_until(3);
  const int before = fires;
  s.reset();
  s.run_until(10);
  EXPECT_EQ(fires, before);  // old periodic task must not resurrect
}

TEST(Simulator, SteadyStateStepDoesNotAllocate) {
  // The acceptance gate for the slab/calendar engine: after warmup, a
  // periodic + one-shot mix (the protocol's exact event shape: chains
  // sealing every tick, parties polling, deadline one-shots) schedules
  // and executes without a single heap allocation.
  Simulator s;
  long long fires = 0;
  s.every(1, 1, [&] { ++fires; return true; });   // a "seal" loop
  s.every(1, 2, [&] { ++fires; return true; });   // a "poll" loop
  // Warmup: materialize slab nodes, task slots, and bucket lists.
  s.run(64);
  std::function<void()> one_shot = [&fires] { ++fires; };  // SBO-sized
  s.after(3, one_shot);
  s.run(8);  // consume it so the node is on the free list

  const unsigned long long before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (int round = 0; round < 1000; ++round) {
    s.after(2, one_shot);  // copy into the engine: reuses a slab node
    s.run(4);
  }
  const unsigned long long after =
      g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "steady-state step()/after() allocated";
  EXPECT_GT(fires, 1000);
}

TEST(Simulator, ReservePreSizesTheSlabWithoutSideEffects) {
  // reserve() is capacity-only: scheduling and execution behave exactly
  // as before, and a reserved population schedules with zero slab-growth
  // allocations from a cold start (engines call this with their
  // party/chain census so pooled workers never grow the slab mid-run).
  Simulator s;
  s.reserve(64);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.now(), 0u);

  const unsigned long long before =
      g_heap_allocations.load(std::memory_order_relaxed);
  int fires = 0;
  for (int i = 0; i < 32; ++i) {
    s.at(static_cast<Time>(1 + i % 4), [&fires] { ++fires; });
  }
  const unsigned long long after =
      g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "reserved slab still grew";
  s.run_until(10);
  EXPECT_EQ(fires, 32);
}

}  // namespace
}  // namespace xswap::sim
