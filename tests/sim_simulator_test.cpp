#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace xswap::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(5, [&] { order.push_back(2); });
  s.at(3, [&] { order.push_back(1); });
  s.at(9, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 9u);
}

TEST(Simulator, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.at(4, [&] { order.push_back(1); });
  s.at(4, [&] { order.push_back(2); });
  s.at(4, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, AfterIsRelative) {
  Simulator s;
  Time fired_at = 0;
  s.at(10, [&] { s.after(5, [&] { fired_at = s.now(); }); });
  s.run();
  EXPECT_EQ(fired_at, 15u);
}

TEST(Simulator, RejectsPastScheduling) {
  Simulator s;
  s.at(10, [] {});
  s.run();
  EXPECT_THROW(s.at(5, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
  Simulator s;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) s.after(1, chain);
  };
  s.at(0, chain);
  s.run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(s.now(), 4u);
}

TEST(Simulator, EveryRepeatsUntilFalse) {
  Simulator s;
  int fires = 0;
  s.every(2, 3, [&] { return ++fires < 4; });
  s.run();
  EXPECT_EQ(fires, 4);
  EXPECT_EQ(s.now(), 2u + 3u * 3u);
}

TEST(Simulator, EveryRejectsZeroPeriod) {
  Simulator s;
  EXPECT_THROW(s.every(0, 0, [] { return false; }), std::invalid_argument);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.at(5, [&] { ++fired; });
  s.at(10, [&] { ++fired; });
  s.at(11, [&] { ++fired; });
  s.run_until(10);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 10u);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenQueueEmpty) {
  Simulator s;
  s.run_until(42);
  EXPECT_EQ(s.now(), 42u);
}

TEST(Simulator, RunHonorsMaxEvents) {
  Simulator s;
  int fires = 0;
  s.every(0, 1, [&] { ++fires; return true; });
  EXPECT_EQ(s.run(100), 100u);
  EXPECT_EQ(fires, 100);
}

}  // namespace
}  // namespace xswap::sim
