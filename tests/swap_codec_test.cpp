// Wire-format round trips and malformed-input rejection.
#include "swap/codec.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "graph/generators.hpp"
#include "swap/engine.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

TEST(Codec, VaruintRoundTrip) {
  for (const std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL,
        0xffffffffULL, 0xffffffffffffffffULL}) {
    util::Bytes buf;
    put_varuint(buf, v);
    Reader r(buf);
    const auto decoded = r.varuint();
    ASSERT_TRUE(decoded.has_value()) << v;
    EXPECT_EQ(*decoded, v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Codec, VaruintRejectsTruncationAndOverflow) {
  // Truncated: continuation bit set, no next byte.
  const util::Bytes dangling = {0x80};
  Reader truncated(dangling);
  EXPECT_FALSE(truncated.varuint().has_value());
  // Overflow: eleven continuation bytes.
  util::Bytes huge(11, 0xff);
  Reader overflow(huge);
  EXPECT_FALSE(overflow.varuint().has_value());
}

TEST(Codec, BytesRoundTripAndCaps) {
  util::Bytes buf;
  put_bytes(buf, util::str_bytes("hello"));
  Reader r(buf);
  const auto out = r.bytes();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(util::Bytes(out->begin(), out->end()), util::str_bytes("hello"));

  // Length prefix longer than payload.
  util::Bytes bad;
  put_varuint(bad, 100);
  bad.push_back('x');
  Reader r2(bad);
  EXPECT_FALSE(r2.bytes().has_value());

  // Over the per-field cap.
  util::Bytes capped;
  put_bytes(capped, util::str_bytes("abcdef"));
  Reader r3(capped);
  EXPECT_FALSE(r3.bytes(3).has_value());
}

class CodecFixture : public ::testing::Test {
 protected:
  CodecFixture() : engine_(graph::figure1_triangle(), {0}) {}

  Hashkey sample_hashkey() {
    util::Rng rng(5);
    const crypto::KeyPair leader = crypto::KeyPair::from_seed(rng.next_bytes(32));
    const crypto::KeyPair relay = crypto::KeyPair::from_seed(rng.next_bytes(32));
    Hashkey key = make_leader_hashkey(rng.next_bytes(32), 0, leader);
    return extend_hashkey(key, 2, relay);
  }

  SwapEngine engine_;
};

TEST_F(CodecFixture, HashkeyRoundTrip) {
  const Hashkey key = sample_hashkey();
  const util::Bytes wire = encode_hashkey(key);
  const auto decoded = decode_hashkey(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, key);
}

TEST_F(CodecFixture, HashkeyRejectsMutations) {
  const Hashkey key = sample_hashkey();
  const util::Bytes wire = encode_hashkey(key);

  // Wrong version byte.
  util::Bytes bad = wire;
  bad[0] = 0x7f;
  EXPECT_FALSE(decode_hashkey(bad).has_value());

  // Truncations at every prefix length must fail, never crash.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        decode_hashkey(util::BytesView(wire.data(), len)).has_value())
        << "prefix " << len;
  }

  // Trailing garbage.
  bad = wire;
  bad.push_back(0x00);
  EXPECT_FALSE(decode_hashkey(bad).has_value());
}

TEST_F(CodecFixture, SpecRoundTrip) {
  const SwapSpec& spec = engine_.spec();
  const util::Bytes wire = encode_spec(spec);
  const auto decoded = decode_spec(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->digraph, spec.digraph);
  EXPECT_EQ(decoded->party_names, spec.party_names);
  EXPECT_EQ(decoded->leaders, spec.leaders);
  EXPECT_EQ(decoded->hashlocks, spec.hashlocks);
  EXPECT_EQ(decoded->arcs, spec.arcs);
  EXPECT_EQ(decoded->directory, spec.directory);
  EXPECT_EQ(decoded->start_time, spec.start_time);
  EXPECT_EQ(decoded->delta, spec.delta);
  EXPECT_EQ(decoded->diam, spec.diam);
  EXPECT_EQ(decoded->broadcast, spec.broadcast);
  // Round-tripped spec still validates.
  EXPECT_TRUE(validate_spec(*decoded).empty());
}

TEST_F(CodecFixture, SpecWithUniqueAssetsAndBroadcast) {
  graph::Digraph d = graph::figure1_triangle();
  std::vector<ArcTerms> arcs = {
      {"c0", chain::Asset::unique("TITLE", "car")},
      {"c1", chain::Asset::coins("BTC", 9)},
      {"c2", chain::Asset::coins("ALT", 1)},
  };
  EngineOptions options;
  options.broadcast = true;
  SwapEngine engine(d, {"A", "B", "C"}, {0}, arcs, options);
  const util::Bytes wire = encode_spec(engine.spec());
  const auto decoded = decode_spec(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->arcs, engine.spec().arcs);
  EXPECT_TRUE(decoded->broadcast);
}

TEST_F(CodecFixture, SpecRejectsTruncationsEverywhere) {
  const util::Bytes wire = encode_spec(engine_.spec());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(decode_spec(util::BytesView(wire.data(), len)).has_value())
        << "prefix " << len;
  }
}

TEST_F(CodecFixture, SpecRejectsStructuralCorruption) {
  const util::Bytes wire = encode_spec(engine_.spec());
  // Flip every single byte and require decode to fail or produce a spec
  // that differs from the original (no silent aliasing).
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    util::Bytes bad = wire;
    bad[i] ^= 0x01;
    const auto decoded = decode_spec(bad);
    if (!decoded.has_value()) {
      ++rejected;
    } else {
      EXPECT_FALSE(decoded->digraph == engine_.spec().digraph &&
                   decoded->party_names == engine_.spec().party_names &&
                   decoded->hashlocks == engine_.spec().hashlocks &&
                   decoded->leaders == engine_.spec().leaders &&
                   decoded->arcs == engine_.spec().arcs &&
                   decoded->directory == engine_.spec().directory &&
                   decoded->start_time == engine_.spec().start_time &&
                   decoded->delta == engine_.spec().delta &&
                   decoded->diam == engine_.spec().diam &&
                   decoded->broadcast == engine_.spec().broadcast)
          << "byte " << i << " flip silently ignored";
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(Codec, FuzzedRandomBuffersNeverCrash) {
  util::Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const util::Bytes junk = rng.next_bytes(rng.next_below(200));
    (void)decode_hashkey(junk);
    (void)decode_spec(junk);
  }
  SUCCEED();
}

}  // namespace
}  // namespace xswap::swap
