// Adversarial runs: crashes, withheld steps, corrupted contracts,
// last-moment unlocks, premature reveals, and colluding coalitions.
// The invariant checked everywhere is Theorem 4.9: no conforming party
// ends Underwater (and assets always settle — every escrow is eventually
// claimed or refunded).
#include <gtest/gtest.h>

#include "graph/fvs.hpp"
#include "graph/generators.hpp"
#include "swap/engine.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

// `crashed[v]` marks parties that halt mid-run; their own escrows may
// legitimately sit unsettled (only they can refund them) — that harms
// only themselves.
void expect_safe(const SwapReport& report, const SwapSpec& spec,
                 const std::vector<bool>& crashed = {}) {
  EXPECT_TRUE(report.no_conforming_underwater);
  // Conservation: every arc with a spec contract whose party is still
  // alive settles one way or the other (triggered or refunded).
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    const PartyId head = spec.digraph.arc(a).head;
    if (!crashed.empty() && crashed[head]) continue;
    if (report.contract_published[a]) {
      EXPECT_TRUE(report.triggered[a] || report.refunded[a])
          << "arc " << a << " stranded in escrow";
    }
  }
}

TEST(Adversary, LeaderNeverPublishes) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(0, s);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  // Nothing ever deploys: Phase One never starts.
  for (graph::ArcId a = 0; a < 3; ++a) {
    EXPECT_FALSE(report.contract_published[a]);
  }
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kNoDeal);
}

TEST(Adversary, FollowerNeverPublishes) {
  // Bob (follower) withholds: Alice's contract refunds; Carol unaffected.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(1, s);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  EXPECT_TRUE(report.contract_published[0]);   // Alice published (A,B)
  EXPECT_FALSE(report.contract_published[1]);  // Bob withheld (B,C)
  EXPECT_TRUE(report.refunded[0]);
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kNoDeal);
}

TEST(Adversary, CrashDuringDeployment) {
  // Carol crashes before she can publish (C,A): deployed contracts refund.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.crash_at = 0;  // never acts at all
  engine.set_strategy(2, s);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kNoDeal);
}

TEST(Adversary, CrashSweepEveryPartyEveryTime) {
  // Property sweep: each party crashing at each interesting time leaves
  // no conforming party Underwater and no stranded escrow.
  const graph::Digraph d = graph::figure1_triangle();
  const SwapSpec probe = SwapEngine(d, {0}).spec();
  const sim::Time horizon = probe.final_deadline() + 2 * probe.delta;
  for (PartyId victim = 0; victim < 3; ++victim) {
    for (sim::Time t = 0; t <= horizon; t += probe.delta / 2) {
      SwapEngine engine(d, {0});
      Strategy s;
      s.crash_at = t;
      engine.set_strategy(victim, s);
      const SwapReport report = engine.run();
      std::vector<bool> crashed(3, false);
      crashed[victim] = true;
      expect_safe(report, engine.spec(), crashed);
    }
  }
}

TEST(Adversary, CrashAfterPhaseOneOnlyHurtsCrasher) {
  // Carol crashes after contracts deploy but before claiming: Alice and
  // Bob still complete; only Carol may strand her own acquisition.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  // Phase one completes by start + diam·Δ; crash just after.
  s.crash_at = engine.spec().start_time + 3 * engine.spec().delta + 2;
  engine.set_strategy(2, s);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  EXPECT_EQ(report.outcomes[0], Outcome::kDeal);
}

TEST(Adversary, CrashRecoverPartyComesBackAndSettles) {
  // The crash-recovery adversary: Carol halts mid-protocol and resumes
  // with volatile memory wiped, re-deriving her state by scanning the
  // chains. Unlike a permanent crash, NONE of her escrows may strand —
  // after the outage she either finishes the swap or refunds.
  const graph::Digraph d = graph::figure1_triangle();
  const SwapSpec probe = SwapEngine(d, {0}).spec();
  SwapEngine engine(d, {0});
  engine.set_strategy(2, strategy_from_spec("crash_recover:2:4",
                                            probe.start_time));
  const SwapReport report = engine.run();
  // No crashed mask: the recovered party settles its own arcs too.
  expect_safe(report, engine.spec());
  EXPECT_TRUE(report.no_conforming_underwater);
  for (PartyId v = 0; v < 3; ++v) {
    if (v != 2) {
      EXPECT_TRUE(acceptable(report.outcomes[v])) << "party " << v;
    }
  }
}

TEST(Adversary, CrashRecoverSweepEveryPartyEveryTime) {
  // Property sweep mirroring CrashSweepEveryPartyEveryTime, but with a
  // Δ-long outage instead of a permanent halt: since the victim comes
  // back (before the engine's settlement horizon), EVERY published
  // escrow must settle — no crashed-party exemption.
  const graph::Digraph d = graph::figure1_triangle();
  const SwapSpec probe = SwapEngine(d, {0}).spec();
  for (PartyId victim = 0; victim < 3; ++victim) {
    for (sim::Time t = 0; t <= probe.final_deadline();
         t += probe.delta / 2) {
      SwapEngine engine(d, {0});
      Strategy s;
      s.crash_at = t;
      s.recover_at = t + probe.delta;
      engine.set_strategy(victim, s);
      const SwapReport report = engine.run();
      expect_safe(report, engine.spec());
      EXPECT_TRUE(report.no_conforming_underwater)
          << "victim " << victim << " crash at " << t;
    }
  }
}

TEST(Adversary, CorruptContractsAreIgnored) {
  // Bob publishes contracts whose hashlocks differ from the spec:
  // conforming parties treat the arc as contract-less and refund.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.publish_corrupt_contracts = true;
  engine.set_strategy(1, s);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  EXPECT_FALSE(report.contract_published[1]);  // no *matching* contract
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kNoDeal);
}

TEST(Adversary, WithholdUnlocksForfeitsOwnAcquisition) {
  // Carol never unlocks or claims. The reveal chain starts with leader
  // Alice unlocking her entering arc (C,A); Carol then refuses to relay,
  // so (B,C) refunds and Bob in turn never learns the secret through his
  // leaving arc. Whatever settles, every conforming party must end in an
  // acceptable class.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_unlocks = true;
  s.withhold_claims = true;
  engine.set_strategy(2, s);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  for (PartyId v = 0; v < 3; ++v) {
    if (v != 2) {
      EXPECT_TRUE(acceptable(report.outcomes[v]));
    }
  }
}

TEST(Adversary, LastMomentUnlockCannotStrandPredecessor) {
  // The §1 timing attack: Carol delays her unlock of (B,C) to the last
  // valid moment. Bob must still have time to unlock (A,B) — the per-path
  // deadline gap (one extra Δ per hop) guarantees it.
  SwapEngine engine(graph::figure1_triangle(), {0});
  const SwapSpec& spec = engine.spec();
  for (sim::Time delay = spec.start_time;
       delay <= spec.final_deadline() + spec.delta; delay += 1) {
    SwapEngine e(graph::figure1_triangle(), {0});
    Strategy s;
    s.delay_unlocks_until = delay;
    e.set_strategy(2, s);
    const SwapReport report = e.run();
    expect_safe(report, e.spec());
    EXPECT_TRUE(acceptable(report.outcomes[1])) << "delay " << delay;
    EXPECT_TRUE(acceptable(report.outcomes[0])) << "delay " << delay;
  }
}

TEST(Adversary, PrematureRevealHurtsOnlyTheLeader) {
  // §1: "If Alice (irrationally) reveals s before the first phase
  // completes, Bob can take Alice's alt-coins ... but Alice will not get
  // her Cadillac, so only she is worse off." Alice reveals at start while
  // Carol withholds her contract, so Alice's entering arc never exists.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy alice;
  alice.premature_reveal = true;
  engine.set_strategy(0, alice);
  Strategy carol;
  carol.withhold_contracts = true;
  engine.set_strategy(2, carol);
  const SwapReport report = engine.run();
  // Alice deviated; she may end Underwater — but conforming Bob must not.
  EXPECT_TRUE(acceptable(report.outcomes[1]));
  EXPECT_TRUE(report.no_conforming_underwater);
}

TEST(Adversary, CoalitionSharingSecretsGainsNothing) {
  // Figs. 7–8 digraph; leaders 0,1. Coalition {1,2} shares secrets
  // instantly out-of-band. Conforming party 0 must still end acceptably.
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 0);
  d.add_arc(1, 0);
  d.add_arc(2, 1);
  d.add_arc(0, 2);
  SwapEngine engine(d, {0, 1});
  Strategy member;
  member.coalition = 7;
  engine.set_strategy(1, member);
  engine.set_strategy(2, member);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  EXPECT_TRUE(acceptable(report.outcomes[0]));
  // With everyone otherwise following the protocol, sharing secrets early
  // merely speeds things up: still all Deal.
  EXPECT_TRUE(report.all_triggered);
}

TEST(Adversary, CoalitionWithholdingAgainstVictim) {
  // Coalition {0, 2} (leader + Carol) tries to squeeze Bob: they share
  // secrets and withhold unlocks/claims selectively. Bob must never end
  // Underwater.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy alice;
  alice.coalition = 1;
  Strategy carol;
  carol.coalition = 1;
  carol.withhold_unlocks = true;
  carol.withhold_claims = true;
  engine.set_strategy(0, alice);
  engine.set_strategy(2, carol);
  const SwapReport report = engine.run();
  expect_safe(report, engine.spec());
  EXPECT_TRUE(acceptable(report.outcomes[1]));
}

TEST(Adversary, RandomizedDeviationSweep) {
  // Fuzz: random digraphs, random per-party deviations. Assert the
  // Theorem 4.9 invariant and settlement of all published contracts.
  util::Rng rng(424242);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t n = 3 + rng.next_below(4);
    const graph::Digraph d =
        graph::random_strongly_connected(n, rng.next_below(n), rng);
    const auto leaders = graph::minimum_feedback_vertex_set(d);
    EngineOptions options;
    options.seed = 5000 + static_cast<std::uint64_t>(trial);
    SwapEngine engine(d, leaders, options);
    const sim::Time horizon = engine.spec().final_deadline();
    std::vector<bool> crashed(n, false);
    for (PartyId v = 0; v < n; ++v) {
      Strategy s;
      switch (rng.next_below(6)) {
        case 0:
          s.crash_at = rng.next_below(horizon + 1);
          crashed[v] = true;
          break;
        case 1: s.withhold_contracts = true; break;
        case 2: s.withhold_unlocks = true; break;
        case 3: s.publish_corrupt_contracts = true; break;
        case 4: s.delay_unlocks_until = rng.next_below(horizon + 1); break;
        default: break;  // conforming
      }
      engine.set_strategy(v, s);
    }
    const SwapReport report = engine.run();
    expect_safe(report, engine.spec(), crashed);
  }
}

TEST(Adversary, AllPartiesDeviatingStillSettles) {
  // Everyone withholds unlocks: all contracts deploy, none trigger, all
  // refund — global NoDeal, nobody Underwater.
  SwapEngine engine(graph::figure1_triangle(), {0});
  Strategy s;
  s.withhold_unlocks = true;
  s.withhold_claims = true;
  for (PartyId v = 0; v < 3; ++v) engine.set_strategy(v, s);
  const SwapReport report = engine.run();
  for (graph::ArcId a = 0; a < 3; ++a) {
    EXPECT_TRUE(report.contract_published[a]);
    EXPECT_TRUE(report.refunded[a]);
  }
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kNoDeal);
}

}  // namespace
}  // namespace xswap::swap
