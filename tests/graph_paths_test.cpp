#include "graph/paths.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace xswap::graph {
namespace {

TEST(Paths, AcyclicDetection) {
  Digraph dag(3);
  dag.add_arc(0, 1);
  dag.add_arc(1, 2);
  dag.add_arc(0, 2);
  EXPECT_TRUE(is_acyclic(dag));
  EXPECT_FALSE(is_acyclic(cycle(3)));
  EXPECT_TRUE(is_acyclic(Digraph(5)));  // no arcs
}

TEST(Paths, TopologicalOrderRespectsArcs) {
  Digraph dag(4);
  dag.add_arc(3, 1);
  dag.add_arc(1, 0);
  dag.add_arc(3, 2);
  dag.add_arc(2, 0);
  const auto order = topological_order(dag);
  ASSERT_TRUE(order.has_value());
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const Arc& a : dag.arcs()) EXPECT_LT(pos[a.head], pos[a.tail]);
}

TEST(Paths, TopologicalOrderNulloptOnCycle) {
  EXPECT_FALSE(topological_order(cycle(4)).has_value());
}

TEST(Paths, LongestPathOnCycle) {
  // In C_n the longest simple path between distinct u,v is the arc
  // distance around the cycle; max over pairs is n-1.
  const Digraph d = cycle(5);
  EXPECT_EQ(longest_path(d, 0, 1), 1u);
  EXPECT_EQ(longest_path(d, 0, 4), 4u);
  EXPECT_EQ(longest_path(d, 2, 1), 4u);
}

TEST(Paths, LongestPathUnreachable) {
  Digraph d(3);
  d.add_arc(0, 1);
  EXPECT_FALSE(longest_path(d, 1, 0).has_value());
  EXPECT_FALSE(longest_path(d, 0, 2).has_value());
}

TEST(Paths, LongestPathSelfIsLongestCycle) {
  // §2.1 paths may close back onto their start, so D(u, u) is the longest
  // cycle through u.
  EXPECT_EQ(longest_path(cycle(3), 0, 0), 3u);
  EXPECT_EQ(longest_path(complete(4), 2, 2), 4u);
  Digraph dag(2);
  dag.add_arc(0, 1);
  EXPECT_EQ(longest_path(dag, 0, 0), 0u);  // no cycle: trivial path only
}

TEST(Paths, LongestPathPicksLongerBranch) {
  // 0→1→2→3 and shortcut 0→3: longest 0..3 path has length 3.
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 3);
  d.add_arc(0, 3);
  EXPECT_EQ(longest_path(d, 0, 3), 3u);
}

TEST(Paths, DiameterOfFamilies) {
  // Closed paths count (Fig. 1 implies diam(C_3) = 3: timeouts 6Δ/5Δ/4Δ
  // come from (diam + D(v, v̂) + 1)·Δ with D(B,A)=2, D(C,A)=1, D(A,A)=0).
  EXPECT_EQ(diameter(cycle(3)), 3u);
  EXPECT_EQ(diameter(cycle(8)), 8u);
  EXPECT_EQ(diameter(complete(4)), 4u);  // Hamiltonian cycle
  EXPECT_EQ(diameter(hub_and_spokes(4)), 2u);
  EXPECT_EQ(diameter(Digraph(3)), 0u);
}

TEST(Paths, DiameterSizeGuard) {
  EXPECT_THROW(diameter(cycle(30), /*max_exact_vertices=*/24),
               std::invalid_argument);
  EXPECT_EQ(diameter_upper_bound(cycle(30)), 30u);
  EXPECT_EQ(diameter_upper_bound(Digraph(0)), 0u);
}

TEST(Paths, DiameterUpperBoundDominatesExact) {
  for (std::size_t n = 2; n <= 7; ++n) {
    EXPECT_GE(diameter_upper_bound(complete(n)), diameter(complete(n)));
    EXPECT_GE(diameter_upper_bound(cycle(n)), diameter(cycle(n)));
  }
}

TEST(Paths, LongestPathsToDagMatchesSingleLeaderFormula) {
  // Followers of a single-leader triangle: B(0) → C(1), target C.
  Digraph followers(2);
  followers.add_arc(0, 1);
  const auto dist = longest_paths_to_dag(followers, 1);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_EQ(dist[1], 0u);
}

TEST(Paths, LongestPathsToDagUnreachable) {
  Digraph dag(3);
  dag.add_arc(0, 1);
  const auto dist = longest_paths_to_dag(dag, 1);
  EXPECT_EQ(dist[0], 1u);
  EXPECT_FALSE(dist[2].has_value());
}

TEST(Paths, LongestPathsToDagRejectsCycle) {
  EXPECT_THROW(longest_paths_to_dag(cycle(3), 0), std::invalid_argument);
}

TEST(Paths, LongestPathsToDagDiamond) {
  // 0→1→3, 0→2→3, 0→3: longest 0→3 distance is 2.
  Digraph dag(4);
  dag.add_arc(0, 1);
  dag.add_arc(1, 3);
  dag.add_arc(0, 2);
  dag.add_arc(2, 3);
  dag.add_arc(0, 3);
  const auto dist = longest_paths_to_dag(dag, 3);
  EXPECT_EQ(dist[0], 2u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 1u);
}

TEST(Paths, IsPathAcceptsSimplePathsAndClosedCycles) {
  const Digraph d = cycle(4);
  EXPECT_TRUE(is_path(d, {0}));
  EXPECT_TRUE(is_path(d, {0, 1, 2}));
  EXPECT_TRUE(is_path(d, {0, 1, 2, 3, 0}));  // closing cycle allowed (§2.1)
}

TEST(Paths, EnumeratePathsOnCycle) {
  const Digraph d = cycle(3);
  // Exactly one path between distinct vertexes of a cycle.
  EXPECT_EQ(enumerate_paths(d, 1, 0).size(), 1u);
  EXPECT_EQ(enumerate_paths(d, 1, 0)[0], (std::vector<VertexId>{1, 2, 0}));
  // from == to: the trivial path plus the full closed cycle.
  const auto loops = enumerate_paths(d, 0, 0);
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0], (std::vector<VertexId>{0}));
  EXPECT_EQ(loops[1], (std::vector<VertexId>{0, 1, 2, 0}));
}

TEST(Paths, EnumeratePathsMatchesFig7Counts) {
  // The two-leader digraph of Fig. 7: triangle plus reverse arcs. The
  // figure labels the arc entering B with s_A:{BA, BCA} and
  // s_B:{B, BAB, BCB, BACB, BCAB}.
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 0);
  d.add_arc(1, 0);
  d.add_arc(2, 1);
  d.add_arc(0, 2);
  EXPECT_EQ(enumerate_paths(d, 1, 0).size(), 2u);  // B→A: BA, BCA
  EXPECT_EQ(enumerate_paths(d, 1, 1).size(), 5u);  // B→B: B,BAB,BCB,BACB,BCAB
  EXPECT_EQ(enumerate_paths(d, 2, 0).size(), 2u);  // C→A: CA, CBA
  EXPECT_EQ(enumerate_paths(d, 0, 0).size(), 5u);  // A→A loops + trivial
}

TEST(Paths, EnumeratePathsAllResultsAreValidPaths) {
  const Digraph d = complete(4);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      for (const auto& p : enumerate_paths(d, u, v)) {
        EXPECT_TRUE(is_path(d, p));
        EXPECT_EQ(p.front(), u);
        EXPECT_EQ(p.back(), v);
      }
    }
  }
}

TEST(Paths, EnumeratePathsUnreachableIsEmpty) {
  Digraph d(3);
  d.add_arc(0, 1);
  EXPECT_TRUE(enumerate_paths(d, 1, 0).empty());
  EXPECT_THROW(enumerate_paths(d, 0, 9), std::out_of_range);
  EXPECT_THROW(enumerate_paths(cycle(20), 0, 1, 16), std::invalid_argument);
}

TEST(Paths, EnumeratePathsLongestMatchesLongestPath) {
  util::Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const Digraph d = random_strongly_connected(3 + rng.next_below(4),
                                                rng.next_below(4), rng);
    for (VertexId u = 0; u < d.vertex_count(); ++u) {
      for (VertexId v = 0; v < d.vertex_count(); ++v) {
        const auto paths = enumerate_paths(d, u, v);
        std::size_t longest = 0;
        for (const auto& p : paths) longest = std::max(longest, p.size() - 1);
        const auto expect = longest_path(d, u, v);
        ASSERT_TRUE(expect.has_value());
        EXPECT_EQ(longest, *expect) << "u=" << u << " v=" << v;
      }
    }
  }
}

TEST(Paths, IsPathRejectsBadSequences) {
  const Digraph d = cycle(4);
  EXPECT_FALSE(is_path(d, {}));
  EXPECT_FALSE(is_path(d, {0, 2}));           // no such arc
  EXPECT_FALSE(is_path(d, {0, 1, 0, 1}));     // repeated interior vertex
  EXPECT_FALSE(is_path(d, {0, 1, 2, 1}));     // closes onto interior vertex
  EXPECT_FALSE(is_path(d, {0, 9}));           // out of range
}

}  // namespace
}  // namespace xswap::graph
