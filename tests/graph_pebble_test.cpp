// Lemmas 4.1–4.3: both pebble games pebble every arc, within diam(D)
// rounds, when leaders form a feedback vertex set (lazy) or the digraph is
// strongly connected (eager).
#include "graph/pebble.hpp"

#include <gtest/gtest.h>

#include "graph/fvs.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace xswap::graph {
namespace {

TEST(LazyPebble, TriangleSingleLeader) {
  const Digraph d = figure1_triangle();
  const PebbleResult r = lazy_pebble_game(d, {0});
  EXPECT_TRUE(r.complete);
  // Contract wave: (0,1) at round 0, (1,2) at 1, (2,0) at 2 < diam(D)=3.
  EXPECT_EQ(r.round[0], 0u);
  EXPECT_EQ(r.round[1], 1u);
  EXPECT_EQ(r.round[2], 2u);
  EXPECT_LE(r.rounds, diameter(d));
}

TEST(LazyPebble, IncompleteWithoutFeedbackVertexSet) {
  // Lemma 4.1's hypothesis is necessary: with no leader on some cycle,
  // that cycle waits forever (this is Theorem 4.12's deadlock).
  const Digraph d = two_cycles_sharing_vertex(3, 3);
  // Vertex 1 lies only on the first cycle; the second cycle never fires.
  const PebbleResult r = lazy_pebble_game(d, {1});
  EXPECT_FALSE(r.complete);
}

TEST(LazyPebble, EmptyLeaderSetPebblesNothingOnCycle) {
  const PebbleResult r = lazy_pebble_game(cycle(4), {});
  EXPECT_FALSE(r.complete);
  for (const auto round : r.round) EXPECT_EQ(round, PebbleResult::kNever);
}

TEST(LazyPebble, RejectsBadLeaderId) {
  EXPECT_THROW(lazy_pebble_game(cycle(3), {7}), std::out_of_range);
}

TEST(EagerPebble, CompleteFromAnyStartOnStronglyConnected) {
  const Digraph d = cycle(6);
  for (VertexId z = 0; z < 6; ++z) {
    const PebbleResult r = eager_pebble_game(d, z);
    EXPECT_TRUE(r.complete) << "start " << z;
    EXPECT_LE(r.rounds, diameter(d));
  }
}

TEST(EagerPebble, IncompleteWhenNotStronglyConnected) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  const PebbleResult r = eager_pebble_game(d, 1);
  EXPECT_FALSE(r.complete);           // arc (0,1) never pebbled
  EXPECT_EQ(r.round[1], 0u);          // but (1,2) is
}

TEST(EagerPebble, RejectsBadStart) {
  EXPECT_THROW(eager_pebble_game(cycle(3), 5), std::out_of_range);
}

// ---- Property sweeps over digraph families (Lemma 4.3 bound) ----

struct FamilyCase {
  const char* name;
  std::size_t n;
};

class PebbleBoundTest : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(PebbleBoundTest, LazyWithinDiameterOnCycles) {
  const Digraph d = cycle(GetParam().n);
  const auto fvs = minimum_feedback_vertex_set(d);
  const PebbleResult r = lazy_pebble_game(d, fvs);
  EXPECT_TRUE(r.complete);
  EXPECT_LE(r.rounds, diameter(d));
}

TEST_P(PebbleBoundTest, LazyWithinDiameterOnComplete) {
  const std::size_t n = GetParam().n;
  const Digraph d = complete(n);
  const auto fvs = minimum_feedback_vertex_set(d);
  const PebbleResult r = lazy_pebble_game(d, fvs);
  EXPECT_TRUE(r.complete);
  // diam(complete(n)) = n exactly: §2.1 paths may close into cycles, so
  // the longest path in a complete digraph is a closed Hamiltonian
  // cycle — n arcs. Exact enumeration (diameter()) is exponential in n,
  // so it cross-checks the closed form on the small sizes and the bound
  // itself is asserted analytically for every size (n8/n10 included,
  // which used to skip here).
  if (n <= 7) {
    EXPECT_EQ(diameter(d), n);
  }
  EXPECT_LE(r.rounds, n);
}

TEST_P(PebbleBoundTest, EagerWithinDiameter) {
  const Digraph d = cycle(GetParam().n);
  for (VertexId z = 0; z < d.vertex_count(); ++z) {
    const PebbleResult r = eager_pebble_game(d, z);
    EXPECT_TRUE(r.complete);
    EXPECT_LE(r.rounds, diameter(d));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PebbleBoundTest,
                         ::testing::Values(FamilyCase{"n3", 3}, FamilyCase{"n4", 4},
                                           FamilyCase{"n5", 5}, FamilyCase{"n6", 6},
                                           FamilyCase{"n8", 8}, FamilyCase{"n10", 10}),
                         [](const auto& info) { return info.param.name; });

TEST(PebbleProperty, RandomStronglyConnectedLazyAndEager) {
  util::Rng rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + rng.next_below(8);
    const Digraph d = random_strongly_connected(n, rng.next_below(n), rng);
    const auto fvs = minimum_feedback_vertex_set(d);
    const std::size_t diam = diameter(d);

    const PebbleResult lazy = lazy_pebble_game(d, fvs);
    EXPECT_TRUE(lazy.complete);
    EXPECT_LE(lazy.rounds, diam);

    // Phase Two runs the eager game on the transpose (Lemma 4.6).
    const Digraph dt = d.transpose();
    for (const VertexId leader : fvs) {
      const PebbleResult eager = eager_pebble_game(dt, leader);
      EXPECT_TRUE(eager.complete);
      EXPECT_LE(eager.rounds, diam);
    }
  }
}

TEST(PebbleProperty, MultigraphArcsAllPebbled) {
  const Digraph d = multi_cycle(4, 3);
  const PebbleResult r = lazy_pebble_game(d, {0});
  EXPECT_TRUE(r.complete);
  // Parallel arcs leaving the same vertex are pebbled in the same round.
  for (VertexId v = 0; v < 4; ++v) {
    const auto& out = d.out_arcs(v);
    for (std::size_t i = 1; i < out.size(); ++i) {
      EXPECT_EQ(r.round[out[i]], r.round[out[0]]);
    }
  }
}

}  // namespace
}  // namespace xswap::graph
