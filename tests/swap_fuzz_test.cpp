// The seeded invariant fuzzer (swap/fuzz.hpp): sweep determinism across
// executors, seed-file round trips, schema-version gating, shrinking of
// planted violations, and replay of the pinned regression corpus.
//
// XSWAP_FUZZ_CORPUS_DIR (a compile definition from tests/CMakeLists.txt)
// points at tests/fuzz_corpus/, the committed regression seeds: every
// case that ever mattered replays here with zero violations.
#include "swap/fuzz.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace xswap::swap {
namespace {

FuzzOptions small_sweep_options() {
  FuzzOptions options;
  options.seed = 42;
  options.runs = 200;
  options.min_parties = 3;
  options.max_parties = 6;
  return options;
}

// ---- The sweep: clean, deterministic, executor-independent ----

TEST(FuzzSweep, TwoHundredSeededCasesHoldEveryInvariant) {
  const FuzzSummary summary = fuzz_sweep(small_sweep_options());
  EXPECT_EQ(summary.runs, 200u);
  EXPECT_EQ(summary.swaps, 200u);  // every topology clears to one SCC
  EXPECT_TRUE(summary.ok()) << summary.failures.size() << " failing case(s); "
                            << "first: "
                            << (summary.failures.empty()
                                    ? ""
                                    : summary.failures[0]
                                          .original.violations[0]);
  // The generator must actually exercise the adversarial and perturbed
  // parts of the space, not just honest pristine runs.
  EXPECT_FALSE(summary.strategy_counts.empty());
  EXPECT_GT(summary.perturbed_submissions, 0u);
  EXPECT_FALSE(summary.trigger_histogram.empty());
}

TEST(FuzzSweep, SerialAndWorkStealingSweepsMatchExactly) {
  FuzzOptions serial = small_sweep_options();
  FuzzOptions stealing = small_sweep_options();
  stealing.jobs = 4;  // chunks run through the shared work-stealing pool

  const FuzzSummary a = fuzz_sweep(serial);
  const FuzzSummary b = fuzz_sweep(stealing);

  EXPECT_EQ(a.runs, b.runs);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_EQ(a.swaps_fully_triggered, b.swaps_fully_triggered);
  EXPECT_EQ(a.perturbed_submissions, b.perturbed_submissions);
  EXPECT_EQ(a.trigger_histogram, b.trigger_histogram);
  EXPECT_EQ(a.strategy_counts, b.strategy_counts);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    EXPECT_EQ(a.failures[i].original.violations,
              b.failures[i].original.violations);
    EXPECT_EQ(case_to_json(a.failures[i].minimal),
              case_to_json(b.failures[i].minimal));
  }
}

TEST(FuzzCaseGeneration, IsAPureFunctionOfSeedAndIndex) {
  const FuzzOptions options = small_sweep_options();
  for (const std::uint64_t index : {0u, 7u, 199u}) {
    EXPECT_EQ(case_to_json(case_from_seed(options, index)),
              case_to_json(case_from_seed(options, index)));
  }
  // Distinct indexes must not replay the same case.
  EXPECT_NE(case_to_json(case_from_seed(options, 0)),
            case_to_json(case_from_seed(options, 1)));
}

TEST(FuzzCaseGeneration, StoredDeltaCoversTheNetworkWorstCase) {
  const FuzzOptions options = small_sweep_options();
  for (std::uint64_t index = 0; index < 64; ++index) {
    const FuzzCase c = case_from_seed(options, index);
    // Engine floor: Δ ≥ 2·(seal + submit + worst-case fault delay).
    EXPECT_GE(c.effective_delta(), 2 * (1 + c.net.max_extra_delay()))
        << "case " << index;
  }
}

TEST(FuzzRunCase, ReplaysBitForBit) {
  const FuzzCase c = case_from_seed(small_sweep_options(), 11);
  const FuzzCaseResult a = run_case(c);
  const FuzzCaseResult b = run_case(c);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.all_triggered, b.all_triggered);
  EXPECT_EQ(a.trigger_delta_units, b.trigger_delta_units);
  EXPECT_EQ(a.perturbed_submissions, b.perturbed_submissions);
}

// ---- Seed files: round trip, schema gate, malformed input ----

TEST(FuzzSeedFile, JsonRoundTripIsExact) {
  const FuzzCase c = case_from_seed(small_sweep_options(), 3);
  const std::string json = case_to_json(c);
  EXPECT_EQ(json, case_to_json(case_from_json(json)));
}

TEST(FuzzSeedFile, FileRoundTripIsExact) {
  const FuzzCase c = case_from_seed(small_sweep_options(), 5);
  const std::string path =
      testing::TempDir() + "/xswap_fuzz_roundtrip.json";
  write_case_file(c, path);
  EXPECT_EQ(case_to_json(c), case_to_json(read_case_file(path)));
  std::filesystem::remove(path);
}

TEST(FuzzSeedFile, MismatchedSchemaVersionIsRejected) {
  const FuzzCase c = case_from_seed(small_sweep_options(), 0);
  std::string json = case_to_json(c);
  const std::string want = "\"schema\": " +
                           std::to_string(kFuzzSeedSchemaVersion);
  const std::size_t at = json.find(want);
  ASSERT_NE(at, std::string::npos);
  json.replace(at, want.size(), "\"schema\": 999");
  try {
    case_from_json(json);
    FAIL() << "schema 999 must be rejected";
  } catch (const std::invalid_argument& e) {
    // The error names BOTH versions, so a user sees what the file has
    // and what this build supports.
    EXPECT_NE(std::string(e.what()).find("999"), std::string::npos);
    EXPECT_NE(std::string(e.what())
                  .find(std::to_string(kFuzzSeedSchemaVersion)),
              std::string::npos);
  }
}

TEST(FuzzSeedFile, MissingSchemaFieldIsRejected) {
  EXPECT_THROW(case_from_json("{\"seed\": 1}"), std::invalid_argument);
}

TEST(FuzzSeedFile, MalformedJsonIsRejected) {
  EXPECT_THROW(case_from_json(""), std::invalid_argument);
  EXPECT_THROW(case_from_json("{"), std::invalid_argument);
  EXPECT_THROW(case_from_json("{\"schema\": 1,}"), std::invalid_argument);
  EXPECT_THROW(case_from_json("[1, 2]"), std::invalid_argument);
  EXPECT_THROW(case_from_json("{\"schema\": true}"), std::invalid_argument);
}

TEST(FuzzSeedFile, MissingFileSurfacesAsRuntimeError) {
  EXPECT_THROW(read_case_file(testing::TempDir() + "/definitely-absent.json"),
               std::runtime_error);
}

// ---- Shrinking: planted violations reduce to minimal reproducers ----

/// A planted "bug" that fires whenever the case has at least one
/// adversary: lets the shrinker run without a real protocol defect. The
/// expected minimal reproducer is the smallest case that still has one.
FuzzOptions planted_adversary_options() {
  FuzzOptions options;
  options.planted_violation = [](const FuzzCase& c, const BatchReport&)
      -> std::optional<std::string> {
    if (c.adversaries.empty()) return std::nullopt;
    return "synthetic: adversary present";
  };
  return options;
}

TEST(FuzzShrink, PlantedViolationShrinksToMinimalReproducer) {
  FuzzCase big;
  big.seed = 99;
  big.topology = "cycle";
  big.parties = 6;
  big.adversaries = {"P1:withhold", "P4:silent"};
  big.net.jitter = JitterKind::kUniform;
  big.net.max_jitter = 2;
  big.net.seed = 7;

  const FuzzOptions options = planted_adversary_options();
  const FuzzCaseResult failing = run_case(big, options);
  ASSERT_FALSE(failing.violations.empty());

  const FuzzFailure shrunk = shrink_case(failing, options);
  EXPECT_GT(shrunk.shrink_attempts, 0u);
  ASSERT_FALSE(shrunk.minimal_violations.empty());
  // Minimal = smallest topology, exactly one adversary, faults gone.
  EXPECT_EQ(shrunk.minimal.parties, 2u);
  EXPECT_EQ(shrunk.minimal.adversaries.size(), 1u);
  EXPECT_EQ(shrunk.minimal.net.jitter, JitterKind::kNone);
  EXPECT_FALSE(shrunk.minimal.net.active());

  // The emitted seed file replays to the SAME violation.
  const std::string path = testing::TempDir() + "/xswap_fuzz_minimal.json";
  write_case_file(shrunk.minimal, path);
  const FuzzCaseResult replayed = run_case(read_case_file(path), options);
  EXPECT_EQ(replayed.violations, shrunk.minimal_violations);
  std::filesystem::remove(path);
}

TEST(FuzzShrink, DropsAdversariesOrphanedByPartyRemoval) {
  // The adversary names the highest party; shrinking parties must not
  // produce unbuildable candidates that reference a removed vertex.
  FuzzCase c;
  c.seed = 5;
  c.topology = "cycle";
  c.parties = 4;
  c.adversaries = {"P3:withhold"};

  FuzzOptions options;
  options.planted_violation = [](const FuzzCase&, const BatchReport&) {
    return std::optional<std::string>("synthetic: always");
  };
  const FuzzFailure shrunk = shrink_case(run_case(c, options), options);
  EXPECT_EQ(shrunk.minimal.parties, 2u);
  EXPECT_TRUE(shrunk.minimal.adversaries.empty());
  ASSERT_FALSE(shrunk.minimal_violations.empty());
}

TEST(FuzzSweep, ShrinksPlantedFailureAndStaysDeterministic) {
  FuzzOptions options = small_sweep_options();
  options.runs = 6;
  options.planted_violation = [](const FuzzCase& c, const BatchReport&)
      -> std::optional<std::string> {
    if (c.index != 3) return std::nullopt;
    return "synthetic: case 3";
  };
  const FuzzSummary summary = fuzz_sweep(options);
  ASSERT_EQ(summary.failures.size(), 1u);
  EXPECT_EQ(summary.failures[0].original.fuzz_case.index, 3u);
  EXPECT_FALSE(summary.failures[0].minimal_violations.empty());
  // Shrinking preserves the index, so the hook keeps firing and the
  // minimal case bottoms out at the smallest buildable topology.
  EXPECT_EQ(summary.failures[0].minimal.index, 3u);
  EXPECT_LE(summary.failures[0].minimal.vertex_count(),
            summary.failures[0].original.fuzz_case.vertex_count());

  // The identical sweep finds the identical failure.
  const FuzzSummary again = fuzz_sweep(options);
  ASSERT_EQ(again.failures.size(), 1u);
  EXPECT_EQ(case_to_json(again.failures[0].minimal),
            case_to_json(summary.failures[0].minimal));
}

// ---- Pinned regression corpus ----

TEST(FuzzCorpus, EveryPinnedSeedReplaysClean) {
  const std::filesystem::path dir = XSWAP_FUZZ_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir))
      << "corpus dir missing: " << dir;
  std::vector<std::filesystem::path> seeds;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") seeds.push_back(entry.path());
  }
  ASSERT_FALSE(seeds.empty()) << "no pinned seeds in " << dir;
  for (const auto& path : seeds) {
    SCOPED_TRACE(path.filename().string());
    FuzzCase c;
    ASSERT_NO_THROW(c = read_case_file(path.string()));
    const FuzzCaseResult result = run_case(c);
    EXPECT_TRUE(result.violations.empty())
        << path << ": " << result.violations[0];
  }
}

}  // namespace
}  // namespace xswap::swap
