// Seeded violation #2 for the thread-safety gate: calls an
// XSWAP_REQUIRES function without acquiring the named mutex first.
// Under Clang with -Wthread-safety -Werror=thread-safety this MUST NOT
// compile; elsewhere it must be ordinary valid C++.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Journal {
 public:
  void append_locked(int entry) XSWAP_REQUIRES(mutex_) { last_ = entry; }

  // BAD: caller contract says mutex_ must already be held.
  void append(int entry) { append_locked(entry); }

  xswap::util::Mutex mutex_;

 private:
  int last_ XSWAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Journal journal;
  journal.append(7);
  return 0;
}
