// Seeded violation #1 for the thread-safety gate: writes an
// XSWAP_GUARDED_BY member without holding its mutex. Under Clang with
// -Wthread-safety -Werror=thread-safety this MUST NOT compile; with the
// annotations expanded to nothing (any other compiler) it must be
// ordinary valid C++. tests/static_analysis/CMakeLists.txt asserts both
// directions.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  // BAD: touches balance_ with mutex_ not held.
  void deposit_unlocked(int amount) { balance_ += amount; }

  int balance() {
    const xswap::util::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  xswap::util::Mutex mutex_;
  int balance_ XSWAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit_unlocked(1);
  return account.balance();
}
