// Positive control for the thread-safety gate: the same shapes as the
// two violation fixtures, locked correctly. MUST compile everywhere,
// including under Clang -Wthread-safety -Werror=thread-safety — if this
// fixture fails, the gate is broken (over-restrictive annotations),
// not the code under test.
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Account {
 public:
  void deposit(int amount) {
    const xswap::util::MutexLock lock(mutex_);
    balance_ += amount;
  }

  int balance() {
    const xswap::util::MutexLock lock(mutex_);
    return balance_;
  }

 private:
  xswap::util::Mutex mutex_;
  int balance_ XSWAP_GUARDED_BY(mutex_) = 0;
};

class Journal {
 public:
  void append_locked(int entry) XSWAP_REQUIRES(mutex_) { last_ = entry; }

  void append(int entry) {
    const xswap::util::MutexLock lock(mutex_);
    append_locked(entry);
  }

  xswap::util::Mutex mutex_;

 private:
  int last_ XSWAP_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1);
  Journal journal;
  journal.append(7);
  return account.balance();
}
