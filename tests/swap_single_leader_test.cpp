// The single-leader variant (§4.6): scalar timeouts, no signatures.
// Includes the Fig. 1 timeout schedule (6Δ/5Δ/4Δ) and Lemma 4.13's gap
// property.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "swap/engine.hpp"
#include "swap/single_leader_contract.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

EngineOptions single_leader_options() {
  EngineOptions options;
  options.mode = ProtocolMode::kSingleLeader;
  return options;
}

TEST(SingleLeader, Figure1TimeoutSchedule) {
  // Triangle A(0)→B(1)→C(2)→A, leader A, diam 3: timeouts must be
  // 6Δ, 5Δ, 4Δ after start for arcs (A,B), (B,C), (C,A) respectively.
  SwapEngine engine(graph::figure1_triangle(), {0}, single_leader_options());
  const SwapSpec& spec = engine.spec();
  EXPECT_EQ(single_leader_timeout(spec, 0), spec.start_time + 6 * spec.delta);
  EXPECT_EQ(single_leader_timeout(spec, 1), spec.start_time + 5 * spec.delta);
  EXPECT_EQ(single_leader_timeout(spec, 2), spec.start_time + 4 * spec.delta);
}

TEST(SingleLeader, Lemma413TimeoutGap) {
  // For every conforming follower v, the timeout on each entering arc is
  // at least Δ later than on each leaving arc.
  util::Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.next_below(5);
    // Single-leader digraphs: hub, cycles, shared-vertex cycles.
    graph::Digraph d;
    switch (trial % 3) {
      case 0: d = graph::cycle(n); break;
      case 1: d = graph::hub_and_spokes(n); break;
      default: d = graph::two_cycles_sharing_vertex(3, n); break;
    }
    EngineOptions options = single_leader_options();
    options.seed = 100 + static_cast<std::uint64_t>(trial);
    SwapEngine engine(d, {0}, options);
    const SwapSpec& spec = engine.spec();
    for (PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
      if (v == 0) continue;  // leader
      for (const graph::ArcId in : spec.digraph.in_arcs(v)) {
        for (const graph::ArcId out : spec.digraph.out_arcs(v)) {
          EXPECT_GE(single_leader_timeout(spec, in),
                    single_leader_timeout(spec, out) + spec.delta)
              << "vertex " << v;
        }
      }
    }
  }
}

TEST(SingleLeader, TriangleAllDeal) {
  SwapEngine engine(graph::figure1_triangle(), {0}, single_leader_options());
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kDeal);
  EXPECT_LE(report.last_trigger_time,
            engine.spec().start_time +
                2 * engine.spec().diam * engine.spec().delta);
  // §4.6's whole point: no signatures at all.
  EXPECT_EQ(report.sign_operations, 0u);
}

TEST(SingleLeader, FamiliesAllDeal) {
  for (const std::size_t n : {3u, 5u, 8u}) {
    SwapEngine cyc(graph::cycle(n), {0}, single_leader_options());
    EXPECT_TRUE(cyc.run().all_triggered) << "cycle " << n;

    SwapEngine hub(graph::hub_and_spokes(n), {0}, single_leader_options());
    EXPECT_TRUE(hub.run().all_triggered) << "hub " << n;
  }
  SwapEngine shared(graph::two_cycles_sharing_vertex(4, 3), {0},
                    single_leader_options());
  EXPECT_TRUE(shared.run().all_triggered);
}

TEST(SingleLeader, RejectsMultipleLeaders) {
  EXPECT_THROW(SwapEngine(graph::complete(3), {0, 1}, single_leader_options()),
               std::invalid_argument);
}

TEST(SingleLeader, CheaperThanGeneralProtocol) {
  // Same digraph, same Δ: the §4.6 variant stores and transmits less.
  SwapEngine general(graph::figure1_triangle(), {0});
  SwapEngine single(graph::figure1_triangle(), {0}, single_leader_options());
  const SwapReport g = general.run();
  const SwapReport s = single.run();
  ASSERT_TRUE(g.all_triggered);
  ASSERT_TRUE(s.all_triggered);
  EXPECT_LT(s.total_storage_bytes, g.total_storage_bytes);
  EXPECT_LT(s.hashkey_bytes_submitted, g.hashkey_bytes_submitted);
  EXPECT_LT(s.sign_operations, g.sign_operations);
}

TEST(SingleLeader, CrashSweepSafety) {
  const graph::Digraph d = graph::figure1_triangle();
  const SwapSpec probe = SwapEngine(d, {0}, single_leader_options()).spec();
  const sim::Time horizon = probe.final_deadline() + probe.delta;
  for (PartyId victim = 0; victim < 3; ++victim) {
    for (sim::Time t = 0; t <= horizon; t += probe.delta) {
      SwapEngine engine(d, {0}, single_leader_options());
      Strategy s;
      s.crash_at = t;
      engine.set_strategy(victim, s);
      const SwapReport report = engine.run();
      EXPECT_TRUE(report.no_conforming_underwater)
          << "victim " << victim << " crash at " << t;
      for (graph::ArcId a = 0; a < 3; ++a) {
        if (report.contract_published[a]) {
          EXPECT_TRUE(report.triggered[a] || report.refunded[a]);
        }
      }
    }
  }
}

TEST(SingleLeader, LastMomentUnlockSafety) {
  // Delayed reveals: the Δ gap between leaving and entering timeouts
  // (Lemma 4.14) keeps conforming parties whole.
  const SwapSpec probe =
      SwapEngine(graph::figure1_triangle(), {0}, single_leader_options()).spec();
  for (sim::Time delay = probe.start_time;
       delay <= probe.final_deadline() + probe.delta; delay += 2) {
    SwapEngine engine(graph::figure1_triangle(), {0}, single_leader_options());
    Strategy s;
    s.delay_unlocks_until = delay;
    engine.set_strategy(2, s);
    const SwapReport report = engine.run();
    EXPECT_TRUE(report.no_conforming_underwater) << "delay " << delay;
    EXPECT_TRUE(acceptable(report.outcomes[1])) << "delay " << delay;
  }
}

TEST(SingleLeader, WithholdContractRefundsEverything) {
  SwapEngine engine(graph::cycle(4), {0}, single_leader_options());
  Strategy s;
  s.withhold_contracts = true;
  engine.set_strategy(2, s);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.no_conforming_underwater);
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kNoDeal);
}

}  // namespace
}  // namespace xswap::swap
