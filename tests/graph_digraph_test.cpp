#include "graph/digraph.hpp"

#include <gtest/gtest.h>

namespace xswap::graph {
namespace {

TEST(Digraph, EmptyConstruction) {
  Digraph d;
  EXPECT_EQ(d.vertex_count(), 0u);
  EXPECT_EQ(d.arc_count(), 0u);
}

TEST(Digraph, AddVertexAssignsDenseIds) {
  Digraph d;
  EXPECT_EQ(d.add_vertex(), 0u);
  EXPECT_EQ(d.add_vertex(), 1u);
  EXPECT_EQ(d.vertex_count(), 2u);
}

TEST(Digraph, AddArcTracksIncidence) {
  Digraph d(3);
  const ArcId a = d.add_arc(0, 1);
  const ArcId b = d.add_arc(1, 2);
  EXPECT_EQ(d.arc(a).head, 0u);
  EXPECT_EQ(d.arc(a).tail, 1u);
  EXPECT_EQ(d.out_degree(0), 1u);
  EXPECT_EQ(d.in_degree(1), 1u);
  EXPECT_EQ(d.out_arcs(1), std::vector<ArcId>{b});
  EXPECT_EQ(d.in_arcs(2), std::vector<ArcId>{b});
}

TEST(Digraph, RejectsSelfLoop) {
  Digraph d(2);
  EXPECT_THROW(d.add_arc(1, 1), std::invalid_argument);
}

TEST(Digraph, RejectsOutOfRangeVertex) {
  Digraph d(2);
  EXPECT_THROW(d.add_arc(0, 2), std::out_of_range);
  EXPECT_THROW(d.add_arc(5, 0), std::out_of_range);
}

TEST(Digraph, AllowsParallelArcs) {
  Digraph d(2);
  const ArcId a = d.add_arc(0, 1);
  const ArcId b = d.add_arc(0, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(d.arc_count(), 2u);
  EXPECT_EQ(d.out_degree(0), 2u);
}

TEST(Digraph, FindArc) {
  Digraph d(3);
  const ArcId a = d.add_arc(0, 1);
  EXPECT_EQ(d.find_arc(0, 1), a);
  EXPECT_FALSE(d.find_arc(1, 0).has_value());
  EXPECT_FALSE(d.find_arc(9, 0).has_value());
}

TEST(Digraph, TransposeReversesArcsPreservingIds) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  const Digraph t = d.transpose();
  EXPECT_EQ(t.arc(0).head, 1u);
  EXPECT_EQ(t.arc(0).tail, 0u);
  EXPECT_EQ(t.arc(1).head, 2u);
  EXPECT_EQ(t.arc(1).tail, 1u);
}

TEST(Digraph, TransposeOfTransposeIsIdentity) {
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 3);
  d.add_arc(3, 0);
  d.add_arc(0, 2);
  EXPECT_EQ(d.transpose().transpose(), d);
}

TEST(Digraph, WithoutVerticesDropsIncidentArcs) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 0);
  const Digraph r = d.without_vertices({1});
  EXPECT_EQ(r.vertex_count(), 3u);  // ids preserved
  EXPECT_EQ(r.arc_count(), 1u);
  EXPECT_EQ(r.arc(0), (Arc{2, 0}));
}

TEST(Digraph, WithoutVerticesRejectsBadId) {
  Digraph d(2);
  EXPECT_THROW(d.without_vertices({7}), std::out_of_range);
}

}  // namespace
}  // namespace xswap::graph
