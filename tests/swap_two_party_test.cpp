// The classic two-party HTLC swap, plus the general/single-leader mode
// equivalence property on single-leader digraphs.
#include "swap/two_party.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/invariants.hpp"
#include "swap/single_leader_contract.hpp"

namespace xswap::swap {
namespace {

TwoPartySide alice() {
  return {"Alice", "altchain", chain::Asset::coins("ALT", 500)};
}
TwoPartySide bob() {
  return {"Bob", "bitcoin", chain::Asset::coins("BTC", 2)};
}

TEST(TwoParty, HappyPath) {
  SwapEngine engine = make_two_party_swap(alice(), bob());
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  EXPECT_EQ(report.outcomes[0], Outcome::kDeal);
  EXPECT_EQ(report.outcomes[1], Outcome::kDeal);
  EXPECT_EQ(engine.ledger("altchain").balance("Bob", "ALT"), 500u);
  EXPECT_EQ(engine.ledger("bitcoin").balance("Alice", "BTC"), 2u);
  EXPECT_EQ(report.sign_operations, 0u);  // §4.6: no signatures
  EXPECT_TRUE(check_all(engine, report).ok());
}

TEST(TwoParty, TimeoutsFollowFig1Pattern) {
  SwapEngine engine = make_two_party_swap(alice(), bob());
  const SwapSpec& spec = engine.spec();
  // Leader Alice's arc (0,1) expires later than Bob's (1,0): Bob must
  // have time to relay after Alice reveals.
  EXPECT_GT(single_leader_timeout(spec, 0), single_leader_timeout(spec, 1));
  EXPECT_GE(single_leader_timeout(spec, 0),
            single_leader_timeout(spec, 1) + spec.delta);
}

TEST(TwoParty, CounterpartyWalkingAwayRefunds) {
  SwapEngine engine = make_two_party_swap(alice(), bob());
  Strategy s;
  s.crash_at = 0;
  engine.set_strategy(1, s);
  const SwapReport report = engine.run();
  EXPECT_FALSE(report.all_triggered);
  EXPECT_EQ(report.outcomes[0], Outcome::kNoDeal);
  EXPECT_EQ(engine.ledger("altchain").balance("Alice", "ALT"), 500u);
  EXPECT_TRUE(report.no_conforming_underwater);
}

TEST(TwoParty, GeneralModeAlsoWorks) {
  EngineOptions options;  // default: general hashkey protocol
  SwapEngine engine = make_two_party_swap(alice(), bob(), options);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  EXPECT_GT(report.sign_operations, 0u);
}

TEST(TwoParty, RejectsDegenerateSides) {
  EXPECT_THROW(make_two_party_swap(alice(), alice()), std::invalid_argument);
  TwoPartySide anon = bob();
  anon.party = "";
  EXPECT_THROW(make_two_party_swap(alice(), anon), std::invalid_argument);
}

// ---- Mode equivalence: on single-leader digraphs, the general hashkey
// protocol and the §4.6 timeout protocol must produce identical outcome
// vectors under the same strategies. ----

struct EquivCase {
  std::string name;
  int family;      // 0=cycle3 1=cycle5 2=hub4 3=twocycles
  int deviation;   // 0=none 1=crash 2=withhold contracts 3=withhold unlocks
};

graph::Digraph equiv_digraph(int family) {
  switch (family) {
    case 0: return graph::cycle(3);
    case 1: return graph::cycle(5);
    case 2: return graph::hub_and_spokes(4);
    default: return graph::two_cycles_sharing_vertex(3, 3);
  }
}

class ModeEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(ModeEquivalence, SameOutcomesBothModes) {
  const EquivCase& c = GetParam();
  std::vector<Outcome> outcomes[2];
  for (int mode = 0; mode < 2; ++mode) {
    EngineOptions options;
    options.mode = mode == 0 ? ProtocolMode::kGeneral
                             : ProtocolMode::kSingleLeader;
    options.seed = 77;
    SwapEngine engine(equiv_digraph(c.family), {0}, options);
    Strategy s;
    switch (c.deviation) {
      case 1: s.crash_at = engine.spec().start_time + engine.spec().delta; break;
      case 2: s.withhold_contracts = true; break;
      case 3: s.withhold_unlocks = true; s.withhold_claims = true; break;
      default: break;
    }
    if (c.deviation != 0) {
      engine.set_strategy(
          static_cast<PartyId>(engine.spec().digraph.vertex_count() - 1), s);
    }
    const SwapReport report = engine.run();
    outcomes[mode] = report.outcomes;
    EXPECT_TRUE(report.no_conforming_underwater);
  }
  EXPECT_EQ(outcomes[0], outcomes[1]) << c.name;
}

std::vector<EquivCase> equivalence_cases() {
  std::vector<EquivCase> cases;
  const char* families[] = {"cycle3", "cycle5", "hub4", "twocycles"};
  const char* deviations[] = {"honest", "crash", "silent", "withhold"};
  for (int f = 0; f < 4; ++f) {
    for (int dev = 0; dev < 4; ++dev) {
      cases.push_back(
          EquivCase{std::string(families[f]) + "_" + deviations[dev], f, dev});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, ModeEquivalence,
                         ::testing::ValuesIn(equivalence_cases()),
                         [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace xswap::swap
