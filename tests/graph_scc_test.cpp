#include "graph/scc.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace xswap::graph {
namespace {

TEST(Scc, CycleIsStronglyConnected) {
  for (std::size_t n = 2; n <= 10; ++n) {
    EXPECT_TRUE(is_strongly_connected(cycle(n))) << n;
  }
}

TEST(Scc, CompleteIsStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(complete(5)));
}

TEST(Scc, PathIsNotStronglyConnected) {
  Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  EXPECT_FALSE(is_strongly_connected(d));
}

TEST(Scc, SingleVertexIsStronglyConnected) {
  EXPECT_TRUE(is_strongly_connected(Digraph(1)));
  EXPECT_TRUE(is_strongly_connected(Digraph(0)));
}

TEST(Scc, TwoComponentExample) {
  // Two 2-cycles joined by a one-way arc: components {0,1} and {2,3}.
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(1, 0);
  d.add_arc(2, 3);
  d.add_arc(3, 2);
  d.add_arc(1, 2);
  const SccResult r = strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 2u);
  EXPECT_EQ(r.component[0], r.component[1]);
  EXPECT_EQ(r.component[2], r.component[3]);
  EXPECT_NE(r.component[0], r.component[2]);
}

TEST(Scc, DisconnectedVerticesAreOwnComponents) {
  Digraph d(3);
  d.add_arc(0, 1);
  const SccResult r = strongly_connected_components(d);
  EXPECT_EQ(r.component_count, 3u);
}

TEST(Scc, ReachableSet) {
  Digraph d(4);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  const auto set = reachable_set(d, 0);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(reaches_all(cycle(5), 3));
  EXPECT_FALSE(reaches_all(d, 0));
  EXPECT_FALSE(reaches_all(d, 3));
}

TEST(Scc, RandomGeneratedGraphsAreStronglyConnected) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + rng.next_below(10);
    const std::size_t extra = rng.next_below(n * 2);
    EXPECT_TRUE(is_strongly_connected(random_strongly_connected(n, extra, rng)));
  }
}

TEST(Scc, DeepGraphDoesNotOverflowStack) {
  // 50k-vertex cycle exercises the iterative DFS.
  const std::size_t n = 50000;
  EXPECT_TRUE(is_strongly_connected(cycle(n)));
}

}  // namespace
}  // namespace xswap::graph
