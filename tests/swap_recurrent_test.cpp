// Recurrent swaps (§5) via hash chains: revealing round k's secret
// distributes round k+1's hashlock.
#include "swap/recurrent.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

TEST(SecretChain, LinksHashCorrectly) {
  util::Rng rng(1);
  const SecretChain chain(rng.next_bytes(32), 4);
  EXPECT_EQ(chain.rounds(), 4u);
  for (std::size_t k = 1; k <= 4; ++k) {
    // Round-k hashlock is H(round-k secret)...
    EXPECT_EQ(crypto::sha256_bytes(chain.secret(k)), chain.hashlock(k));
    // ...and equals the value revealed in round k-1.
    if (k >= 2) {
      EXPECT_EQ(chain.hashlock(k), chain.secret(k - 1));
    }
  }
  EXPECT_EQ(chain.hashlock(1), chain.commitment());
}

TEST(SecretChain, VerifyLinkFromCommitment) {
  util::Rng rng(2);
  const SecretChain chain(rng.next_bytes(32), 5);
  for (std::size_t k = 1; k <= 5; ++k) {
    EXPECT_TRUE(SecretChain::verify_link(chain.commitment(), chain.secret(k), k));
    // Wrong round index fails.
    if (k >= 2) {
      EXPECT_FALSE(
          SecretChain::verify_link(chain.commitment(), chain.secret(k), k - 1));
    }
  }
  EXPECT_FALSE(SecretChain::verify_link(chain.commitment(), chain.secret(1), 0));
  Secret tampered = chain.secret(2);
  tampered[5] ^= 1;
  EXPECT_FALSE(SecretChain::verify_link(chain.commitment(), tampered, 2));
}

TEST(SecretChain, RejectsBadInputs) {
  EXPECT_THROW(SecretChain(Secret(16), 3), std::invalid_argument);
  EXPECT_THROW(SecretChain(Secret(32), 0), std::invalid_argument);
}

TEST(Recurrent, ThreeRoundsAllDeal) {
  RecurrentSwapRunner runner(graph::figure1_triangle(), {0}, 3);
  const auto results = runner.run_all();
  ASSERT_EQ(results.size(), 3u);
  for (const auto& round : results) {
    EXPECT_TRUE(round.report.all_triggered);
    EXPECT_TRUE(round.chain_links_verified);
    for (const Outcome o : round.report.outcomes) EXPECT_EQ(o, Outcome::kDeal);
  }
}

TEST(Recurrent, MultiLeaderRounds) {
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 0);
  d.add_arc(1, 0);
  d.add_arc(2, 1);
  d.add_arc(0, 2);
  RecurrentSwapRunner runner(d, {0, 1}, 2);
  EXPECT_EQ(runner.commitments().size(), 2u);
  const auto results = runner.run_all();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& round : results) {
    EXPECT_TRUE(round.report.all_triggered);
    EXPECT_TRUE(round.chain_links_verified);
  }
}

TEST(Recurrent, HashlocksDifferAcrossRounds) {
  RecurrentSwapRunner runner(graph::cycle(4), {0}, 3);
  SecretChain chain(util::Rng(99).next_bytes(32), 3);
  // Distinct hashlocks per round — replaying round 1's secret cannot
  // unlock round 2.
  EXPECT_NE(chain.hashlock(1), chain.hashlock(2));
  EXPECT_NE(chain.hashlock(2), chain.hashlock(3));
  const auto results = runner.run_all();
  ASSERT_EQ(results.size(), 3u);
}

TEST(Recurrent, RejectsZeroRounds) {
  EXPECT_THROW(RecurrentSwapRunner(graph::cycle(3), {0}, 0),
               std::invalid_argument);
}

TEST(Recurrent, EngineSecretOverrideValidation) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  EXPECT_THROW(engine.override_leader_secrets({}), std::invalid_argument);
  EXPECT_THROW(engine.override_leader_secrets({Secret(16)}),
               std::invalid_argument);
  // Valid override changes the spec hashlock accordingly.
  util::Rng rng(7);
  const Secret s = rng.next_bytes(32);
  engine.override_leader_secrets({s});
  EXPECT_EQ(engine.spec().hashlocks[0], crypto::sha256_bytes(s));
  EXPECT_TRUE(engine.run().all_triggered);
}

}  // namespace
}  // namespace xswap::swap
