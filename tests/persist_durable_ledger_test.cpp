// Durable-ledger journaling + recovery replay: codec round trips,
// attach/recover end to end, the replay-level half of the torn-write
// corpus (duplicate final record, non-chaining heights), and the fsync
// policy cadence. The byte-layer half of the corpus lives in
// persist_segment_store_test.cpp.
#include "persist/durable_ledger.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chain/block.hpp"
#include "chain/ledger.hpp"
#include "sim/simulator.hpp"

namespace xswap::persist {
namespace {

std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/xswap_journal_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

/// A journaled ledger exercised through three sealing rounds: genesis
/// mints, a transfer per round, and one failing call per round (so the
/// journal carries both succeeded and failed transactions).
struct JournaledRun {
  explicit JournaledRun(const std::string& dir,
                        DurabilityOptions options = {})
      : journal(dir, options), ledger("durable-chain", sim, /*seal_period=*/2) {
    ledger.attach_store(&journal);
    ledger.mint("alice", chain::Asset::coins("BTC", 100));
    ledger.mint("carol", chain::Asset::unique("TITLE", "cadillac"));
    ledger.start();
    for (int round = 0; round < 3; ++round) {
      ledger.transfer("alice", "bob", chain::Asset::coins("BTC", 1));
      ledger.submit_call("alice", 9999, "noop", 8,
                         [](chain::Contract&, const chain::CallContext&) {});
      sim.run_until(sim.now() + 2);
    }
    ledger.seal_batch();
    journal.commit();
  }

  sim::Simulator sim;
  LedgerJournal journal;
  chain::Ledger ledger;
};

TEST(LedgerJournal, RecoverRestoresExactlyTheSealedChain) {
  const std::string dir = fresh_dir("roundtrip");
  JournaledRun run(dir);
  const std::vector<chain::Block>& original = run.ledger.blocks();
  ASSERT_EQ(original.size(), 4u);  // genesis + 3 sealed

  const RecoveredLedger recovered = recover_ledger(dir, "durable-chain");
  EXPECT_FALSE(recovered.report.torn_tail);
  EXPECT_EQ(recovered.report.mints, 2u);
  EXPECT_EQ(recovered.report.blocks, original.size());

  const std::vector<chain::Block>& replayed = recovered.ledger->blocks();
  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(replayed[i].hash(), original[i].hash()) << "block " << i;
    EXPECT_EQ(replayed[i].txs.size(), original[i].txs.size()) << "block " << i;
  }
  EXPECT_TRUE(recovered.ledger->verify_integrity());
  // Genesis allocation is replayed through real mints...
  EXPECT_EQ(recovered.ledger->balance("alice", "BTC"), 100u);
  EXPECT_EQ(recovered.ledger->owner_of("TITLE", "cadillac"), "carol");
  // ...and the storage accounting matches the run that wrote the journal.
  EXPECT_EQ(recovered.ledger->transaction_count(),
            run.ledger.transaction_count());
  EXPECT_EQ(recovered.ledger->failed_transaction_count(),
            run.ledger.failed_transaction_count());
}

TEST(LedgerJournal, TornTailRecoversTheSealedPrefix) {
  const std::string dir = fresh_dir("torn");
  JournaledRun run(dir);
  const std::vector<std::string> files = segment_files(dir);
  ASSERT_EQ(files.size(), 1u);
  // Cut into the final record — the crash-mid-write shape.
  const auto size = std::filesystem::file_size(files.front());
  std::filesystem::resize_file(files.front(), size - 5);

  const RecoveredLedger recovered = recover_ledger(dir, "durable-chain");
  EXPECT_TRUE(recovered.report.torn_tail);
  EXPECT_EQ(recovered.report.blocks, run.ledger.blocks().size() - 1);
  EXPECT_TRUE(recovered.ledger->verify_integrity());
  EXPECT_EQ(recovered.ledger->blocks().back().hash(),
            run.ledger.blocks()[run.ledger.blocks().size() - 2].hash());
}

TEST(LedgerJournal, DuplicateFinalRecordDoesNotReplay) {
  const std::string dir = fresh_dir("duplicate");
  JournaledRun run(dir);
  // Re-frame the last record verbatim (valid length + crc) and append
  // it: the bytes are intact, so this is not a torn tail — replay must
  // reject the block that no longer chains (same height twice).
  const RecordScan scan = read_records(dir);
  ASSERT_FALSE(scan.records.empty());
  const util::Bytes& last = scan.records.back();
  util::Bytes frame;
  const std::uint32_t len = static_cast<std::uint32_t>(last.size());
  const std::uint32_t crc = crc32(last);
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(len >> shift));
  }
  for (int shift = 24; shift >= 0; shift -= 8) {
    frame.push_back(static_cast<std::uint8_t>(crc >> shift));
  }
  frame.insert(frame.end(), last.begin(), last.end());
  {
    std::ofstream out(segment_files(dir).back(),
                      std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    ASSERT_TRUE(out.good());
  }
  try {
    recover_ledger(dir, "durable-chain");
    FAIL() << "duplicate final record must not replay";
  } catch (const RecoveryError& e) {
    EXPECT_NE(std::string(e.what()).find("does not replay"),
              std::string::npos)
        << e.what();
  }
}

TEST(LedgerJournal, MintCodecRoundTrips) {
  const util::Bytes coins =
      encode_mint_record("alice", chain::Asset::coins("BTC", 100));
  const JournalRecord a = decode_record(coins);
  EXPECT_EQ(a.kind, JournalRecord::Kind::kMint);
  EXPECT_EQ(a.owner, "alice");
  EXPECT_TRUE(a.asset.fungible);
  EXPECT_EQ(a.asset.symbol, "BTC");
  EXPECT_EQ(a.asset.amount, 100u);

  const util::Bytes nft =
      encode_mint_record("carol", chain::Asset::unique("TITLE", "cadillac"));
  const JournalRecord b = decode_record(nft);
  EXPECT_FALSE(b.asset.fungible);
  EXPECT_EQ(b.asset.unique_id, "cadillac");
}

TEST(LedgerJournal, BlockCodecRoundTrips) {
  chain::Block block;
  block.height = 7;
  block.sealed_at = 14;
  block.prev_hash.fill(0xab);
  chain::Transaction tx;
  tx.kind = chain::TxKind::kContractCall;
  tx.sender = "alice";
  tx.summary = "call: release";
  tx.payload_bytes = 40;
  tx.submitted_at = 12;
  tx.executed_at = 14;
  tx.succeeded = false;
  tx.error = "nothing escrowed";
  block.txs.push_back(tx);
  block.tx_root = block.compute_tx_root();

  const JournalRecord rec = decode_record(encode_block_record(block));
  EXPECT_EQ(rec.kind, JournalRecord::Kind::kBlock);
  EXPECT_EQ(rec.block.height, 7u);
  EXPECT_EQ(rec.block.sealed_at, 14u);
  EXPECT_EQ(rec.block.prev_hash, block.prev_hash);
  EXPECT_EQ(rec.block.tx_root, block.tx_root);
  ASSERT_EQ(rec.block.txs.size(), 1u);
  EXPECT_EQ(rec.block.txs[0].kind, chain::TxKind::kContractCall);
  EXPECT_EQ(rec.block.txs[0].error, "nothing escrowed");
  EXPECT_EQ(rec.block.hash(), block.hash());
}

TEST(LedgerJournal, MalformedRecordsAreNamedErrors) {
  EXPECT_THROW(decode_record(util::Bytes{}), RecoveryError);
  EXPECT_THROW(decode_record(util::Bytes{9}), RecoveryError);  // unknown tag
  // Truncated mid-field.
  util::Bytes block = encode_block_record(chain::Block{});
  block.resize(block.size() - 3);
  EXPECT_THROW(decode_record(block), RecoveryError);
  // Trailing garbage after a complete record.
  util::Bytes mint = encode_mint_record("a", chain::Asset::coins("B", 1));
  mint.push_back(0);
  EXPECT_THROW(decode_record(mint), RecoveryError);
  // A block claiming more transactions than its payload could hold.
  chain::Block b;
  util::Bytes huge = encode_block_record(b);
  // ntx is the 8 bytes right before the (empty) tx list.
  for (std::size_t i = huge.size() - 8; i < huge.size(); ++i) huge[i] = 0xff;
  EXPECT_THROW(decode_record(huge), RecoveryError);
}

TEST(LedgerJournal, FsyncPolicySetsTheGroupCommitCadence) {
  DurabilityOptions always;
  always.policy = FsyncPolicy::kAlways;
  always.group_blocks = 64;
  DurabilityOptions batch;
  batch.policy = FsyncPolicy::kBatch;
  batch.group_blocks = 64;
  DurabilityOptions never;
  never.policy = FsyncPolicy::kNever;

  LedgerJournal ja(fresh_dir("cadence_a"), always);
  LedgerJournal jb(fresh_dir("cadence_b"), batch);
  LedgerJournal jn(fresh_dir("cadence_n"), never);
  EXPECT_EQ(ja.group_blocks(), 1u);  // kAlways pins one block per commit
  EXPECT_EQ(jb.group_blocks(), 64u);
  EXPECT_EQ(jn.group_blocks(), 64u);

  // kNever commits are fflush-only.
  jn.append_mint("alice", chain::Asset::coins("BTC", 1));
  jn.commit();
  EXPECT_EQ(jn.store().fsync_count(), 0u);
  ja.append_mint("alice", chain::Asset::coins("BTC", 1));
  ja.commit();
  EXPECT_EQ(ja.store().fsync_count(), 1u);
}

TEST(LedgerJournal, AlwaysPolicyFsyncsEveryBlockBatchAmortizes) {
  DurabilityOptions always;
  always.policy = FsyncPolicy::kAlways;
  const std::string dir_a = fresh_dir("fsync_always");
  std::size_t always_fsyncs = 0;
  {
    JournaledRun run(dir_a, always);
    always_fsyncs = run.journal.store().fsync_count();
  }
  const std::string dir_b = fresh_dir("fsync_batch");
  std::size_t batch_fsyncs = 0;
  {
    JournaledRun run(dir_b, {});  // kBatch, group_blocks 64
    batch_fsyncs = run.journal.store().fsync_count();
  }
  // Three sealed blocks: kAlways pays a commit per block (plus the
  // genesis journal at attach), kBatch groups them all.
  EXPECT_GT(always_fsyncs, batch_fsyncs);
  // Both journals replay to the identical chain regardless of cadence.
  const RecoveredLedger a = recover_ledger(dir_a, "durable-chain");
  const RecoveredLedger b = recover_ledger(dir_b, "durable-chain");
  ASSERT_EQ(a.ledger->blocks().size(), b.ledger->blocks().size());
  EXPECT_EQ(a.ledger->blocks().back().hash(), b.ledger->blocks().back().hash());
}

TEST(LedgerJournal, SanitizeChainDirMapsHostileNames) {
  EXPECT_EQ(sanitize_chain_dir("ring0-1"), "ring0-1");
  EXPECT_EQ(sanitize_chain_dir("a/b:c d"), "a_b_c_d");
  EXPECT_EQ(sanitize_chain_dir("../evil"), ".._evil");
  EXPECT_EQ(sanitize_chain_dir(""), "_");
}

TEST(LedgerJournal, AttachStoreRequiresAFreshLedger) {
  const std::string dir = fresh_dir("attach_guard");
  LedgerJournal journal(dir);
  sim::Simulator sim;
  chain::Ledger ledger("late-attach", sim, 2);
  ledger.mint("alice", chain::Asset::coins("BTC", 1));
  // A mint already happened unjournaled: attaching now would persist a
  // journal missing it, so the ledger refuses.
  EXPECT_THROW(ledger.attach_store(&journal), std::logic_error);
}

}  // namespace
}  // namespace xswap::persist
