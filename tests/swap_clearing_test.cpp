// The market-clearing service (§4.2): offers → swap digraph + leaders.
#include "swap/clearing.hpp"

#include <gtest/gtest.h>

#include "graph/fvs.hpp"
#include "graph/scc.hpp"
#include "swap/engine.hpp"

namespace xswap::swap {
namespace {

std::vector<Offer> triangle_offers() {
  return {
      {"Alice", "Bob", "altchain", chain::Asset::coins("ALT", 100)},
      {"Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 2)},
      {"Carol", "Alice", "titles", chain::Asset::unique("TITLE", "cadillac")},
  };
}

TEST(Clearing, TriangleOffersClear) {
  const auto cleared = clear_offers(triangle_offers());
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(cleared->digraph.vertex_count(), 3u);
  EXPECT_EQ(cleared->digraph.arc_count(), 3u);
  EXPECT_EQ(cleared->party_names,
            (std::vector<std::string>{"Alice", "Bob", "Carol"}));
  EXPECT_TRUE(graph::is_strongly_connected(cleared->digraph));
  EXPECT_TRUE(graph::is_feedback_vertex_set(cleared->digraph, cleared->leaders));
  EXPECT_EQ(cleared->leaders.size(), 1u);
  EXPECT_EQ(cleared->arcs[0].chain, "altchain");
  EXPECT_EQ(cleared->arcs[2].asset, chain::Asset::unique("TITLE", "cadillac"));
}

TEST(Clearing, NonStronglyConnectedOffersRejected) {
  // One-way generosity does not clear (Lemma 3.4: the other side would
  // free-ride).
  const std::vector<Offer> offers = {
      {"Alice", "Bob", "c1", chain::Asset::coins("ALT", 1)},
      {"Bob", "Carol", "c2", chain::Asset::coins("BTC", 1)},
  };
  EXPECT_FALSE(clear_offers(offers).has_value());
}

TEST(Clearing, EmptyOffersRejected) {
  EXPECT_FALSE(clear_offers({}).has_value());
}

TEST(Clearing, MalformedOffersThrow) {
  EXPECT_THROW(
      clear_offers({{"Alice", "Alice", "c", chain::Asset::coins("X", 1)}}),
      std::invalid_argument);
  EXPECT_THROW(clear_offers({{"", "Bob", "c", chain::Asset::coins("X", 1)}}),
               std::invalid_argument);
  EXPECT_THROW(clear_offers({{"Alice", "Bob", "", chain::Asset::coins("X", 1)}}),
               std::invalid_argument);
}

TEST(Clearing, DuplicateOffersRejected) {
  // The same (from, to, chain, asset) tuple twice is deterministically
  // rejected: a double-submitted offer is indistinguishable from a typo,
  // and two spec-identical contracts on one chain would make report
  // harvesting ambiguous.
  std::vector<Offer> offers = triangle_offers();
  offers.push_back(offers.front());
  EXPECT_THROW(clear_offers(offers), std::invalid_argument);
  EXPECT_THROW(decompose_offers(offers), std::invalid_argument);
}

TEST(Clearing, NearDuplicateOffersAreParallelArcs) {
  // Any differing field makes the repeat a genuine parallel arc (§5
  // multigraphs): same pair and asset on another chain clears.
  std::vector<Offer> offers = triangle_offers();
  offers.push_back({"Alice", "Bob", "altchain2", chain::Asset::coins("ALT", 100)});
  const auto cleared = clear_offers(offers);
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(cleared->digraph.arc_count(), 4u);
  EXPECT_EQ(cleared->digraph.out_degree(0), 2u);

  // Same chain but a different amount is also distinct.
  std::vector<Offer> amounts = triangle_offers();
  amounts.push_back({"Alice", "Bob", "altchain", chain::Asset::coins("ALT", 101)});
  EXPECT_TRUE(clear_offers(amounts).has_value());

  // The duplicate key compares fields, not rendered summaries: these two
  // unique assets stringify identically ("A#B#C") but are distinct.
  const std::vector<Offer> tricky = {
      {"Alice", "Bob", "c1", chain::Asset::unique("A", "B#C")},
      {"Alice", "Bob", "c1", chain::Asset::unique("A#B", "C")},
      {"Bob", "Alice", "c2", chain::Asset::coins("Z", 1)},
  };
  EXPECT_TRUE(clear_offers(tricky).has_value());
}

TEST(Decompose, DuplicateRejectionIsFieldSensitive) {
  // decompose_offers applies the same duplicate rule across the whole
  // book, even when the duplicates would land in different components
  // or in the unmatched list.
  const std::vector<Offer> offers = {
      {"A", "B", "c0", chain::Asset::coins("T", 1)},
      {"B", "A", "c1", chain::Asset::coins("T", 1)},
      {"A", "Mallory", "c2", chain::Asset::coins("T", 1)},
      {"A", "Mallory", "c2", chain::Asset::coins("T", 1)},  // dupe, unmatched side
  };
  EXPECT_THROW(decompose_offers(offers), std::invalid_argument);

  const std::vector<Offer> distinct = {
      {"A", "B", "c0", chain::Asset::coins("T", 1)},
      {"B", "A", "c1", chain::Asset::coins("T", 1)},
      {"A", "Mallory", "c2", chain::Asset::coins("T", 1)},
      {"A", "Mallory", "c3", chain::Asset::coins("T", 1)},  // distinct chain: ok
  };
  const Decomposition d = decompose_offers(distinct);
  EXPECT_EQ(d.swaps.size(), 1u);
  EXPECT_EQ(d.unmatched.size(), 2u);
}

TEST(Clearing, ParallelOffersBecomeMultigraph) {
  // Alice owes Bob on two chains (§5 multigraph extension).
  const std::vector<Offer> offers = {
      {"Alice", "Bob", "c1", chain::Asset::coins("X", 1)},
      {"Alice", "Bob", "c2", chain::Asset::coins("Y", 1)},
      {"Bob", "Alice", "c3", chain::Asset::coins("Z", 1)},
  };
  const auto cleared = clear_offers(offers);
  ASSERT_TRUE(cleared.has_value());
  EXPECT_EQ(cleared->digraph.arc_count(), 3u);
  EXPECT_EQ(cleared->digraph.out_degree(0), 2u);
}

TEST(Clearing, ClearedSwapRunsEndToEnd) {
  const auto cleared = clear_offers(triangle_offers());
  ASSERT_TRUE(cleared.has_value());
  SwapEngine engine(cleared->digraph, cleared->party_names, cleared->leaders,
                    cleared->arcs, EngineOptions{});
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kDeal);
  // The Cadillac ends with Alice.
  EXPECT_EQ(engine.ledger("titles").owner_of("TITLE", "cadillac"), "Alice");
  EXPECT_EQ(engine.ledger("bitcoin").balance("Carol", "BTC"), 2u);
  EXPECT_EQ(engine.ledger("altchain").balance("Bob", "ALT"), 100u);
}

TEST(Decompose, SplitsIndependentRings) {
  // Two disjoint triangles in one offer batch: two independent swaps.
  const std::vector<Offer> offers = {
      {"A", "B", "c0", chain::Asset::coins("T", 1)},
      {"B", "C", "c1", chain::Asset::coins("T", 1)},
      {"C", "A", "c2", chain::Asset::coins("T", 1)},
      {"X", "Y", "c3", chain::Asset::coins("T", 1)},
      {"Y", "Z", "c4", chain::Asset::coins("T", 1)},
      {"Z", "X", "c5", chain::Asset::coins("T", 1)},
  };
  const Decomposition d = decompose_offers(offers);
  EXPECT_EQ(d.swaps.size(), 2u);
  EXPECT_TRUE(d.unmatched.empty());
  for (const auto& swap : d.swaps) {
    EXPECT_EQ(swap.digraph.arc_count(), 3u);
    EXPECT_TRUE(graph::is_strongly_connected(swap.digraph));
  }
}

TEST(Decompose, CrossComponentOffersUnmatched) {
  // A ring plus a one-way offer into a stranger: the ring clears, the
  // dangling offer is returned (honouring it would create a free-rider).
  const std::vector<Offer> offers = {
      {"A", "B", "c0", chain::Asset::coins("T", 1)},
      {"B", "A", "c1", chain::Asset::coins("T", 1)},
      {"A", "Mallory", "c2", chain::Asset::coins("T", 1)},
  };
  const Decomposition d = decompose_offers(offers);
  ASSERT_EQ(d.swaps.size(), 1u);
  EXPECT_EQ(d.swaps[0].digraph.arc_count(), 2u);
  ASSERT_EQ(d.unmatched.size(), 1u);
  EXPECT_EQ(d.unmatched[0].to, "Mallory");
}

TEST(Decompose, AllUnmatchedWhenNothingCycles) {
  const std::vector<Offer> offers = {
      {"A", "B", "c0", chain::Asset::coins("T", 1)},
      {"B", "C", "c1", chain::Asset::coins("T", 1)},
  };
  const Decomposition d = decompose_offers(offers);
  EXPECT_TRUE(d.swaps.empty());
  EXPECT_EQ(d.unmatched.size(), 2u);
}

TEST(Decompose, EmptyBatch) {
  const Decomposition d = decompose_offers({});
  EXPECT_TRUE(d.swaps.empty());
  EXPECT_TRUE(d.unmatched.empty());
}

TEST(Decompose, EachClearedSwapRuns) {
  const std::vector<Offer> offers = {
      {"A", "B", "c0", chain::Asset::coins("T0", 1)},
      {"B", "A", "c1", chain::Asset::coins("T1", 1)},
      {"X", "Y", "c2", chain::Asset::coins("T2", 1)},
      {"Y", "Z", "c3", chain::Asset::coins("T3", 1)},
      {"Z", "X", "c4", chain::Asset::coins("T4", 1)},
      {"A", "X", "c5", chain::Asset::coins("T5", 1)},  // cross: unmatched
  };
  const Decomposition d = decompose_offers(offers);
  ASSERT_EQ(d.swaps.size(), 2u);
  EXPECT_EQ(d.unmatched.size(), 1u);
  for (const auto& cleared : d.swaps) {
    SwapEngine engine(cleared.digraph, cleared.party_names, cleared.leaders,
                      cleared.arcs, EngineOptions{});
    EXPECT_TRUE(engine.run().all_triggered);
  }
}

TEST(Clearing, LargerBarterRing) {
  // A five-party barter ring with a cross chord clears with a small FVS.
  const std::vector<Offer> offers = {
      {"A", "B", "c0", chain::Asset::coins("T0", 1)},
      {"B", "C", "c1", chain::Asset::coins("T1", 1)},
      {"C", "D", "c2", chain::Asset::coins("T2", 1)},
      {"D", "E", "c3", chain::Asset::coins("T3", 1)},
      {"E", "A", "c4", chain::Asset::coins("T4", 1)},
      {"C", "A", "c5", chain::Asset::coins("T5", 1)},
  };
  const auto cleared = clear_offers(offers);
  ASSERT_TRUE(cleared.has_value());
  EXPECT_TRUE(graph::is_feedback_vertex_set(cleared->digraph, cleared->leaders));
  SwapEngine engine(cleared->digraph, cleared->party_names, cleared->leaders,
                    cleared->arcs, EngineOptions{});
  EXPECT_TRUE(engine.run().all_triggered);
}

}  // namespace
}  // namespace xswap::swap
