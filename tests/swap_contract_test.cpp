// The swap contract of Fig. 4–5: escrow, unlock, claim, refund, and every
// authorization / timing rejection path.
#include "swap/contract.hpp"

#include <gtest/gtest.h>

#include "chain/ledger.hpp"
#include "crypto/sha256.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

// Triangle Alice(0) → Bob(1) → Carol(2) → Alice, leader Alice, all arcs on
// one chain for convenience. Δ = 4, start = 4, diam = 3.
class SwapContractTest : public ::testing::Test {
 protected:
  SwapContractTest() : ledger_("c", sim_, 1), rng_(99) {
    spec_.digraph = graph::cycle(3);
    spec_.party_names = {"Alice", "Bob", "Carol"};
    spec_.leaders = {0};
    for (int i = 0; i < 3; ++i) {
      keys_.push_back(crypto::KeyPair::from_seed(rng_.next_bytes(32)));
      spec_.directory.push_back(keys_.back().public_key());
    }
    secret_ = rng_.next_bytes(32);
    spec_.hashlocks = {crypto::sha256_bytes(secret_)};
    spec_.arcs = {ArcTerms{"c", chain::Asset::coins("ALT", 50)},
                  ArcTerms{"c", chain::Asset::coins("BTC", 2)},
                  ArcTerms{"c", chain::Asset::unique("TITLE", "cadillac")}};
    spec_.start_time = 4;
    spec_.delta = 4;
    spec_.diam = graph::diameter(spec_.digraph);

    ledger_.mint("Alice", spec_.arcs[0].asset);
    ledger_.mint("Bob", spec_.arcs[1].asset);
    ledger_.mint("Carol", spec_.arcs[2].asset);
    ledger_.start();
  }

  // Publish the contract for arc `a` from its party; returns its id.
  chain::ContractId publish(graph::ArcId a) {
    const auto& name = spec_.party_names[spec_.digraph.arc(a).head];
    const chain::ContractId id =
        ledger_.submit_contract(name, std::make_unique<SwapContract>(spec_, a),
                                spec_.encoded_size());
    seal();
    return id;
  }

  void seal() { sim_.run_until(sim_.now() + 1); }
  void advance_to(sim::Time t) { sim_.run_until(t); }

  const SwapContract* view(chain::ContractId id) {
    return dynamic_cast<const SwapContract*>(ledger_.get_contract(id));
  }

  void call_unlock(chain::ContractId id, const std::string& sender,
                   std::size_t i, const Hashkey& key) {
    ledger_.submit_call(sender, id, "unlock", key.encoded_size(),
                        [i, key](chain::Contract& c, const chain::CallContext& ctx) {
                          dynamic_cast<SwapContract&>(c).unlock(ctx, i, key);
                        });
    seal();
  }

  void call_claim(chain::ContractId id, const std::string& sender) {
    ledger_.submit_call(sender, id, "claim", 8,
                        [](chain::Contract& c, const chain::CallContext& ctx) {
                          dynamic_cast<SwapContract&>(c).claim(ctx);
                        });
    seal();
  }

  void call_refund(chain::ContractId id, const std::string& sender) {
    ledger_.submit_call(sender, id, "refund", 8,
                        [](chain::Contract& c, const chain::CallContext& ctx) {
                          dynamic_cast<SwapContract&>(c).refund(ctx);
                        });
    seal();
  }

  // Hashkey for counterparty Bob on arc (Alice,Bob): path (1,2,0).
  Hashkey bob_key() {
    const Hashkey k0 = make_leader_hashkey(secret_, 0, keys_[0]);
    const Hashkey k2 = extend_hashkey(k0, 2, keys_[2]);
    return extend_hashkey(k2, 1, keys_[1]);
  }

  sim::Simulator sim_;
  chain::Ledger ledger_;
  util::Rng rng_;
  SwapSpec spec_;
  std::vector<crypto::KeyPair> keys_;
  Secret secret_;
};

TEST_F(SwapContractTest, PublishEscrowsAsset) {
  const auto id = publish(0);
  EXPECT_EQ(ledger_.balance("Alice", "ALT"), 0u);
  EXPECT_EQ(ledger_.balance(chain::contract_address(id), "ALT"), 50u);
  ASSERT_NE(view(id), nullptr);
  EXPECT_EQ(view(id)->disposition(), Disposition::kActive);
  EXPECT_FALSE(view(id)->all_unlocked());
}

TEST_F(SwapContractTest, PublishByNonPartyFails) {
  ledger_.submit_contract("Bob", std::make_unique<SwapContract>(spec_, 0), 10);
  seal();
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
  EXPECT_EQ(ledger_.balance("Alice", "ALT"), 50u);
}

TEST_F(SwapContractTest, UniqueAssetEscrowAndClaim) {
  // Carol's Cadillac title on arc (Carol, Alice).
  const auto id = publish(2);
  EXPECT_EQ(ledger_.owner_of("TITLE", "cadillac"), chain::contract_address(id));
  // Leader Alice is the counterparty of arc 2: degenerate key unlocks it.
  advance_to(5);
  call_unlock(id, "Alice", 0, make_leader_hashkey(secret_, 0, keys_[0]));
  EXPECT_TRUE(view(id)->all_unlocked());
  call_claim(id, "Alice");
  EXPECT_EQ(ledger_.owner_of("TITLE", "cadillac"), "Alice");
  EXPECT_EQ(view(id)->disposition(), Disposition::kClaimed);
}

TEST_F(SwapContractTest, UnlockAcceptsValidHashkey) {
  const auto id = publish(0);
  call_unlock(id, "Bob", 0, bob_key());
  EXPECT_TRUE(view(id)->unlocked(0));
  ASSERT_TRUE(view(id)->unlocking_key(0).has_value());
  EXPECT_EQ(view(id)->unlocking_key(0)->path, (std::vector<PartyId>{1, 2, 0}));
  EXPECT_EQ(ledger_.failed_transaction_count(), 0u);
}

TEST_F(SwapContractTest, UnlockRejectsNonCounterparty) {
  const auto id = publish(0);
  call_unlock(id, "Carol", 0, bob_key());
  EXPECT_FALSE(view(id)->unlocked(0));
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(SwapContractTest, UnlockRejectsBadIndex) {
  const auto id = publish(0);
  call_unlock(id, "Bob", 5, bob_key());
  EXPECT_FALSE(view(id)->unlocked(0));
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(SwapContractTest, UnlockRejectsExpiredHashkey) {
  const auto id = publish(0);
  // Deadline for |p| = 2 is start + (3+2)·4 = 24.
  advance_to(30);
  call_unlock(id, "Bob", 0, bob_key());
  EXPECT_FALSE(view(id)->unlocked(0));
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(SwapContractTest, LongerPathBuysLaterDeadline) {
  const auto id = publish(0);
  EXPECT_EQ(view(id)->hashkey_deadline(0), 4u + 3 * 4);
  EXPECT_EQ(view(id)->hashkey_deadline(2), 4u + 5 * 4);
  // |p| = 0 key expired at t = 16, |p| = 2 key still valid.
  advance_to(20);
  call_unlock(id, "Bob", 0, bob_key());
  EXPECT_TRUE(view(id)->unlocked(0));
}

TEST_F(SwapContractTest, UnlockRejectsTamperedKey) {
  const auto id = publish(0);
  Hashkey bad = bob_key();
  bad.secret[0] ^= 1;
  call_unlock(id, "Bob", 0, bad);
  EXPECT_FALSE(view(id)->unlocked(0));
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(SwapContractTest, ClaimRequiresAllUnlocked) {
  const auto id = publish(0);
  call_claim(id, "Bob");
  EXPECT_EQ(view(id)->disposition(), Disposition::kActive);
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(SwapContractTest, ClaimTransfersToCounterparty) {
  const auto id = publish(0);
  call_unlock(id, "Bob", 0, bob_key());
  call_claim(id, "Bob");
  EXPECT_EQ(view(id)->disposition(), Disposition::kClaimed);
  EXPECT_EQ(ledger_.balance("Bob", "ALT"), 50u);
}

TEST_F(SwapContractTest, ClaimByNonCounterpartyFails) {
  const auto id = publish(0);
  call_unlock(id, "Bob", 0, bob_key());
  call_claim(id, "Carol");
  EXPECT_EQ(view(id)->disposition(), Disposition::kActive);
}

TEST_F(SwapContractTest, RefundBeforeExpiryFails) {
  const auto id = publish(0);
  call_refund(id, "Alice");
  EXPECT_EQ(view(id)->disposition(), Disposition::kActive);
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
}

TEST_F(SwapContractTest, RefundAfterExpiryReturnsAsset) {
  const auto id = publish(0);
  // Max admissible |p| from Bob to leader Alice is D(1,0) = 2, so the
  // hashlock expires at start + (3+2)·4 = 24.
  EXPECT_FALSE(view(id)->refundable(23));
  EXPECT_TRUE(view(id)->refundable(24));
  advance_to(24);
  call_refund(id, "Alice");
  EXPECT_EQ(view(id)->disposition(), Disposition::kRefunded);
  EXPECT_EQ(ledger_.balance("Alice", "ALT"), 50u);
}

TEST_F(SwapContractTest, RefundByNonPartyFails) {
  const auto id = publish(0);
  advance_to(24);
  call_refund(id, "Bob");
  EXPECT_EQ(view(id)->disposition(), Disposition::kActive);
}

TEST_F(SwapContractTest, NoRefundOnceFullyUnlocked) {
  const auto id = publish(0);
  call_unlock(id, "Bob", 0, bob_key());
  advance_to(40);
  call_refund(id, "Alice");
  EXPECT_EQ(view(id)->disposition(), Disposition::kActive);
  // The counterparty can still claim arbitrarily late.
  call_claim(id, "Bob");
  EXPECT_EQ(view(id)->disposition(), Disposition::kClaimed);
}

TEST_F(SwapContractTest, NoDoubleSettlement) {
  const auto id = publish(0);
  call_unlock(id, "Bob", 0, bob_key());
  call_claim(id, "Bob");
  call_claim(id, "Bob");  // second claim fails
  EXPECT_EQ(ledger_.failed_transaction_count(), 1u);
  advance_to(40);
  call_refund(id, "Alice");  // refund after claim fails
  EXPECT_EQ(view(id)->disposition(), Disposition::kClaimed);
  EXPECT_EQ(ledger_.balance("Bob", "ALT"), 50u);
  EXPECT_EQ(ledger_.balance("Alice", "ALT"), 0u);
}

TEST_F(SwapContractTest, UnlockAfterSettlementFails) {
  const auto id = publish(0);
  advance_to(24);
  call_refund(id, "Alice");
  ASSERT_EQ(view(id)->disposition(), Disposition::kRefunded);
  call_unlock(id, "Bob", 0, bob_key());
  EXPECT_FALSE(view(id)->unlocked(0));
}

TEST_F(SwapContractTest, MatchesSpecDetectsTampering) {
  const auto id = publish(0);
  EXPECT_TRUE(view(id)->matches_spec(spec_, 0));
  EXPECT_FALSE(view(id)->matches_spec(spec_, 1));

  SwapSpec other = spec_;
  other.hashlocks[0][0] ^= 1;
  EXPECT_FALSE(view(id)->matches_spec(other, 0));

  other = spec_;
  other.start_time += 1;
  EXPECT_FALSE(view(id)->matches_spec(other, 0));

  other = spec_;
  other.arcs[0].asset = chain::Asset::coins("ALT", 49);
  EXPECT_FALSE(view(id)->matches_spec(other, 0));
}

TEST_F(SwapContractTest, StorageIncludesDigraphCopy) {
  const auto id = publish(0);
  // Theorem 4.10: each contract stores a copy of D — at least |A| arcs'
  // worth of bytes.
  EXPECT_GE(view(id)->storage_bytes(), spec_.digraph.arc_count() * 8);
}

}  // namespace
}  // namespace xswap::swap
