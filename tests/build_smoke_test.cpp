// Fast build canary: one conforming run of the paper's Figure 1 triangle
// (Alice -> Bob -> Carol -> Alice, Alice the sole leader) must end with
// every arc triggered and every party classified kDeal. If this binary
// compiles, links, and passes, the library's full stack — graph, chain,
// sim, crypto, swap — is wired together correctly.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/engine.hpp"
#include "swap/outcome.hpp"

namespace xswap::swap {
namespace {

TEST(BuildSmoke, Figure1TriangleAllDeal) {
  const graph::Digraph d = graph::figure1_triangle();
  SwapEngine engine(d, /*leaders=*/{0});
  const SwapReport report = engine.run();

  EXPECT_TRUE(report.all_triggered);
  ASSERT_EQ(report.outcomes.size(), 3u);
  for (const Outcome outcome : report.outcomes) {
    EXPECT_EQ(outcome, Outcome::kDeal);
  }
  EXPECT_TRUE(report.no_conforming_underwater);
}

}  // namespace
}  // namespace xswap::swap
