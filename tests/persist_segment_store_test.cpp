// Segment-store byte layer: framing round trips, rotation, and the
// torn-write corpus. The torn-tail rule is THE recovery contract — a
// damaged FINAL record is a crash artifact and is discarded
// deterministically, while the same damage anywhere earlier is
// corruption and throws a named RecoveryError — so every branch of
// read_records gets a deliberate on-disk counterexample here.
#include "persist/segment_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace xswap::persist {
namespace {

util::Bytes bytes(const std::string& s) {
  return util::Bytes(s.begin(), s.end());
}

std::string text(const util::Bytes& b) {
  return std::string(b.begin(), b.end());
}

/// Fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "/xswap_segment_" + tag;
  std::filesystem::remove_all(dir);
  return dir;
}

util::Bytes slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return util::Bytes(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void dump(const std::string& path, const util::Bytes& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Write `records` through a SegmentStore and flush+close it.
void write_store(const std::string& dir, const std::vector<std::string>& records,
                 DurabilityOptions options = {}) {
  SegmentStore store(dir, options);
  for (const std::string& r : records) store.append(bytes(r));
  store.flush(/*fsync=*/false);
}

TEST(SegmentStore, RoundTripsRecordsInOrder) {
  const std::string dir = fresh_dir("roundtrip");
  write_store(dir, {"alpha", "bravo", "charlie", std::string(1000, 'x')});

  const RecordScan scan = read_records(dir);
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(text(scan.records[0]), "alpha");
  EXPECT_EQ(text(scan.records[1]), "bravo");
  EXPECT_EQ(text(scan.records[2]), "charlie");
  EXPECT_EQ(text(scan.records[3]), std::string(1000, 'x'));
}

TEST(SegmentStore, CountersTrackFramedBytes) {
  const std::string dir = fresh_dir("counters");
  SegmentStore store(dir, {});
  store.append(bytes("12345"));
  store.append(bytes("678"));
  store.flush(/*fsync=*/false);
  EXPECT_EQ(store.records_appended(), 2u);
  EXPECT_EQ(store.bytes_written(), (8u + 5u) + (8u + 3u));
  EXPECT_EQ(store.segment_count(), 1u);
  EXPECT_EQ(store.fsync_count(), 0u);
  store.flush(/*fsync=*/true);
  EXPECT_EQ(store.fsync_count(), 1u);
}

TEST(SegmentStore, RotatesAtSegmentBoundaryWithoutSplitting) {
  const std::string dir = fresh_dir("rotate");
  DurabilityOptions options;
  options.segment_bytes = 32;  // frame of a 10-byte record is 18 bytes
  {
    SegmentStore store(dir, options);
    store.append(bytes("0123456789"));  // seg 0: 18 bytes
    store.append(bytes("abcdefghij"));  // 18 more would pass 32 -> seg 1
    store.append(bytes("KLMNOPQRST"));  // -> seg 2
    store.flush(false);
    EXPECT_EQ(store.segment_count(), 3u);
  }
  EXPECT_EQ(segment_files(dir).size(), 3u);
  const RecordScan scan = read_records(dir);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(text(scan.records[0]), "0123456789");
  EXPECT_EQ(text(scan.records[2]), "KLMNOPQRST");
}

TEST(SegmentStore, OversizedRecordGetsASegmentToItself) {
  const std::string dir = fresh_dir("oversized");
  DurabilityOptions options;
  options.segment_bytes = 16;
  {
    SegmentStore store(dir, options);
    store.append(bytes("tiny"));
    store.append(bytes(std::string(100, 'B')));  // > segment_bytes alone
    store.append(bytes("tail"));
    store.flush(false);
  }
  ASSERT_EQ(segment_files(dir).size(), 3u);
  const RecordScan scan = read_records(dir);
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.records[1].size(), 100u);
}

TEST(SegmentStore, RejectsEmptyPayloadAndDirtyDirectory) {
  const std::string dir = fresh_dir("guards");
  {
    SegmentStore store(dir, {});
    EXPECT_THROW(store.append({}), std::invalid_argument);
    store.append(bytes("x"));
    store.flush(false);
  }
  // A directory that already holds segments must be recovered, never
  // silently appended to by a second writer.
  EXPECT_THROW(SegmentStore(dir, {}), std::invalid_argument);
}

TEST(SegmentStore, Crc32MatchesKnownVector) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(crc32(bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(SegmentStore, SegmentFilesThrowsOnMissingDirectory) {
  EXPECT_THROW(segment_files(fresh_dir("missing")), std::invalid_argument);
}

// ---- Torn-write corpus ------------------------------------------------
// Each case forges byte-exact damage on disk and pins which side of the
// torn-tail / RecoveryError line it lands on.

TEST(TornWriteCorpus, TruncatedFinalPayloadIsATornTail) {
  const std::string dir = fresh_dir("torn_payload");
  write_store(dir, {"first", "second", "third"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  raw.resize(raw.size() - 3);  // cut into the last record's payload
  dump(seg, raw);

  const RecordScan scan = read_records(dir);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_NE(scan.torn_reason.find("truncated record payload"),
            std::string::npos);
  ASSERT_EQ(scan.records.size(), 2u);  // sealed prefix survives intact
  EXPECT_EQ(text(scan.records[1]), "second");
}

TEST(TornWriteCorpus, TruncatedFinalHeaderIsATornTail) {
  const std::string dir = fresh_dir("torn_header");
  write_store(dir, {"first", "second"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  raw.resize(raw.size() - (8 + 6) + 5);  // leave 5 of the last 8-byte header
  dump(seg, raw);

  const RecordScan scan = read_records(dir);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_NE(scan.torn_reason.find("truncated frame header"),
            std::string::npos);
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(text(scan.records[0]), "first");
}

TEST(TornWriteCorpus, FlippedChecksumOnFinalRecordIsATornTail) {
  const std::string dir = fresh_dir("torn_crc");
  write_store(dir, {"first", "second"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  raw.back() ^= 0x01;  // last payload byte no longer matches its crc
  dump(seg, raw);

  const RecordScan scan = read_records(dir);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_NE(scan.torn_reason.find("checksum mismatch"), std::string::npos);
  ASSERT_EQ(scan.records.size(), 1u);
}

TEST(TornWriteCorpus, FlippedChecksumMidLogIsCorruption) {
  const std::string dir = fresh_dir("midlog_crc");
  write_store(dir, {"first", "second"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  raw[8] ^= 0x01;  // first byte of record 0's payload
  dump(seg, raw);
  EXPECT_THROW(read_records(dir), RecoveryError);
}

TEST(TornWriteCorpus, DamageInNonFinalSegmentIsCorruption) {
  const std::string dir = fresh_dir("earlier_segment");
  DurabilityOptions options;
  options.segment_bytes = 16;  // one record per segment
  write_store(dir, {"0123456789", "abcdefghij"}, options);
  const std::vector<std::string> files = segment_files(dir);
  ASSERT_EQ(files.size(), 2u);
  util::Bytes raw = slurp(files.front());
  raw.resize(raw.size() - 2);  // truncate the FIRST segment's tail
  dump(files.front(), raw);
  // The same damage that would be a tolerated torn tail in the last
  // segment is mid-log corruption here.
  EXPECT_THROW(read_records(dir), RecoveryError);
}

TEST(TornWriteCorpus, ZeroLengthRecordIsCorruption) {
  const std::string dir = fresh_dir("zero_len");
  write_store(dir, {"first"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  // Append a syntactically complete frame claiming a 0-byte payload;
  // the store can never write one, so the reader must refuse even at
  // the tail.
  const util::Bytes zero_frame = {0, 0, 0, 0, 0, 0, 0, 0};
  raw.insert(raw.end(), zero_frame.begin(), zero_frame.end());
  dump(seg, raw);
  EXPECT_THROW(read_records(dir), RecoveryError);
}

TEST(TornWriteCorpus, ImplausibleLengthIsCorruption) {
  const std::string dir = fresh_dir("huge_len");
  write_store(dir, {"first"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  const util::Bytes huge = {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0};
  raw.insert(raw.end(), huge.begin(), huge.end());
  dump(seg, raw);
  EXPECT_THROW(read_records(dir), RecoveryError);
}

TEST(TornWriteCorpus, TornScanIsDeterministic) {
  // The same damaged directory scans to the same result every time —
  // the crash-point sweep depends on replay being a pure function of
  // the bytes on disk.
  const std::string dir = fresh_dir("deterministic");
  write_store(dir, {"first", "second", "third"});
  const std::string seg = segment_files(dir).front();
  util::Bytes raw = slurp(seg);
  raw.resize(raw.size() - 1);
  dump(seg, raw);
  const RecordScan a = read_records(dir);
  const RecordScan b = read_records(dir);
  EXPECT_TRUE(a.torn_tail);
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.torn_reason, b.torn_reason);
}

TEST(SegmentStore, FsyncPolicyNamesRoundTrip) {
  EXPECT_EQ(fsync_policy_from_name("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(fsync_policy_from_name("batch"), FsyncPolicy::kBatch);
  EXPECT_EQ(fsync_policy_from_name("never"), FsyncPolicy::kNever);
  EXPECT_THROW(fsync_policy_from_name("sometimes"), std::invalid_argument);
  EXPECT_STREQ(to_string(FsyncPolicy::kAlways), "always");
  EXPECT_STREQ(to_string(FsyncPolicy::kBatch), "batch");
  EXPECT_STREQ(to_string(FsyncPolicy::kNever), "never");
}

}  // namespace
}  // namespace xswap::persist
