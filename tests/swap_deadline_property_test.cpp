// Cross-checking the contract's timeout machinery against independent
// path enumeration: for every arc and every hashlock, the contract's
// "hashlock expired" time must equal the latest deadline over all
// admissible hashkey paths — two implementations of §4.1's timing rules
// must agree.
#include <gtest/gtest.h>

#include "chain/ledger.hpp"
#include "graph/fvs.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "swap/contract.hpp"
#include "swap/engine.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

struct DeadlineCase {
  const char* name;
  graph::Digraph digraph;
  std::vector<PartyId> leaders;
};

std::vector<DeadlineCase> deadline_cases() {
  std::vector<DeadlineCase> cases;
  cases.push_back({"cycle3", graph::cycle(3), {0}});
  cases.push_back({"cycle5", graph::cycle(5), {2}});
  cases.push_back({"hub4", graph::hub_and_spokes(4), {0}});
  cases.push_back({"twocycles", graph::two_cycles_sharing_vertex(3, 4), {0}});
  {
    graph::Digraph fig8(3);
    fig8.add_arc(0, 1);
    fig8.add_arc(1, 2);
    fig8.add_arc(2, 0);
    fig8.add_arc(1, 0);
    fig8.add_arc(2, 1);
    fig8.add_arc(0, 2);
    cases.push_back({"fig8", std::move(fig8), {0, 1}});
  }
  {
    util::Rng rng(4242);
    cases.push_back(
        {"random6", graph::random_strongly_connected(6, 4, rng), {}});
    cases.back().leaders =
        graph::minimum_feedback_vertex_set(cases.back().digraph);
  }
  return cases;
}

class DeadlineProperty : public ::testing::TestWithParam<DeadlineCase> {};

TEST_P(DeadlineProperty, ContractExpiryMatchesPathEnumeration) {
  const DeadlineCase& c = GetParam();
  SwapEngine engine(c.digraph, c.leaders, EngineOptions{});
  const SwapSpec& spec = engine.spec();

  // Build contracts directly (no run needed: timing is constructor math).
  sim::Simulator sim;
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    const SwapContract contract(spec, a);
    const PartyId counterparty = spec.digraph.arc(a).tail;
    for (std::size_t i = 0; i < spec.leaders.size(); ++i) {
      // Independent computation: the latest deadline over all admissible
      // hashkey paths for this (arc, leader).
      const auto paths =
          graph::enumerate_paths(spec.digraph, counterparty, spec.leaders[i]);
      ASSERT_FALSE(paths.empty());  // strongly connected
      sim::Time latest = 0;
      for (const auto& p : paths) {
        latest = std::max(latest, spec.hashkey_deadline(p.size() - 1));
      }
      // The contract must refuse refunds strictly before `latest` and
      // allow expiry exactly from `latest` on.
      EXPECT_FALSE(contract.hashlock_expired(i, latest - 1))
          << c.name << " arc " << a << " lock " << i;
      EXPECT_TRUE(contract.hashlock_expired(i, latest))
          << c.name << " arc " << a << " lock " << i;
      // And no admissible path may outlive the global 2·diam·Δ bound.
      EXPECT_LE(latest, spec.final_deadline());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Families, DeadlineProperty,
                         ::testing::ValuesIn(deadline_cases()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(DeadlineProperty, RefundableTracksEarliestExpiredLock) {
  // With several hashlocks, the contract becomes refundable at the
  // earliest per-lock expiry (any permanently locked hashlock suffices).
  graph::Digraph fig8(3);
  fig8.add_arc(0, 1);
  fig8.add_arc(1, 2);
  fig8.add_arc(2, 0);
  fig8.add_arc(1, 0);
  fig8.add_arc(2, 1);
  fig8.add_arc(0, 2);
  SwapEngine engine(fig8, {0, 1}, EngineOptions{});
  const SwapSpec& spec = engine.spec();
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    const SwapContract contract(spec, a);
    sim::Time earliest = ~0ULL;
    const PartyId counterparty = spec.digraph.arc(a).tail;
    for (std::size_t i = 0; i < spec.leaders.size(); ++i) {
      const auto paths =
          graph::enumerate_paths(spec.digraph, counterparty, spec.leaders[i]);
      sim::Time latest = 0;
      for (const auto& p : paths) {
        latest = std::max(latest, spec.hashkey_deadline(p.size() - 1));
      }
      earliest = std::min(earliest, latest);
    }
    EXPECT_FALSE(contract.refundable(earliest - 1)) << "arc " << a;
    EXPECT_TRUE(contract.refundable(earliest)) << "arc " << a;
  }
}

}  // namespace
}  // namespace xswap::swap
