// §3 game theory: Lemma 3.3 verified exhaustively on strongly connected
// digraphs, Lemma 3.4's free-ride construction on non-SC ones — together,
// Theorem 3.5.
#include "swap/game.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

TEST(Game, PreferenceRanksFollowFig3) {
  EXPECT_LT(preference_rank(Outcome::kUnderwater), preference_rank(Outcome::kNoDeal));
  EXPECT_LT(preference_rank(Outcome::kNoDeal), preference_rank(Outcome::kDeal));
  EXPECT_LT(preference_rank(Outcome::kDeal), preference_rank(Outcome::kDiscount));
  EXPECT_LT(preference_rank(Outcome::kDiscount), preference_rank(Outcome::kFreeRide));
}

TEST(Game, Lemma33HoldsOnTriangle) {
  // No coalition can beat Deal without drowning a conforming party.
  EXPECT_FALSE(find_lemma33_counterexample(graph::cycle(3)).has_value());
}

TEST(Game, Lemma33HoldsOnSmallFamilies) {
  EXPECT_FALSE(find_lemma33_counterexample(graph::cycle(4)).has_value());
  EXPECT_FALSE(find_lemma33_counterexample(graph::complete(3)).has_value());
  EXPECT_FALSE(find_lemma33_counterexample(graph::hub_and_spokes(4)).has_value());
  EXPECT_FALSE(
      find_lemma33_counterexample(graph::two_cycles_sharing_vertex(3, 3), 6, 12)
          .has_value());
}

TEST(Game, Lemma33HoldsOnRandomStronglyConnected) {
  util::Rng rng(606);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n = 3 + rng.next_below(3);
    const graph::Digraph d =
        graph::random_strongly_connected(n, rng.next_below(3), rng);
    if (d.arc_count() > 12) continue;
    EXPECT_FALSE(find_lemma33_counterexample(d).has_value()) << "trial " << trial;
  }
}

TEST(Game, Lemma33CounterexampleExistsWhenNotStronglyConnected) {
  // Two vertexes, one arc: the receiver can free-ride with nobody
  // conforming left underwater... receiver B free-rides when (A,B)
  // triggers: A is underwater though. Take the 3-vertex line where the
  // middle coalition profits: coalition {1,2} on 0→1→2 with arc (0,1)
  // triggered: boundary in={(0,1)} triggered, out={} — FreeRide, and
  // conforming 0 is Underwater... need a case with NO conforming
  // underwater: non-SC digraph where the coalition's gain costs nobody
  // outside: 2-cycle {0,1} plus stray receiver 2 on arc (0,2):
  // coalition {0,1} triggers its internal 2-cycle, withholds (0,2):
  // outside party 2 ends NoDeal, coalition boundary: out=(0,2)
  // untriggered, in: none -> NoDeal... boundary classes need care; use
  // the exhaustive search itself to certify existence.
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 0);
  d.add_arc(2, 0);  // stranger pays into the pair; nothing flows back
  ASSERT_FALSE(graph::is_strongly_connected(d));
  const auto witness = find_lemma33_counterexample(d);
  ASSERT_TRUE(witness.has_value());
  // The witness coalition beats Deal with no conforming party underwater.
  EXPECT_TRUE(witness->coalition_outcome == Outcome::kFreeRide ||
              witness->coalition_outcome == Outcome::kDiscount);
  for (PartyId v = 0; v < 3; ++v) {
    bool inside = false;
    for (const PartyId c : witness->coalition) inside |= (c == v);
    if (!inside) {
      EXPECT_NE(classify_party(d, v, witness->triggered), Outcome::kUnderwater);
    }
  }
}

TEST(Game, FreeRideConstructionOnNonStronglyConnected) {
  // 0↔1 strongly connected pair feeding 2: X = {0,1} (cannot be reached
  // from 2's side... take y=2: Y={2}, X={0,1}).
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 0);
  d.add_arc(1, 2);
  const auto witness = free_ride_construction(d);
  ASSERT_TRUE(witness.has_value());
  // X keeps its internal swap, withholds the arc into Y.
  EXPECT_EQ(witness->coalition.size(), 2u);
  EXPECT_FALSE(witness->triggered[2]);  // arc (1,2) withheld
  EXPECT_TRUE(witness->triggered[0]);
  EXPECT_TRUE(witness->triggered[1]);
  // Each member does at least as well as under full triggering.
  EXPECT_TRUE(members_prefer_to_full_trigger(d, witness->coalition,
                                             witness->triggered));
}

TEST(Game, FreeRideConstructionNulloptWhenStronglyConnected) {
  EXPECT_FALSE(free_ride_construction(graph::cycle(4)).has_value());
  EXPECT_FALSE(free_ride_construction(graph::complete(3)).has_value());
}

TEST(Game, FreeRideMembersPreferDeviationOnDanglingReceiver) {
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(1, 0);  // 0↔1 cycle, 2 dangles downstream
  const auto witness = free_ride_construction(d);
  ASSERT_TRUE(witness.has_value());
  // The paper's Lemma 3.4 claim is per-member: "the payoff for each
  // individual vertex in X is either the same or better than Deal".
  // (The coalition *boundary* class can read as NoDeal here because Y
  // never pays into X — boundary classes are vacuous without entering
  // arcs, which is also why pure-source parties fall outside the model:
  // they would never agree to a swap.)
  EXPECT_TRUE(members_prefer_to_full_trigger(d, witness->coalition,
                                             witness->triggered));
  // Member 1 keeps its internal acquisition while paying less: Discount.
  EXPECT_EQ(classify_party(d, 1, witness->triggered), Outcome::kDiscount);
  EXPECT_EQ(classify_party(d, 0, witness->triggered), Outcome::kDeal);
}

TEST(Game, ExhaustiveSearchSizeGuard) {
  EXPECT_THROW(find_lemma33_counterexample(graph::complete(5), 6, 12),
               std::invalid_argument);
  EXPECT_THROW(find_lemma33_counterexample(graph::cycle(8), 6, 12),
               std::invalid_argument);
}

}  // namespace
}  // namespace xswap::swap
