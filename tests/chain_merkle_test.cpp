#include "chain/merkle.hpp"

#include <gtest/gtest.h>

#include "util/bytes.hpp"

namespace xswap::chain {
namespace {

crypto::Digest256 leaf(int i) {
  return crypto::sha256(util::be64(static_cast<std::uint64_t>(i)));
}

std::vector<crypto::Digest256> leaves(int n) {
  std::vector<crypto::Digest256> out;
  for (int i = 0; i < n; ++i) out.push_back(leaf(i));
  return out;
}

TEST(Merkle, EmptyRootIsZero) {
  EXPECT_EQ(merkle_root({}), crypto::Digest256{});
}

TEST(Merkle, SingleLeafRootIsLeaf) {
  EXPECT_EQ(merkle_root({leaf(7)}), leaf(7));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto l = leaves(4);
  const auto root = merkle_root(l);
  l[2] = leaf(99);
  EXPECT_NE(merkle_root(l), root);
}

TEST(Merkle, RootDependsOnOrder) {
  auto l = leaves(4);
  const auto root = merkle_root(l);
  std::swap(l[0], l[1]);
  EXPECT_NE(merkle_root(l), root);
}

TEST(Merkle, ProofVerifiesForEveryLeafAndSize) {
  for (int n = 1; n <= 9; ++n) {
    const auto l = leaves(n);
    const auto root = merkle_root(l);
    for (int i = 0; i < n; ++i) {
      const MerkleProof proof = merkle_prove(l, static_cast<std::size_t>(i));
      EXPECT_TRUE(merkle_verify(l[static_cast<std::size_t>(i)], proof, root))
          << "n=" << n << " i=" << i;
    }
  }
}

TEST(Merkle, ProofRejectsWrongLeaf) {
  const auto l = leaves(5);
  const auto root = merkle_root(l);
  const MerkleProof proof = merkle_prove(l, 2);
  EXPECT_FALSE(merkle_verify(leaf(42), proof, root));
}

TEST(Merkle, ProofRejectsWrongRoot) {
  const auto l = leaves(5);
  const MerkleProof proof = merkle_prove(l, 2);
  EXPECT_FALSE(merkle_verify(l[2], proof, leaf(0)));
}

TEST(Merkle, ProofRejectsTamperedSibling) {
  const auto l = leaves(8);
  const auto root = merkle_root(l);
  MerkleProof proof = merkle_prove(l, 3);
  proof.siblings[1] = leaf(77);
  EXPECT_FALSE(merkle_verify(l[3], proof, root));
}

TEST(Merkle, ProveRejectsBadIndex) {
  EXPECT_THROW(merkle_prove(leaves(3), 3), std::out_of_range);
}

}  // namespace
}  // namespace xswap::chain
