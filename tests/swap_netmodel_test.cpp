// NetworkModel (swap/netmodel.hpp): the seeded fault layer the fuzzer
// injects into every chain's submission path. These unit tests pin the
// properties the Δ-safety argument leans on: inactivity by default,
// worst-case bounding by max_extra_delay(), per-(seed, chain)
// determinism, and the engine's rejection of models Δ cannot cover.
#include "swap/netmodel.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "swap/engine.hpp"

namespace xswap::swap {
namespace {

TEST(NetworkModel, InactiveByDefaultAndCostsNothing) {
  const NetworkModel model;
  EXPECT_FALSE(model.active());
  EXPECT_EQ(model.max_extra_delay(), 0u);
  EXPECT_TRUE(model.validate().empty());
  // An inactive model yields no fault hook at all — the ledger's
  // submission path stays exactly as fast as without the feature.
  EXPECT_EQ(model.make_fault("chain-0", 1), nullptr);
}

TEST(NetworkModel, ValidateCatchesInconsistentKnobs) {
  NetworkModel geo;
  geo.jitter = JitterKind::kGeometric;
  geo.max_jitter = 2;
  geo.geo_den = 0;
  EXPECT_FALSE(geo.validate().empty());
  geo.geo_den = 2;
  geo.geo_num = 2;  // continue-probability must be < 1
  EXPECT_FALSE(geo.validate().empty());

  NetworkModel drops;
  drops.drop_num = 150;
  drops.drop_den = 100;
  drops.max_retries = 1;
  EXPECT_FALSE(drops.validate().empty());
  drops.drop_num = 10;
  drops.retry_delay = 0;  // a retry that costs nothing models nothing
  EXPECT_FALSE(drops.validate().empty());

  NetworkModel part;
  part.partitions.push_back(Partition{"", 10, 10});  // empty window
  EXPECT_FALSE(part.validate().empty());
}

TEST(NetworkModel, MaxExtraDelayCoversEveryFaultSource) {
  NetworkModel model;
  model.jitter = JitterKind::kUniform;
  model.max_jitter = 3;
  model.drop_num = 10;
  model.retry_delay = 2;
  model.max_retries = 2;
  model.partitions.push_back(Partition{"chain-0", 8, 11});   // 3 ticks
  model.partitions.push_back(Partition{"", 20, 22});         // 2 ticks
  // jitter (3) + full retry ladder (2·2) + both windows (3 + 2).
  EXPECT_EQ(model.max_extra_delay(), 3u + 4u + 5u);
  EXPECT_TRUE(model.active());
  EXPECT_TRUE(model.validate().empty());
}

TEST(NetworkModel, FaultStreamsReplayPerSeedAndDivergePerChain) {
  NetworkModel model;
  model.seed = 99;
  model.jitter = JitterKind::kUniform;
  model.max_jitter = 3;

  const auto a = model.make_fault("chain-0", 7);
  const auto b = model.make_fault("chain-0", 7);
  const auto other = model.make_fault("chain-1", 7);
  ASSERT_NE(a, nullptr);

  std::vector<sim::Duration> draws_a, draws_b, draws_other;
  for (sim::Time t = 0; t < 64; ++t) {
    draws_a.push_back(a(t));
    draws_b.push_back(b(t));
    draws_other.push_back(other(t));
  }
  EXPECT_EQ(draws_a, draws_b);       // same (seed, chain): same stream
  EXPECT_NE(draws_a, draws_other);   // the chain name salts the stream
}

TEST(NetworkModel, JitterNeverExceedsTheCap) {
  for (const JitterKind kind :
       {JitterKind::kUniform, JitterKind::kGeometric}) {
    NetworkModel model;
    model.seed = 5;
    model.jitter = kind;
    model.max_jitter = 4;
    const auto fault = model.make_fault("chain-0", 3);
    ASSERT_NE(fault, nullptr);
    for (sim::Time t = 0; t < 256; ++t) {
      EXPECT_LE(fault(t), 4u);
    }
  }
}

TEST(NetworkModel, PartitionHoldsSubmissionsUntilTheWindowHeals) {
  NetworkModel model;
  model.seed = 1;
  model.partitions.push_back(Partition{"", 10, 20});
  const auto fault = model.make_fault("chain-0", 2);
  ASSERT_NE(fault, nullptr);
  // Inside [10, 20): the submission lands exactly when the partition
  // heals (no other fault source configured).
  EXPECT_EQ(fault(10), 10u);
  EXPECT_EQ(fault(15), 5u);
  EXPECT_EQ(fault(19), 1u);
  // Outside the window: untouched.
  EXPECT_EQ(fault(9), 0u);
  EXPECT_EQ(fault(20), 0u);
}

TEST(NetworkModel, EngineRejectsDeltaBelowThePerturbedHop) {
  NetworkModel model;
  model.jitter = JitterKind::kUniform;
  model.max_jitter = 3;  // hop = seal 1 + jitter 3 = 4; Δ must be ≥ 8

  EngineOptions too_small;
  too_small.delta = 6;
  too_small.net = model;
  EXPECT_THROW(SwapEngine(graph::cycle(3), {0}, too_small),
               std::invalid_argument);

  EngineOptions safe;
  safe.delta = 8;
  safe.net = model;
  SwapEngine engine(graph::cycle(3), {0}, safe);
  const SwapReport report = engine.run();
  // Inside the contract the theorems hold as usual.
  EXPECT_TRUE(report.all_triggered);
  EXPECT_TRUE(report.no_conforming_underwater);
}

TEST(NetworkModel, EngineRejectsAModelThatFailsValidation) {
  NetworkModel model;
  model.drop_num = 10;
  model.drop_den = 0;
  model.max_retries = 1;
  EngineOptions options;
  options.delta = 64;
  options.net = model;
  EXPECT_THROW(SwapEngine(graph::cycle(3), {0}, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace xswap::swap
