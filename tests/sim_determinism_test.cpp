// Event-order regression gate for the simulator/ledger hot-path
// refactor.
//
// The golden values below were captured on the pre-refactor build
// (priority_queue-of-std::function simulator, nested-map ledger,
// always-on tracing) over a 16-component adversarial offer book. The
// ledger trace records every executed transaction with its timestamp in
// execution order, so its SHA-256 is a dense witness of the entire
// event schedule: any reordering of (time, seq)-equal events, any
// change in seal timing, and any change to a report-visible quantity
// breaks the hash. The refactored engine must reproduce all of it
// bit-for-bit — and must do so on every executor, since components are
// share-nothing.
#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"
#include "swap/executor.hpp"
#include "swap/scenario.hpp"
#include "util/bytes.hpp"

namespace xswap::swap {
namespace {

// ---- Goldens (pre-refactor build, do not regenerate casually) ----
constexpr char kGoldenTraceSha256[] =
    "250830b80726156c07a6ef84faf2cccfabc4566b680db2891fd31ba630062cd1";
constexpr std::size_t kGoldenTraceLines = 183;
constexpr char kGoldenFirstLine[] = "[0] genesis: 5 S0 -> R0A";
constexpr char kGoldenLastLine[] = "[12] call by R15A: claim on contract:1";

/// The 16-component adversarial book: twelve 3-party rings and four
/// 4-party rings (every fourth), one deviation flavour per afflicted
/// ring. Times in the strategy specs are relative to the protocol start
/// (delta = 6).
ScenarioBuilder adversarial_book(bool tracing) {
  ScenarioBuilder builder;
  for (std::size_t r = 0; r < 16; ++r) {
    const std::string tag = "R" + std::to_string(r);
    const std::string chain = "ring" + std::to_string(r) + "-";
    const std::string a = tag + "A", b = tag + "B", c = tag + "C";
    const std::string sr = std::to_string(r);
    if (r % 4 == 3) {
      const std::string d4 = tag + "D";
      builder.offer(a, b, chain + "0", chain::Asset::coins("S" + sr, 5))
          .offer(b, c, chain + "1", chain::Asset::coins("T" + sr, 7))
          .offer(c, d4, chain + "2", chain::Asset::unique("NFT" + sr, "id" + sr))
          .offer(d4, a, chain + "3", chain::Asset::coins("U" + sr, 2));
    } else {
      builder.offer(a, b, chain + "0", chain::Asset::coins("S" + sr, 5))
          .offer(b, c, chain + "1", chain::Asset::coins("T" + sr, 7))
          .offer(c, a, chain + "2", chain::Asset::coins("U" + sr, 2));
    }
  }
  builder.seed(987).delta(6).trace(tracing);
  builder.strategy("R1B", strategy_from_spec("crash:10", 6));
  builder.strategy("R3C", strategy_from_spec("withhold", 6));
  builder.strategy("R5A", strategy_from_spec("silent", 6));
  builder.strategy("R7B", strategy_from_spec("corrupt", 6));
  builder.strategy("R9C", strategy_from_spec("late:20", 6));
  builder.strategy("R11A", strategy_from_spec("crash:4", 6));
  return builder;
}

struct TraceDigest {
  std::string sha256_hex;
  std::size_t lines = 0;
  std::string first, last;
};

TraceDigest digest_traces(const Scenario& scenario) {
  std::string text;
  TraceDigest out;
  for (std::size_t i = 0; i < scenario.swap_count(); ++i) {
    const SwapEngine& engine = scenario.engine(i);
    for (const std::string& name : engine.chain_names()) {
      text += "== swap" + std::to_string(i) + " chain " + name + " ==\n";
      for (const std::string& line : engine.ledger(name).trace()) {
        if (out.first.empty()) out.first = line;
        out.last = line;
        ++out.lines;
        text += line;
        text += '\n';
      }
    }
  }
  out.sha256_hex =
      util::to_hex(crypto::sha256(util::Bytes(text.begin(), text.end())));
  return out;
}

void check_golden_report(const BatchReport& batch) {
  EXPECT_EQ(batch.swaps.size(), 16u);
  EXPECT_EQ(batch.swaps_fully_triggered, 12u);
  EXPECT_FALSE(batch.all_triggered);
  EXPECT_TRUE(batch.no_conforming_underwater);
  EXPECT_EQ(batch.last_trigger_time, 28u);
  EXPECT_EQ(batch.finished_at, 72u);
  EXPECT_EQ(batch.total_storage_bytes, 34590u);
  EXPECT_EQ(batch.total_call_payload_bytes, 6899u);
  EXPECT_EQ(batch.hashkey_bytes_submitted, 6539u);
  EXPECT_EQ(batch.sign_operations, 40u);
  EXPECT_EQ(batch.total_transactions, 131u);
  EXPECT_EQ(batch.failed_transactions, 0u);
  EXPECT_EQ(batch.unmatched.size(), 0u);
  EXPECT_EQ(batch.outcome_counts.at(Outcome::kDeal), 38u);
  EXPECT_EQ(batch.outcome_counts.at(Outcome::kNoDeal), 12u);
  EXPECT_EQ(batch.outcome_counts.at(Outcome::kFreeRide), 1u);
  EXPECT_EQ(batch.outcome_counts.at(Outcome::kUnderwater), 1u);
  EXPECT_EQ(batch.outcome_counts.count(Outcome::kDiscount), 0u);

  // Per-component spot checks: the crash:10 ring still clears (the
  // crash lands after its last action), the silent ring never starts,
  // the corrupt ring publishes-but-never-triggers, the late ring
  // triggers at the delayed instant, and the 4-party ring with the
  // withholder strands its counterparties.
  EXPECT_TRUE(batch.swaps[1].all_triggered);
  EXPECT_EQ(batch.swaps[5].total_transactions, 0u);
  EXPECT_FALSE(batch.swaps[7].all_triggered);
  EXPECT_EQ(batch.swaps[7].total_transactions, 3u);
  EXPECT_TRUE(batch.swaps[9].all_triggered);
  EXPECT_EQ(batch.swaps[9].last_trigger_time, 28u);
  EXPECT_FALSE(batch.swaps[3].all_triggered);
  EXPECT_EQ(batch.swaps[11].total_transactions, 7u);
  for (const std::size_t i : {0u, 2u, 4u, 6u, 8u, 10u, 12u, 13u, 14u}) {
    EXPECT_TRUE(batch.swaps[i].all_triggered) << "swap " << i;
    EXPECT_EQ(batch.swaps[i].last_trigger_time, 12u) << "swap " << i;
    EXPECT_EQ(batch.swaps[i].total_transactions, 9u) << "swap " << i;
  }
  EXPECT_TRUE(batch.swaps[15].all_triggered);
  EXPECT_EQ(batch.swaps[15].last_trigger_time, 14u);
  EXPECT_EQ(batch.swaps[15].total_transactions, 12u);
}

TEST(SimDeterminism, GoldenTraceAndReportSerial) {
  Scenario scenario = adversarial_book(/*tracing=*/true).build();
  const BatchReport batch = scenario.run();
  check_golden_report(batch);

  const TraceDigest digest = digest_traces(scenario);
  EXPECT_EQ(digest.lines, kGoldenTraceLines);
  EXPECT_EQ(digest.first, kGoldenFirstLine);
  EXPECT_EQ(digest.last, kGoldenLastLine);
  EXPECT_EQ(digest.sha256_hex, kGoldenTraceSha256);
}

TEST(SimDeterminism, GoldenTraceAndReportThreadPool) {
  // Same book fanned out over a pool: every field and every trace line
  // must match the serial goldens (components are share-nothing and
  // seeded per index).
  Scenario scenario = adversarial_book(/*tracing=*/true).build();
  ThreadPoolExecutor pool(4);
  const BatchReport batch = scenario.run(pool);
  check_golden_report(batch);
  EXPECT_EQ(digest_traces(scenario).sha256_hex, kGoldenTraceSha256);
}

TEST(SimDeterminism, GoldenTraceAndReportWorkStealing) {
  // Work-stealing schedules tasks to lanes non-deterministically; the
  // goldens must not care. Striped chain locks are on too (the rings
  // use distinct chain names, so stripes only add lock traffic — the
  // trace hash proves they change nothing observable).
  Scenario scenario = adversarial_book(/*tracing=*/true)
                          .chain_locks(&chain::ChainLockRegistry::global())
                          .build();
  WorkStealingPool pool(4);
  const BatchReport batch = scenario.run(pool);
  check_golden_report(batch);
  EXPECT_EQ(digest_traces(scenario).sha256_hex, kGoldenTraceSha256);
}

TEST(SimDeterminism, GoldenTraceAndReportPersistentRegistryPool) {
  // The registry's persistent pool, reused across TWO consecutive
  // golden runs: lane reuse (warm slabs, parked workers) must leave the
  // goldens bit-for-bit intact both times.
  const auto pool = ExecutorRegistry::instance().shared_pool(4);
  for (int round = 0; round < 2; ++round) {
    Scenario scenario = adversarial_book(/*tracing=*/true).build();
    RunOptions options;
    options.pool = pool;
    const BatchReport batch = scenario.run(options);
    check_golden_report(batch);
    EXPECT_EQ(digest_traces(scenario).sha256_hex, kGoldenTraceSha256)
        << "round " << round;
  }
}

TEST(SimDeterminism, NullSinkKeepsReportAndCollectsNothing) {
  // Default build: no sink anywhere, identical report. This is the
  // null-sink acceptance gate — the run must not depend on tracing.
  Scenario scenario = adversarial_book(/*tracing=*/false).build();
  const BatchReport batch = scenario.run();
  check_golden_report(batch);
  for (std::size_t i = 0; i < scenario.swap_count(); ++i) {
    const SwapEngine& engine = scenario.engine(i);
    for (const std::string& name : engine.chain_names()) {
      EXPECT_FALSE(engine.ledger(name).tracing());
      EXPECT_TRUE(engine.ledger(name).trace().empty());
    }
  }
}

}  // namespace
}  // namespace xswap::swap
