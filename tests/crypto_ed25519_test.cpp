// Ed25519 against RFC 8032 §7.1 test vectors, plus negative cases.
#include <gtest/gtest.h>

#include "crypto/ed25519.hpp"
#include "util/bytes.hpp"
#include "util/rng.hpp"

namespace xswap::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::to_hex;

struct Rfc8032Vector {
  const char* seed;
  const char* public_key;
  const char* message;
  const char* signature;
};

// RFC 8032 §7.1 TEST 1, 2, 3.
const Rfc8032Vector kVectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
     "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
     "72",
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
    {"c5aa8df43f9f837bedb7442f31dcb7b166d38535076f094b85ce3a2e0b4458f7",
     "fc51cd8e6218a1a38da47ed00230f0580816ed13ba3303ac5deb911548908025",
     "af82",
     "6291d657deec24024827e69c3abe01a30ce548a284743a445e3680d7db5ac3ac"
     "18ff9b538d16f290ae67f760984dc6594a7c15e9716ed28dc027beceea1ec40a"},
};

class Rfc8032Test : public ::testing::TestWithParam<Rfc8032Vector> {};

TEST_P(Rfc8032Test, PublicKeyDerivation) {
  const auto& v = GetParam();
  const KeyPair kp = KeyPair::from_seed(from_hex(v.seed));
  EXPECT_EQ(to_hex(util::BytesView(kp.public_key().bytes.data(), 32)),
            v.public_key);
}

TEST_P(Rfc8032Test, SignatureMatchesVector) {
  const auto& v = GetParam();
  const KeyPair kp = KeyPair::from_seed(from_hex(v.seed));
  const Signature sig = kp.sign(from_hex(v.message));
  EXPECT_EQ(to_hex(util::BytesView(sig.bytes.data(), 64)), v.signature);
}

TEST_P(Rfc8032Test, SignatureVerifies) {
  const auto& v = GetParam();
  const KeyPair kp = KeyPair::from_seed(from_hex(v.seed));
  const auto sig = Signature::from_bytes(from_hex(v.signature));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(verify(kp.public_key(), from_hex(v.message), *sig));
}

INSTANTIATE_TEST_SUITE_P(Rfc8032, Rfc8032Test, ::testing::ValuesIn(kVectors));

TEST(Ed25519, RejectsWrongMessage) {
  const KeyPair kp = KeyPair::from_seed(from_hex(kVectors[2].seed));
  const Signature sig = kp.sign(from_hex("af82"));
  EXPECT_FALSE(verify(kp.public_key(), from_hex("af83"), sig));
  EXPECT_FALSE(verify(kp.public_key(), from_hex(""), sig));
}

TEST(Ed25519, RejectsFlippedSignatureBits) {
  const KeyPair kp = KeyPair::from_seed(from_hex(kVectors[0].seed));
  const Bytes msg = util::str_bytes("hello");
  const Signature good = kp.sign(msg);
  for (const std::size_t byte : {0u, 31u, 32u, 63u}) {
    Signature bad = good;
    bad.bytes[byte] ^= 0x01;
    EXPECT_FALSE(verify(kp.public_key(), msg, bad)) << "byte " << byte;
  }
}

TEST(Ed25519, RejectsWrongKey) {
  const KeyPair a = KeyPair::from_seed(from_hex(kVectors[0].seed));
  const KeyPair b = KeyPair::from_seed(from_hex(kVectors[1].seed));
  const Bytes msg = util::str_bytes("message");
  EXPECT_FALSE(verify(b.public_key(), msg, a.sign(msg)));
}

TEST(Ed25519, SignatureFromBytesRejectsBadLength) {
  EXPECT_FALSE(Signature::from_bytes(Bytes(63)).has_value());
  EXPECT_FALSE(Signature::from_bytes(Bytes(65)).has_value());
  EXPECT_TRUE(Signature::from_bytes(Bytes(64)).has_value());
}

TEST(Ed25519, FromSeedRejectsBadLength) {
  EXPECT_THROW(KeyPair::from_seed(Bytes(31)), std::invalid_argument);
  EXPECT_THROW(KeyPair::from_seed(Bytes(33)), std::invalid_argument);
}

TEST(Ed25519, RejectsNonCanonicalS) {
  // S >= L must be rejected even if the point equation would hold.
  const KeyPair kp = KeyPair::from_seed(from_hex(kVectors[0].seed));
  const Bytes msg = util::str_bytes("m");
  Signature sig = kp.sign(msg);
  // Set S to L itself (non-canonical encoding of 0 + L).
  const Bytes l_bytes = from_hex(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000" "10");
  std::copy(l_bytes.begin(), l_bytes.end(), sig.bytes.begin() + 32);
  EXPECT_FALSE(verify(kp.public_key(), msg, sig));
}

TEST(Ed25519, RandomRoundTrips) {
  util::Rng rng(20260612);
  for (int i = 0; i < 8; ++i) {
    const KeyPair kp = KeyPair::from_seed(rng.next_bytes(32));
    const Bytes msg = rng.next_bytes(1 + i * 17);
    const Signature sig = kp.sign(msg);
    EXPECT_TRUE(verify(kp.public_key(), msg, sig));
  }
}

TEST(Ed25519, DeterministicSignatures) {
  const KeyPair kp = KeyPair::from_seed(from_hex(kVectors[1].seed));
  const Bytes msg = util::str_bytes("determinism");
  EXPECT_EQ(kp.sign(msg), kp.sign(msg));
}

}  // namespace
}  // namespace xswap::crypto
