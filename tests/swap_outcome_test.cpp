// §3 outcome classes and the Fig. 3 partial order.
#include "swap/outcome.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace xswap::swap {
namespace {

// Triangle 0→1→2→0: each vertex has exactly one entering and one leaving arc.
class TriangleOutcome : public ::testing::Test {
 protected:
  graph::Digraph d_ = graph::cycle(3);
};

TEST_F(TriangleOutcome, AllTriggeredIsDealForEveryone) {
  const std::vector<bool> triggered = {true, true, true};
  for (graph::VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(classify_party(d_, v, triggered), Outcome::kDeal);
  }
}

TEST_F(TriangleOutcome, NoneTriggeredIsNoDeal) {
  const std::vector<bool> triggered = {false, false, false};
  for (graph::VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(classify_party(d_, v, triggered), Outcome::kNoDeal);
  }
}

TEST_F(TriangleOutcome, SingleArcTriggered) {
  // Arc 0 is (0,1): vertex 0 paid without acquiring (Underwater),
  // vertex 1 acquired without paying (FreeRide), vertex 2 untouched.
  const std::vector<bool> triggered = {true, false, false};
  EXPECT_EQ(classify_party(d_, 0, triggered), Outcome::kUnderwater);
  EXPECT_EQ(classify_party(d_, 1, triggered), Outcome::kFreeRide);
  EXPECT_EQ(classify_party(d_, 2, triggered), Outcome::kNoDeal);
}

TEST_F(TriangleOutcome, ClassifyAllMatchesPerParty) {
  const std::vector<bool> triggered = {true, true, false};
  const auto all = classify_all(d_, triggered);
  ASSERT_EQ(all.size(), 3u);
  for (graph::VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(all[v], classify_party(d_, v, triggered));
  }
}

TEST(Outcome, DiscountNeedsPartialPayment) {
  // Vertex 0 of hub(3): two leaving arcs (0,1),(0,2), two entering.
  const graph::Digraph d = graph::hub_and_spokes(3);
  // Arcs in construction order: (0,1),(1,0),(0,2),(2,0).
  // Hub acquired everything, paid only one of two: Discount.
  EXPECT_EQ(classify_party(d, 0, {true, true, false, true}), Outcome::kDiscount);
  // Hub acquired everything, paid nothing: FreeRide (better than Discount).
  EXPECT_EQ(classify_party(d, 0, {false, true, false, true}), Outcome::kFreeRide);
  // Hub missing one acquisition while paying: Underwater.
  EXPECT_EQ(classify_party(d, 0, {true, false, false, true}), Outcome::kUnderwater);
}

TEST(Outcome, AcceptableClasses) {
  EXPECT_TRUE(acceptable(Outcome::kDeal));
  EXPECT_TRUE(acceptable(Outcome::kNoDeal));
  EXPECT_TRUE(acceptable(Outcome::kFreeRide));
  EXPECT_TRUE(acceptable(Outcome::kDiscount));
  EXPECT_FALSE(acceptable(Outcome::kUnderwater));
}

TEST(Outcome, SizeMismatchRejected) {
  const graph::Digraph d = graph::cycle(3);
  EXPECT_THROW(classify_party(d, 0, {true}), std::invalid_argument);
  EXPECT_THROW(classify_coalition(d, {0}, {true}), std::invalid_argument);
}

TEST(Outcome, CoalitionClassification) {
  // Triangle, coalition {0,1}: boundary arcs are (1,2) leaving and (2,0)
  // entering; the internal arc (0,1) is ignored.
  const graph::Digraph d = graph::cycle(3);
  EXPECT_EQ(classify_coalition(d, {0, 1}, {true, true, true}), Outcome::kDeal);
  EXPECT_EQ(classify_coalition(d, {0, 1}, {true, false, false}), Outcome::kNoDeal);
  EXPECT_EQ(classify_coalition(d, {0, 1}, {false, false, true}), Outcome::kFreeRide);
  EXPECT_EQ(classify_coalition(d, {0, 1}, {false, true, false}), Outcome::kUnderwater);
}

TEST(Outcome, CoalitionFreeRideWhenWithholdingLeavingArc) {
  // The Lemma 3.4 payoff shape: coalition X = {0,1} triggers its internal
  // arcs, collects the arc entering it, and withholds the arc leaving it.
  graph::Digraph d(3);
  d.add_arc(0, 1);  // internal to X
  d.add_arc(1, 0);  // internal to X
  d.add_arc(1, 2);  // X → Y (withheld)
  d.add_arc(2, 0);  // Y → X (triggered)
  EXPECT_EQ(classify_coalition(d, {0, 1}, {true, true, false, true}),
            Outcome::kFreeRide);
}

}  // namespace
}  // namespace xswap::swap
