// SwapSpec validation (§4.2) — the admission test every swap must pass.
#include "swap/spec.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

SwapSpec valid_triangle_spec() {
  SwapSpec spec;
  spec.digraph = graph::cycle(3);
  spec.party_names = {"Alice", "Bob", "Carol"};
  spec.leaders = {0};
  util::Rng rng(7);
  spec.hashlocks = {crypto::sha256_bytes(rng.next_bytes(32))};
  for (graph::ArcId a = 0; a < 3; ++a) {
    spec.arcs.push_back(ArcTerms{"chain-" + std::to_string(a),
                                 chain::Asset::coins("TOK", 10)});
  }
  spec.directory.resize(3);
  for (int i = 0; i < 3; ++i) {
    spec.directory[static_cast<std::size_t>(i)] =
        crypto::KeyPair::from_seed(rng.next_bytes(32)).public_key();
  }
  spec.start_time = 4;
  spec.delta = 4;
  spec.diam = graph::diameter(spec.digraph);
  return spec;
}

TEST(SwapSpec, ValidSpecPasses) {
  EXPECT_TRUE(validate_spec(valid_triangle_spec()).empty());
}

TEST(SwapSpec, LeaderIndexLookup) {
  const SwapSpec spec = valid_triangle_spec();
  EXPECT_EQ(spec.leader_index(0), 0u);
  EXPECT_EQ(spec.leader_index(1), SwapSpec::npos);
  EXPECT_TRUE(spec.is_leader(0));
  EXPECT_FALSE(spec.is_leader(2));
}

TEST(SwapSpec, DeadlineFormula) {
  const SwapSpec spec = valid_triangle_spec();
  // start + (diam + |p|)·Δ with diam = 3, Δ = 4.
  EXPECT_EQ(spec.hashkey_deadline(0), 4u + 3 * 4);
  EXPECT_EQ(spec.hashkey_deadline(2), 4u + 5 * 4);
  EXPECT_EQ(spec.final_deadline(), 4u + 6 * 4);  // start + 2·diam·Δ
}

TEST(SwapSpec, RejectsNonStronglyConnected) {
  SwapSpec spec = valid_triangle_spec();
  spec.digraph = graph::Digraph(3);
  spec.digraph.add_arc(0, 1);
  spec.digraph.add_arc(1, 2);
  spec.digraph.add_arc(0, 2);
  spec.arcs.resize(3, ArcTerms{"c", chain::Asset::coins("TOK", 1)});
  spec.diam = 10;
  const auto problems = validate_spec(spec);
  ASSERT_FALSE(problems.empty());
  bool found = false;
  for (const auto& p : problems) {
    if (p.find("strongly connected") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SwapSpec, RejectsNonFvsLeaders) {
  // Two cycles sharing vertex 0; leader {1} misses the second cycle
  // (Theorem 4.12).
  SwapSpec spec = valid_triangle_spec();
  spec.digraph = graph::two_cycles_sharing_vertex(3, 3);
  spec.party_names = {"A", "B", "C", "D", "E"};
  spec.directory.resize(5);
  spec.leaders = {1};
  spec.arcs.assign(spec.digraph.arc_count(),
                   ArcTerms{"c", chain::Asset::coins("TOK", 1)});
  spec.diam = graph::diameter(spec.digraph);
  const auto problems = validate_spec(spec);
  bool found = false;
  for (const auto& p : problems) {
    if (p.find("feedback vertex set") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SwapSpec, RejectsEmptyOrDuplicateLeaders) {
  SwapSpec spec = valid_triangle_spec();
  spec.leaders = {};
  spec.hashlocks = {};
  EXPECT_FALSE(validate_spec(spec).empty());

  spec = valid_triangle_spec();
  spec.leaders = {0, 0};
  spec.hashlocks.push_back(spec.hashlocks[0]);
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(SwapSpec, RejectsHashlockMismatches) {
  SwapSpec spec = valid_triangle_spec();
  spec.hashlocks.clear();
  EXPECT_FALSE(validate_spec(spec).empty());

  spec = valid_triangle_spec();
  spec.hashlocks[0].resize(16);  // not a SHA-256 digest
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(SwapSpec, RejectsBadNames) {
  SwapSpec spec = valid_triangle_spec();
  spec.party_names = {"Alice", "Alice", "Carol"};
  EXPECT_FALSE(validate_spec(spec).empty());

  spec = valid_triangle_spec();
  spec.party_names[1] = "";
  EXPECT_FALSE(validate_spec(spec).empty());

  spec = valid_triangle_spec();
  spec.party_names.pop_back();
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(SwapSpec, RejectsBadArcTerms) {
  SwapSpec spec = valid_triangle_spec();
  spec.arcs.pop_back();
  EXPECT_FALSE(validate_spec(spec).empty());

  spec = valid_triangle_spec();
  spec.arcs[0].chain = "";
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(SwapSpec, RejectsUndersizedDiameter) {
  SwapSpec spec = valid_triangle_spec();
  spec.diam = 2;  // true diameter is 3
  const auto problems = validate_spec(spec);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("diameter"), std::string::npos);
}

TEST(SwapSpec, AcceptsOverApproximatedDiameter) {
  SwapSpec spec = valid_triangle_spec();
  spec.diam = 10;  // timeouts only need to be >= the true values
  EXPECT_TRUE(validate_spec(spec).empty());
}

TEST(SwapSpec, RejectsZeroDelta) {
  SwapSpec spec = valid_triangle_spec();
  spec.delta = 0;
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(SwapSpec, RejectsDirectorySizeMismatch) {
  SwapSpec spec = valid_triangle_spec();
  spec.directory.pop_back();
  EXPECT_FALSE(validate_spec(spec).empty());
}

TEST(SwapSpec, EncodedSizeGrowsWithArcs) {
  const SwapSpec small = valid_triangle_spec();
  SwapSpec big = small;
  big.digraph = graph::cycle(6);
  big.party_names = {"A", "B", "C", "D", "E", "F"};
  big.directory.resize(6);
  big.arcs.assign(6, ArcTerms{"c", chain::Asset::coins("TOK", 1)});
  big.diam = 6;
  EXPECT_GT(big.encoded_size(), small.encoded_size());
}

}  // namespace
}  // namespace xswap::swap
