// White-box algebra tests of the Ed25519 internals: GF(2^255-19) field
// arithmetic and scalar arithmetic mod L.
#include <gtest/gtest.h>

#include "crypto/ed25519_field.hpp"
#include "crypto/ed25519_scalar.hpp"
#include "util/rng.hpp"

namespace xswap::crypto {
namespace {

Fe25519 random_fe(util::Rng& rng) {
  return Fe25519::from_bytes(rng.next_bytes(32));
}

Scalar25519 random_scalar(util::Rng& rng) {
  return Scalar25519::from_bytes(rng.next_bytes(32));
}

TEST(Fe25519, AdditiveIdentityAndInverse) {
  util::Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Fe25519 a = random_fe(rng);
    EXPECT_TRUE(a + Fe25519::zero() == a);
    EXPECT_TRUE((a - a).is_zero());
    EXPECT_TRUE((a + a.negate()).is_zero());
  }
}

TEST(Fe25519, MultiplicativeIdentityAndInverse) {
  util::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const Fe25519 a = random_fe(rng);
    EXPECT_TRUE(a * Fe25519::one() == a);
    if (!a.is_zero()) {
      EXPECT_TRUE(a * a.invert() == Fe25519::one());
    }
  }
}

TEST(Fe25519, RingAxiomsSampled) {
  util::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const Fe25519 a = random_fe(rng), b = random_fe(rng), c = random_fe(rng);
    EXPECT_TRUE(a + b == b + a);
    EXPECT_TRUE(a * b == b * a);
    EXPECT_TRUE((a + b) + c == a + (b + c));
    EXPECT_TRUE((a * b) * c == a * (b * c));
    EXPECT_TRUE(a * (b + c) == a * b + a * c);
  }
}

TEST(Fe25519, SquareMatchesMul) {
  util::Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const Fe25519 a = random_fe(rng);
    EXPECT_TRUE(a.square() == a * a);
  }
}

TEST(Fe25519, BytesRoundTrip) {
  util::Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const Fe25519 a = random_fe(rng);
    const auto bytes = a.to_bytes();
    EXPECT_TRUE(Fe25519::from_bytes(util::Bytes(bytes.begin(), bytes.end())) == a);
  }
}

TEST(Fe25519, NonCanonicalInputReduced) {
  // 2^255 - 19 encodes as zero; 2^255 - 18 as one.
  util::Bytes p_bytes(32, 0xff);
  p_bytes[0] = 0xed;
  p_bytes[31] = 0x7f;
  EXPECT_TRUE(Fe25519::from_bytes(p_bytes).is_zero());
  p_bytes[0] = 0xee;
  EXPECT_TRUE(Fe25519::from_bytes(p_bytes) == Fe25519::one());
}

TEST(Fe25519, SqrtMinusOneSquaresToMinusOne) {
  const Fe25519 i = Fe25519::sqrt_minus_one();
  EXPECT_TRUE(i.square() == Fe25519::one().negate());
}

TEST(Fe25519, CurveConstantD) {
  // d·121666 = -121665.
  EXPECT_TRUE(Fe25519::d() * Fe25519::from_u64(121666) ==
              Fe25519::from_u64(121665).negate());
  EXPECT_TRUE(Fe25519::two_d() == Fe25519::d() + Fe25519::d());
}

TEST(Fe25519, SqrtRatioOnSquares) {
  util::Rng rng(6);
  for (int i = 0; i < 10; ++i) {
    const Fe25519 x = random_fe(rng);
    const Fe25519 v = random_fe(rng);
    if (v.is_zero()) continue;
    const Fe25519 u = x.square() * v;  // u/v = x^2 is a square
    Fe25519 root;
    ASSERT_TRUE(fe25519_sqrt_ratio(u, v, &root));
    EXPECT_TRUE(root.square() == u * v.invert());
  }
}

TEST(Fe25519, SqrtRatioRejectsNonSquares) {
  // x^2 * sqrt(-1)^1... a known non-square: 2 is a non-square mod p?
  // Robust approach: u/v = s^2 * i where i = sqrt(-1); s^2*i is a square
  // iff i is, and i is not a square in GF(p) for p ≡ 5 (mod 8).
  util::Rng rng(7);
  const Fe25519 s = random_fe(rng);
  const Fe25519 u = s.square() * Fe25519::sqrt_minus_one();
  Fe25519 root;
  if (!s.is_zero()) {
    EXPECT_FALSE(fe25519_sqrt_ratio(u, Fe25519::one(), &root));
  }
}

TEST(Scalar25519, CanonicalEncodingRoundTrip) {
  util::Rng rng(8);
  for (int i = 0; i < 20; ++i) {
    const Scalar25519 a = random_scalar(rng);
    const auto bytes = a.to_bytes();
    EXPECT_TRUE(Scalar25519::is_canonical(util::BytesView(bytes.data(), 32)));
    EXPECT_TRUE(Scalar25519::from_bytes(util::Bytes(bytes.begin(), bytes.end())) == a);
  }
}

TEST(Scalar25519, LIsNotCanonicalAndReducesToZero) {
  const util::Bytes l = util::from_hex(
      "edd3f55c1a631258d69cf7a2def9de14000000000000000000000000000000" "10");
  EXPECT_FALSE(Scalar25519::is_canonical(l));
  EXPECT_TRUE(Scalar25519::from_bytes(l).is_zero());
}

TEST(Scalar25519, RingAxiomsSampled) {
  util::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const Scalar25519 a = random_scalar(rng), b = random_scalar(rng),
                      c = random_scalar(rng);
    EXPECT_TRUE(a + b == b + a);
    EXPECT_TRUE(a * b == b * a);
    EXPECT_TRUE(a * (b + c) == (a * b) + (a * c));
  }
}

TEST(Scalar25519, WideReductionMatchesNarrow) {
  util::Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    // A 512-bit value whose top half is zero reduces like the bottom half.
    util::Bytes wide = rng.next_bytes(32);
    wide.resize(64, 0);
    EXPECT_TRUE(Scalar25519::from_bytes_wide(wide) ==
                Scalar25519::from_bytes(util::BytesView(wide.data(), 32)));
  }
}

TEST(Scalar25519, RejectsBadLengths) {
  EXPECT_THROW(Scalar25519::from_bytes(util::Bytes(31)), std::invalid_argument);
  EXPECT_THROW(Scalar25519::from_bytes_wide(util::Bytes(63)), std::invalid_argument);
  EXPECT_FALSE(Scalar25519::is_canonical(util::Bytes(31)));
}

}  // namespace
}  // namespace xswap::crypto
