// The invariant auditor: conservation, settled escrow, and the protocol
// guarantees, across honest and adversarial runs.
#include "swap/invariants.hpp"

#include <gtest/gtest.h>

#include "graph/fvs.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

TEST(Invariants, CleanRunPassesAll) {
  SwapEngine engine(graph::figure1_triangle(), {0});
  const SwapReport report = engine.run();
  const InvariantReport audit = check_all(engine, report);
  EXPECT_TRUE(audit.ok()) << audit.to_string();
  EXPECT_EQ(audit.to_string(), "all invariants hold");
}

TEST(Invariants, SingleLeaderModePasses) {
  EngineOptions options;
  options.mode = ProtocolMode::kSingleLeader;
  SwapEngine engine(graph::cycle(5), {0}, options);
  const SwapReport report = engine.run();
  EXPECT_TRUE(check_all(engine, report).ok());
}

TEST(Invariants, BroadcastModePasses) {
  EngineOptions options;
  options.broadcast = true;
  SwapEngine engine(graph::cycle(6), {0}, options);
  const SwapReport report = engine.run();
  EXPECT_TRUE(check_all(engine, report).ok());
}

TEST(Invariants, UniqueAssetsConserved) {
  graph::Digraph d = graph::figure1_triangle();
  std::vector<ArcTerms> arcs = {
      {"c0", chain::Asset::unique("DEED", "house-1")},
      {"c1", chain::Asset::unique("DEED", "house-2")},
      {"c2", chain::Asset::coins("TOK", 7)},
  };
  SwapEngine engine(d, {"A", "B", "C"}, {0}, arcs, EngineOptions{});
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  EXPECT_TRUE(check_all(engine, report).ok());
}

TEST(Invariants, HoldUnderEveryDeviationKind) {
  for (int kind = 0; kind < 5; ++kind) {
    SwapEngine engine(graph::figure1_triangle(), {0});
    Strategy s;
    switch (kind) {
      case 0: s.withhold_contracts = true; break;
      case 1: s.withhold_unlocks = true; break;
      case 2: s.publish_corrupt_contracts = true; break;
      case 3: s.crash_at = engine.spec().start_time + 5; break;
      case 4: s.premature_reveal = true; break;
    }
    engine.set_strategy(kind == 4 ? 0 : 1, s);
    const SwapReport report = engine.run();
    const InvariantReport audit = check_all(engine, report);
    EXPECT_TRUE(audit.ok()) << "kind " << kind << ": " << audit.to_string();
  }
}

TEST(Invariants, FuzzedAdversarialSweep) {
  util::Rng rng(20260612);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + rng.next_below(4);
    const graph::Digraph d =
        graph::random_strongly_connected(n, rng.next_below(n + 1), rng);
    EngineOptions options;
    options.seed = 9000 + static_cast<std::uint64_t>(trial);
    SwapEngine engine(d, graph::minimum_feedback_vertex_set(d), options);
    for (PartyId v = 0; v < n; ++v) {
      Strategy s;
      if (rng.next_chance(1, 3)) {
        switch (rng.next_below(3)) {
          case 0: s.withhold_contracts = true; break;
          case 1: s.withhold_unlocks = true; break;
          default: s.crash_at = rng.next_below(60); break;
        }
      }
      engine.set_strategy(v, s);
    }
    const SwapReport report = engine.run();
    const InvariantReport audit = check_all(engine, report);
    EXPECT_TRUE(audit.ok()) << "trial " << trial << ": " << audit.to_string();
  }
}

}  // namespace
}  // namespace xswap::swap
