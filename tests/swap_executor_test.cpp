// The Executor layer: pluggable execution policy for component swaps
// (swap/executor.hpp) and its Scenario::run overloads. The load-bearing
// claim: component engines are share-nothing and aggregation happens in
// component order, so ThreadPoolExecutor(n) must produce a BatchReport
// field-identical to SerialExecutor's — only the wall-clock fields
// (wall_ms, components_per_sec) may differ.
#include "swap/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "swap/scenario.hpp"

namespace xswap::swap {
namespace {

/// A multi-SCC book: `rings3` 3-party rings then `rings2` 2-party
/// rings, every component independent.
ScenarioBuilder multi_ring_builder(std::size_t rings3, std::size_t rings2) {
  ScenarioBuilder builder;
  for (std::size_t r = 0; r < rings3; ++r) {
    const std::string a = "A" + std::to_string(r);
    const std::string b = "B" + std::to_string(r);
    const std::string c = "C" + std::to_string(r);
    const std::string chain = "r" + std::to_string(r) + "-";
    builder.offer(a, b, chain + "0", chain::Asset::coins("X", 1))
        .offer(b, c, chain + "1", chain::Asset::coins("Y", 1))
        .offer(c, a, chain + "2", chain::Asset::coins("Z", 1));
  }
  for (std::size_t r = 0; r < rings2; ++r) {
    const std::string m = "M" + std::to_string(r);
    const std::string t = "T" + std::to_string(r);
    const std::string chain = "p" + std::to_string(r) + "-";
    builder.offer(m, t, chain + "0", chain::Asset::coins("U", 3))
        .offer(t, m, chain + "1", chain::Asset::coins("V", 5));
  }
  return builder.seed(2018);
}

/// The ISSUE-5 mixed book: one straggler 18-cycle buried among 32
/// 3-rings and 50 two-party pairs — the shape where work-stealing's
/// backfill matters (the big ring pins one lane, everyone else drains
/// the small components).
ScenarioBuilder mixed_book_builder() {
  ScenarioBuilder builder = multi_ring_builder(32, 50);
  for (std::size_t v = 0; v < 18; ++v) {
    builder.offer("G" + std::to_string(v), "G" + std::to_string((v + 1) % 18),
                  "g" + std::to_string(v), chain::Asset::coins("W", 2));
  }
  return builder;
}

/// Every BatchReport field except the wall-clock pair.
void expect_identical_modulo_wall_clock(const BatchReport& a,
                                        const BatchReport& b) {
  ASSERT_EQ(a.swaps.size(), b.swaps.size());
  for (std::size_t i = 0; i < a.swaps.size(); ++i) {
    EXPECT_EQ(a.swaps[i].contract_published, b.swaps[i].contract_published);
    EXPECT_EQ(a.swaps[i].triggered, b.swaps[i].triggered);
    EXPECT_EQ(a.swaps[i].refunded, b.swaps[i].refunded);
    EXPECT_EQ(a.swaps[i].settled_at, b.swaps[i].settled_at);
    EXPECT_EQ(a.swaps[i].outcomes, b.swaps[i].outcomes);
    EXPECT_EQ(a.swaps[i].all_triggered, b.swaps[i].all_triggered);
    EXPECT_EQ(a.swaps[i].last_trigger_time, b.swaps[i].last_trigger_time);
    EXPECT_EQ(a.swaps[i].finished_at, b.swaps[i].finished_at);
    EXPECT_EQ(a.swaps[i].total_storage_bytes, b.swaps[i].total_storage_bytes);
    EXPECT_EQ(a.swaps[i].sign_operations, b.swaps[i].sign_operations);
    EXPECT_EQ(a.swaps[i].no_conforming_underwater,
              b.swaps[i].no_conforming_underwater);
  }
  EXPECT_EQ(a.unmatched.size(), b.unmatched.size());
  EXPECT_EQ(a.swaps_fully_triggered, b.swaps_fully_triggered);
  EXPECT_EQ(a.all_triggered, b.all_triggered);
  EXPECT_EQ(a.no_conforming_underwater, b.no_conforming_underwater);
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.last_trigger_time, b.last_trigger_time);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.total_storage_bytes, b.total_storage_bytes);
  EXPECT_EQ(a.total_call_payload_bytes, b.total_call_payload_bytes);
  EXPECT_EQ(a.hashkey_bytes_submitted, b.hashkey_bytes_submitted);
  EXPECT_EQ(a.sign_operations, b.sign_operations);
  EXPECT_EQ(a.total_transactions, b.total_transactions);
  EXPECT_EQ(a.failed_transactions, b.failed_transactions);
  EXPECT_EQ(a.components_skipped, b.components_skipped);
}

// --------------------------------------------------------------- executors

TEST(Executor, SerialRunsEveryTaskInOrder) {
  SerialExecutor serial;
  std::vector<std::size_t> order;
  serial.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, ThreadPoolRunsEveryTaskExactlyOnce) {
  ThreadPoolExecutor pool(4);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Executor, ThreadPoolZeroThreadsRejected) {
  EXPECT_THROW(ThreadPoolExecutor(0), std::invalid_argument);
}

TEST(Executor, ThreadPoolZeroTasksIsANoop) {
  ThreadPoolExecutor pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(Executor, ThreadPoolPropagatesTaskException) {
  ThreadPoolExecutor pool(2);
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("task 3 died");
                        }),
               std::runtime_error);
}

// ------------------------------------------------------------- determinism

TEST(Executor, ThreadPoolReportIdenticalToSerialOnWideBook) {
  // A ≥ 32-component book (20 3-rings + 12 pair rings) with adversaries
  // sprinkled across components: crash one 3-ring party, silence one
  // pair-ring maker. Every field except wall clock must agree.
  const auto build = [] {
    Strategy crash;
    crash.crash_at = 1;
    Strategy silent;
    silent.withhold_contracts = true;
    return multi_ring_builder(20, 12)
        .strategy("B3", crash)
        .strategy("M7", silent)
        .build();
  };

  Scenario serial_scenario = build();
  SerialExecutor serial;
  const BatchReport serial_report = serial_scenario.run(serial);

  Scenario pool_scenario = build();
  ThreadPoolExecutor pool(4);
  const BatchReport pool_report = pool_scenario.run(pool);

  ASSERT_EQ(serial_report.swaps.size(), 32u);
  EXPECT_FALSE(serial_report.all_triggered);  // the adversaries bit
  EXPECT_TRUE(serial_report.no_conforming_underwater);
  expect_identical_modulo_wall_clock(serial_report, pool_report);
}

TEST(Executor, BuilderJobsMatchesSerialRun) {
  const BatchReport serial = multi_ring_builder(2, 6).build().run();
  const BatchReport parallel = multi_ring_builder(2, 6).jobs(4).build().run();
  expect_identical_modulo_wall_clock(serial, parallel);
}

TEST(Executor, MoreThreadsThanComponentsIsFine) {
  Scenario scenario = multi_ring_builder(1, 1).build();
  ThreadPoolExecutor pool(16);
  const BatchReport report = scenario.run(pool);
  EXPECT_EQ(report.swaps.size(), 2u);
  EXPECT_TRUE(report.all_triggered);
}

// -------------------------------------------------------------- run options

TEST(RunOptions, ZeroMaxComponentsRejected) {
  Scenario scenario = multi_ring_builder(1, 2).build();
  RunOptions options;
  options.max_components = 0;
  EXPECT_THROW(scenario.run(options), std::invalid_argument);
  // Rejected before the run was consumed: a valid run still works.
  EXPECT_EQ(scenario.run().swaps.size(), 3u);
}

TEST(RunOptions, MaxComponentsTruncatesAndCounts) {
  Scenario scenario = multi_ring_builder(1, 2).build();
  ASSERT_EQ(scenario.swap_count(), 3u);
  RunOptions options;
  options.max_components = 2;
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(report.swaps.size(), 2u);
  EXPECT_EQ(report.components_skipped, 1u);
  EXPECT_EQ(report.swaps_fully_triggered, 2u);
}

TEST(RunOptions, MaxComponentsAboveCountIsANoop) {
  Scenario scenario = multi_ring_builder(1, 1).build();
  RunOptions options;
  options.max_components = 99;
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(report.swaps.size(), 2u);
  EXPECT_EQ(report.components_skipped, 0u);
}

TEST(RunOptions, ProgressFiresOncePerComponentUnderThreadPool) {
  Scenario scenario = multi_ring_builder(2, 6).build();
  ThreadPoolExecutor pool(4);
  RunOptions options;
  options.executor = &pool;
  std::set<std::size_t> seen;  // progress calls are serialized
  options.progress = [&](std::size_t i, const SwapReport& r) {
    EXPECT_TRUE(seen.insert(i).second) << "component " << i << " reported twice";
    EXPECT_TRUE(r.all_triggered);
  };
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(seen.size(), report.swaps.size());
  EXPECT_EQ(*seen.rbegin(), report.swaps.size() - 1);
}

// -------------------------------------------------------------- one-shot

TEST(Scenario, DoubleRunRejectedAcrossAllOverloads) {
  {
    Scenario scenario = multi_ring_builder(1, 0).build();
    scenario.run();
    SerialExecutor serial;
    EXPECT_THROW(scenario.run(serial), std::logic_error);
  }
  {
    Scenario scenario = multi_ring_builder(1, 0).build();
    ThreadPoolExecutor pool(2);
    scenario.run(pool);
    EXPECT_THROW(scenario.run(RunOptions{}), std::logic_error);
  }
  {
    Scenario scenario = multi_ring_builder(1, 0).build();
    scenario.run(RunOptions{});
    EXPECT_THROW(scenario.run(), std::logic_error);
  }
}

TEST(ScenarioBuilder, ZeroJobsRejectedAtBuild) {
  EXPECT_THROW(multi_ring_builder(1, 0).jobs(0).build(), std::invalid_argument);
}

// --------------------------------------------------------------- timing

TEST(Executor, WallClockFieldsPopulated) {
  const BatchReport report = multi_ring_builder(1, 3).build().run();
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.components_per_sec, 0.0);
}

// -------------------------------------------------------- work stealing

TEST(WorkStealingPool, ZeroLanesRejected) {
  EXPECT_THROW(WorkStealingPool(0), std::invalid_argument);
}

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  WorkStealingPool pool(4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkStealingPool, ZeroTasksIsANoop) {
  WorkStealingPool pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
  EXPECT_EQ(pool.batches_run(), 0u);
}

TEST(WorkStealingPool, SingleLaneDegeneratesToSerialLoop) {
  WorkStealingPool pool(1);
  std::vector<std::size_t> order;
  pool.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.batches_run(), 1u);
  EXPECT_EQ(pool.steal_count(), 0u);
}

TEST(WorkStealingPool, PropagatesFirstTaskException) {
  WorkStealingPool pool(2);
  EXPECT_THROW(pool.run(16,
                        [](std::size_t i) {
                          if (i == 5) throw std::runtime_error("task 5 died");
                        }),
               std::runtime_error);
  // The pool survives a throwing batch and keeps scheduling.
  std::atomic<std::size_t> ran{0};
  pool.run(8, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 8u);
  EXPECT_EQ(pool.batches_run(), 2u);
}

TEST(WorkStealingPool, ReportIdenticalToSerialOnMixedBook) {
  // The ISSUE-5 acceptance book: 32 3-rings + an 18-cycle + 50 pairs,
  // every deterministic field equal between serial and work-stealing.
  Scenario serial_scenario = mixed_book_builder().build();
  ASSERT_EQ(serial_scenario.swap_count(), 83u);
  SerialExecutor serial;
  const BatchReport serial_report = serial_scenario.run(serial);

  Scenario ws_scenario = mixed_book_builder().build();
  WorkStealingPool pool(4);
  const BatchReport ws_report = ws_scenario.run(pool);

  EXPECT_TRUE(serial_report.all_triggered);
  expect_identical_modulo_wall_clock(serial_report, ws_report);
}

TEST(WorkStealingPool, ReusedAcrossThreeConsecutiveScenarios) {
  // Persistent reuse: ONE pool, three scenarios back to back, each
  // report identical to a fresh serial run. batches_run proves the same
  // lanes served all three (no per-run spawn).
  WorkStealingPool pool(4);
  for (std::size_t round = 0; round < 3; ++round) {
    const BatchReport serial =
        multi_ring_builder(3 + round, 4).build().run();
    Scenario scenario = multi_ring_builder(3 + round, 4).build();
    const BatchReport pooled = scenario.run(pool);
    expect_identical_modulo_wall_clock(serial, pooled);
  }
  EXPECT_EQ(pool.batches_run(), 3u);
}

TEST(WorkStealingPool, RunOptionsPoolTakesPrecedenceOverExecutor) {
  const auto pool = std::make_shared<WorkStealingPool>(2);
  SerialExecutor decoy;
  RunOptions options;
  options.executor = &decoy;
  options.pool = pool;
  Scenario scenario = multi_ring_builder(2, 2).build();
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(report.swaps.size(), 4u);
  EXPECT_EQ(pool->batches_run(), 1u);  // the pool, not the decoy, ran it
}

TEST(WorkStealingPool, BuilderPoolIsDefaultPolicy) {
  const auto pool = std::make_shared<WorkStealingPool>(2);
  const BatchReport serial = multi_ring_builder(2, 3).build().run();
  const BatchReport pooled =
      multi_ring_builder(2, 3).pool(pool).build().run();
  expect_identical_modulo_wall_clock(serial, pooled);
  EXPECT_EQ(pool->batches_run(), 1u);
}

TEST(ExecutorRegistry, SharedPoolCachedBySize) {
  const auto a = ExecutorRegistry::instance().shared_pool(3);
  const auto b = ExecutorRegistry::instance().shared_pool(3);
  const auto c = ExecutorRegistry::instance().shared_pool(2);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(a->thread_count(), 3u);
  EXPECT_THROW(ExecutorRegistry::instance().shared_pool(0),
               std::invalid_argument);
}

// The elastic-resize tests use lane counts no other test touches (8+):
// the registry is a process-wide singleton, so when the whole umbrella
// binary runs in one process, smaller sizes may already be cached.

TEST(ExecutorRegistry, SharedPoolAtLeastReturnsExistingBiggerPool) {
  auto& registry = ExecutorRegistry::instance();
  const auto big = registry.shared_pool_at_least(8);
  ASSERT_GE(big->thread_count(), 8u);
  const std::size_t cached = registry.pool_count();
  // A smaller request is served by the cached bigger pool — no new pool,
  // no new cache entry.
  const auto fit = registry.shared_pool_at_least(big->thread_count() - 1);
  EXPECT_EQ(fit.get(), big.get());
  EXPECT_EQ(registry.pool_count(), cached);
  EXPECT_THROW(registry.shared_pool_at_least(0), std::invalid_argument);
}

TEST(ExecutorRegistry, SharedPoolAtLeastGrowsWithoutLeaking) {
  auto& registry = ExecutorRegistry::instance();
  auto outgrown = registry.shared_pool_at_least(9);
  const std::size_t outgrown_lanes = outgrown->thread_count();
  const std::size_t before_growth = registry.pool_count();
  outgrown.reset();  // the registry is now the sole owner
  const auto grown = registry.shared_pool_at_least(outgrown_lanes + 1);
  EXPECT_GE(grown->thread_count(), outgrown_lanes + 1);
  // Growing retired the unreferenced outgrown size (its workers joined):
  // the cache gained no entry net, so repeated --jobs bumps cannot
  // accumulate one parked pool per size ever requested.
  EXPECT_LE(registry.pool_count(), before_growth);
}

TEST(ExecutorRegistry, SharedPoolAtLeastKeepsReferencedPools) {
  auto& registry = ExecutorRegistry::instance();
  const auto held = registry.shared_pool_at_least(12);
  const std::size_t held_lanes = held->thread_count();
  const auto grown = registry.shared_pool_at_least(held_lanes + 1);
  EXPECT_NE(held.get(), grown.get());
  // `held` is still referenced outside the registry, so growth must NOT
  // prune it: a request its size can serve finds it again (dropping the
  // entry would orphan the pool, not kill it).
  EXPECT_EQ(registry.shared_pool_at_least(held_lanes).get(), held.get());
}

TEST(ExecutorRegistry, SharedPoolAtLeastPoolRunsBatches) {
  const auto pool = ExecutorRegistry::instance().shared_pool_at_least(8);
  const std::size_t before = pool->batches_run();
  std::atomic<std::size_t> sum{0};
  pool->run(16, [&](std::size_t i) {
    sum.fetch_add(i + 1, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 16u * 17u / 2u);
  EXPECT_EQ(pool->batches_run(), before + 1);
}

// -------------------------------------------------- striped chain locks

TEST(ChainLocks, RegistryStripesAreStableAndBounded) {
  chain::ChainLockRegistry registry(8);
  EXPECT_EQ(registry.stripe_count(), 8u);
  EXPECT_EQ(&registry.stripe_for("bitcoin"), &registry.stripe_for("bitcoin"));
  EXPECT_THROW(chain::ChainLockRegistry(0), std::invalid_argument);
}

/// Two 3-rings deliberately modeling the SAME chain names ("btc",
/// "eth", "sol") — distinct Ledger instances per component, but with a
/// shared ChainLockRegistry their seal critical sections serialize per
/// name while the pairs' chains (different stripes) stay concurrent.
ScenarioBuilder shared_chain_builder() {
  ScenarioBuilder builder;
  for (std::size_t r = 0; r < 2; ++r) {
    const std::string a = "SA" + std::to_string(r);
    const std::string b = "SB" + std::to_string(r);
    const std::string c = "SC" + std::to_string(r);
    builder.offer(a, b, "btc", chain::Asset::coins("X", 1))
        .offer(b, c, "eth", chain::Asset::coins("Y", 1))
        .offer(c, a, "sol", chain::Asset::coins("Z", 1));
  }
  for (std::size_t r = 0; r < 6; ++r) {
    const std::string m = "SM" + std::to_string(r);
    const std::string t = "ST" + std::to_string(r);
    const std::string chain = "q" + std::to_string(r) + "-";
    builder.offer(m, t, chain + "0", chain::Asset::coins("U", 3))
        .offer(t, m, chain + "1", chain::Asset::coins("V", 5));
  }
  return builder.seed(77);
}

TEST(ChainLocks, ConcurrentComponentsOnSharedChainNamesStaySafe) {
  // The TSan acceptance case: components whose ledgers share chain
  // names run concurrently under the striped locks; disjoint-chain
  // pairs proceed in parallel. The report must equal the unlocked
  // serial run bit-for-bit (locks affect wall-clock interleaving only).
  const BatchReport serial = shared_chain_builder().build().run();

  Scenario locked = shared_chain_builder()
                        .chain_locks(&chain::ChainLockRegistry::global())
                        .build();
  WorkStealingPool pool(4);
  const BatchReport concurrent = locked.run(pool);
  expect_identical_modulo_wall_clock(serial, concurrent);
}

// ------------------------------------------------------ fleet scheduler

std::vector<Scenario> small_fleet() {
  std::vector<Scenario> fleet;
  fleet.push_back(multi_ring_builder(4, 2).build());   // straggler-ish book
  fleet.push_back(multi_ring_builder(0, 5).build());   // small backfill book
  fleet.push_back(multi_ring_builder(2, 0).seed(99).build());
  return fleet;
}

TEST(Fleet, StealingMatchesFifoMatchesStandalone) {
  std::vector<BatchReport> standalone;
  for (Scenario& s : small_fleet()) standalone.push_back(s.run());

  std::vector<Scenario> fifo_fleet = small_fleet();
  FleetOptions fifo;
  fifo.schedule = FleetSchedule::kFifo;
  const FleetReport fifo_report = run_fleet(fifo_fleet, fifo);

  std::vector<Scenario> ws_fleet = small_fleet();
  FleetOptions stealing;
  stealing.pool = std::make_shared<WorkStealingPool>(4);
  stealing.schedule = FleetSchedule::kStealing;
  const FleetReport ws_report = run_fleet(ws_fleet, stealing);

  ASSERT_EQ(fifo_report.batches.size(), standalone.size());
  ASSERT_EQ(ws_report.batches.size(), standalone.size());
  EXPECT_EQ(ws_report.total_components, 13u);
  for (std::size_t s = 0; s < standalone.size(); ++s) {
    expect_identical_modulo_wall_clock(standalone[s], fifo_report.batches[s]);
    expect_identical_modulo_wall_clock(standalone[s], ws_report.batches[s]);
  }
}

TEST(Fleet, SpentScenarioRejectedBeforeAnyWork) {
  std::vector<Scenario> fleet = small_fleet();
  fleet[1].run();  // spend one book up front
  EXPECT_THROW(run_fleet(fleet), std::logic_error);
  // Book 0 was not consumed by the failed fleet launch.
  EXPECT_EQ(fleet[0].run().swaps.size(), 6u);
}

// ------------------------------------------------- exception safety

TEST(Scenario, ThrowingProgressReleasesPartialResultsAndStaysSpent) {
  // Regression for the ISSUE-5 bugfix: a throw mid-run used to leave
  // every finished component's engine (ledgers, blocks, simulator
  // slabs) allocated inside the spent scenario. Now the first exception
  // propagates, the partial results are released immediately, and the
  // scenario still rejects a second run.
  Scenario scenario = multi_ring_builder(2, 2).build();
  RunOptions options;
  options.progress = [](std::size_t i, const SwapReport&) {
    if (i == 1) throw std::runtime_error("observer died");
  };
  EXPECT_THROW(scenario.run(options), std::runtime_error);
  EXPECT_THROW(scenario.run(), std::logic_error);       // still spent
  EXPECT_THROW(scenario.engine(0), std::out_of_range);  // engines released
  EXPECT_EQ(scenario.swap_count(), 0u);
  // The cleared decomposition survives for post-mortem inspection.
  EXPECT_EQ(scenario.cleared(0).party_names.size(), 3u);
}

TEST(Scenario, ThrowingProgressUnderPoolReleasesToo) {
  Scenario scenario = multi_ring_builder(1, 3).build();
  RunOptions options;
  options.pool = std::make_shared<WorkStealingPool>(2);
  options.progress = [](std::size_t, const SwapReport&) {
    throw std::runtime_error("observer died");
  };
  EXPECT_THROW(scenario.run(options), std::runtime_error);
  EXPECT_THROW(scenario.engine(0), std::out_of_range);
}

TEST(Scenario, InvalidOptionsStillLeaveScenarioRunnable) {
  // Validation failures must NOT consume or release anything (contrast
  // with execution failures above).
  Scenario scenario = multi_ring_builder(1, 1).build();
  RunOptions options;
  options.max_components = 0;
  EXPECT_THROW(scenario.run(options), std::invalid_argument);
  EXPECT_EQ(scenario.swap_count(), 2u);
  EXPECT_EQ(scenario.run().swaps.size(), 2u);
}

}  // namespace
}  // namespace xswap::swap
