// The Executor layer: pluggable execution policy for component swaps
// (swap/executor.hpp) and its Scenario::run overloads. The load-bearing
// claim: component engines are share-nothing and aggregation happens in
// component order, so ThreadPoolExecutor(n) must produce a BatchReport
// field-identical to SerialExecutor's — only the wall-clock fields
// (wall_ms, components_per_sec) may differ.
#include "swap/executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "swap/scenario.hpp"

namespace xswap::swap {
namespace {

/// A multi-SCC book: `rings3` 3-party rings then `rings2` 2-party
/// rings, every component independent.
ScenarioBuilder multi_ring_builder(std::size_t rings3, std::size_t rings2) {
  ScenarioBuilder builder;
  for (std::size_t r = 0; r < rings3; ++r) {
    const std::string a = "A" + std::to_string(r);
    const std::string b = "B" + std::to_string(r);
    const std::string c = "C" + std::to_string(r);
    const std::string chain = "r" + std::to_string(r) + "-";
    builder.offer(a, b, chain + "0", chain::Asset::coins("X", 1))
        .offer(b, c, chain + "1", chain::Asset::coins("Y", 1))
        .offer(c, a, chain + "2", chain::Asset::coins("Z", 1));
  }
  for (std::size_t r = 0; r < rings2; ++r) {
    const std::string m = "M" + std::to_string(r);
    const std::string t = "T" + std::to_string(r);
    const std::string chain = "p" + std::to_string(r) + "-";
    builder.offer(m, t, chain + "0", chain::Asset::coins("U", 3))
        .offer(t, m, chain + "1", chain::Asset::coins("V", 5));
  }
  return builder.seed(2018);
}

/// Every BatchReport field except the wall-clock pair.
void expect_identical_modulo_wall_clock(const BatchReport& a,
                                        const BatchReport& b) {
  ASSERT_EQ(a.swaps.size(), b.swaps.size());
  for (std::size_t i = 0; i < a.swaps.size(); ++i) {
    EXPECT_EQ(a.swaps[i].contract_published, b.swaps[i].contract_published);
    EXPECT_EQ(a.swaps[i].triggered, b.swaps[i].triggered);
    EXPECT_EQ(a.swaps[i].refunded, b.swaps[i].refunded);
    EXPECT_EQ(a.swaps[i].settled_at, b.swaps[i].settled_at);
    EXPECT_EQ(a.swaps[i].outcomes, b.swaps[i].outcomes);
    EXPECT_EQ(a.swaps[i].all_triggered, b.swaps[i].all_triggered);
    EXPECT_EQ(a.swaps[i].last_trigger_time, b.swaps[i].last_trigger_time);
    EXPECT_EQ(a.swaps[i].finished_at, b.swaps[i].finished_at);
    EXPECT_EQ(a.swaps[i].total_storage_bytes, b.swaps[i].total_storage_bytes);
    EXPECT_EQ(a.swaps[i].sign_operations, b.swaps[i].sign_operations);
    EXPECT_EQ(a.swaps[i].no_conforming_underwater,
              b.swaps[i].no_conforming_underwater);
  }
  EXPECT_EQ(a.unmatched.size(), b.unmatched.size());
  EXPECT_EQ(a.swaps_fully_triggered, b.swaps_fully_triggered);
  EXPECT_EQ(a.all_triggered, b.all_triggered);
  EXPECT_EQ(a.no_conforming_underwater, b.no_conforming_underwater);
  EXPECT_EQ(a.outcome_counts, b.outcome_counts);
  EXPECT_EQ(a.last_trigger_time, b.last_trigger_time);
  EXPECT_EQ(a.finished_at, b.finished_at);
  EXPECT_EQ(a.total_storage_bytes, b.total_storage_bytes);
  EXPECT_EQ(a.total_call_payload_bytes, b.total_call_payload_bytes);
  EXPECT_EQ(a.hashkey_bytes_submitted, b.hashkey_bytes_submitted);
  EXPECT_EQ(a.sign_operations, b.sign_operations);
  EXPECT_EQ(a.total_transactions, b.total_transactions);
  EXPECT_EQ(a.failed_transactions, b.failed_transactions);
  EXPECT_EQ(a.components_skipped, b.components_skipped);
}

// --------------------------------------------------------------- executors

TEST(Executor, SerialRunsEveryTaskInOrder) {
  SerialExecutor serial;
  std::vector<std::size_t> order;
  serial.run(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, ThreadPoolRunsEveryTaskExactlyOnce) {
  ThreadPoolExecutor pool(4);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Executor, ThreadPoolZeroThreadsRejected) {
  EXPECT_THROW(ThreadPoolExecutor(0), std::invalid_argument);
}

TEST(Executor, ThreadPoolZeroTasksIsANoop) {
  ThreadPoolExecutor pool(4);
  pool.run(0, [](std::size_t) { FAIL() << "no task should run"; });
}

TEST(Executor, ThreadPoolPropagatesTaskException) {
  ThreadPoolExecutor pool(2);
  EXPECT_THROW(pool.run(8,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("task 3 died");
                        }),
               std::runtime_error);
}

// ------------------------------------------------------------- determinism

TEST(Executor, ThreadPoolReportIdenticalToSerialOnWideBook) {
  // A ≥ 32-component book (20 3-rings + 12 pair rings) with adversaries
  // sprinkled across components: crash one 3-ring party, silence one
  // pair-ring maker. Every field except wall clock must agree.
  const auto build = [] {
    Strategy crash;
    crash.crash_at = 1;
    Strategy silent;
    silent.withhold_contracts = true;
    return multi_ring_builder(20, 12)
        .strategy("B3", crash)
        .strategy("M7", silent)
        .build();
  };

  Scenario serial_scenario = build();
  SerialExecutor serial;
  const BatchReport serial_report = serial_scenario.run(serial);

  Scenario pool_scenario = build();
  ThreadPoolExecutor pool(4);
  const BatchReport pool_report = pool_scenario.run(pool);

  ASSERT_EQ(serial_report.swaps.size(), 32u);
  EXPECT_FALSE(serial_report.all_triggered);  // the adversaries bit
  EXPECT_TRUE(serial_report.no_conforming_underwater);
  expect_identical_modulo_wall_clock(serial_report, pool_report);
}

TEST(Executor, BuilderJobsMatchesSerialRun) {
  const BatchReport serial = multi_ring_builder(2, 6).build().run();
  const BatchReport parallel = multi_ring_builder(2, 6).jobs(4).build().run();
  expect_identical_modulo_wall_clock(serial, parallel);
}

TEST(Executor, MoreThreadsThanComponentsIsFine) {
  Scenario scenario = multi_ring_builder(1, 1).build();
  ThreadPoolExecutor pool(16);
  const BatchReport report = scenario.run(pool);
  EXPECT_EQ(report.swaps.size(), 2u);
  EXPECT_TRUE(report.all_triggered);
}

// -------------------------------------------------------------- run options

TEST(RunOptions, ZeroMaxComponentsRejected) {
  Scenario scenario = multi_ring_builder(1, 2).build();
  RunOptions options;
  options.max_components = 0;
  EXPECT_THROW(scenario.run(options), std::invalid_argument);
  // Rejected before the run was consumed: a valid run still works.
  EXPECT_EQ(scenario.run().swaps.size(), 3u);
}

TEST(RunOptions, MaxComponentsTruncatesAndCounts) {
  Scenario scenario = multi_ring_builder(1, 2).build();
  ASSERT_EQ(scenario.swap_count(), 3u);
  RunOptions options;
  options.max_components = 2;
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(report.swaps.size(), 2u);
  EXPECT_EQ(report.components_skipped, 1u);
  EXPECT_EQ(report.swaps_fully_triggered, 2u);
}

TEST(RunOptions, MaxComponentsAboveCountIsANoop) {
  Scenario scenario = multi_ring_builder(1, 1).build();
  RunOptions options;
  options.max_components = 99;
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(report.swaps.size(), 2u);
  EXPECT_EQ(report.components_skipped, 0u);
}

TEST(RunOptions, ProgressFiresOncePerComponentUnderThreadPool) {
  Scenario scenario = multi_ring_builder(2, 6).build();
  ThreadPoolExecutor pool(4);
  RunOptions options;
  options.executor = &pool;
  std::set<std::size_t> seen;  // progress calls are serialized
  options.progress = [&](std::size_t i, const SwapReport& r) {
    EXPECT_TRUE(seen.insert(i).second) << "component " << i << " reported twice";
    EXPECT_TRUE(r.all_triggered);
  };
  const BatchReport report = scenario.run(options);
  EXPECT_EQ(seen.size(), report.swaps.size());
  EXPECT_EQ(*seen.rbegin(), report.swaps.size() - 1);
}

// -------------------------------------------------------------- one-shot

TEST(Scenario, DoubleRunRejectedAcrossAllOverloads) {
  {
    Scenario scenario = multi_ring_builder(1, 0).build();
    scenario.run();
    SerialExecutor serial;
    EXPECT_THROW(scenario.run(serial), std::logic_error);
  }
  {
    Scenario scenario = multi_ring_builder(1, 0).build();
    ThreadPoolExecutor pool(2);
    scenario.run(pool);
    EXPECT_THROW(scenario.run(RunOptions{}), std::logic_error);
  }
  {
    Scenario scenario = multi_ring_builder(1, 0).build();
    scenario.run(RunOptions{});
    EXPECT_THROW(scenario.run(), std::logic_error);
  }
}

TEST(ScenarioBuilder, ZeroJobsRejectedAtBuild) {
  EXPECT_THROW(multi_ring_builder(1, 0).jobs(0).build(), std::invalid_argument);
}

// --------------------------------------------------------------- timing

TEST(Executor, WallClockFieldsPopulated) {
  const BatchReport report = multi_ring_builder(1, 3).build().run();
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_GT(report.components_per_sec, 0.0);
}

}  // namespace
}  // namespace xswap::swap
