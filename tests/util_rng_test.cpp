#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace xswap::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(13), 13u);
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextBelowRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.next_range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, NextChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_chance(0, 10));
    EXPECT_TRUE(rng.next_chance(10, 10));
  }
}

TEST(Rng, NextBytesLengthAndDeterminism) {
  Rng a(3), b(3);
  const Bytes x = a.next_bytes(33);
  const Bytes y = b.next_bytes(33);
  EXPECT_EQ(x.size(), 33u);
  EXPECT_EQ(x, y);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace xswap::util
