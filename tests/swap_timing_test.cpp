// The Δ timing assumption under chain latency: safety holds whenever Δ
// covers two chain hops, and provably breaks when the assumption is
// violated — the load-bearing role of §2.2's "known duration Δ".
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/engine.hpp"
#include "swap/invariants.hpp"

namespace xswap::swap {
namespace {

TEST(Timing, SlowChainsWithinContractStaySafe) {
  // Sweep submission delays with Δ scaled to cover them: everything must
  // still be uniform all-Deal.
  for (const sim::Duration delay : {0u, 1u, 2u, 4u}) {
    EngineOptions options;
    options.chain_submit_delay = delay;
    options.delta = 2 * (options.seal_period + delay) + 2;
    SwapEngine engine(graph::figure1_triangle(), {0}, options);
    const SwapReport report = engine.run();
    EXPECT_TRUE(report.all_triggered) << "delay " << delay;
    EXPECT_TRUE(check_all(engine, report).ok()) << "delay " << delay;
  }
}

TEST(Timing, SlowChainsWithAdversaryStaySafe) {
  // Last-moment unlocks on congested chains: the Δ contract still leaves
  // conforming parties whole.
  EngineOptions options;
  options.chain_submit_delay = 2;
  options.delta = 8;
  const SwapSpec probe = SwapEngine(graph::figure1_triangle(), {0}, options).spec();
  for (sim::Time delay_until = probe.start_time;
       delay_until <= probe.final_deadline(); delay_until += 3) {
    SwapEngine engine(graph::figure1_triangle(), {0}, options);
    Strategy s;
    s.delay_unlocks_until = delay_until;
    engine.set_strategy(2, s);
    const SwapReport report = engine.run();
    EXPECT_TRUE(report.no_conforming_underwater) << "delay " << delay_until;
  }
}

TEST(Timing, EngineRejectsUndersizedDelta) {
  EngineOptions options;
  options.chain_submit_delay = 3;
  options.delta = 6;  // needs >= 2*(1+3) = 8
  EXPECT_THROW(SwapEngine(graph::figure1_triangle(), {0}, options),
               std::invalid_argument);
  options.allow_unsafe_timing = true;
  EXPECT_NO_THROW(SwapEngine(graph::figure1_triangle(), {0}, options));
}

TEST(Timing, ViolatedDeltaCanDrownConformingParty) {
  // Negative result (why the assumption matters). A uniform slowdown only
  // stalls liveness — everything misses its deadline together. The real
  // exploit needs *asymmetric* latency: the adversary's unlock rides a
  // fast chain to land at the last valid moment, while the victim's
  // extension sits in a slow chain's queue past its (one-Δ-later)
  // deadline. We slow only Bob's entering chain below the Δ contract and
  // sweep Carol's last-moment timing: at least one run must leave
  // conforming Bob Underwater — the guarantee is really gone.
  const auto make_engine = [] {
    EngineOptions options;
    options.delta = 4;
    options.allow_unsafe_timing = true;
    return SwapEngine(graph::figure1_triangle(), {0}, options);
  };
  const SwapSpec probe = make_engine().spec();

  bool conforming_party_drowned = false;
  for (sim::Time delay_until = probe.start_time;
       delay_until <= probe.final_deadline() + probe.delta; ++delay_until) {
    SwapEngine engine = make_engine();
    // Arc 0 is (A,B): Bob's entering arc. Slow only that chain, with a
    // hop cost exceeding Δ.
    engine.ledger_mut(engine.spec().arcs[0].chain).set_submit_delay(6);
    Strategy s;
    s.delay_unlocks_until = delay_until;
    engine.set_strategy(2, s);
    const SwapReport report = engine.run();
    if (!report.no_conforming_underwater) {
      conforming_party_drowned = true;
      EXPECT_EQ(report.outcomes[1], Outcome::kUnderwater);
    }
  }
  EXPECT_TRUE(conforming_party_drowned)
      << "expected the broken timing assumption to be exploitable";
}

TEST(Timing, ViolatedDeltaWithHonestPartiesOnlyStallsLiveness) {
  // With everyone honest, a broken Δ can cost liveness (refunds instead
  // of deals) but never safety.
  EngineOptions options;
  options.chain_submit_delay = 4;
  options.delta = 2;
  options.allow_unsafe_timing = true;
  SwapEngine engine(graph::figure1_triangle(), {0}, options);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.no_conforming_underwater);
  for (const Outcome o : report.outcomes) {
    EXPECT_TRUE(o == Outcome::kDeal || o == Outcome::kNoDeal)
        << to_string(o);
  }
}

}  // namespace
}  // namespace xswap::swap
