// Hashkeys (§4.1): construction, extension, truncation, verification, and
// the forgery attempts the signature chain must block.
#include "swap/hashkey.hpp"

#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace xswap::swap {
namespace {

// Triangle A(0) → B(1) → C(2) → A. Secrets flow against the arcs:
// a hashkey path from counterparty v to the leader follows D's arcs.
class HashkeyTest : public ::testing::Test {
 protected:
  HashkeyTest() : digraph_(graph::cycle(3)), rng_(42) {
    for (int i = 0; i < 3; ++i) {
      keys_.push_back(crypto::KeyPair::from_seed(rng_.next_bytes(32)));
      directory_.push_back(keys_.back().public_key());
    }
    secret_ = rng_.next_bytes(32);
    hashlock_ = crypto::sha256_bytes(secret_);
  }

  graph::Digraph digraph_;
  util::Rng rng_;
  std::vector<crypto::KeyPair> keys_;
  PartyDirectory directory_;
  Secret secret_;
  Hashlock hashlock_;
};

TEST_F(HashkeyTest, LeaderKeyVerifiesOnLeaderArc) {
  // Leader A(0) unlocks its entering arc (C,A): counterparty is A itself,
  // degenerate path (0), |p| = 0.
  const Hashkey key = make_leader_hashkey(secret_, 0, keys_[0]);
  EXPECT_EQ(key.path_length(), 0u);
  EXPECT_TRUE(verify_hashkey(key, hashlock_, digraph_, 0, 0, directory_));
}

TEST_F(HashkeyTest, ExtensionChainVerifiesAlongPath) {
  // C extends A's key for arc (B,C): path (2,0) — requires arc 2→0 ✓.
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey c_key = extend_hashkey(leader_key, 2, keys_[2]);
  EXPECT_EQ(c_key.path, (std::vector<PartyId>{2, 0}));
  EXPECT_EQ(c_key.path_length(), 1u);
  EXPECT_TRUE(verify_hashkey(c_key, hashlock_, digraph_, 2, 0, directory_));

  // B extends C's key for arc (A,B): path (1,2,0).
  const Hashkey b_key = extend_hashkey(c_key, 1, keys_[1]);
  EXPECT_EQ(b_key.path_length(), 2u);
  EXPECT_TRUE(verify_hashkey(b_key, hashlock_, digraph_, 1, 0, directory_));
}

TEST_F(HashkeyTest, EncodedSizeGrowsWithPath) {
  const Hashkey k0 = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey k1 = extend_hashkey(k0, 2, keys_[2]);
  EXPECT_GT(k1.encoded_size(), k0.encoded_size());
  // One extra hop = one varint vertex id (1 byte for small ids) plus one
  // 64-byte signature in the canonical encoding.
  EXPECT_EQ(k1.encoded_size() - k0.encoded_size(), 1u + 64u);
}

TEST_F(HashkeyTest, RejectsWrongSecret) {
  Hashkey key = make_leader_hashkey(secret_, 0, keys_[0]);
  key.secret[0] ^= 1;
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 0, 0, directory_));
}

TEST_F(HashkeyTest, RejectsWrongCounterpartyOrLeader) {
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey c_key = extend_hashkey(leader_key, 2, keys_[2]);
  EXPECT_FALSE(verify_hashkey(c_key, hashlock_, digraph_, 1, 0, directory_));
  EXPECT_FALSE(verify_hashkey(c_key, hashlock_, digraph_, 2, 1, directory_));
}

TEST_F(HashkeyTest, RejectsNonPathRoute) {
  // Forged path (1,0) — D has no arc 1→0, so even with valid-looking
  // signatures the contract must reject (the path check is what stops
  // parties shortcutting the timeout schedule).
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey forged = extend_hashkey(leader_key, 1, keys_[1]);
  EXPECT_FALSE(verify_hashkey(forged, hashlock_, digraph_, 1, 0, directory_));
}

TEST_F(HashkeyTest, VirtualArcAcceptedOnlyInBroadcastMode) {
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey forged = extend_hashkey(leader_key, 1, keys_[1]);  // (1,0): no arc
  EXPECT_FALSE(verify_hashkey(forged, hashlock_, digraph_, 1, 0, directory_,
                              /*allow_virtual_leader_arc=*/false));
  EXPECT_TRUE(verify_hashkey(forged, hashlock_, digraph_, 1, 0, directory_,
                             /*allow_virtual_leader_arc=*/true));
}

TEST_F(HashkeyTest, RejectsTamperedSignature) {
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  Hashkey key = extend_hashkey(leader_key, 2, keys_[2]);
  key.sigs[0].bytes[0] ^= 1;
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 2, 0, directory_));
  key = extend_hashkey(leader_key, 2, keys_[2]);
  key.sigs[1].bytes[10] ^= 1;
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 2, 0, directory_));
}

TEST_F(HashkeyTest, RejectsSignatureByWrongParty) {
  // C's slot signed with B's key: chain breaks.
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey key = extend_hashkey(leader_key, 2, keys_[1]);
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 2, 0, directory_));
}

TEST_F(HashkeyTest, RejectsShapeMismatches) {
  Hashkey key = make_leader_hashkey(secret_, 0, keys_[0]);
  key.sigs.clear();
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 0, 0, directory_));
  key = make_leader_hashkey(secret_, 0, keys_[0]);
  key.path.clear();
  key.sigs.clear();
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 0, 0, directory_));
  key = make_leader_hashkey(secret_, 0, keys_[0]);
  key.path = {9};  // out-of-range vertex
  EXPECT_FALSE(verify_hashkey(key, hashlock_, digraph_, 9, 9, directory_));
}

TEST_F(HashkeyTest, ExtendRejectsPartyAlreadyOnPath) {
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey c_key = extend_hashkey(leader_key, 2, keys_[2]);
  EXPECT_THROW(extend_hashkey(c_key, 2, keys_[2]), std::invalid_argument);
  EXPECT_THROW(extend_hashkey(c_key, 0, keys_[0]), std::invalid_argument);
}

TEST_F(HashkeyTest, TruncateRecoversSuffixKey) {
  const Hashkey leader_key = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey c_key = extend_hashkey(leader_key, 2, keys_[2]);
  const Hashkey b_key = extend_hashkey(c_key, 1, keys_[1]);

  Hashkey recovered;
  ASSERT_TRUE(truncate_hashkey(b_key, 2, &recovered));
  EXPECT_EQ(recovered, c_key);
  EXPECT_TRUE(verify_hashkey(recovered, hashlock_, digraph_, 2, 0, directory_));

  ASSERT_TRUE(truncate_hashkey(b_key, 0, &recovered));
  EXPECT_EQ(recovered, leader_key);

  EXPECT_FALSE(truncate_hashkey(c_key, 1, &recovered));
}

TEST_F(HashkeyTest, CyclicPathAccepted) {
  // §2.1 paths may close back onto the start. A closed hashkey path would
  // arise if the *leader's own* entering arc were unlocked the long way
  // around: path (0,1,2,0) from counterparty 0 to leader 0.
  const Hashkey k0 = make_leader_hashkey(secret_, 0, keys_[0]);
  const Hashkey k2 = extend_hashkey(k0, 2, keys_[2]);
  const Hashkey k1 = extend_hashkey(k2, 1, keys_[1]);
  // Extending with 0 again is the closure; extend_hashkey refuses (0 is on
  // the path), mirroring Lemma 4.8: the leader never needs it — it already
  // holds the degenerate key. Verify the closed path shape directly.
  EXPECT_TRUE(graph::is_path(digraph_, {0, 1, 2, 0}));
  EXPECT_TRUE(verify_hashkey(k1, hashlock_, digraph_, 1, 0, directory_));
}

}  // namespace
}  // namespace xswap::swap
