// The strategy spec table (swap/strategy.{hpp,cpp}): the single
// name→Strategy parser shared by the CLI's --adversary flag, examples,
// and tests.
#include "swap/strategy.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace xswap::swap {
namespace {

TEST(StrategyFromSpec, CrashWithRelativeTime) {
  const Strategy s = strategy_from_spec("crash:10", 100);
  ASSERT_TRUE(s.crash_at.has_value());
  EXPECT_EQ(*s.crash_at, 110u);
  EXPECT_FALSE(s.conforming());
}

TEST(StrategyFromSpec, EveryArgFreeKind) {
  EXPECT_TRUE(strategy_from_spec("withhold").withhold_unlocks);
  EXPECT_TRUE(strategy_from_spec("withhold").withhold_claims);
  EXPECT_TRUE(strategy_from_spec("silent").withhold_contracts);
  EXPECT_TRUE(strategy_from_spec("corrupt").publish_corrupt_contracts);
  EXPECT_TRUE(strategy_from_spec("reveal").premature_reveal);
}

TEST(StrategyFromSpec, LateWithRelativeTime) {
  const Strategy s = strategy_from_spec("late:7", 50);
  ASSERT_TRUE(s.delay_unlocks_until.has_value());
  EXPECT_EQ(*s.delay_unlocks_until, 57u);
}

TEST(StrategyFromSpec, CrashRecoverSetsTheOutageWindow) {
  const Strategy s = strategy_from_spec("crash_recover:10:4", 100);
  ASSERT_TRUE(s.crash_at.has_value());
  ASSERT_TRUE(s.recover_at.has_value());
  EXPECT_EQ(*s.crash_at, 110u);
  EXPECT_EQ(*s.recover_at, 114u);  // crash tick + outage length
  EXPECT_FALSE(s.conforming());
}

TEST(StrategyFromSpec, CrashRecoverNeedsBothTicks) {
  EXPECT_THROW(strategy_from_spec("crash_recover"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash_recover:5"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash_recover:5:"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash_recover::3"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash_recover:a:b"),
               std::invalid_argument);
}

TEST(StrategyFromSpec, UnknownKindRejected) {
  EXPECT_THROW(strategy_from_spec("ddos"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec(""), std::invalid_argument);
}

TEST(StrategyFromSpec, TimedKindsNeedNumericArg) {
  EXPECT_THROW(strategy_from_spec("crash"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash:"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash:soon"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("late:-1"), std::invalid_argument);
  // Out-of-range ticks surface as the documented std::invalid_argument,
  // not std::out_of_range.
  EXPECT_THROW(strategy_from_spec("crash:99999999999999999999999"),
               std::invalid_argument);
}

TEST(StrategyFromSpec, ArgFreeKindsRejectStrayArg) {
  EXPECT_THROW(strategy_from_spec("withhold:3"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("reveal:now"), std::invalid_argument);
}

TEST(ParseAdversary, SplitsNameFromKind) {
  const auto [who, s] = parse_adversary("Carol:crash:10", 5);
  EXPECT_EQ(who, "Carol");
  ASSERT_TRUE(s.crash_at.has_value());
  EXPECT_EQ(*s.crash_at, 15u);
}

TEST(ParseAdversary, NumericIdsStayUninterpreted) {
  const auto [who, s] = parse_adversary("2:withhold");
  EXPECT_EQ(who, "2");
  EXPECT_TRUE(s.withhold_unlocks);
}

TEST(ParseAdversary, MissingWhoRejected) {
  EXPECT_THROW(parse_adversary("withhold"), std::invalid_argument);
  EXPECT_THROW(parse_adversary(":withhold"), std::invalid_argument);
}

TEST(StrategySpecKinds, ListsEveryKindOnce) {
  const auto& kinds = strategy_spec_kinds();
  EXPECT_EQ(kinds.size(), 10u);
  // Each listed kind (sans the argument hint) parses; the stochastic
  // ones draw from a seeded rng and get full-probability arguments so
  // the parsed strategy always deviates.
  util::Rng rng(1);
  for (const std::string& kind : kinds) {
    const auto colon = kind.find(':');
    const std::string bare = kind.substr(0, colon);
    std::string spec = bare;
    if (bare == "crash_recover") {
      spec += ":1:4";
    } else if (colon != std::string::npos) {
      spec += (bare == "flip" || bare == "equivocate") ? ":100" : ":1";
    }
    EXPECT_FALSE(strategy_from_spec(spec, 0, &rng).conforming()) << kind;
  }
}

// ---- Stochastic kinds (the fuzzer's adversary families) ----

TEST(StochasticStrategy, KindsRequireASeededRng) {
  EXPECT_THROW(strategy_from_spec("flip:50"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crashrand:8"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("equivocate:50"), std::invalid_argument);
}

TEST(StochasticStrategy, ProbabilityIsAPercentage) {
  util::Rng rng(7);
  EXPECT_THROW(strategy_from_spec("flip:101", 0, &rng),
               std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("equivocate:200", 0, &rng),
               std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("flip:", 0, &rng), std::invalid_argument);
}

TEST(StochasticStrategy, FlipAtTheExtremes) {
  util::Rng rng(7);
  // 0%: always honest; 100%: always one of the concrete deviations.
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(strategy_from_spec("flip:0", 0, &rng).conforming());
    EXPECT_FALSE(strategy_from_spec("flip:100", 0, &rng).conforming());
  }
}

TEST(StochasticStrategy, FlipReplaysWithTheSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 32; ++i) {
    const Strategy x = strategy_from_spec("flip:50", 10, &a);
    const Strategy y = strategy_from_spec("flip:50", 10, &b);
    EXPECT_EQ(x.crash_at, y.crash_at);
    EXPECT_EQ(x.withhold_contracts, y.withhold_contracts);
    EXPECT_EQ(x.publish_corrupt_contracts, y.publish_corrupt_contracts);
    EXPECT_EQ(x.withhold_unlocks, y.withhold_unlocks);
    EXPECT_EQ(x.withhold_claims, y.withhold_claims);
    EXPECT_EQ(x.premature_reveal, y.premature_reveal);
    EXPECT_EQ(x.delay_unlocks_until, y.delay_unlocks_until);
  }
}

TEST(StochasticStrategy, CrashrandLandsInsideTheWindow) {
  util::Rng rng(3);
  for (int i = 0; i < 64; ++i) {
    const Strategy s = strategy_from_spec("crashrand:12", 100, &rng);
    ASSERT_TRUE(s.crash_at.has_value());
    EXPECT_GE(*s.crash_at, 100u);
    EXPECT_LE(*s.crash_at, 112u);
  }
}

TEST(StochasticStrategy, EquivocateOnlyEverCorruptsContracts) {
  util::Rng rng(9);
  bool corrupted = false, honest = false;
  for (int i = 0; i < 64; ++i) {
    const Strategy s = strategy_from_spec("equivocate:50", 0, &rng);
    if (s.publish_corrupt_contracts) {
      corrupted = true;
      EXPECT_FALSE(s.crash_at.has_value());
      EXPECT_FALSE(s.withhold_unlocks);
    } else {
      honest = true;
      EXPECT_TRUE(s.conforming());
    }
  }
  // At 50% both sides of the coin must show in 64 draws.
  EXPECT_TRUE(corrupted);
  EXPECT_TRUE(honest);
}

}  // namespace
}  // namespace xswap::swap
