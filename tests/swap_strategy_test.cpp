// The strategy spec table (swap/strategy.{hpp,cpp}): the single
// name→Strategy parser shared by the CLI's --adversary flag, examples,
// and tests.
#include "swap/strategy.hpp"

#include <gtest/gtest.h>

namespace xswap::swap {
namespace {

TEST(StrategyFromSpec, CrashWithRelativeTime) {
  const Strategy s = strategy_from_spec("crash:10", 100);
  ASSERT_TRUE(s.crash_at.has_value());
  EXPECT_EQ(*s.crash_at, 110u);
  EXPECT_FALSE(s.conforming());
}

TEST(StrategyFromSpec, EveryArgFreeKind) {
  EXPECT_TRUE(strategy_from_spec("withhold").withhold_unlocks);
  EXPECT_TRUE(strategy_from_spec("withhold").withhold_claims);
  EXPECT_TRUE(strategy_from_spec("silent").withhold_contracts);
  EXPECT_TRUE(strategy_from_spec("corrupt").publish_corrupt_contracts);
  EXPECT_TRUE(strategy_from_spec("reveal").premature_reveal);
}

TEST(StrategyFromSpec, LateWithRelativeTime) {
  const Strategy s = strategy_from_spec("late:7", 50);
  ASSERT_TRUE(s.delay_unlocks_until.has_value());
  EXPECT_EQ(*s.delay_unlocks_until, 57u);
}

TEST(StrategyFromSpec, UnknownKindRejected) {
  EXPECT_THROW(strategy_from_spec("ddos"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec(""), std::invalid_argument);
}

TEST(StrategyFromSpec, TimedKindsNeedNumericArg) {
  EXPECT_THROW(strategy_from_spec("crash"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash:"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("crash:soon"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("late:-1"), std::invalid_argument);
  // Out-of-range ticks surface as the documented std::invalid_argument,
  // not std::out_of_range.
  EXPECT_THROW(strategy_from_spec("crash:99999999999999999999999"),
               std::invalid_argument);
}

TEST(StrategyFromSpec, ArgFreeKindsRejectStrayArg) {
  EXPECT_THROW(strategy_from_spec("withhold:3"), std::invalid_argument);
  EXPECT_THROW(strategy_from_spec("reveal:now"), std::invalid_argument);
}

TEST(ParseAdversary, SplitsNameFromKind) {
  const auto [who, s] = parse_adversary("Carol:crash:10", 5);
  EXPECT_EQ(who, "Carol");
  ASSERT_TRUE(s.crash_at.has_value());
  EXPECT_EQ(*s.crash_at, 15u);
}

TEST(ParseAdversary, NumericIdsStayUninterpreted) {
  const auto [who, s] = parse_adversary("2:withhold");
  EXPECT_EQ(who, "2");
  EXPECT_TRUE(s.withhold_unlocks);
}

TEST(ParseAdversary, MissingWhoRejected) {
  EXPECT_THROW(parse_adversary("withhold"), std::invalid_argument);
  EXPECT_THROW(parse_adversary(":withhold"), std::invalid_argument);
}

TEST(StrategySpecKinds, ListsEveryKindOnce) {
  const auto& kinds = strategy_spec_kinds();
  EXPECT_EQ(kinds.size(), 6u);
  // Each listed kind (sans the :T argument hint) parses.
  for (const std::string& kind : kinds) {
    const auto colon = kind.find(':');
    const std::string bare = kind.substr(0, colon);
    const std::string spec = colon == std::string::npos ? bare : bare + ":1";
    EXPECT_FALSE(strategy_from_spec(spec).conforming()) << kind;
  }
}

}  // namespace
}  // namespace xswap::swap
