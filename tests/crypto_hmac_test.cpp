// HMAC-SHA256 against RFC 4231 test vectors.
#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "util/bytes.hpp"

namespace xswap::crypto {
namespace {

using util::Bytes;
using util::from_hex;
using util::str_bytes;
using util::to_hex;

std::string hmac_hex(util::BytesView key, util::BytesView msg) {
  const Digest256 d = hmac_sha256(key, msg);
  return to_hex(util::BytesView(d.data(), d.size()));
}

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hmac_hex(key, str_bytes("Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(hmac_hex(str_bytes("Jefe"), str_bytes("what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hmac_hex(key, msg),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, Rfc4231Case4) {
  const Bytes key = from_hex("0102030405060708090a0b0c0d0e0f10111213141516171819");
  const Bytes msg(50, 0xcd);
  EXPECT_EQ(hmac_hex(key, msg),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hmac_hex(key, str_bytes("Test Using Larger Than Block-Size Key - Hash Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hmac_hex(key, str_bytes(
                "This is a test using a larger than block-size key and a "
                "larger than block-size data. The key needs to be hashed "
                "before being used by the HMAC algorithm.")),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, DistinctKeysDistinctMacs) {
  const Bytes msg = str_bytes("same message");
  EXPECT_NE(hmac_sha256(str_bytes("k1"), msg), hmac_sha256(str_bytes("k2"), msg));
}

TEST(Hmac, EmptyKeyAndMessage) {
  // HMAC must still be well defined for empty inputs.
  const Digest256 d = hmac_sha256(Bytes{}, Bytes{});
  EXPECT_EQ(to_hex(util::BytesView(d.data(), d.size())),
            "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

}  // namespace
}  // namespace xswap::crypto
