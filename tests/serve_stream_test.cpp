// The serve/ ingest surface: the event wire format (serve/events.hpp)
// and the bounded OfferStream (serve/offer_stream.hpp). The load-bearing
// claims: the wire format is a strict superset of the batch offers file
// (verbless lines are adds), and backpressure is DETERMINISTIC — the
// (capacity + 1)-th push into an undrained queue is rejected, every
// time, not subject to scheduling.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "serve/events.hpp"
#include "serve/offer_stream.hpp"

namespace xswap::serve {
namespace {

swap::Offer coin_offer(const std::string& from, const std::string& to,
                       const std::string& chain, std::uint64_t amount) {
  return swap::Offer{from, to, chain, chain::Asset::coins("TOK", amount)};
}

// ------------------------------------------------------- wire format

TEST(ServeEvents, VerblessLineIsAnAdd) {
  const auto event = parse_event_line("Alice Bob btc coin:BTC:3");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, EventKind::kAdd);
  EXPECT_EQ(event->offer.from, "Alice");
  EXPECT_EQ(event->offer.to, "Bob");
  EXPECT_EQ(event->offer.chain, "btc");
  EXPECT_TRUE(event->offer.asset.fungible);
  EXPECT_EQ(event->offer.asset.symbol, "BTC");
  EXPECT_EQ(event->offer.asset.amount, 3u);
}

TEST(ServeEvents, ExplicitVerbsAndUniqueAssets) {
  const auto add = parse_event_line("add A B ch unique:TITLE:vin-1");
  ASSERT_TRUE(add.has_value());
  EXPECT_EQ(add->kind, EventKind::kAdd);
  EXPECT_FALSE(add->offer.asset.fungible);
  EXPECT_EQ(add->offer.asset.unique_id, "vin-1");

  const auto expire = parse_event_line("expire A B ch coin:X:7");
  ASSERT_TRUE(expire.has_value());
  EXPECT_EQ(expire->kind, EventKind::kExpire);

  const auto clear = parse_event_line("clear");
  ASSERT_TRUE(clear.has_value());
  EXPECT_EQ(clear->kind, EventKind::kClear);
}

TEST(ServeEvents, BlankAndCommentLinesAreSkipped) {
  EXPECT_FALSE(parse_event_line("").has_value());
  EXPECT_FALSE(parse_event_line("   ").has_value());
  EXPECT_FALSE(parse_event_line("# a comment").has_value());
  // Trailing comments strip, like the batch offers file.
  const auto event = parse_event_line("A B ch coin:X:1  # inline note");
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->offer.asset.amount, 1u);
}

TEST(ServeEvents, MalformedLinesThrow) {
  EXPECT_THROW(parse_event_line("A B ch"), std::invalid_argument);
  EXPECT_THROW(parse_event_line("add A B ch"), std::invalid_argument);
  EXPECT_THROW(parse_event_line("A B ch coin:X:0"), std::invalid_argument);
  EXPECT_THROW(parse_event_line("A B ch coin:X:-1"), std::invalid_argument);
  EXPECT_THROW(parse_event_line("A B ch notanasset"), std::invalid_argument);
  EXPECT_THROW(parse_event_line("A B ch unique:T:"), std::invalid_argument);
  EXPECT_THROW(parse_event_line("A B ch coin:X:1 extra"),
               std::invalid_argument);
  EXPECT_THROW(parse_event_line("clear now"), std::invalid_argument);
}

TEST(ServeEvents, EventLineRoundTrips) {
  const std::vector<std::string> lines = {
      "add Alice Bob btc coin:BTC:3",
      "expire Alice Bob btc coin:BTC:3",
      "add A B ch unique:TITLE:vin-1",
      "clear",
  };
  for (const std::string& line : lines) {
    const auto event = parse_event_line(line);
    ASSERT_TRUE(event.has_value()) << line;
    EXPECT_EQ(event_line(*event), line);
    // And the rendered form parses back to the same event.
    EXPECT_EQ(parse_event_line(event_line(*event)), event);
  }
}

// ------------------------------------------------------- OfferStream

TEST(OfferStream, RejectsZeroCapacity) {
  EXPECT_THROW(OfferStream(0), std::invalid_argument);
}

TEST(OfferStream, BackpressureRejectsDeterministicallyAtCapacity) {
  OfferStream stream(3);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(stream.try_push(add_event(coin_offer("A", "B", "ch", i + 1))),
              SubmitResult::kAdmitted);
  }
  // The queue is exactly full and nothing consumes: every further push
  // is rejected, deterministically, however often we retry.
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(stream.try_push(add_event(coin_offer("A", "B", "ch", 99))),
              SubmitResult::kRejectedFull);
  }
  EXPECT_EQ(stream.depth(), 3u);
  EXPECT_EQ(stream.admitted(), 3u);
  EXPECT_EQ(stream.rejected_full(), 5u);
  EXPECT_EQ(stream.high_water(), 3u);

  // Draining frees the whole capacity again.
  std::vector<OfferEvent> drained;
  EXPECT_TRUE(stream.wait_drain(&drained));
  EXPECT_EQ(drained.size(), 3u);
  EXPECT_EQ(stream.depth(), 0u);
  EXPECT_EQ(stream.try_push(clear_event()), SubmitResult::kAdmitted);
}

TEST(OfferStream, DrainPreservesFifoOrder) {
  OfferStream stream(8);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    ASSERT_EQ(stream.try_push(add_event(coin_offer("A", "B", "ch", i))),
              SubmitResult::kAdmitted);
  }
  std::vector<OfferEvent> drained;
  ASSERT_TRUE(stream.wait_drain(&drained));
  ASSERT_EQ(drained.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(drained[i].offer.asset.amount, i + 1);
  }
}

TEST(OfferStream, CloseRefusesProducersButDrainsRemainder) {
  OfferStream stream(4);
  ASSERT_EQ(stream.try_push(add_event(coin_offer("A", "B", "ch", 1))),
            SubmitResult::kAdmitted);
  stream.close();
  stream.close();  // idempotent
  EXPECT_EQ(stream.try_push(add_event(coin_offer("A", "B", "ch", 2))),
            SubmitResult::kRejectedClosed);
  EXPECT_EQ(stream.push_wait(add_event(coin_offer("A", "B", "ch", 3))),
            SubmitResult::kRejectedClosed);

  // The admitted event is still delivered; only then does the stream end.
  std::vector<OfferEvent> drained;
  EXPECT_TRUE(stream.wait_drain(&drained));
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].offer.asset.amount, 1u);
  EXPECT_FALSE(stream.wait_drain(&drained));  // closed AND empty
}

TEST(OfferStream, PushWaitUnblocksWhenConsumerDrains) {
  OfferStream stream(1);
  ASSERT_EQ(stream.push_wait(add_event(coin_offer("A", "B", "ch", 1))),
            SubmitResult::kAdmitted);

  // Producer blocks on the full queue until the consumer drains.
  std::thread producer([&] {
    EXPECT_EQ(stream.push_wait(add_event(coin_offer("A", "B", "ch", 2))),
              SubmitResult::kAdmitted);
  });
  std::vector<OfferEvent> drained;
  std::size_t seen = 0;
  while (seen < 2) {  // two waves: {1}, then {2} once the producer wakes
    ASSERT_TRUE(stream.wait_drain(&drained));
    seen = drained.size();
  }
  producer.join();
  EXPECT_EQ(drained[0].offer.asset.amount, 1u);
  EXPECT_EQ(drained[1].offer.asset.amount, 2u);
}

TEST(OfferStream, PushWaitUnblocksOnClose) {
  OfferStream stream(1);
  ASSERT_EQ(stream.try_push(add_event(coin_offer("A", "B", "ch", 1))),
            SubmitResult::kAdmitted);
  std::thread producer([&] {
    EXPECT_EQ(stream.push_wait(add_event(coin_offer("A", "B", "ch", 2))),
              SubmitResult::kRejectedClosed);
  });
  stream.close();
  producer.join();
  EXPECT_EQ(stream.depth(), 1u);  // the parked event was NOT admitted
}

}  // namespace
}  // namespace xswap::serve
