// The §4.5 broadcast-chain optimization: Phase Two completes in constant
// time, but the broadcast can shorten — never replace — the arc-by-arc
// dissemination.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "swap/broadcast.hpp"
#include "swap/engine.hpp"

namespace xswap::swap {
namespace {

EngineOptions broadcast_options() {
  EngineOptions options;
  options.broadcast = true;
  return options;
}

TEST(Broadcast, AllDealOnTriangle) {
  SwapEngine engine(graph::figure1_triangle(), {0}, broadcast_options());
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
  for (const Outcome o : report.outcomes) EXPECT_EQ(o, Outcome::kDeal);
}

TEST(Broadcast, PhaseTwoFasterOnLongCycle) {
  // On C_8 the secret normally walks 7 hops back around the cycle; with
  // the broadcast chain every follower learns it in O(1).
  SwapEngine plain(graph::cycle(8), {0});
  SwapEngine fast(graph::cycle(8), {0}, broadcast_options());
  const SwapReport p = plain.run();
  const SwapReport f = fast.run();
  ASSERT_TRUE(p.all_triggered);
  ASSERT_TRUE(f.all_triggered);
  EXPECT_LT(f.last_trigger_time, p.last_trigger_time);
}

TEST(Broadcast, MultiLeaderDigraph) {
  graph::Digraph d(3);
  d.add_arc(0, 1);
  d.add_arc(1, 2);
  d.add_arc(2, 0);
  d.add_arc(1, 0);
  d.add_arc(2, 1);
  d.add_arc(0, 2);
  SwapEngine engine(d, {0, 1}, broadcast_options());
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.all_triggered);
}

TEST(Broadcast, DeviatingLeaderSkippingBoardStillCompletes) {
  // A leader that crashes after Phase Two begins cannot be forced to
  // post; the normal arc-by-arc dissemination still finishes the job for
  // whatever it revealed on-chain. Model: leader never posts because it
  // has withhold_claims (it still unlocks normally) — the board is only
  // an accelerator, so everyone still Deals.
  SwapEngine engine(graph::cycle(5), {0}, broadcast_options());
  Strategy s;
  s.withhold_claims = true;  // deviation unrelated to the board
  engine.set_strategy(0, s);
  const SwapReport report = engine.run();
  EXPECT_TRUE(report.no_conforming_underwater);
  // Followers' arcs all triggered; only the deviator's own claim may lag.
  for (PartyId v = 1; v < 5; ++v) {
    EXPECT_TRUE(acceptable(report.outcomes[v]));
  }
}

TEST(Broadcast, BoardRejectsImposterAndGarbage) {
  SwapEngine engine(graph::figure1_triangle(), {0}, broadcast_options());
  engine.run();
  const chain::Ledger& board_chain = engine.ledger(kBroadcastChain);
  // Find the board and check its slot got the leader's post.
  const BroadcastBoard* board = nullptr;
  for (const chain::ContractId id : board_chain.published_contracts()) {
    board = dynamic_cast<const BroadcastBoard*>(board_chain.get_contract(id));
    if (board != nullptr) break;
  }
  ASSERT_NE(board, nullptr);
  ASSERT_EQ(board->slot_count(), 1u);
  EXPECT_TRUE(board->posted(0).has_value());
  EXPECT_EQ(board->posted(0)->path, (std::vector<PartyId>{0}));
}

TEST(Broadcast, CrashSweepSafety) {
  const SwapSpec probe =
      SwapEngine(graph::cycle(5), {0}, broadcast_options()).spec();
  const sim::Time horizon = probe.final_deadline();
  for (sim::Time t = 0; t <= horizon; t += probe.delta) {
    for (PartyId victim = 0; victim < 5; ++victim) {
      SwapEngine engine(graph::cycle(5), {0}, broadcast_options());
      Strategy s;
      s.crash_at = t;
      engine.set_strategy(victim, s);
      const SwapReport report = engine.run();
      EXPECT_TRUE(report.no_conforming_underwater)
          << "victim " << victim << " at " << t;
    }
  }
}

}  // namespace
}  // namespace xswap::swap
