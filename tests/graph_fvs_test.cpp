#include "graph/fvs.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/paths.hpp"
#include "util/rng.hpp"

namespace xswap::graph {
namespace {

TEST(Fvs, VerifierOnCycle) {
  const Digraph d = cycle(4);
  EXPECT_TRUE(is_feedback_vertex_set(d, {0}));
  EXPECT_TRUE(is_feedback_vertex_set(d, {2}));
  EXPECT_FALSE(is_feedback_vertex_set(d, {}));
}

TEST(Fvs, VerifierOnComplete) {
  const Digraph d = complete(4);
  // Any two remaining vertexes form a 2-cycle, so an FVS must leave at
  // most one vertex.
  EXPECT_FALSE(is_feedback_vertex_set(d, {0, 1}));
  EXPECT_TRUE(is_feedback_vertex_set(d, {0, 1, 2}));
}

TEST(Fvs, MinimumOnAcyclicIsEmpty) {
  Digraph dag(3);
  dag.add_arc(0, 1);
  dag.add_arc(1, 2);
  EXPECT_TRUE(minimum_feedback_vertex_set(dag).empty());
}

TEST(Fvs, MinimumOnCycleIsOne) {
  for (std::size_t n = 2; n <= 8; ++n) {
    EXPECT_EQ(minimum_feedback_vertex_set(cycle(n)).size(), 1u) << n;
  }
}

TEST(Fvs, MinimumOnCompleteIsNMinusOne) {
  for (std::size_t n = 2; n <= 5; ++n) {
    EXPECT_EQ(minimum_feedback_vertex_set(complete(n)).size(), n - 1) << n;
  }
}

TEST(Fvs, MinimumOnTwoSharedCyclesIsSharedVertex) {
  const Digraph d = two_cycles_sharing_vertex(3, 4);
  const auto fvs = minimum_feedback_vertex_set(d);
  ASSERT_EQ(fvs.size(), 1u);
  EXPECT_EQ(fvs[0], 0u);
}

TEST(Fvs, MinimumOnHubIsHub) {
  const auto fvs = minimum_feedback_vertex_set(hub_and_spokes(5));
  ASSERT_EQ(fvs.size(), 1u);
  EXPECT_EQ(fvs[0], 0u);
}

TEST(Fvs, ExactSearchSizeGuard) {
  // The guard is kernel-based: complete(25) is irreducible, so its kernel
  // (25 vertexes) exceeds the budget and exact search refuses ...
  EXPECT_THROW(minimum_feedback_vertex_set(complete(25), 20),
               std::invalid_argument);
  // ... while cycle(25) kernelizes to nothing and solves instantly even
  // though its raw vertex count is just as far over the budget.
  const auto fvs = minimum_feedback_vertex_set(cycle(25), 20);
  ASSERT_EQ(fvs.size(), 1u);
  EXPECT_EQ(fvs[0], 0u);
}

TEST(Fvs, GreedyAlwaysValid) {
  util::Rng rng(99);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t n = 2 + rng.next_below(12);
    const Digraph d = random_strongly_connected(n, rng.next_below(2 * n), rng);
    EXPECT_TRUE(is_feedback_vertex_set(d, greedy_feedback_vertex_set(d)));
  }
}

TEST(Fvs, GreedyNeverSmallerThanMinimum) {
  util::Rng rng(1000);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t n = 2 + rng.next_below(8);
    const Digraph d = random_strongly_connected(n, rng.next_below(n), rng);
    const auto exact = minimum_feedback_vertex_set(d);
    const auto greedy = greedy_feedback_vertex_set(d);
    EXPECT_LE(exact.size(), greedy.size());
    EXPECT_TRUE(is_feedback_vertex_set(d, exact));
  }
}

TEST(Fvs, GreedyOnAcyclicIsEmpty) {
  Digraph dag(4);
  dag.add_arc(0, 1);
  dag.add_arc(0, 2);
  dag.add_arc(2, 3);
  EXPECT_TRUE(greedy_feedback_vertex_set(dag).empty());
}

TEST(Fvs, MultigraphCycleNeedsLeader) {
  const Digraph d = multi_cycle(3, 2);
  EXPECT_FALSE(is_feedback_vertex_set(d, {}));
  EXPECT_TRUE(is_feedback_vertex_set(d, {1}));
  EXPECT_EQ(minimum_feedback_vertex_set(d).size(), 1u);
}

}  // namespace
}  // namespace xswap::graph
