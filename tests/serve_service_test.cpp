// ClearingService end-to-end. The headline assertion is the GOLDEN
// GATE: a stream of pure `add` events followed by the shutdown drain
// must reproduce the batch path (ScenarioBuilder on the same book)
// field for field in every deterministic report field — same
// decomposition, same per-component seed (base + i), same outcomes,
// same resource totals, same unmatched list. The rest pins the service
// semantics: deterministic backpressure, graceful drain (no admitted
// offer lost), mid-stream clearing points, jobs-independence, and
// invalid-event accounting.
#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/events.hpp"
#include "serve/service.hpp"
#include "swap/scenario.hpp"

namespace xswap::serve {
namespace {

swap::Offer offer(const std::string& from, const std::string& to,
                  const std::string& chain, std::uint64_t amount = 1) {
  return swap::Offer{from, to, chain, chain::Asset::coins("TOK", amount)};
}

/// A book with two non-trivial components and one unmatched offer:
/// a 3-ring, a disjoint 2-cycle, and a dangling arc.
std::vector<swap::Offer> two_component_book() {
  return {
      offer("Alice", "Bob", "c1"),   offer("Bob", "Carol", "c2"),
      offer("Carol", "Alice", "c3"), offer("Dave", "Erin", "c4"),
      offer("Erin", "Dave", "c5"),   offer("Frank", "Grace", "c6"),
  };
}

/// Every deterministic SwapReport field (everything except wall clock,
/// which SwapReport does not even carry).
void expect_swap_reports_equal(const swap::SwapReport& got,
                               const swap::SwapReport& want,
                               const std::string& context) {
  EXPECT_EQ(got.contract_published, want.contract_published) << context;
  EXPECT_EQ(got.triggered, want.triggered) << context;
  EXPECT_EQ(got.refunded, want.refunded) << context;
  EXPECT_EQ(got.settled_at, want.settled_at) << context;
  EXPECT_EQ(got.outcomes, want.outcomes) << context;
  EXPECT_EQ(got.all_triggered, want.all_triggered) << context;
  EXPECT_EQ(got.last_trigger_time, want.last_trigger_time) << context;
  EXPECT_EQ(got.finished_at, want.finished_at) << context;
  EXPECT_EQ(got.total_storage_bytes, want.total_storage_bytes) << context;
  EXPECT_EQ(got.total_call_payload_bytes, want.total_call_payload_bytes)
      << context;
  EXPECT_EQ(got.hashkey_bytes_submitted, want.hashkey_bytes_submitted)
      << context;
  EXPECT_EQ(got.sign_operations, want.sign_operations) << context;
  EXPECT_EQ(got.total_transactions, want.total_transactions) << context;
  EXPECT_EQ(got.failed_transactions, want.failed_transactions) << context;
  EXPECT_EQ(got.no_conforming_underwater, want.no_conforming_underwater)
      << context;
}

/// Run the book through a started service as pure adds + drain,
/// collecting per-component reports.
ServiceStats stream_book(ServiceOptions options,
                         const std::vector<swap::Offer>& book,
                         std::vector<ComponentReport>* reports,
                         std::vector<swap::Offer>* unmatched) {
  // on_report runs on the service thread; wait() joins it before the
  // caller reads `reports`, so the plain vector is safe.
  options.on_report = [reports](const ComponentReport& r) {
    reports->push_back(r);
  };
  ClearingService service(std::move(options));
  service.start();
  for (const swap::Offer& o : book) {
    EXPECT_EQ(service.submit_wait(add_event(o)), SubmitResult::kAdmitted);
  }
  const ServiceStats stats = service.wait();
  *unmatched = service.final_unmatched();
  return stats;
}

TEST(ClearingService, ValidatesOptions) {
  {
    ServiceOptions bad;
    bad.queue_cap = 0;
    EXPECT_THROW(ClearingService{std::move(bad)}, std::invalid_argument);
  }
  {
    ServiceOptions bad;
    bad.jobs = 0;
    EXPECT_THROW(ClearingService{std::move(bad)}, std::invalid_argument);
  }
  {
    ServiceOptions bad;
    bad.max_dirty = -1.0;
    EXPECT_THROW(ClearingService{std::move(bad)}, std::invalid_argument);
  }
  ClearingService service{ServiceOptions{}};
  service.start();
  EXPECT_THROW(service.start(), std::logic_error);
  service.wait();
}

TEST(ClearingService, GoldenGateStreamingEqualsBatch) {
  const std::vector<swap::Offer> book = two_component_book();
  constexpr std::uint64_t kSeed = 42;

  // Ground truth: the batch path on the identical book and knobs.
  swap::Scenario scenario =
      swap::ScenarioBuilder().offers(book).seed(kSeed).build();
  const std::size_t components = scenario.swap_count();
  ASSERT_EQ(components, 2u);
  const swap::BatchReport batch = scenario.run();

  ServiceOptions options;
  options.engine.seed = kSeed;
  std::vector<ComponentReport> reports;
  std::vector<swap::Offer> unmatched;
  const ServiceStats stats = stream_book(options, book, &reports, &unmatched);

  // Same decomposition, in the same order, run under the same seeds.
  ASSERT_EQ(reports.size(), components);
  for (std::size_t i = 0; i < components; ++i) {
    const std::string context = "component " + std::to_string(i);
    EXPECT_EQ(reports[i].clear_batch, 0u) << context;
    EXPECT_EQ(reports[i].index, i) << context;
    EXPECT_EQ(reports[i].seed, kSeed + i) << context;
    EXPECT_EQ(reports[i].cleared, scenario.cleared(i)) << context;
    EXPECT_TRUE(reports[i].audit_ok) << context;
    ASSERT_EQ(reports[i].report.swaps.size(), 1u) << context;
    expect_swap_reports_equal(reports[i].report.swaps[0], batch.swaps[i],
                              context);
  }

  // Same leftover book, returned to the makers in the same order.
  EXPECT_EQ(unmatched, batch.unmatched);

  // And the aggregate counters agree with the batch totals.
  EXPECT_EQ(stats.components_cleared, components);
  EXPECT_EQ(stats.swaps_fully_triggered, batch.swaps_fully_triggered);
  EXPECT_EQ(stats.violations, 0u);
  EXPECT_EQ(stats.adds_applied, book.size());
  EXPECT_EQ(stats.clears, 1u);  // the shutdown drain
  // The unmatched offer stays live (that is where final_unmatched()
  // reads it from).
  EXPECT_EQ(stats.offers_live, unmatched.size());
}

TEST(ClearingService, JobsDoNotChangeDeterministicFields) {
  const std::vector<swap::Offer> book = {
      offer("A", "B", "c1"), offer("B", "A", "c2"), offer("C", "D", "c3"),
      offer("D", "C", "c4"), offer("E", "F", "c5"), offer("F", "E", "c6"),
  };

  std::vector<ComponentReport> serial_reports, parallel_reports;
  std::vector<swap::Offer> serial_unmatched, parallel_unmatched;
  ServiceOptions serial;
  serial.engine.seed = 7;
  stream_book(serial, book, &serial_reports, &serial_unmatched);
  ServiceOptions parallel;
  parallel.engine.seed = 7;
  parallel.jobs = 2;
  stream_book(parallel, book, &parallel_reports, &parallel_unmatched);

  ASSERT_EQ(serial_reports.size(), 3u);
  ASSERT_EQ(parallel_reports.size(), 3u);
  for (std::size_t i = 0; i < serial_reports.size(); ++i) {
    const std::string context = "component " + std::to_string(i);
    EXPECT_EQ(parallel_reports[i].seed, serial_reports[i].seed) << context;
    EXPECT_EQ(parallel_reports[i].cleared, serial_reports[i].cleared)
        << context;
    expect_swap_reports_equal(parallel_reports[i].report.swaps[0],
                              serial_reports[i].report.swaps[0], context);
  }
  EXPECT_EQ(parallel_unmatched, serial_unmatched);
}

TEST(ClearingService, BackpressureRejectsDeterministicallyBeforeStart) {
  ServiceOptions options;
  options.queue_cap = 2;
  ClearingService service(std::move(options));

  // The thread has not started: nothing consumes, so rejection at
  // capacity is exact, not a race.
  EXPECT_EQ(service.submit(add_event(offer("A", "B", "c1"))),
            SubmitResult::kAdmitted);
  EXPECT_EQ(service.submit(add_event(offer("B", "A", "c2"))),
            SubmitResult::kAdmitted);
  for (int attempt = 0; attempt < 5; ++attempt) {
    EXPECT_EQ(service.submit(add_event(offer("C", "D", "c3"))),
              SubmitResult::kRejectedFull);
  }

  service.start();
  const ServiceStats stats = service.wait();
  EXPECT_EQ(stats.events_admitted, 2u);
  EXPECT_EQ(stats.events_rejected_full, 5u);
  EXPECT_EQ(stats.queue_high_water, 2u);
  // The two admitted offers form a 2-cycle and clear on the drain.
  EXPECT_EQ(stats.components_cleared, 1u);
  EXPECT_EQ(stats.swaps_fully_triggered, 1u);
}

TEST(ClearingService, GracefulDrainLosesNoAdmittedOffer) {
  const std::vector<swap::Offer> book = two_component_book();
  ServiceOptions options;
  std::vector<ComponentReport> reports;
  std::vector<swap::Offer> unmatched;
  const ServiceStats stats = stream_book(options, book, &reports, &unmatched);

  // Every admitted offer is accounted for: it either rode into a
  // cleared component (one arc each) or came back unmatched.
  std::size_t arcs = 0;
  for (const ComponentReport& r : reports) arcs += r.cleared.arcs.size();
  EXPECT_EQ(arcs + unmatched.size(), book.size());
  EXPECT_EQ(stats.adds_applied, book.size());
  EXPECT_EQ(stats.offers_live, unmatched.size());
  ASSERT_EQ(unmatched.size(), 1u);
  EXPECT_EQ(unmatched[0].from, "Frank");
}

TEST(ClearingService, MidStreamClearPointsAdvanceTheSeedBase) {
  constexpr std::uint64_t kSeed = 11;
  ServiceOptions options;
  options.engine.seed = kSeed;
  std::vector<ComponentReport> reports;
  options.on_report = [&reports](const ComponentReport& r) {
    reports.push_back(r);
  };
  ClearingService service(std::move(options));
  service.start();

  const std::vector<swap::Offer> ring = {
      offer("A", "B", "c1"), offer("B", "C", "c2"), offer("C", "A", "c3")};
  for (const swap::Offer& o : ring) service.submit_wait(add_event(o));
  service.submit_wait(clear_event());
  // The ring was consumed at the clearing point, so the identical
  // offers may be resubmitted for the next round.
  for (const swap::Offer& o : ring) service.submit_wait(add_event(o));
  const ServiceStats stats = service.wait();

  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].clear_batch, 0u);
  EXPECT_EQ(reports[0].seed, kSeed);
  EXPECT_EQ(reports[1].clear_batch, 1u);
  // One component was dispatched before the second point: base + 1.
  EXPECT_EQ(reports[1].seed, kSeed + 1);
  EXPECT_EQ(reports[1].cleared, reports[0].cleared);
  EXPECT_EQ(stats.clears, 2u);  // explicit point + shutdown drain
  EXPECT_EQ(stats.components_cleared, 2u);
}

TEST(ClearingService, InvalidEventsAreCountedNotFatal) {
  ServiceOptions options;
  ClearingService service(std::move(options));
  service.start();
  service.submit_wait(add_event(offer("A", "B", "c1")));
  // Duplicate of a live offer: admitted into the queue, rejected at
  // apply time.
  service.submit_wait(add_event(offer("A", "B", "c1")));
  // Expiring an offer that was never added.
  service.submit_wait(expire_event(offer("X", "Y", "c9")));
  service.submit_wait(add_event(offer("B", "A", "c2")));
  const ServiceStats stats = service.wait();

  EXPECT_EQ(stats.events_admitted, 4u);
  EXPECT_EQ(stats.events_rejected_invalid, 2u);
  EXPECT_EQ(stats.adds_applied, 2u);
  EXPECT_EQ(stats.expires_applied, 0u);
  // The surviving 2-cycle still cleared.
  EXPECT_EQ(stats.components_cleared, 1u);
  EXPECT_EQ(stats.swaps_fully_triggered, 1u);
}

}  // namespace
}  // namespace xswap::serve
