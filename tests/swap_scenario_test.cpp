// The Scenario layer: fluent builder + batch runner (the public surface
// over §4.2's offers → digraph → leader FVS → spec → run pipeline).
#include "swap/scenario.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace xswap::swap {
namespace {

ScenarioBuilder triangle_builder() {
  return ScenarioBuilder()
      .offer("Alice", "Bob", "altchain", chain::Asset::coins("ALT", 100))
      .offer("Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 2))
      .offer("Carol", "Alice", "titles", chain::Asset::unique("TITLE", "cadillac"));
}

// A 3-ring, a 2-ring, and two offers no atomic swap can honour.
ScenarioBuilder mixed_book_builder() {
  return ScenarioBuilder()
      .offer("A", "B", "c0", chain::Asset::coins("T0", 1))
      .offer("B", "C", "c1", chain::Asset::coins("T1", 1))
      .offer("C", "A", "c2", chain::Asset::coins("T2", 1))
      .offer("X", "Y", "c3", chain::Asset::coins("T3", 1))
      .offer("Y", "X", "c4", chain::Asset::coins("T4", 1))
      .offer("A", "X", "c5", chain::Asset::coins("T5", 1))
      .offer("Zed", "A", "c6", chain::Asset::coins("T6", 1));
}

// ---------------------------------------------------------------- builder

TEST(ScenarioBuilder, EmptyBookRejected) {
  EXPECT_THROW(ScenarioBuilder().build(), std::invalid_argument);
}

TEST(ScenarioBuilder, MalformedOfferRejected) {
  EXPECT_THROW(ScenarioBuilder()
                   .offer("Alice", "Alice", "c", chain::Asset::coins("X", 1))
                   .build(),
               std::invalid_argument);
  EXPECT_THROW(ScenarioBuilder()
                   .offer("Alice", "Bob", "", chain::Asset::coins("X", 1))
                   .build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, DuplicateOfferRejected) {
  EXPECT_THROW(triangle_builder()
                   .offer("Alice", "Bob", "altchain", chain::Asset::coins("ALT", 100))
                   .build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, StrategyForUnknownPartyRejected) {
  EXPECT_THROW(triangle_builder().strategy("Mallory", Strategy::honest()).build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, BadOptionsRejectedAtBuild) {
  // Δ below two chain hops is the engine's invalid-options path; the
  // builder must surface it at build(), not run().
  EXPECT_THROW(triangle_builder().delta(1).build(), std::invalid_argument);
}

TEST(ScenarioBuilder, SingleLeaderModeNeedsOneLeader) {
  // complete(3) has a 2-vertex minimum FVS, so single-leader mode cannot
  // apply; build() must reject the combination.
  EXPECT_THROW(ScenarioBuilder()
                   .offers(offers_for_digraph(graph::complete(3)))
                   .mode(ProtocolMode::kSingleLeader)
                   .build(),
               std::invalid_argument);
}

TEST(ScenarioBuilder, FluentKnobsReachTheSpec) {
  Scenario scenario = triangle_builder().delta(8).seed(99).broadcast().build();
  const SwapSpec& spec = scenario.engine(0).spec();
  EXPECT_EQ(spec.delta, 8u);
  EXPECT_TRUE(spec.broadcast);
}

// ---------------------------------------------------------------- scenario

TEST(Scenario, ClearsTriangleIntoOneSwap) {
  Scenario scenario = triangle_builder().build();
  ASSERT_EQ(scenario.swap_count(), 1u);
  EXPECT_TRUE(scenario.unmatched().empty());
  EXPECT_EQ(scenario.cleared(0).party_names,
            (std::vector<std::string>{"Alice", "Bob", "Carol"}));
  EXPECT_EQ(scenario.component_of("Carol"), 0u);
  EXPECT_EQ(scenario.component_of("Mallory"), Scenario::npos);
}

TEST(Scenario, SingleSwapMatchesDirectEngine) {
  // One-component scenarios must reproduce a direct engine run
  // bit-for-bit (same cleared swap, same seed).
  Scenario scenario = triangle_builder().seed(77).build();
  const BatchReport batch = scenario.run();

  const auto cleared = clear_offers(
      {{"Alice", "Bob", "altchain", chain::Asset::coins("ALT", 100)},
       {"Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 2)},
       {"Carol", "Alice", "titles", chain::Asset::unique("TITLE", "cadillac")}});
  ASSERT_TRUE(cleared.has_value());
  EngineOptions options;
  options.seed = 77;
  SwapEngine engine(*cleared, options);
  const SwapReport direct = engine.run();

  ASSERT_EQ(batch.swaps.size(), 1u);
  EXPECT_EQ(batch.swaps[0].triggered, direct.triggered);
  EXPECT_EQ(batch.swaps[0].outcomes, direct.outcomes);
  EXPECT_EQ(batch.swaps[0].settled_at, direct.settled_at);
  EXPECT_EQ(batch.last_trigger_time, direct.last_trigger_time);
  EXPECT_EQ(batch.total_storage_bytes, direct.total_storage_bytes);
  EXPECT_EQ(batch.sign_operations, direct.sign_operations);
}

TEST(Scenario, RunIsOneShot) {
  Scenario scenario = triangle_builder().build();
  scenario.run();
  EXPECT_THROW(scenario.run(), std::logic_error);
}

TEST(Scenario, MultiSccBatchRunsEndToEnd) {
  Scenario scenario = mixed_book_builder().build();
  ASSERT_EQ(scenario.swap_count(), 2u);
  EXPECT_EQ(scenario.unmatched().size(), 2u);

  const BatchReport batch = scenario.run();
  EXPECT_EQ(batch.swaps.size(), 2u);
  EXPECT_EQ(batch.swaps_fully_triggered, 2u);
  EXPECT_TRUE(batch.all_triggered);
  EXPECT_TRUE(batch.no_conforming_underwater);
  ASSERT_EQ(batch.unmatched.size(), 2u);
  // 5 parties across both components, everyone ends with Deal.
  EXPECT_EQ(batch.outcome_counts.at(Outcome::kDeal), 5u);

  // Assets actually moved in both components.
  const std::size_t ring3 = scenario.component_of("A");
  const std::size_t ring2 = scenario.component_of("X");
  ASSERT_NE(ring3, Scenario::npos);
  ASSERT_NE(ring2, Scenario::npos);
  EXPECT_NE(ring3, ring2);
  EXPECT_EQ(scenario.engine(ring3).ledger("c0").balance("B", "T0"), 1u);
  EXPECT_EQ(scenario.engine(ring2).ledger("c3").balance("Y", "T3"), 1u);
}

TEST(Scenario, StrategyOverrideByNameHitsTheRightComponent) {
  // Crash Y (2-ring): only that component degrades, and Theorem 4.9's
  // invariant holds in every component regardless.
  Strategy crash;
  crash.crash_at = 1;
  Scenario scenario = mixed_book_builder().strategy("Y", crash).build();
  const std::size_t ring3 = scenario.component_of("A");
  const std::size_t ring2 = scenario.component_of("Y");
  const BatchReport batch = scenario.run();

  EXPECT_TRUE(batch.swaps[ring3].all_triggered);
  EXPECT_FALSE(batch.swaps[ring2].all_triggered);
  EXPECT_FALSE(batch.all_triggered);
  EXPECT_EQ(batch.swaps_fully_triggered, 1u);
  EXPECT_TRUE(batch.no_conforming_underwater);
}

TEST(Scenario, LatestStrategyOverrideWins) {
  Strategy crash;
  crash.crash_at = 1;
  Scenario scenario = triangle_builder()
                          .strategy("Carol", crash)
                          .strategy("Carol", Strategy::honest())
                          .build();
  const BatchReport batch = scenario.run();
  EXPECT_TRUE(batch.all_triggered);
}

TEST(Scenario, PostBuildStrategyByName) {
  Scenario scenario = triangle_builder().build();
  Strategy withhold;
  withhold.withhold_contracts = true;
  scenario.set_strategy("Carol", withhold);
  EXPECT_THROW(scenario.set_strategy("Mallory", withhold),
               std::invalid_argument);
  const BatchReport batch = scenario.run();
  EXPECT_FALSE(batch.all_triggered);
  EXPECT_TRUE(batch.no_conforming_underwater);
}

// ------------------------------------------------------------ aggregation

TEST(Scenario, BatchReportAggregationInvariants) {
  Strategy crash;
  crash.crash_at = 1;
  Scenario scenario = mixed_book_builder().strategy("B", crash).build();
  const BatchReport batch = scenario.run();

  bool all = true;
  bool safe = true;
  std::size_t fully = 0;
  sim::Time last_trigger = 0;
  sim::Time finished = 0;
  std::size_t storage = 0, payload = 0, hashkey = 0, signs = 0, txs = 0,
              failed = 0, outcomes = 0;
  for (const SwapReport& r : batch.swaps) {
    // The batch-level safety statement: Theorem 4.9 holds in EVERY
    // component swap.
    EXPECT_TRUE(r.no_conforming_underwater);
    all = all && r.all_triggered;
    safe = safe && r.no_conforming_underwater;
    fully += r.all_triggered ? 1 : 0;
    last_trigger = std::max(last_trigger, r.last_trigger_time);
    finished = std::max(finished, r.finished_at);
    storage += r.total_storage_bytes;
    payload += r.total_call_payload_bytes;
    hashkey += r.hashkey_bytes_submitted;
    signs += r.sign_operations;
    txs += r.total_transactions;
    failed += r.failed_transactions;
    outcomes += r.outcomes.size();
  }
  EXPECT_EQ(batch.all_triggered, all);
  EXPECT_EQ(batch.no_conforming_underwater, safe);
  EXPECT_EQ(batch.swaps_fully_triggered, fully);
  EXPECT_EQ(batch.last_trigger_time, last_trigger);
  EXPECT_EQ(batch.finished_at, finished);
  EXPECT_EQ(batch.total_storage_bytes, storage);
  EXPECT_EQ(batch.total_call_payload_bytes, payload);
  EXPECT_EQ(batch.hashkey_bytes_submitted, hashkey);
  EXPECT_EQ(batch.sign_operations, signs);
  EXPECT_EQ(batch.total_transactions, txs);
  EXPECT_EQ(batch.failed_transactions, failed);

  std::size_t outcome_total = 0;
  for (const auto& [o, count] : batch.outcome_counts) outcome_total += count;
  EXPECT_EQ(outcome_total, outcomes);
}

TEST(Scenario, ComponentSeedsAreDistinct) {
  // Each component derives its keys from seed + component index, so two
  // components never share keypairs/secrets (a batch is many swaps, not
  // one swap with shared randomness).
  Scenario scenario = mixed_book_builder().seed(1234).build();
  const auto& d0 = scenario.engine(0).spec().directory;
  const auto& d1 = scenario.engine(1).spec().directory;
  for (const auto& k0 : d0) {
    for (const auto& k1 : d1) EXPECT_NE(k0, k1);
  }
}

TEST(Scenario, DigraphPresetRidesTheScenarioPath) {
  // offers_for_digraph mirrors the legacy convenience defaults, so a
  // generator digraph runs through the builder unchanged.
  Scenario scenario = ScenarioBuilder()
                          .offers(offers_for_digraph(graph::cycle(4)))
                          .build();
  ASSERT_EQ(scenario.swap_count(), 1u);
  EXPECT_EQ(scenario.cleared(0).leaders.size(), 1u);
  const BatchReport batch = scenario.run();
  EXPECT_TRUE(batch.all_triggered);
  EXPECT_TRUE(batch.unmatched.empty());
}

}  // namespace
}  // namespace xswap::swap
