// Batch clearing: a realistic offer book rarely forms one neat ring.
//
// The clearing service (§4.2) receives a pile of offers, splits them into
// strongly connected components (each an independently runnable atomic
// swap, §3), rejects the offers no atomic protocol can honour (they would
// create free-riders, Lemma 3.4), and runs every cleared swap. The
// Scenario layer does all of that behind one build()/run() pair and
// hands back a BatchReport with per-swap reports plus batch totals.
#include <cstdio>

#include "swap/scenario.hpp"

using namespace xswap;

int main() {
  // An offer book: a 3-ring, a 2-ring, and two dangling offers.
  swap::Scenario scenario =
      swap::ScenarioBuilder()
          .offer("Ann", "Ben", "c0", chain::Asset::coins("USDx", 120))
          .offer("Ben", "Cyn", "c1", chain::Asset::coins("EURx", 100))
          .offer("Cyn", "Ann", "c2", chain::Asset::coins("GBPx", 90))
          .offer("Dee", "Eli", "c3", chain::Asset::coins("BTC", 1))
          .offer("Eli", "Dee", "c4", chain::Asset::coins("ETH", 12))
          .offer("Ann", "Dee", "c5", chain::Asset::coins("USDx", 5))    // cross-ring
          .offer("Zed", "Ann", "c6", chain::Asset::coins("DOGE", 999))  // one-way
          .seed(500)
          .build();
  std::printf("offer book: 7 offers\n");
  std::printf("cleared into %zu independent swaps; %zu offers unmatched\n\n",
              scenario.swap_count(), scenario.unmatched().size());

  const swap::BatchReport batch = scenario.run();

  for (std::size_t i = 0; i < batch.swaps.size(); ++i) {
    const swap::ClearedSwap& cleared = scenario.cleared(i);
    std::printf("swap %zu: %zu parties, %zu transfers -> %s\n", i + 1,
                cleared.party_names.size(), cleared.arcs.size(),
                batch.swaps[i].all_triggered ? "all Deal" : "FAILED");
  }
  std::printf("\nbatch totals: %zu/%zu swaps fully triggered, "
              "%zu transactions, %zu B on-chain, safety held: %s\n",
              batch.swaps_fully_triggered, batch.swaps.size(),
              batch.total_transactions, batch.total_storage_bytes,
              batch.no_conforming_underwater ? "yes" : "NO");

  std::printf("\nunmatched offers (returned to their makers):\n");
  for (const swap::Offer& offer : batch.unmatched) {
    std::printf("  %s -> %s: %s (no counter-flow: would create a free rider)\n",
                offer.from.c_str(), offer.to.c_str(),
                offer.asset.to_string().c_str());
  }
  return batch.all_triggered && batch.no_conforming_underwater ? 0 : 1;
}
