// Batch clearing: a realistic offer book rarely forms one neat ring.
//
// The clearing service (§4.2) receives a pile of offers, splits them into
// strongly connected components (each an independently runnable atomic
// swap, §3), rejects the offers no atomic protocol can honour (they would
// create free-riders, Lemma 3.4), and runs every cleared swap.
#include <cstdio>

#include "swap/clearing.hpp"
#include "swap/engine.hpp"

using namespace xswap;

int main() {
  // An offer book: a 3-ring, a 2-ring, and two dangling offers.
  const std::vector<swap::Offer> book = {
      {"Ann", "Ben", "c0", chain::Asset::coins("USDx", 120)},
      {"Ben", "Cyn", "c1", chain::Asset::coins("EURx", 100)},
      {"Cyn", "Ann", "c2", chain::Asset::coins("GBPx", 90)},
      {"Dee", "Eli", "c3", chain::Asset::coins("BTC", 1)},
      {"Eli", "Dee", "c4", chain::Asset::coins("ETH", 12)},
      {"Ann", "Dee", "c5", chain::Asset::coins("USDx", 5)},   // cross-ring
      {"Zed", "Ann", "c6", chain::Asset::coins("DOGE", 999)}, // one-way
  };
  std::printf("offer book: %zu offers\n", book.size());

  const swap::Decomposition batch = swap::decompose_offers(book);
  std::printf("cleared into %zu independent swaps; %zu offers unmatched\n\n",
              batch.swaps.size(), batch.unmatched.size());

  for (std::size_t i = 0; i < batch.swaps.size(); ++i) {
    const swap::ClearedSwap& cleared = batch.swaps[i];
    swap::EngineOptions options;
    options.seed = 500 + i;
    swap::SwapEngine engine(cleared.digraph, cleared.party_names,
                            cleared.leaders, cleared.arcs, options);
    const swap::SwapReport report = engine.run();
    std::printf("swap %zu: %zu parties, %zu transfers -> %s\n", i + 1,
                cleared.party_names.size(), cleared.arcs.size(),
                report.all_triggered ? "all Deal" : "FAILED");
    if (!report.all_triggered) return 1;
  }

  std::printf("\nunmatched offers (returned to their makers):\n");
  for (const swap::Offer& offer : batch.unmatched) {
    std::printf("  %s -> %s: %s (no counter-flow: would create a free rider)\n",
                offer.from.c_str(), offer.to.c_str(),
                offer.asset.to_string().c_str());
  }
  return 0;
}
