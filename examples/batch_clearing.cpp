// Batch clearing: a realistic offer book rarely forms one neat ring.
//
// The clearing service (§4.2) receives a pile of offers, splits them into
// strongly connected components (each an independently runnable atomic
// swap, §3), rejects the offers no atomic protocol can honour (they would
// create free-riders, Lemma 3.4), and runs every cleared swap. The
// Scenario layer does all of that behind one build()/run() pair and
// hands back a BatchReport with per-swap reports plus batch totals.
//
// Component swaps are share-nothing, so the second half of this example
// fans a wide book out over a thread pool (swap/executor.hpp) — the
// report is field-identical to the serial run modulo wall clock.
#include <cstdio>
#include <string>
#include <vector>

#include "swap/executor.hpp"
#include "swap/scenario.hpp"

using namespace xswap;

int main() {
  // An offer book: a 3-ring, a 2-ring, and two dangling offers.
  swap::Scenario scenario =
      swap::ScenarioBuilder()
          .offer("Ann", "Ben", "c0", chain::Asset::coins("USDx", 120))
          .offer("Ben", "Cyn", "c1", chain::Asset::coins("EURx", 100))
          .offer("Cyn", "Ann", "c2", chain::Asset::coins("GBPx", 90))
          .offer("Dee", "Eli", "c3", chain::Asset::coins("BTC", 1))
          .offer("Eli", "Dee", "c4", chain::Asset::coins("ETH", 12))
          .offer("Ann", "Dee", "c5", chain::Asset::coins("USDx", 5))    // cross-ring
          .offer("Zed", "Ann", "c6", chain::Asset::coins("DOGE", 999))  // one-way
          .seed(500)
          .build();
  std::printf("offer book: 7 offers\n");
  std::printf("cleared into %zu independent swaps; %zu offers unmatched\n\n",
              scenario.swap_count(), scenario.unmatched().size());

  const swap::BatchReport batch = scenario.run();

  for (std::size_t i = 0; i < batch.swaps.size(); ++i) {
    const swap::ClearedSwap& cleared = scenario.cleared(i);
    std::printf("swap %zu: %zu parties, %zu transfers -> %s\n", i + 1,
                cleared.party_names.size(), cleared.arcs.size(),
                batch.swaps[i].all_triggered ? "all Deal" : "FAILED");
  }
  std::printf("\nbatch totals: %zu/%zu swaps fully triggered, "
              "%zu transactions, %zu B on-chain, safety held: %s\n",
              batch.swaps_fully_triggered, batch.swaps.size(),
              batch.total_transactions, batch.total_storage_bytes,
              batch.no_conforming_underwater ? "yes" : "NO");

  std::printf("\nunmatched offers (returned to their makers):\n");
  for (const swap::Offer& offer : batch.unmatched) {
    std::printf("  %s -> %s: %s (no counter-flow: would create a free rider)\n",
                offer.from.c_str(), offer.to.c_str(),
                offer.asset.to_string().c_str());
  }

  // Part two: a wide book (16 independent 2-party rings) run twice —
  // serially, then on four threads. Component i always runs with seed
  // `seed + i`, so everything except wall clock must agree.
  const auto wide_book = [] {
    swap::ScenarioBuilder builder;
    for (std::size_t r = 0; r < 16; ++r) {
      const std::string maker = "Maker" + std::to_string(r);
      const std::string taker = "Taker" + std::to_string(r);
      builder.offer(maker, taker, "m" + std::to_string(r),
                    chain::Asset::coins("BTC", 1))
          .offer(taker, maker, "t" + std::to_string(r),
                 chain::Asset::coins("ETH", 12));
    }
    return builder.seed(900);
  };

  std::printf("\nwide book: 16 independent pair swaps, serial vs 4 threads\n");
  const swap::BatchReport serial = wide_book().build().run();
  const swap::BatchReport parallel = wide_book().jobs(4).build().run();
  std::printf("  serial:   %5.1f ms  (%.0f swaps/s)\n", serial.wall_ms,
              serial.components_per_sec);
  std::printf("  4 threads:%5.1f ms  (%.0f swaps/s)\n", parallel.wall_ms,
              parallel.components_per_sec);
  const bool identical =
      serial.swaps_fully_triggered == parallel.swaps_fully_triggered &&
      serial.last_trigger_time == parallel.last_trigger_time &&
      serial.total_storage_bytes == parallel.total_storage_bytes &&
      serial.sign_operations == parallel.sign_operations;
  std::printf("  reports identical modulo wall clock: %s\n",
              identical ? "yes" : "NO (bug!)");

  // Part three: a FLEET of books through the cross-batch scheduler.
  // One straggler book (a 6-party ring) plus three small pair books;
  // under FleetSchedule::kStealing the small books' components backfill
  // idle lanes while the ring finishes, and the persistent pool from the
  // ExecutorRegistry is reused across the whole queue (and any later
  // run in this process) instead of spawning threads per book.
  const auto make_fleet = [] {
    std::vector<swap::Scenario> fleet;
    swap::ScenarioBuilder straggler;
    for (std::size_t v = 0; v < 6; ++v) {
      straggler.offer("Ring" + std::to_string(v),
                      "Ring" + std::to_string((v + 1) % 6),
                      "rc" + std::to_string(v), chain::Asset::coins("RING", 9));
    }
    fleet.push_back(straggler.seed(7).build());
    for (std::size_t b = 0; b < 3; ++b) {
      swap::ScenarioBuilder book;
      for (std::size_t r = 0; r < 4; ++r) {
        const std::string m = "F" + std::to_string(b) + "M" + std::to_string(r);
        const std::string t = "F" + std::to_string(b) + "T" + std::to_string(r);
        const std::string chain =
            "f" + std::to_string(b) + "-" + std::to_string(r);
        book.offer(m, t, chain + "a", chain::Asset::coins("BTC", 1))
            .offer(t, m, chain + "b", chain::Asset::coins("ETH", 10));
      }
      fleet.push_back(book.seed(70 + b).build());
    }
    return fleet;
  };

  std::printf("\nfleet: 4 books (one 6-ring straggler + 3 pair books), "
              "fifo vs stealing on a persistent pool\n");
  swap::FleetOptions fifo;
  fifo.pool = swap::ExecutorRegistry::instance().shared_pool(4);
  fifo.schedule = swap::FleetSchedule::kFifo;
  std::vector<swap::Scenario> fifo_fleet = make_fleet();
  const swap::FleetReport fifo_report = swap::run_fleet(fifo_fleet, fifo);

  swap::FleetOptions stealing = fifo;  // same pool, overlapped tails
  stealing.schedule = swap::FleetSchedule::kStealing;
  std::vector<swap::Scenario> ws_fleet = make_fleet();
  const swap::FleetReport ws_report = swap::run_fleet(ws_fleet, stealing);

  std::printf("  fifo:     %5.1f ms  (%.0f swaps/s)\n", fifo_report.wall_ms,
              fifo_report.components_per_sec);
  std::printf("  stealing: %5.1f ms  (%.0f swaps/s)\n", ws_report.wall_ms,
              ws_report.components_per_sec);
  bool fleet_identical = fifo_report.batches.size() == ws_report.batches.size();
  bool fleet_safe = true;
  for (std::size_t b = 0; fleet_identical && b < ws_report.batches.size(); ++b) {
    const swap::BatchReport& f = fifo_report.batches[b];
    const swap::BatchReport& w = ws_report.batches[b];
    fleet_identical = f.swaps_fully_triggered == w.swaps_fully_triggered &&
                      f.last_trigger_time == w.last_trigger_time &&
                      f.total_storage_bytes == w.total_storage_bytes &&
                      f.sign_operations == w.sign_operations;
    fleet_safe = fleet_safe && w.all_triggered && w.no_conforming_underwater;
  }
  std::printf("  per-book reports identical across schedules: %s\n",
              fleet_identical ? "yes" : "NO (bug!)");

  return batch.all_triggered && batch.no_conforming_underwater &&
                 serial.all_triggered && parallel.all_triggered && identical &&
                 fleet_identical && fleet_safe
             ? 0
             : 1;
}
