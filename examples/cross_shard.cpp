// Cross-shard coordination (paper §1: "Sharding splits one blockchain
// into many ... an atomic swap protocol can coordinate needed cross-chain
// updates").
//
// A coordinator shard rebalances accounts against four worker shards:
// the coordinator moves allocation tokens out to every shard and pulls
// settlement tokens back — a hub-and-spokes swap digraph whose hub is the
// single leader. We run it twice: plain, and with the §4.5 broadcast
// chain, showing the constant-time Phase Two.
#include <cstdio>

#include "graph/generators.hpp"
#include "swap/engine.hpp"

using namespace xswap;

namespace {

swap::SwapEngine make_rebalance(bool broadcast) {
  const std::size_t shards = 5;  // hub + 4 workers
  const graph::Digraph d = graph::hub_and_spokes(shards);
  std::vector<std::string> names = {"coordinator"};
  for (std::size_t i = 1; i < shards; ++i) {
    names.push_back("shard-" + std::to_string(i));
  }
  std::vector<swap::ArcTerms> arcs;
  for (graph::ArcId a = 0; a < d.arc_count(); ++a) {
    const auto& arc = d.arc(a);
    // Outbound arcs carry allocations, inbound carry settlements; the
    // contract for a shard pair lives on that shard's chain.
    const std::size_t shard = arc.head == 0 ? arc.tail : arc.head;
    arcs.push_back(swap::ArcTerms{
        "shard-chain-" + std::to_string(shard),
        chain::Asset::coins(arc.head == 0 ? "ALLOC" : "SETTLE", 10 + a)});
  }
  swap::EngineOptions options;
  options.broadcast = broadcast;
  return swap::SwapEngine(d, names, /*leaders=*/{0}, arcs, options);
}

}  // namespace

int main() {
  std::puts("cross-shard rebalance: coordinator <-> 4 shards (8 transfers)\n");
  for (const bool broadcast : {false, true}) {
    swap::SwapEngine engine = make_rebalance(broadcast);
    const auto& spec = engine.spec();
    const swap::SwapReport report = engine.run();
    std::printf("%-18s all_triggered=%s  triggered by T+%llu ticks  storage=%zu B\n",
                broadcast ? "with broadcast:" : "plain protocol:",
                report.all_triggered ? "yes" : "no",
                static_cast<unsigned long long>(report.last_trigger_time -
                                                spec.start_time),
                report.total_storage_bytes);
    if (!report.all_triggered) return 1;
  }
  std::puts("\nevery shard update committed atomically on every chain");
  return 0;
}
