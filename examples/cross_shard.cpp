// Cross-shard coordination (paper §1: "Sharding splits one blockchain
// into many ... an atomic swap protocol can coordinate needed cross-chain
// updates").
//
// A coordinator shard rebalances accounts against four worker shards:
// the coordinator moves allocation tokens out to every shard and pulls
// settlement tokens back — a hub-and-spokes offer book whose hub is the
// natural leader (the clearing layer's FVS picks exactly it). We run it
// twice: plain, and with the §4.5 broadcast chain, showing the
// constant-time Phase Two.
#include <cstdio>
#include <string>

#include "swap/scenario.hpp"

using namespace xswap;

namespace {

swap::Scenario make_rebalance(bool broadcast) {
  const std::size_t workers = 4;
  swap::ScenarioBuilder builder;
  for (std::size_t i = 1; i <= workers; ++i) {
    const std::string shard = "shard-" + std::to_string(i);
    const std::string chain_name = "shard-chain-" + std::to_string(i);
    // Outbound arcs carry allocations, inbound carry settlements; the
    // contracts for a shard pair live on that shard's chain.
    builder.offer("coordinator", shard, chain_name,
                  chain::Asset::coins("ALLOC", 10 + 2 * (i - 1)));
    builder.offer(shard, "coordinator", chain_name,
                  chain::Asset::coins("SETTLE", 11 + 2 * (i - 1)));
  }
  return builder.broadcast(broadcast).build();
}

}  // namespace

int main() {
  std::puts("cross-shard rebalance: coordinator <-> 4 shards (8 transfers)\n");
  for (const bool broadcast : {false, true}) {
    swap::Scenario scenario = make_rebalance(broadcast);
    const auto& spec = scenario.engine(0).spec();
    const swap::BatchReport report = scenario.run();
    std::printf("%-18s all_triggered=%s  triggered by T+%llu ticks  storage=%zu B\n",
                broadcast ? "with broadcast:" : "plain protocol:",
                report.all_triggered ? "yes" : "no",
                static_cast<unsigned long long>(report.last_trigger_time -
                                                spec.start_time),
                report.total_storage_bytes);
    if (!report.all_triggered) return 1;
  }
  std::puts("\nevery shard update committed atomically on every chain");
  return 0;
}
