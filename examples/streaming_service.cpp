// Streaming clearing: the daemon behind `xswap serve`, used as a
// library (serve/service.hpp).
//
// A market rarely arrives as one batch. Offers trickle in, some are
// withdrawn before they ever match, and the venue clears whatever rings
// have formed at fixed barriers. ClearingService models exactly that:
// a bounded ingest queue (backpressure, not unbounded buffering), an
// incrementally maintained SCC decomposition that stays equal to the
// batch decompose_offers at every instant, and one seeded SwapEngine
// per cleared component — so a pure-add stream reproduces `xswap batch`
// field for field, and Theorems 4.7/4.9 keep holding per component.
//
// Build & run:  cmake -B build -DXSWAP_BUILD_EXAMPLES=ON && cmake --build build
//               ./build/examples/example_streaming_service
#include <cstdio>

#include "serve/events.hpp"
#include "serve/service.hpp"

using namespace xswap;

int main() {
  serve::ServiceOptions options;
  options.engine.seed = 42;
  options.jobs = 2;        // component engines fan out over two lanes
  options.queue_cap = 64;  // back-pressure past 64 queued events
  options.on_report = [](const serve::ComponentReport& report) {
    std::printf("  [clear %zu] component %zu: %zu parties, seed %llu, "
                "T=%llu, %s, audit %s\n",
                report.clear_batch, report.index,
                report.cleared.party_names.size(),
                static_cast<unsigned long long>(report.seed),
                static_cast<unsigned long long>(report.report.finished_at),
                report.report.all_triggered ? "all triggered" : "refunded",
                report.audit_ok ? "ok" : "VIOLATION");
  };
  serve::ClearingService service(std::move(options));
  service.start();

  // Morning session: Alice/Bob/Carol form the paper's three-ring; Dave
  // posts an offer nobody reciprocates yet.
  const auto submit = [&](const char* line) {
    auto event = serve::parse_event_line(line);
    if (event.has_value()) service.submit_wait(std::move(*event));
  };
  std::printf("morning session:\n");
  submit("add Alice Bob altchain coin:ALT:1000");
  submit("add Bob Carol bitcoin coin:BTC:3");
  submit("add Carol Alice dmv unique:TITLE:cadillac-1957");
  submit("add Dave Erin bitcoin coin:BTC:1");
  submit("clear");  // the ring settles; Dave's offer stays live

  // Afternoon: Erin reciprocates, then the book drains at shutdown.
  std::printf("afternoon session:\n");
  submit("add Erin Dave altchain coin:ALT:250");

  const serve::ServiceStats stats = service.wait();
  std::printf("drained: %zu components cleared, %zu violations, "
              "%zu offer(s) returned unmatched\n",
              stats.components_cleared, stats.violations,
              service.final_unmatched().size());
  std::printf("incremental economics: %zu cached refreshes, %zu full "
              "recomputes, %zu component reuses\n",
              stats.incremental.incremental_updates,
              stats.incremental.full_recomputes,
              stats.incremental.components_reused);
  return stats.violations == 0 ? 0 : 1;
}
