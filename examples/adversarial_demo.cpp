// Adversarial walkthrough: what the protocol guarantees when parties
// misbehave (§1's "what could go wrong" catalogue, §3's outcome classes).
//
// Scenario 1 — a party halts during deployment: every contract times out
//              and refunds (global NoDeal).
// Scenario 2 — a party triggers at the last moment: the per-hop Δ gap in
//              hashkey deadlines keeps its predecessor whole.
// Scenario 3 — the leader irrationally reveals early while another party
//              withholds: only the deviators can suffer.
//
// Strategy overrides ride the Scenario API two ways: time-free
// deviations go through ScenarioBuilder::strategy(name, s); deviations
// pinned to spec deadlines are set on the built engine (whose spec is
// available before run()).
#include <cstdio>

#include "swap/scenario.hpp"

using namespace xswap;

namespace {

swap::Scenario triangle(std::uint64_t seed) {
  return swap::ScenarioBuilder()
      .offer("Alice", "Bob", "altchain", chain::Asset::coins("ALT", 100))
      .offer("Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 1))
      .offer("Carol", "Alice", "dmv", chain::Asset::unique("TITLE", "cadillac"))
      .seed(seed)
      .build();
}

void print_outcomes(const swap::Scenario& scenario, const swap::BatchReport& r) {
  const auto& spec = scenario.engine(0).spec();
  for (swap::PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    std::printf("    %-6s %-10s\n", spec.party_names[v].c_str(),
                to_string(r.swaps[0].outcomes[v]));
  }
  std::printf("    no conforming party underwater: %s\n",
              r.no_conforming_underwater ? "yes" : "NO (bug!)");
}

}  // namespace

int main() {
  std::puts("scenario 1: Carol halts during contract deployment");
  {
    swap::Scenario scenario = triangle(11);
    // Deviations with a one-line spelling can come from the shared
    // spec-string table (the CLI's --adversary uses the same parser).
    scenario.set_strategy(
        "Carol", swap::strategy_from_spec(
                     "crash:1", scenario.engine(0).spec().start_time));
    const auto report = scenario.run();
    print_outcomes(scenario, report);
    std::printf("    Alice's ALT after refund: %llu\n\n",
                static_cast<unsigned long long>(
                    scenario.engine(0).ledger("altchain").balance("Alice", "ALT")));
    if (!report.no_conforming_underwater) return 1;
  }

  std::puts("scenario 2: Carol triggers at the very last moment");
  {
    swap::Scenario scenario = triangle(22);
    swap::Strategy s;
    s.delay_unlocks_until = scenario.engine(0).spec().hashkey_deadline(1) - 1;
    scenario.set_strategy("Carol", s);
    const auto report = scenario.run();
    print_outcomes(scenario, report);
    std::puts("    (Bob still had a full delta to react)\n");
    if (!report.no_conforming_underwater) return 1;
  }

  std::puts("scenario 3: Alice reveals early while Carol withholds");
  {
    swap::Strategy alice;
    alice.premature_reveal = true;
    swap::Strategy carol;
    carol.withhold_contracts = true;
    swap::Scenario scenario =
        swap::ScenarioBuilder()
            .offer("Alice", "Bob", "altchain", chain::Asset::coins("ALT", 100))
            .offer("Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 1))
            .offer("Carol", "Alice", "dmv",
                   chain::Asset::unique("TITLE", "cadillac"))
            .strategy("Alice", alice)
            .strategy("Carol", carol)
            .seed(33)
            .build();
    const auto report = scenario.run();
    print_outcomes(scenario, report);
    std::puts("    (only deviators can end up worse off)");
    if (!report.no_conforming_underwater) return 1;
  }
  return 0;
}
