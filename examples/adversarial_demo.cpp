// Adversarial walkthrough: what the protocol guarantees when parties
// misbehave (§1's "what could go wrong" catalogue, §3's outcome classes).
//
// Scenario 1 — a party halts during deployment: every contract times out
//              and refunds (global NoDeal).
// Scenario 2 — a party triggers at the last moment: the per-hop Δ gap in
//              hashkey deadlines keeps its predecessor whole.
// Scenario 3 — the leader irrationally reveals early while another party
//              withholds: only the deviators can suffer.
#include <cstdio>

#include "graph/generators.hpp"
#include "swap/engine.hpp"

using namespace xswap;

namespace {

void print_outcomes(const swap::SwapEngine& engine, const swap::SwapReport& r) {
  const auto& spec = engine.spec();
  for (swap::PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    std::printf("    %-6s %-10s\n", spec.party_names[v].c_str(),
                to_string(r.outcomes[v]));
  }
  std::printf("    no conforming party underwater: %s\n",
              r.no_conforming_underwater ? "yes" : "NO (bug!)");
}

swap::SwapEngine triangle(std::uint64_t seed) {
  const std::vector<std::string> names = {"Alice", "Bob", "Carol"};
  std::vector<swap::ArcTerms> arcs = {
      {"altchain", chain::Asset::coins("ALT", 100)},
      {"bitcoin", chain::Asset::coins("BTC", 1)},
      {"dmv", chain::Asset::unique("TITLE", "cadillac")},
  };
  swap::EngineOptions options;
  options.seed = seed;
  return swap::SwapEngine(graph::figure1_triangle(), names, {0}, arcs, options);
}

}  // namespace

int main() {
  std::puts("scenario 1: Carol halts during contract deployment");
  {
    swap::SwapEngine engine = triangle(11);
    swap::Strategy s;
    s.crash_at = engine.spec().start_time + 1;
    engine.set_strategy(2, s);
    const auto report = engine.run();
    print_outcomes(engine, report);
    std::printf("    Alice's ALT after refund: %llu\n\n",
                static_cast<unsigned long long>(
                    engine.ledger("altchain").balance("Alice", "ALT")));
    if (!report.no_conforming_underwater) return 1;
  }

  std::puts("scenario 2: Carol triggers at the very last moment");
  {
    swap::SwapEngine engine = triangle(22);
    swap::Strategy s;
    s.delay_unlocks_until = engine.spec().hashkey_deadline(1) - 1;
    engine.set_strategy(2, s);
    const auto report = engine.run();
    print_outcomes(engine, report);
    std::puts("    (Bob still had a full delta to react)\n");
    if (!report.no_conforming_underwater) return 1;
  }

  std::puts("scenario 3: Alice reveals early while Carol withholds");
  {
    swap::SwapEngine engine = triangle(33);
    swap::Strategy alice;
    alice.premature_reveal = true;
    engine.set_strategy(0, alice);
    swap::Strategy carol;
    carol.withhold_contracts = true;
    engine.set_strategy(2, carol);
    const auto report = engine.run();
    print_outcomes(engine, report);
    std::puts("    (only deviators can end up worse off)");
    if (!report.no_conforming_underwater) return 1;
  }
  return 0;
}
