// Recurrent market (§5): the same counterparties swap every epoch —
// think a market maker rebalancing against three venues once per hour.
//
// Instead of distributing fresh hashlocks before every round, each leader
// commits once to the head of a hash chain; revealing round k's secret IS
// the distribution of round k+1's hashlock. Any participant can audit a
// revealed secret against the single commitment.
//
// The offer book goes through the clearing layer once; the cleared swap
// (digraph + leader FVS + terms) is then recurred by RecurrentSwapRunner.
#include <cstdio>

#include "swap/clearing.hpp"
#include "swap/recurrent.hpp"
#include "util/bytes.hpp"

using namespace xswap;

int main() {
  constexpr std::size_t kRounds = 4;
  std::printf("recurrent 4-party ring, %zu rounds, one leader\n\n", kRounds);

  // The maker ships inventory around a four-venue ring each epoch.
  const std::vector<swap::Offer> book = {
      {"maker", "venue-1", "chain-0", chain::Asset::coins("INV", 100)},
      {"venue-1", "venue-2", "chain-1", chain::Asset::coins("INV", 100)},
      {"venue-2", "venue-3", "chain-2", chain::Asset::coins("INV", 100)},
      {"venue-3", "maker", "chain-3", chain::Asset::coins("INV", 100)},
  };
  const auto cleared = swap::clear_offers(book);
  if (!cleared) {
    std::puts("offer book does not clear: no deal");
    return 1;
  }

  swap::RecurrentSwapRunner runner(*cleared, kRounds);
  const auto commitments = runner.commitments();
  std::printf("leader commitment (x_0, published once before round 1):\n  %s\n\n",
              util::to_hex(commitments[0]).c_str());

  const auto results = runner.run_all();
  std::printf("%-7s %-10s %-18s %s\n", "round", "outcome", "triggered by",
              "hashlock links to commitment");
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& r = results[k];
    std::printf("%-7zu %-10s T+%-16llu %s\n", k + 1,
                r.report.all_triggered ? "all-Deal" : "partial",
                static_cast<unsigned long long>(r.report.last_trigger_time),
                r.chain_links_verified ? "verified" : "BROKEN");
    if (!r.report.all_triggered || !r.chain_links_verified) return 1;
  }
  std::printf("\n%zu rounds completed; zero extra hashlock-distribution "
              "messages after the initial commitment\n", kRounds);
  return 0;
}
