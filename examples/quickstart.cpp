// Quickstart: the three-way swap from the paper's §1 (Figures 1–2).
//
// Alice pays alt-coins to Bob, Bob pays bitcoins to Carol, and Carol
// signs her Cadillac's title over to Alice — three assets, three
// blockchains, no trusted intermediary. Offers go through the (untrusted)
// clearing service, the engine runs the hashed-timelock protocol, and we
// print who owns what before and after.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "swap/clearing.hpp"
#include "swap/engine.hpp"
#include "swap/timeline.hpp"

using namespace xswap;

int main() {
  // 1. Each party tells the clearing service what it is willing to give.
  const std::vector<swap::Offer> offers = {
      {"Alice", "Bob", "altchain", chain::Asset::coins("ALT", 1000)},
      {"Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 3)},
      {"Carol", "Alice", "dmv-ledger", chain::Asset::unique("TITLE", "cadillac-1957")},
  };

  // 2. The service combines offers into a swap digraph and picks leaders
  //    (a feedback vertex set). Parties re-validate everything.
  const auto cleared = swap::clear_offers(offers);
  if (!cleared) {
    std::puts("offers do not form a strongly-connected swap: no deal");
    return 1;
  }
  std::printf("cleared swap: %zu parties, %zu transfers, leader: %s\n",
              cleared->digraph.vertex_count(), cleared->digraph.arc_count(),
              cleared->party_names[cleared->leaders[0]].c_str());

  // 3. Run the protocol.
  swap::SwapEngine engine(cleared->digraph, cleared->party_names,
                          cleared->leaders, cleared->arcs, swap::EngineOptions{});
  const swap::SwapSpec& spec = engine.spec();
  std::printf("start T=%llu, delta=%llu ticks, diam(D)=%zu -> all-done deadline T+%zu\n",
              static_cast<unsigned long long>(spec.start_time),
              static_cast<unsigned long long>(spec.delta), spec.diam,
              2 * spec.diam * static_cast<std::size_t>(spec.delta));

  const swap::SwapReport report = engine.run();

  // 4. What happened, chain by chain, in Δ units after the start.
  std::printf("\nmerged cross-chain timeline:\n%s",
              swap::render_timeline(spec, swap::collect_timeline(engine)).c_str());

  // 5. Results.
  std::printf("\nper-party outcomes:\n");
  for (swap::PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    std::printf("  %-6s %s\n", spec.party_names[v].c_str(),
                to_string(report.outcomes[v]));
  }
  std::printf("\nfinal ownership:\n");
  std::printf("  Bob's ALT balance   : %llu\n",
              static_cast<unsigned long long>(engine.ledger("altchain").balance("Bob", "ALT")));
  std::printf("  Carol's BTC balance : %llu\n",
              static_cast<unsigned long long>(engine.ledger("bitcoin").balance("Carol", "BTC")));
  const auto title = engine.ledger("dmv-ledger").owner_of("TITLE", "cadillac-1957");
  std::printf("  Cadillac title      : %s\n", title ? title->c_str() : "(escrow)");
  std::printf("\nall transfers triggered by T+%llu (bound: T+%llu)\n",
              static_cast<unsigned long long>(report.last_trigger_time - spec.start_time),
              static_cast<unsigned long long>(2 * spec.diam * spec.delta));
  return report.all_triggered ? 0 : 1;
}
