// Quickstart: the three-way swap from the paper's §1 (Figures 1–2).
//
// Alice pays alt-coins to Bob, Bob pays bitcoins to Carol, and Carol
// signs her Cadillac's title over to Alice — three assets, three
// blockchains, no trusted intermediary. The Scenario API wraps the whole
// §4.2 flow: offers go through the (untrusted) clearing service, the
// engine runs the hashed-timelock protocol, and we print who owns what
// before and after.
//
// Build & run:  cmake -B build -G Ninja -DXSWAP_BUILD_EXAMPLES=ON && cmake --build build
//               ./build/examples/example_quickstart
#include <cstdio>

#include "swap/scenario.hpp"
#include "swap/timeline.hpp"

using namespace xswap;

int main() {
  // 1. Each party tells the clearing service what it is willing to give;
  //    the builder clears the book (digraph + leader FVS) and constructs
  //    the engine. Parties re-validate everything the service produced.
  swap::Scenario scenario =
      swap::ScenarioBuilder()
          .offer("Alice", "Bob", "altchain", chain::Asset::coins("ALT", 1000))
          .offer("Bob", "Carol", "bitcoin", chain::Asset::coins("BTC", 3))
          .offer("Carol", "Alice", "dmv-ledger",
                 chain::Asset::unique("TITLE", "cadillac-1957"))
          .build();

  const swap::ClearedSwap& cleared = scenario.cleared(0);
  std::printf("cleared swap: %zu parties, %zu transfers, leader: %s\n",
              cleared.digraph.vertex_count(), cleared.digraph.arc_count(),
              cleared.party_names[cleared.leaders[0]].c_str());

  const swap::SwapSpec& spec = scenario.engine(0).spec();
  std::printf("start T=%llu, delta=%llu ticks, diam(D)=%zu -> all-done deadline T+%zu\n",
              static_cast<unsigned long long>(spec.start_time),
              static_cast<unsigned long long>(spec.delta), spec.diam,
              2 * spec.diam * static_cast<std::size_t>(spec.delta));

  // 2. Run the protocol.
  const swap::BatchReport batch = scenario.run();
  const swap::SwapReport& report = batch.swaps[0];

  // 3. What happened, chain by chain, in Δ units after the start.
  std::printf("\nmerged cross-chain timeline:\n%s",
              swap::render_timeline(
                  spec, swap::collect_timeline(scenario.engine(0))).c_str());

  // 4. Results.
  std::printf("\nper-party outcomes:\n");
  for (swap::PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    std::printf("  %-6s %s\n", spec.party_names[v].c_str(),
                to_string(report.outcomes[v]));
  }
  const swap::SwapEngine& engine = scenario.engine(0);
  std::printf("\nfinal ownership:\n");
  std::printf("  Bob's ALT balance   : %llu\n",
              static_cast<unsigned long long>(engine.ledger("altchain").balance("Bob", "ALT")));
  std::printf("  Carol's BTC balance : %llu\n",
              static_cast<unsigned long long>(engine.ledger("bitcoin").balance("Carol", "BTC")));
  const auto title = engine.ledger("dmv-ledger").owner_of("TITLE", "cadillac-1957");
  std::printf("  Cadillac title      : %s\n", title ? title->c_str() : "(escrow)");
  std::printf("\nall transfers triggered by T+%llu (bound: T+%llu)\n",
              static_cast<unsigned long long>(batch.last_trigger_time - spec.start_time),
              static_cast<unsigned long long>(2 * spec.diam * spec.delta));
  return batch.all_triggered ? 0 : 1;
}
