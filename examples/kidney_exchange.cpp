// Kidney-exchange-style barter ring (paper §6: multi-party swaps arise
// when matching donors and recipients; Kaplan's clearing problem builds
// the digraph, ours executes it atomically).
//
// Two donation cycles share one hospital consortium ("Mercy"): a 3-cycle
// and a 4-cycle of paired exchanges, each transfer recorded on a regional
// registry chain. The shared vertex is the unique feedback vertex, so the
// clearing layer elects exactly one leader. We run the general protocol
// and show the safety guarantee: a hospital that withdraws (crashes)
// mid-protocol can only hurt itself, and every conforming hospital ends
// in an acceptable state.
#include <cstdio>
#include <string>

#include "swap/scenario.hpp"

using namespace xswap;

namespace {

swap::ScenarioBuilder exchange_book() {
  // Mercy is the shared consortium; ring 1 = Mercy→StJude→County→Mercy,
  // ring 2 = Mercy→General→Summit→Lakeside→Mercy.
  const char* ring1[] = {"Mercy", "StJude", "County", "Mercy"};
  const char* ring2[] = {"Mercy", "General", "Summit", "Lakeside", "Mercy"};
  swap::ScenarioBuilder builder;
  std::size_t a = 0;
  for (std::size_t i = 0; i + 1 < std::size(ring1); ++i, ++a) {
    builder.offer(ring1[i], ring1[i + 1], "registry-" + std::to_string(a),
                  chain::Asset::unique("ORGAN-CONSENT",
                                       "case-" + std::to_string(100 + a)));
  }
  for (std::size_t i = 0; i + 1 < std::size(ring2); ++i, ++a) {
    builder.offer(ring2[i], ring2[i + 1], "registry-" + std::to_string(a),
                  chain::Asset::unique("ORGAN-CONSENT",
                                       "case-" + std::to_string(100 + a)));
  }
  return builder;
}

void report_run(const char* label, const swap::Scenario& scenario,
                const swap::BatchReport& batch) {
  const auto& spec = scenario.engine(0).spec();
  const swap::SwapReport& report = batch.swaps[0];
  std::printf("%s\n", label);
  std::size_t done = 0;
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    if (report.triggered[a]) ++done;
  }
  std::printf("  transfers: %zu/%zu triggered\n", done, spec.digraph.arc_count());
  for (swap::PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    std::printf("  %-9s %s\n", spec.party_names[v].c_str(),
                to_string(report.outcomes[v]));
  }
}

}  // namespace

int main() {
  std::puts("seven-transfer kidney exchange: two rings sharing one consortium\n");

  // Run 1: everyone conforms — every consent transfers.
  {
    swap::Scenario scenario = exchange_book().seed(1).build();
    const swap::BatchReport batch = scenario.run();
    report_run("all hospitals conform:", scenario, batch);
    if (!batch.all_triggered) return 1;
  }

  // Run 2: Summit withdraws mid-protocol. Contracts that can no longer
  // complete time out and refund; no conforming hospital ends Underwater
  // (only the withdrawing party can).
  {
    swap::Scenario scenario = exchange_book().seed(2).build();
    swap::Strategy withdraw;
    withdraw.crash_at = scenario.engine(0).spec().start_time +
                        scenario.engine(0).spec().delta;
    scenario.set_strategy("Summit", withdraw);
    const swap::BatchReport batch = scenario.run();
    std::puts("");
    report_run("Summit withdraws during deployment:", scenario, batch);
    if (!batch.no_conforming_underwater) return 1;
  }
  return 0;
}
