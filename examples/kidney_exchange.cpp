// Kidney-exchange-style barter ring (paper §6: multi-party swaps arise
// when matching donors and recipients; Kaplan's clearing problem builds
// the digraph, ours executes it atomically).
//
// Two donation cycles share one hospital consortium ("Mercy"): a 3-cycle
// and a 4-cycle of paired exchanges, each transfer recorded on a regional
// registry chain. The shared vertex is the unique feedback vertex, so the
// whole exchange needs exactly one leader and could even run the §4.6
// single-leader variant; we run the general protocol and show the safety
// guarantee: a hospital that withdraws (crashes) mid-protocol can only
// hurt itself, and every conforming hospital ends in an acceptable state.
#include <cstdio>

#include "graph/generators.hpp"
#include "swap/engine.hpp"

using namespace xswap;

namespace {

swap::SwapEngine make_exchange(std::uint64_t seed) {
  // Vertex 0 = Mercy (shared); 1,2 = first ring; 3,4,5 = second ring.
  const graph::Digraph d = graph::two_cycles_sharing_vertex(3, 4);
  const std::vector<std::string> names = {"Mercy",   "StJude", "County",
                                          "General", "Summit", "Lakeside"};
  std::vector<swap::ArcTerms> arcs;
  for (graph::ArcId a = 0; a < d.arc_count(); ++a) {
    arcs.push_back(swap::ArcTerms{
        "registry-" + std::to_string(a),
        chain::Asset::unique("ORGAN-CONSENT", "case-" + std::to_string(100 + a))});
  }
  swap::EngineOptions options;
  options.seed = seed;
  return swap::SwapEngine(d, names, /*leaders=*/{0}, arcs, options);
}

void report_run(const char* label, const swap::SwapEngine& engine,
                const swap::SwapReport& report) {
  const auto& spec = engine.spec();
  std::printf("%s\n", label);
  std::size_t done = 0;
  for (graph::ArcId a = 0; a < spec.digraph.arc_count(); ++a) {
    if (report.triggered[a]) ++done;
  }
  std::printf("  transfers: %zu/%zu triggered\n", done, spec.digraph.arc_count());
  for (swap::PartyId v = 0; v < spec.digraph.vertex_count(); ++v) {
    std::printf("  %-9s %s\n", spec.party_names[v].c_str(),
                to_string(report.outcomes[v]));
  }
}

}  // namespace

int main() {
  std::puts("seven-transfer kidney exchange: two rings sharing one consortium\n");

  // Run 1: everyone conforms — every consent transfers.
  {
    swap::SwapEngine engine = make_exchange(1);
    const swap::SwapReport report = engine.run();
    report_run("all hospitals conform:", engine, report);
    if (!report.all_triggered) return 1;
  }

  // Run 2: Summit withdraws mid-protocol. Contracts that can no longer
  // complete time out and refund; no conforming hospital ends Underwater
  // (only the withdrawing party can).
  {
    swap::SwapEngine engine = make_exchange(2);
    swap::Strategy withdraw;
    withdraw.crash_at = engine.spec().start_time + engine.spec().delta;
    engine.set_strategy(4, withdraw);
    const swap::SwapReport report = engine.run();
    std::puts("");
    report_run("Summit withdraws during deployment:", engine, report);
    if (!report.no_conforming_underwater) return 1;
  }
  return 0;
}
