#!/usr/bin/env python3
"""xswap-specific lint rules that clang-tidy cannot express.

Four rule families, all protecting repo-level invariants:

determinism  Trace-affecting code (src/chain, src/sim, src/swap, and
             the streaming service src/serve) must be bit-for-bit
             reproducible from (seed, event order): the golden-trace
             gate, the pinned fuzz corpus, and the streaming-equals-
             batch serve gate depend on it.
             Banned there: rand()/srand(), std::random_device,
             std::chrono::system_clock (wall-clock timing of *reports*
             uses steady_clock, which is allowed), and pointer-keyed
             unordered containers (iteration order = allocation order).

locking      All locking in src/ goes through util::Mutex/MutexLock so
             Clang's -Wthread-safety capability analysis sees every
             acquire/release (std::mutex is invisible to it). Banned
             outside the src/util/mutex.hpp wrapper: std::mutex,
             std::lock_guard/unique_lock/scoped_lock,
             std::condition_variable (use _any, which waits on the
             annotated Mutex directly), and raw .lock()/.unlock() calls.

raw-io       Durable state written by trace-affecting code (src/chain,
             src/sim, src/swap, src/serve) must go through the persist
             layer (persist::SegmentStore — checksummed, torn-tail-
             tolerant frames that recover() can replay). Ad-hoc file
             writes bypass the crc/replay guarantees and silently break
             crash recovery. Banned there: fopen/freopen,
             std::ifstream/ofstream/fstream, and POSIX open(2).
             src/persist is the one tree allowed to touch files.

delta        Δ safety (Thm 4.7/4.9 under network faults) hangs on ONE
             bound: NetworkModel::min_safe_delta(). Re-deriving it from
             the individual fault knobs (arithmetic on max_extra_delay(),
             or hand-summing jitter/retry/partition terms) drifts
             silently when a new fault source is added. The token
             max_extra_delay is therefore code-banned everywhere except
             its definition site, src/swap/netmodel.{hpp,cpp}.

Suppression: append ``// xswap-lint: allow(<rule>)`` to the offending
line. Suppressions are themselves counted and reported, so they are
visible in review.

Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc", ".cxx"}

# Directories whose code affects simulation traces. src/serve feeds
# offers into the same engines (seed contract: base + dispatched + i),
# so any nondeterminism there breaks the streaming-equals-batch gate.
TRACE_DIRS = ("src/chain", "src/sim", "src/swap", "src/serve")
# Directory tree where the locking discipline applies.
LOCK_DIRS = ("src",)
# The one place allowed to wrap std::mutex.
LOCK_WRAPPER = "src/util/mutex.hpp"
# The one place allowed to compute with max_extra_delay().
DELTA_HOME = ("src/swap/netmodel.hpp", "src/swap/netmodel.cpp")

SUPPRESS_RE = re.compile(r"//\s*xswap-lint:\s*allow\(([a-z-]+)\)")


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Rule:
    name: str
    pattern: re.Pattern[str]
    message: str
    applies: object  # Callable[[str], bool] on the repo-relative path


def _under(rel: str, dirs: tuple[str, ...]) -> bool:
    return any(rel == d or rel.startswith(d + "/") for d in dirs)


RULES = [
    # ---- determinism ----
    Rule(
        "determinism",
        re.compile(r"\b(?:std::)?s?rand\s*\("),
        "rand()/srand() in trace-affecting code; use util::Rng (seeded)",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    Rule(
        "determinism",
        re.compile(r"\bstd::random_device\b"),
        "std::random_device is nondeterministic; seed util::Rng explicitly",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    Rule(
        "determinism",
        re.compile(r"\bsystem_clock\b"),
        "system_clock reads the wall clock; sim::Time comes from the "
        "simulator, wall timing of reports uses steady_clock",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    Rule(
        "determinism",
        re.compile(r"\bunordered_(?:map|set)\s*<[^<>,]*\*"),
        "pointer-keyed unordered container: iteration order follows "
        "allocation addresses and differs run to run",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    # ---- locking ----
    Rule(
        "locking",
        re.compile(
            r"\bstd::(?:mutex|recursive_mutex|shared_mutex|timed_mutex|"
            r"lock_guard|unique_lock|scoped_lock)\b"
        ),
        "raw std locking type; use util::Mutex / util::MutexLock so the "
        "thread-safety analysis sees the acquire/release",
        lambda rel: _under(rel, LOCK_DIRS) and rel != LOCK_WRAPPER,
    ),
    Rule(
        "locking",
        re.compile(r"\bstd::condition_variable\b(?!_any)"),
        "std::condition_variable needs a std::unique_lock<std::mutex>; "
        "use std::condition_variable_any waiting on util::Mutex",
        lambda rel: _under(rel, LOCK_DIRS) and rel != LOCK_WRAPPER,
    ),
    Rule(
        "locking",
        re.compile(r"\.\s*(?:un)?lock\s*\(\s*\)"),
        "raw .lock()/.unlock() call outside the util::Mutex wrapper; "
        "use the scoped util::MutexLock",
        lambda rel: _under(rel, LOCK_DIRS) and rel != LOCK_WRAPPER,
    ),
    # ---- raw-io ----
    Rule(
        "raw-io",
        re.compile(r"\bstd::(?:basic_)?[io]?fstream\b"),
        "raw file stream in trace-affecting code; durable writes go "
        "through persist::SegmentStore (checksummed, replayable frames)",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    Rule(
        "raw-io",
        re.compile(r"\bf(?:re)?open\s*\("),
        "fopen/freopen in trace-affecting code; durable writes go "
        "through persist::SegmentStore (checksummed, replayable frames)",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    Rule(
        "raw-io",
        # POSIX open(2): bare or ::-qualified `open(`, but not member
        # `.open(` calls or identifiers merely ending in "open".
        re.compile(r"(?<![\w.])open\s*\("),
        "open(2) in trace-affecting code; durable writes go through "
        "persist::SegmentStore (checksummed, replayable frames)",
        lambda rel: _under(rel, TRACE_DIRS),
    ),
    # ---- delta ----
    Rule(
        "delta",
        re.compile(r"\bmax_extra_delay\b"),
        "Δ must route through NetworkModel::min_safe_delta(); computing "
        "with max_extra_delay() re-derives the Thm 4.7/4.9 bound",
        lambda rel: _under(rel, ("src", "tools")) and rel not in DELTA_HOME,
    ),
]


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines.

    Line-count-preserving so finding line numbers stay accurate. A
    character-level scanner (not regex) so ``"//"`` inside a string or a
    quote inside a comment cannot derail it.
    """
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append(c)
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (macro trickery); resync
                state = "code"
                out.append(c)
            i += 1
            continue
        i += 1
    return "".join(out)


def lint_text(rel_path: str, text: str) -> tuple[list[Finding], int]:
    """Lint one file's contents; returns (findings, suppression_count)."""
    raw_lines = text.splitlines()
    code_lines = strip_comments_and_strings(text).splitlines()
    findings: list[Finding] = []
    suppressed = 0
    for lineno, (raw, code) in enumerate(zip(raw_lines, code_lines), 1):
        allowed = set(SUPPRESS_RE.findall(raw))
        for rule in RULES:
            if not rule.applies(rel_path):
                continue
            if not rule.pattern.search(code):
                continue
            if rule.name in allowed:
                suppressed += 1
                continue
            findings.append(Finding(rel_path, lineno, rule.name, rule.message))
    return findings, suppressed


def lint_tree(root: Path) -> tuple[list[Finding], int]:
    findings: list[Finding] = []
    suppressed = 0
    for path in sorted(root.rglob("*")):
        if path.suffix not in CXX_SUFFIXES or not path.is_file():
            continue
        rel = path.relative_to(REPO_ROOT).as_posix()
        got, skipped = lint_text(rel, path.read_text(encoding="utf-8"))
        findings.extend(got)
        suppressed += skipped
    return findings, suppressed


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="files to lint (default: all of src/)")
    args = parser.parse_args()

    findings: list[Finding] = []
    suppressed = 0
    if args.paths:
        for arg in args.paths:
            path = Path(arg).resolve()
            if path.is_dir():
                got, skipped = lint_tree(path)
            else:
                rel = path.relative_to(REPO_ROOT).as_posix()
                got, skipped = lint_text(rel,
                                         path.read_text(encoding="utf-8"))
            findings.extend(got)
            suppressed += skipped
    else:
        findings, suppressed = lint_tree(REPO_ROOT / "src")

    for finding in findings:
        print(finding, file=sys.stderr)
    note = f" ({suppressed} suppression(s) via xswap-lint: allow)" \
        if suppressed else ""
    if findings:
        print(f"xswap_lint: {len(findings)} finding(s){note}",
              file=sys.stderr)
        return 1
    print(f"xswap_lint: OK{note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
